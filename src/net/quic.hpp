// QUIC v1 Initial packets (RFC 9000 + RFC 9001), build and passive-decrypt.
//
// Section 7.2 of the paper: "Both HTTPS and QUIC leak to a network observer
// the hostname requested by the user in the SNI field ... checking the UDP
// datagrams of QUIC". Unlike TLS-over-TCP, the QUIC Initial that carries
// the ClientHello is encrypted — but its keys derive from the *public*
// Destination Connection ID via HKDF over a published salt (RFC 9001 §5.2),
// so any on-path observer can remove header protection, decrypt the
// payload, reassemble CRYPTO frames and read the SNI. This module
// implements both directions with real AEAD crypto (crypto/):
//   - build_quic_initial: a client Initial with the ClientHello in a CRYPTO
//     frame, padded to the 1200-byte minimum, header-protected and sealed,
//   - decrypt_quic_initial: the passive-observer path back to the
//     ClientHello.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/tls.hpp"

namespace netobs::net {

constexpr std::uint32_t kQuicVersion1 = 0x00000001;
/// A client's first flight must pad its Initial to at least this size.
constexpr std::size_t kQuicMinInitialSize = 1200;

struct QuicInitialSpec {
  std::vector<std::uint8_t> dcid;  ///< 8-20 bytes (client-chosen, public)
  std::vector<std::uint8_t> scid;
  std::uint32_t packet_number = 0;
  ClientHelloSpec client_hello;
};

/// Builds a fully protected client Initial datagram. Throws
/// std::invalid_argument for malformed specs (empty or oversized DCID).
std::vector<std::uint8_t> build_quic_initial(const QuicInitialSpec& spec);

/// What the passive observer recovers from an Initial.
struct QuicInitialView {
  std::uint32_t version = 0;
  std::vector<std::uint8_t> dcid;
  std::vector<std::uint8_t> scid;
  std::uint32_t packet_number = 0;
  ClientHello client_hello;
};

/// Decrypts a client Initial as an on-path observer (keys derived from the
/// DCID, header protection removed, CRYPTO frames reassembled, ClientHello
/// parsed). Returns nullopt when the datagram is not a v1 client Initial or
/// fails authentication/parsing.
std::optional<QuicInitialView> decrypt_quic_initial(
    std::span<const std::uint8_t> datagram);

/// True if the datagram's first byte/version look like a QUIC v1 long-header
/// Initial (the observer's cheap pre-filter).
bool looks_like_quic_initial(std::span<const std::uint8_t> datagram);

}  // namespace netobs::net
