// Runtime-dispatched SIMD kernels for the dense-float hot paths.
//
// Three tiers — AVX2+FMA, SSE2, scalar — selected once per process from
// CPUID (overridable per-thread-unsafe via force_tier for tests and
// benchmarks). All tiers share one canonical accumulation order: a dot
// product is accumulated into kLanes independent fused-multiply-add chains
// (element i feeds chain i % kLanes) and reduced in the fixed tree
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)). The scalar tier emulates this with
// std::fma, which makes the scalar and AVX2+FMA tiers *bit-identical* — the
// kNN oracle tests rely on that, not on tolerances. SSE2 has no fused
// multiply-add, so it agrees only to rounding (covered by tolerance tests).
//
// The multi-row kernels (`dot_block`) assume the matrix rows are padded to
// a multiple of kLanes floats and zero-filled in the pad — zeros feed the
// same accumulator lanes the in-bounds tail elements would, so a padded
// full-width sweep is bit-identical to the span kernel on the unpadded row.
// EmbeddingMatrix provides exactly this layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace netobs::util::simd {

/// Vector width (floats) of the widest tier; also the row-padding quantum.
inline constexpr std::size_t kLanes = 8;
/// Row alignment in bytes (one AVX2 register).
inline constexpr std::size_t kRowAlignBytes = 32;

enum class Tier { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best tier the running CPU supports (AVX2 requires FMA too).
Tier best_supported_tier();

/// Tier currently wired into the dispatch table.
Tier active_tier();

/// Human-readable tier name ("scalar", "sse2", "avx2").
const char* tier_name(Tier tier);

/// Rewires dispatch to `tier` (clamped to best_supported_tier()). Returns
/// the tier actually selected. Not thread-safe; call from tests/benches
/// before spawning workers.
Tier force_tier(Tier tier);

/// dim rounded up to the padding quantum.
inline std::size_t padded_dim(std::size_t dim) {
  return (dim + kLanes - 1) / kLanes * kLanes;
}

// --- Dispatched kernels. Pointers may be unaligned; n is the logical
//     element count (tails handled inside, in canonical lane order).

float dot(const float* a, const float* b, std::size_t n);

/// y += alpha * x
void axpy(float alpha, const float* x, float* y, std::size_t n);

/// x *= alpha
void scale(float* x, float alpha, std::size_t n);

/// Fused SGNS inner update, one pass: grad += g * out; out += g * in.
/// `in` must not alias `out` or `grad`.
void fused_grad_update(float g, const float* in, float* out, float* grad,
                       std::size_t n);

/// Bit i of the result is set iff x[i] >= threshold (IEEE compare, so NaN
/// scores never pass). n must be <= 64. Exact and therefore identical
/// across tiers; the kNN scan uses it to skip whole score blocks that
/// cannot displace anything in a warm top-k heap.
std::uint64_t mask_ge(const float* x, std::size_t n, float threshold);

/// Signed int8 inner product accumulated in int32. Integer arithmetic is
/// associative, so — unlike the float kernels — every tier is *exactly*
/// identical for any accumulation order; the IVF index relies on that for
/// cross-tier bit-compatibility of its quantized candidate scores. Values
/// are codes in [-127, 127]; n * 127^2 stays far below INT32_MAX for any
/// realistic embedding width.
std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::size_t n);

/// Int8 companion of dot_block: out[r] = dot_i8(q, base + r * stride) for
/// `nrows` consecutive code rows of `stride` bytes each. Like dot_i8 the
/// arithmetic is exact int32, so every tier returns identical results for
/// any row/lane order; the wide tiers process four rows per sweep so the
/// widened query registers are reused across rows. Pointers may be
/// unaligned and `stride` arbitrary (tails fall back per element). The IVF
/// batched list scan calls this once per (query, row-block) pair so each
/// cache-hot block of codes is scored against every query probing its list.
void dot_i8_block(const std::int8_t* q, const std::int8_t* base,
                  std::size_t stride, std::size_t nrows, std::int32_t* out);

/// Scores one query against `nrows` consecutive rows of a padded matrix:
/// out[r] = dot(q, base + r * stride) over `stride` floats. `q` must be
/// padded (zero-filled) to `stride` and aligned to kRowAlignBytes, `stride`
/// a multiple of kLanes, and `base` aligned to kRowAlignBytes. Per-row
/// accumulation is bit-identical to dot() on the unpadded row.
void dot_block(const float* q, const float* base, std::size_t stride,
               std::size_t nrows, float* out);

/// Minimal aligned allocator so matrix storage can live in a std::vector
/// while every row starts on a kRowAlignBytes boundary.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(kRowAlignBytes));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kRowAlignBytes));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

}  // namespace netobs::util::simd
