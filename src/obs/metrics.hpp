// Process-wide metrics: named counters, gauges and fixed-bucket histograms
// behind a thread-safe registry, exported in Prometheus text format or JSON
// (see obs/export.hpp).
//
// Design constraints, in order:
//   1. the hot increment path is a single relaxed std::atomic op — safe to
//      call from Hogwild trainer workers and the per-packet observer loop,
//   2. a registry-wide `enabled` flag short-circuits every record call so an
//      uninstrumented-speed run is one branch away (the SGNS throughput
//      guard of the operational-loop benches),
//   3. registration is idempotent: asking for the same (name, labels) twice
//      returns the same instance, so instrumentation sites can cache a
//      reference in a function-local static and never lock again.
//
// Naming convention (enforced loosely, documented in README "Observability"):
//   netobs_<subsystem>_<name>_<unit>, e.g. netobs_net_packets_total,
//   netobs_profile_retrain_seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace netobs::obs {

/// Key/value metric labels ({{"arm", "eavesdropper"}}). Order-insensitive:
/// the registry canonicalises by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Lock-free add for atomic doubles (portable CAS loop; fetch_add on
/// floating atomics is C++20 but not universally lowered well).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic event count. Increment-only; relaxed atomics, no locks.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// A value that can go up and down (vocab size, pairs/sec of the last epoch).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    detail::atomic_add(value_, delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram with Prometheus `le` semantics: a value v lands in
/// the first bucket whose upper bound satisfies v <= bound (upper bounds are
/// INCLUSIVE, lower bounds exclusive); values above the last bound land in
/// the implicit +Inf bucket. Buckets store per-bucket counts; exporters
/// cumulate them.
class Histogram {
 public:
  void observe(double v) {
    if (!enabled()) return;
    std::size_t b = bucket_of(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, v);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds().size() is +Inf.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram(std::vector<double> bounds, const std::atomic<bool>* enabled);

  std::size_t bucket_of(double v) const {
    // Branchless-ish linear probe: bucket counts are small (≤ ~20) so this
    // beats binary search on real latency distributions.
    std::size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b]) ++b;
    return b;
  }
  void reset();

  std::vector<double> bounds_;  ///< strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< size()+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  const std::atomic<bool>* enabled_;
};

/// `count` bounds starting at `start`, each `factor` times the previous.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);
/// `count` bounds starting at `start`, spaced `width` apart.
std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count);
/// 1 µs … ~17 s exponential ladder — the default for wall-time histograms.
std::vector<double> default_latency_buckets();

enum class MetricType { kCounter, kGauge, kHistogram };

/// Plain-struct view of the registry for exporters and assertions.
struct CounterSample {
  std::string name;
  std::string help;
  Labels labels;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::string help;
  Labels labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::string help;
  Labels labels;
  std::vector<double> bounds;
  std::vector<std::uint64_t> cumulative;  ///< bounds.size()+1, last == count
  std::uint64_t count = 0;
  double sum = 0.0;
};
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class TraceBuffer;  // obs/trace.hpp

/// Thread-safe metric registry. Registration takes a mutex; the returned
/// references are stable for the registry's lifetime and record lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all library instrumentation records into.
  static MetricsRegistry& global();

  /// Finds or creates; throws std::invalid_argument on an invalid name or
  /// when `name` is already registered as a different metric type.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const Labels& labels = {});

  /// When false every inc/set/observe through this registry is a no-op
  /// (single relaxed load + branch). Values freeze; readers still work.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every registered value (registrations survive).
  void reset();

  /// Attaches an in-memory span ring buffer (obs/trace.hpp). Spans
  /// constructed without an explicit buffer record here when attached.
  void enable_tracing(std::size_t capacity = 4096);
  TraceBuffer* trace_buffer() const { return trace_.get(); }

  RegistrySnapshot snapshot() const;

 private:
  struct Family;
  Family& family_of(const std::string& name, const std::string& help,
                    MetricType type);  // caller holds mutex_

  mutable std::mutex mutex_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<Family>> families_;
  std::unique_ptr<TraceBuffer> trace_;
};

}  // namespace netobs::obs
