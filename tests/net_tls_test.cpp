#include <gtest/gtest.h>

#include <string>

#include "net/tls.hpp"
#include "util/rng.hpp"

namespace netobs::net {
namespace {

ClientHelloSpec spec_for(const std::string& host) {
  ClientHelloSpec spec;
  spec.sni = host;
  return spec;
}

TEST(ClientHello, BuildParseRoundTrip) {
  auto spec = spec_for("booking.com");
  spec.random.fill(0x42);
  spec.session_id = {1, 2, 3};
  auto record = build_client_hello_record(spec);
  auto hello = parse_client_hello_record(record);
  ASSERT_TRUE(hello.sni.has_value());
  EXPECT_EQ(*hello.sni, "booking.com");
  EXPECT_EQ(hello.legacy_version, 0x0303);
  EXPECT_EQ(hello.random[0], 0x42);
  EXPECT_EQ(hello.session_id, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(hello.cipher_suites, spec.cipher_suites);
  EXPECT_EQ(hello.alpn, (std::vector<std::string>{"h2", "http/1.1"}));
}

TEST(ClientHello, RecordStartsWithHandshakeHeader) {
  auto record = build_client_hello_record(spec_for("espn.com"));
  ASSERT_GE(record.size(), 6U);
  EXPECT_EQ(record[0], 0x16);  // handshake
  EXPECT_EQ(record[1], 0x03);
  EXPECT_EQ(record[2], 0x01);
  EXPECT_EQ(record[5], 0x01);  // client_hello
}

TEST(ClientHello, SniIsLowercasedOnParse) {
  // Build a hello whose SNI has mixed case by writing the spec hostname
  // in canonical lowercase but patching the bytes afterwards.
  auto record = build_client_hello_record(spec_for("example.com"));
  // Find "example.com" in the raw bytes and uppercase the first letter.
  std::string needle = "example.com";
  auto it = std::search(record.begin(), record.end(), needle.begin(),
                        needle.end());
  ASSERT_NE(it, record.end());
  *it = 'E';
  auto hello = parse_client_hello_record(record);
  ASSERT_TRUE(hello.sni.has_value());
  EXPECT_EQ(*hello.sni, "example.com");
}

TEST(ClientHello, OmitsSniWhenEmpty) {
  ClientHelloSpec spec;  // no SNI
  auto record = build_client_hello_record(spec);
  auto hello = parse_client_hello_record(record);
  EXPECT_FALSE(hello.sni.has_value());
}

TEST(ClientHello, RejectsInvalidSni) {
  EXPECT_THROW(build_client_hello_record(spec_for("not a host")),
               std::invalid_argument);
  EXPECT_THROW(build_client_hello_record(spec_for("nodots")),
               std::invalid_argument);
}

TEST(ClientHello, ParseRejectsNonHandshakeRecord) {
  auto record = build_client_hello_record(spec_for("a.com"));
  record[0] = 0x17;  // application_data
  EXPECT_THROW(parse_client_hello_record(record), ParseError);
}

TEST(ClientHello, ParseRejectsTruncatedRecord) {
  auto record = build_client_hello_record(spec_for("a.com"));
  record.resize(record.size() / 2);
  EXPECT_THROW(parse_client_hello_record(record), ParseError);
}

TEST(ClientHello, ParseRejectsNonClientHelloHandshake) {
  auto record = build_client_hello_record(spec_for("a.com"));
  record[5] = 0x02;  // server_hello
  EXPECT_THROW(parse_client_hello_record(record), ParseError);
}

TEST(ExtractSni, FindsHostInCompleteRecord) {
  auto record = build_client_hello_record(spec_for("hotels.com"));
  auto result = extract_sni(record);
  EXPECT_EQ(result.status, SniStatus::kFound);
  EXPECT_EQ(result.sni, "hotels.com");
}

TEST(ExtractSni, ReportsNoSni) {
  ClientHelloSpec spec;
  auto record = build_client_hello_record(spec);
  EXPECT_EQ(extract_sni(record).status, SniStatus::kNoSni);
}

TEST(ExtractSni, IncrementalOverSegments) {
  auto record = build_client_hello_record(spec_for("api.bkng.azure.com"));
  // Feed byte-by-byte prefixes: every proper prefix must request more data,
  // the complete record must resolve.
  for (std::size_t cut = 1; cut < record.size(); ++cut) {
    auto r = extract_sni(std::span(record).subspan(0, cut));
    EXPECT_EQ(r.status, SniStatus::kNeedMoreData) << "cut=" << cut;
  }
  auto full = extract_sni(record);
  EXPECT_EQ(full.status, SniStatus::kFound);
  EXPECT_EQ(full.sni, "api.bkng.azure.com");
}

TEST(ExtractSni, RejectsNonTlsTraffic) {
  std::string http = "GET / HTTP/1.1\r\nHost: example.com\r\n\r\n";
  std::vector<std::uint8_t> bytes(http.begin(), http.end());
  EXPECT_EQ(extract_sni(bytes).status, SniStatus::kNotTls);
}

TEST(ExtractSni, EmptyInputNeedsMoreData) {
  EXPECT_EQ(extract_sni({}).status, SniStatus::kNeedMoreData);
}

TEST(FirstRecordSpan, HeaderPlusBody) {
  auto record = build_client_hello_record(spec_for("a.com"));
  EXPECT_EQ(first_record_span(record), record.size());
  EXPECT_EQ(first_record_span(std::span(record).subspan(0, 4)), 0U);
}

// Property sweep: round-trip across randomly generated hostnames of varied
// shape (single-label subdomains through deep CDN-style names).
class SniRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SniRoundTrip, RandomHostnamesSurviveRoundTrip) {
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  static const char* tlds[] = {"com", "net", "org", "es", "com.ve", "co.uk"};
  for (int rep = 0; rep < 40; ++rep) {
    std::string host;
    int labels = 1 + static_cast<int>(rng.next_below(3));
    for (int l = 0; l < labels; ++l) {
      int len = 1 + static_cast<int>(rng.next_below(12));
      for (int i = 0; i < len; ++i) {
        host.push_back(static_cast<char>('a' + rng.next_below(26)));
      }
      host.push_back('.');
    }
    host += tlds[rng.next_below(6)];

    auto record = build_client_hello_record(spec_for(host));
    auto result = extract_sni(record);
    ASSERT_EQ(result.status, SniStatus::kFound) << host;
    EXPECT_EQ(result.sni, host);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SniRoundTrip, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace netobs::net
