// Descriptive statistics and hypothesis tests used by the evaluation.
//
// The paper's headline result is a two-tailed *paired* t-test over per-user
// CTRs (Section 6.4); Figures 2-3 are CCDFs (survival functions). Both are
// implemented here from first principles (no external stats dependency); the
// Student-t CDF is computed via the regularised incomplete beta function.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace netobs::util {

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

double mean(std::span<const double> xs);
double sample_variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// q-th percentile (q in [0,100]) with linear interpolation; xs need not be
/// sorted. Throws std::invalid_argument on empty input.
double percentile(std::vector<double> xs, double q);

/// Natural log of the gamma function (Lanczos approximation).
double log_gamma(double x);

/// Regularised incomplete beta function I_x(a, b), computed with the Lentz
/// continued-fraction expansion. Domain: a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// CDF of the Student-t distribution with `df` degrees of freedom.
double student_t_cdf(double t, double df);

/// Result of a t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  ///< two-tailed
  double mean_difference = 0.0;

  /// True iff p_value < alpha.
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Two-tailed paired t-test (H0: mean difference is 0). The spans must have
/// equal, >= 2, length. This is the test of Section 6.4.
TTestResult paired_t_test(std::span<const double> a, std::span<const double> b);

/// Two-tailed Welch (unequal variance) two-sample t-test.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Two-proportion z-test on clicks/impressions pairs (secondary CTR check).
struct ProportionTestResult {
  double z_statistic = 0.0;
  double p_value = 1.0;  ///< two-tailed
  double p1 = 0.0;
  double p2 = 0.0;
};
ProportionTestResult two_proportion_z_test(std::size_t successes1,
                                           std::size_t trials1,
                                           std::size_t successes2,
                                           std::size_t trials2);

/// One point of an empirical CCDF: fraction of samples with value >= x.
struct CcdfPoint {
  double x = 0.0;
  double fraction = 0.0;  ///< in [0, 1]
};

/// Empirical CCDF (survival function) evaluated at every distinct sample
/// value, ascending in x. fraction(x) = |{i : xs[i] >= x}| / n, so the first
/// point always has fraction 1.
std::vector<CcdfPoint> ccdf(std::vector<double> xs);

/// Value x such that at least `fraction` of samples are >= x (reads a CCDF
/// like "75% of the users visit at least 217 hostnames").
double ccdf_value_at_fraction(const std::vector<CcdfPoint>& curve,
                              double fraction);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Normal CDF.
double normal_cdf(double z);

}  // namespace netobs::util
