#include "net/dns.hpp"

#include "util/string_util.hpp"

namespace netobs::net {

std::vector<std::uint8_t> encode_dns_name(const std::string& name) {
  if (!util::is_valid_hostname(name)) {
    throw std::invalid_argument("encode_dns_name: invalid hostname '" + name +
                                "'");
  }
  std::vector<std::uint8_t> out;
  for (const auto& label : util::split(name, '.')) {
    out.push_back(static_cast<std::uint8_t>(label.size()));
    out.insert(out.end(), label.begin(), label.end());
  }
  out.push_back(0);
  return out;
}

std::vector<std::uint8_t> build_dns_query(const DnsMessage& msg) {
  ByteWriter w;
  w.put_u16(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  if (msg.recursion_desired) flags |= 0x0100;
  w.put_u16(flags);
  w.put_u16(static_cast<std::uint16_t>(msg.questions.size()));  // QDCOUNT
  w.put_u16(0);                                                 // ANCOUNT
  w.put_u16(0);                                                 // NSCOUNT
  w.put_u16(0);                                                 // ARCOUNT
  for (const auto& q : msg.questions) {
    auto encoded = encode_dns_name(util::to_lower(q.qname));
    w.put_bytes(encoded);
    w.put_u16(static_cast<std::uint16_t>(q.qtype));
    w.put_u16(q.qclass);
  }
  return w.take();
}

namespace {

/// Decodes a possibly-compressed name starting at `pos` in `datagram`.
/// Returns the name and advances `pos` past the in-place representation.
std::string decode_dns_name(std::span<const std::uint8_t> datagram,
                            std::size_t& pos) {
  std::string name;
  std::size_t p = pos;
  bool jumped = false;
  std::size_t jumps = 0;
  for (;;) {
    if (p >= datagram.size()) throw ParseError("DNS name: truncated");
    std::uint8_t len = datagram[p];
    if ((len & 0xC0) == 0xC0) {
      // Compression pointer.
      if (p + 1 >= datagram.size()) throw ParseError("DNS name: bad pointer");
      std::size_t target = (static_cast<std::size_t>(len & 0x3F) << 8) |
                           datagram[p + 1];
      if (!jumped) pos = p + 2;
      if (target >= p) throw ParseError("DNS name: forward pointer");
      if (++jumps > 32) throw ParseError("DNS name: pointer loop");
      p = target;
      jumped = true;
      continue;
    }
    if (len == 0) {
      if (!jumped) pos = p + 1;
      break;
    }
    if (len > 63) throw ParseError("DNS name: label too long");
    if (p + 1 + len > datagram.size()) throw ParseError("DNS name: truncated");
    if (!name.empty()) name += '.';
    name.append(reinterpret_cast<const char*>(&datagram[p + 1]), len);
    if (name.size() > 253) throw ParseError("DNS name: name too long");
    p += 1 + static_cast<std::size_t>(len);
  }
  return util::to_lower(name);
}

}  // namespace

DnsMessage parse_dns_message(std::span<const std::uint8_t> datagram) {
  ByteReader r(datagram);
  DnsMessage msg;
  msg.id = r.get_u16();
  std::uint16_t flags = r.get_u16();
  msg.is_response = (flags & 0x8000) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  std::uint16_t qdcount = r.get_u16();
  r.skip(6);  // ANCOUNT, NSCOUNT, ARCOUNT

  std::size_t pos = r.position();
  for (std::uint16_t i = 0; i < qdcount; ++i) {
    DnsQuestion q;
    q.qname = decode_dns_name(datagram, pos);
    if (pos + 4 > datagram.size()) throw ParseError("DNS question: truncated");
    q.qtype = static_cast<DnsType>(
        (static_cast<std::uint16_t>(datagram[pos]) << 8) | datagram[pos + 1]);
    q.qclass = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(datagram[pos + 2]) << 8) |
        datagram[pos + 3]);
    pos += 4;
    msg.questions.push_back(std::move(q));
  }
  return msg;
}

}  // namespace netobs::net
