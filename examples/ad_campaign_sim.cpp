// Miniature version of the paper's full experiment (Section 5): data
// collection, ad harvesting, daily retraining, ad replacement and CTR
// bookkeeping — the same ExperimentRunner the benchmark suite uses, at a
// small, fast scale with a narrated summary.
#include <iostream>

#include "ads/experiment.hpp"
#include "bench/common.hpp"
#include "eval/report.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {800, 3, 99, ""});
  auto world = bench::make_world(cfg);
  std::cout << "== mini ad-campaign experiment (Section 5) ==\n"
            << world.population->size() << " users, "
            << cfg.days << " profiling days, universe of "
            << world.universe->size() << " hostnames\n\n";

  ads::ExperimentParams params;
  params.collection_days = 2;
  params.profiling_days = cfg.days;
  params.seed = cfg.seed;
  params.ad_db_size = 4000;
  params.service.profiler.knn = 50;
  params.service.profiler.aggregation =
      profile::Aggregation::kNormalizedMean;
  params.service.vocab.min_count = 2;
  params.service.vocab.subsample_threshold = 1e-4;
  params.service.sgns.epochs = 15;
  params.replace_prob = 0.35;

  ads::ExperimentRunner runner(*world.universe, *world.population,
                               synth::BrowsingParams(), params);
  auto r = runner.run();

  std::cout << "phase 1 (collection): ad database of " << params.ad_db_size
            << " creatives harvested\n"
            << "phase 2 (profiling):  " << r.connections
            << " connections observed, " << r.filtered_connections
            << " tracker hits filtered, " << r.retrainings
            << " daily retrainings, " << r.reports
            << " extension reports\n"
            << "ad replacement:       " << r.replacements << " of "
            << (r.original.impressions + r.eavesdropper.impressions)
            << " impressions replaced (size-matched)\n\n";

  std::cout << "results:\n"
            << "  eavesdropper ads: " << r.eavesdropper.impressions
            << " impressions, CTR " << eval::format_ctr(r.eavesdropper.ctr())
            << "\n"
            << "  ad-network ads:   " << r.original.impressions
            << " impressions, CTR " << eval::format_ctr(r.original.ctr())
            << "\n"
            << "  random control:   CTR "
            << eval::format_ctr(r.random_control.ctr()) << "\n"
            << "  paired t-test (n=" << r.paired_users << "): p = "
            << util::format("%.4f", r.paired_ttest.p_value) << " -> "
            << (r.paired_ttest.significant()
                    ? "arms differ"
                    : "no significant difference between arms")
            << "\n\n"
            << "Interpretation (paper, Section 6.4): if CTR proxies profile\n"
               "quality, a network observer's profiles are as good as the\n"
               "ad ecosystem's — despite seeing only TLS hostnames.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
