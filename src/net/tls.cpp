#include "net/tls.hpp"

#include <cctype>

#include "util/string_util.hpp"

namespace netobs::net {

namespace {

constexpr std::uint8_t kSniTypeHostName = 0;

void append_sni_extension(ByteWriter& w, const std::string& host) {
  w.put_u16(ExtensionType::kServerName);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(2);
  w.put_u8(kSniTypeHostName);
  auto name_len = w.begin_length(2);
  w.put_bytes(host);
  w.patch_length(name_len);
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void append_alpn_extension(ByteWriter& w,
                           const std::vector<std::string>& protocols) {
  w.put_u16(ExtensionType::kAlpn);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(2);
  for (const auto& p : protocols) {
    auto name_len = w.begin_length(1);
    w.put_bytes(p);
    w.patch_length(name_len);
  }
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void append_supported_versions(ByteWriter& w) {
  w.put_u16(ExtensionType::kSupportedVersions);
  auto ext_len = w.begin_length(2);
  auto list_len = w.begin_length(1);
  w.put_u16(0x0304);  // TLS 1.3
  w.put_u16(0x0303);  // TLS 1.2
  w.patch_length(list_len);
  w.patch_length(ext_len);
}

void parse_sni_body(std::span<const std::uint8_t> body, ClientHello& out) {
  ByteReader r(body);
  std::uint16_t list_len = r.get_u16();
  ByteReader list = r.sub_reader(list_len);
  while (!list.empty()) {
    std::uint8_t name_type = list.get_u8();
    std::uint16_t name_len = list.get_u16();
    std::string name = list.get_string(name_len);
    if (name_type == kSniTypeHostName && !out.sni) {
      out.sni = util::to_lower(name);
    }
  }
}

void parse_alpn_body(std::span<const std::uint8_t> body, ClientHello& out) {
  ByteReader r(body);
  std::uint16_t list_len = r.get_u16();
  ByteReader list = r.sub_reader(list_len);
  while (!list.empty()) {
    std::uint8_t len = list.get_u8();
    out.alpn.push_back(list.get_string(len));
  }
}

ClientHello parse_client_hello_body(ByteReader& hs) {
  ClientHello out;
  out.legacy_version = hs.get_u16();
  auto rnd = hs.get_bytes(32);
  std::copy(rnd.begin(), rnd.end(), out.random.begin());

  std::uint8_t sid_len = hs.get_u8();
  if (sid_len > 32) throw ParseError("ClientHello: session_id too long");
  auto sid = hs.get_bytes(sid_len);
  out.session_id.assign(sid.begin(), sid.end());

  std::uint16_t cs_len = hs.get_u16();
  if (cs_len % 2 != 0) throw ParseError("ClientHello: odd cipher_suites len");
  ByteReader cs = hs.sub_reader(cs_len);
  while (!cs.empty()) out.cipher_suites.push_back(cs.get_u16());
  if (out.cipher_suites.empty()) {
    throw ParseError("ClientHello: empty cipher_suites");
  }

  std::uint8_t comp_len = hs.get_u8();
  auto comp = hs.get_bytes(comp_len);
  out.compression_methods.assign(comp.begin(), comp.end());
  if (out.compression_methods.empty()) {
    throw ParseError("ClientHello: empty compression_methods");
  }

  if (hs.empty()) return out;  // extensions are optional pre-1.3

  std::uint16_t ext_total = hs.get_u16();
  ByteReader exts = hs.sub_reader(ext_total);
  while (!exts.empty()) {
    Extension e;
    e.type = exts.get_u16();
    std::uint16_t len = exts.get_u16();
    auto body = exts.get_bytes(len);
    e.body.assign(body.begin(), body.end());
    if (e.type == ExtensionType::kServerName) {
      parse_sni_body(e.body, out);
    } else if (e.type == ExtensionType::kAlpn) {
      parse_alpn_body(e.body, out);
    }
    out.extensions.push_back(std::move(e));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> build_client_hello_handshake(
    const ClientHelloSpec& spec) {
  if (!spec.sni.empty() && !util::is_valid_hostname(spec.sni)) {
    throw std::invalid_argument("build_client_hello_handshake: invalid SNI '" +
                                spec.sni + "'");
  }
  ByteWriter w;
  // Handshake header.
  w.put_u8(static_cast<std::uint8_t>(HandshakeType::kClientHello));
  auto hs_len = w.begin_length(3);

  // ClientHello body.
  w.put_u16(0x0303);
  w.put_bytes(std::span<const std::uint8_t>(spec.random));
  auto sid_len = w.begin_length(1);
  w.put_bytes(std::span<const std::uint8_t>(spec.session_id));
  w.patch_length(sid_len);
  auto cs_len = w.begin_length(2);
  for (std::uint16_t suite : spec.cipher_suites) w.put_u16(suite);
  w.patch_length(cs_len);
  w.put_u8(1);  // compression_methods length
  w.put_u8(0);  // null compression

  auto ext_len = w.begin_length(2);
  if (!spec.sni.empty()) append_sni_extension(w, spec.sni);
  if (!spec.alpn.empty()) append_alpn_extension(w, spec.alpn);
  if (spec.offer_tls13) append_supported_versions(w);
  w.patch_length(ext_len);
  w.patch_length(hs_len);
  return w.take();
}

std::vector<std::uint8_t> build_client_hello_record(
    const ClientHelloSpec& spec) {
  auto handshake = build_client_hello_handshake(spec);
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(ContentType::kHandshake));
  w.put_u16(0x0301);  // record legacy_version, as sent by real clients
  auto record_len = w.begin_length(2);
  w.put_bytes(handshake);
  w.patch_length(record_len);
  return w.take();
}

ClientHello parse_client_hello_handshake(
    std::span<const std::uint8_t> handshake) {
  ByteReader r(handshake);
  auto msg_type = r.get_u8();
  if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
    throw ParseError("not a ClientHello (handshake type " +
                     std::to_string(msg_type) + ")");
  }
  std::uint32_t hs_len = r.get_u24();
  ByteReader hs = r.sub_reader(hs_len);
  return parse_client_hello_body(hs);
}

ClientHello parse_client_hello_record(std::span<const std::uint8_t> record) {
  ByteReader r(record);
  auto content_type = r.get_u8();
  if (content_type != static_cast<std::uint8_t>(ContentType::kHandshake)) {
    throw ParseError("not a handshake record (type " +
                     std::to_string(content_type) + ")");
  }
  std::uint16_t version = r.get_u16();
  if ((version >> 8) != 0x03) throw ParseError("bad record version");
  std::uint16_t record_len = r.get_u16();
  ByteReader body = r.sub_reader(record_len);

  auto msg_type = body.get_u8();
  if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
    throw ParseError("not a ClientHello (handshake type " +
                     std::to_string(msg_type) + ")");
  }
  std::uint32_t hs_len = body.get_u24();
  ByteReader hs = body.sub_reader(hs_len);
  return parse_client_hello_body(hs);
}

std::size_t first_record_span(std::span<const std::uint8_t> stream_prefix) {
  if (stream_prefix.size() < 5) return 0;
  std::size_t body = (static_cast<std::size_t>(stream_prefix[3]) << 8) |
                     stream_prefix[4];
  return 5 + body;
}

namespace {

// Walks the ClientHello structure in place without materialising any of it.
// The sequence of reads and checks mirrors parse_client_hello_record /
// parse_client_hello_body statement for statement so the two paths agree on
// every malformed input (the robustness tests fuzz exactly this property).
// Returns the first host_name entry of the first server_name extension as a
// view into `record`, or nullopt for a well-formed hello without SNI.
// Throws ParseError wherever the full parser would.
std::optional<std::string_view> scan_client_hello_sni(
    std::span<const std::uint8_t> record) {
  ByteReader r(record);
  auto content_type = r.get_u8();
  if (content_type != static_cast<std::uint8_t>(ContentType::kHandshake)) {
    throw ParseError("not a handshake record");
  }
  std::uint16_t version = r.get_u16();
  if ((version >> 8) != 0x03) throw ParseError("bad record version");
  std::uint16_t record_len = r.get_u16();
  ByteReader body = r.sub_reader(record_len);

  auto msg_type = body.get_u8();
  if (msg_type != static_cast<std::uint8_t>(HandshakeType::kClientHello)) {
    throw ParseError("not a ClientHello");
  }
  std::uint32_t hs_len = body.get_u24();
  ByteReader hs = body.sub_reader(hs_len);

  hs.get_u16();      // legacy_version
  hs.get_bytes(32);  // random

  std::uint8_t sid_len = hs.get_u8();
  if (sid_len > 32) throw ParseError("ClientHello: session_id too long");
  hs.get_bytes(sid_len);

  std::uint16_t cs_len = hs.get_u16();
  if (cs_len % 2 != 0) throw ParseError("ClientHello: odd cipher_suites len");
  hs.get_bytes(cs_len);
  if (cs_len == 0) throw ParseError("ClientHello: empty cipher_suites");

  std::uint8_t comp_len = hs.get_u8();
  hs.get_bytes(comp_len);
  if (comp_len == 0) throw ParseError("ClientHello: empty compression_methods");

  std::optional<std::string_view> sni;
  if (hs.empty()) return sni;  // extensions are optional pre-1.3

  std::uint16_t ext_total = hs.get_u16();
  ByteReader exts = hs.sub_reader(ext_total);
  while (!exts.empty()) {
    std::uint16_t type = exts.get_u16();
    std::uint16_t len = exts.get_u16();
    auto ext_body = exts.get_bytes(len);
    if (type == ExtensionType::kServerName) {
      ByteReader sr(ext_body);
      std::uint16_t list_len = sr.get_u16();
      ByteReader list = sr.sub_reader(list_len);
      while (!list.empty()) {
        std::uint8_t name_type = list.get_u8();
        std::uint16_t name_len = list.get_u16();
        auto name = list.get_bytes(name_len);
        if (name_type == kSniTypeHostName && !sni) {
          sni = std::string_view(reinterpret_cast<const char*>(name.data()),
                                 name.size());
        }
      }
    } else if (type == ExtensionType::kAlpn) {
      // Validation only (the full parser throws on truncated ALPN bodies);
      // nothing is kept.
      ByteReader ar(ext_body);
      std::uint16_t list_len = ar.get_u16();
      ByteReader list = ar.sub_reader(list_len);
      while (!list.empty()) {
        std::uint8_t len8 = list.get_u8();
        list.get_bytes(len8);
      }
    }
  }
  return sni;
}

}  // namespace

SniViewResult extract_sni_view(std::span<const std::uint8_t> stream_prefix,
                               std::string& scratch) {
  SniViewResult result;
  if (stream_prefix.empty()) {
    result.status = SniStatus::kNeedMoreData;
    return result;
  }
  if (stream_prefix[0] !=
      static_cast<std::uint8_t>(ContentType::kHandshake)) {
    result.status = SniStatus::kNotTls;
    return result;
  }
  if (stream_prefix.size() >= 2 && stream_prefix[1] != 0x03) {
    result.status = SniStatus::kNotTls;
    return result;
  }
  std::size_t span = first_record_span(stream_prefix);
  if (span == 0 || stream_prefix.size() < span) {
    result.status = SniStatus::kNeedMoreData;
    return result;
  }
  try {
    std::optional<std::string_view> sni =
        scan_client_hello_sni(stream_prefix.subspan(0, span));
    if (!sni) {
      result.status = SniStatus::kNoSni;
      return result;
    }
    // Same lowercasing as util::to_lower, but only copying into the caller's
    // scratch when a byte actually changes — real-world SNIs are lowercase
    // already, so the steady state is zero-copy.
    bool needs_lower = false;
    for (unsigned char c : *sni) {
      if (static_cast<char>(std::tolower(c)) != static_cast<char>(c)) {
        needs_lower = true;
        break;
      }
    }
    if (needs_lower) {
      scratch.assign(*sni);
      for (char& c : scratch) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      result.sni = scratch;
    } else {
      result.sni = *sni;
    }
    result.status = SniStatus::kFound;
  } catch (const ParseError&) {
    result.status = SniStatus::kNotTls;
  }
  return result;
}

SniResult extract_sni(std::span<const std::uint8_t> stream_prefix) {
  std::string scratch;
  SniViewResult view = extract_sni_view(stream_prefix, scratch);
  SniResult result;
  result.status = view.status;
  if (view.status == SniStatus::kFound) result.sni.assign(view.sni);
  return result;
}

}  // namespace netobs::net
