// Exporters for the metrics registry: Prometheus text exposition format
// (https://prometheus.io/docs/instrumenting/exposition_formats/) and JSON
// (pretty or compact), writable to any std::ostream or straight to a file.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace netobs::obs {

/// Prometheus text format: one `# HELP` / `# TYPE` pair per metric family,
/// histograms expanded to `_bucket{le=...}` / `_sum` / `_count` series with
/// cumulative bucket counts.
void write_prometheus(std::ostream& os, const MetricsRegistry& registry);
void write_prometheus(std::ostream& os);  ///< global registry

enum class JsonStyle { kPretty, kCompact };

/// JSON document: {"counters":[{name,labels,value}...], "gauges":[...],
/// "histograms":[{name,labels,count,sum,buckets:[{le,count}...]}...]} with
/// cumulative bucket counts (Prometheus semantics) and the +Inf bound
/// rendered as the string "+Inf".
void write_json(std::ostream& os, const MetricsRegistry& registry,
                JsonStyle style = JsonStyle::kPretty);
void write_json(std::ostream& os, JsonStyle style = JsonStyle::kPretty);

/// Dumps the registry to `path`; format chosen by extension: ".json" gets
/// pretty JSON, anything else (".prom", ".txt", ...) the Prometheus text
/// format. Throws std::runtime_error when the file cannot be written.
void dump_metrics_file(const std::string& path,
                       const MetricsRegistry& registry);
void dump_metrics_file(const std::string& path);  ///< global registry

class TraceBuffer;  // obs/trace.hpp

/// Renders a TraceBuffer snapshot as an indented span tree (roots ordered
/// by start time, children nested under their parent). Spans whose parent
/// was evicted from the ring print as roots, so partial traces stay
/// readable. Shared by /tracez and --trace-out.
void write_trace_tree(std::ostream& os, const TraceBuffer& buffer);

/// Writes the span tree to `path`; throws std::runtime_error when the file
/// cannot be written.
void dump_trace_file(const std::string& path, const TraceBuffer& buffer);

}  // namespace netobs::obs
