// Build and process metadata for the telemetry plane.
//
// One struct answering "what binary is this" — git describe, build type,
// sanitizer, compiler, and the *runtime-detected* SIMD tier — plus the
// process uptime. Rendered three ways: key/value lines on /statusz, a
// "build" object in the JSON metrics export, and the Prometheus idiom
// `netobs_build_info{git_describe=...,...} 1` on /metrics, so a scraper can
// join any series against the exact binary that produced it.
//
// The git/build/sanitizer strings are burned in at configure time through
// compile definitions (see src/CMakeLists.txt); binaries built outside
// CMake fall back to "unknown".
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace netobs::obs {

struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty` at configure
  std::string build_type;    ///< CMAKE_BUILD_TYPE
  std::string sanitizer;     ///< NETOBS_SANITIZE value or "none"
  std::string compiler;      ///< compiler id + version (__VERSION__)
  std::string simd_tier;     ///< runtime tier (scalar / sse2 / avx2)
};

/// The process-wide build info (computed once, then cached).
const BuildInfo& build_info();

/// Seconds since this process loaded (static-initialisation epoch).
double process_uptime_seconds();

/// The build info plus uptime as /statusz key/value lines.
std::vector<std::pair<std::string, std::string>> build_info_rows();

}  // namespace netobs::obs
