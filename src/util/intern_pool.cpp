#include "util/intern_pool.hpp"

#include <stdexcept>
#include <utility>

#include "util/mem_estimate.hpp"
#include "util/rng.hpp"

namespace netobs::util {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t hash_of(std::string_view s) {
  // FNV-1a, then a 64-bit finaliser — short hostname keys, no seeds needed.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return mix64(h);
}

}  // namespace

InternPool::InternPool(std::size_t shards)
    : shard_mask_(round_up_pow2(shards == 0 ? 1 : shards) - 1),
      shards_(new Shard[shard_mask_ + 1]),
      chunks_(new std::atomic<Chunk*>[kMaxChunks]) {
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

InternPool::~InternPool() {
  for (std::size_t i = 0; i < kMaxChunks; ++i) {
    delete chunks_[i].load(std::memory_order_relaxed);
  }
}

InternPool::Shard& InternPool::shard_of(std::string_view s) const {
  // Use the high hash bits for the shard so the map's internal bucketing
  // (low bits) stays independent of the shard choice.
  return shards_[(hash_of(s) >> 56) & shard_mask_];
}

void InternPool::publish(Id id, const std::string* name) {
  std::size_t chunk_index = id >> kChunkBits;
  if (chunk_index >= kMaxChunks) {
    throw std::length_error("InternPool: id space exhausted");
  }
  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    std::lock_guard<std::mutex> lock(chunk_alloc_mutex_);
    chunk = chunks_[chunk_index].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      chunk = new Chunk();
      chunks_[chunk_index].store(chunk, std::memory_order_release);
      bytes_.fetch_add(sizeof(Chunk), std::memory_order_relaxed);
    }
  }
  chunk->slots[id & (kChunkSize - 1)].store(name, std::memory_order_release);
}

InternPool::Id InternPool::intern(std::string_view s) {
  Shard& shard = shard_of(s);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(s);
  if (it != shard.index.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  shard.names.emplace_back(s);
  const std::string& stored = shard.names.back();
  Id id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  publish(id, &stored);
  shard.index.emplace(std::string_view(stored), id);
  // Full per-string footprint: the deque slot holding the std::string, any
  // heap the string spilled past its SSO buffer, and the index map node —
  // plus whatever the bucket array grew by if this insert rehashed (tracked
  // as a delta under the shard mutex; the array only ever grows).
  std::size_t node = malloc_rounded(
      sizeof(std::pair<const std::string_view, Id>) + 2 * sizeof(void*));
  std::size_t buckets = shard.index.bucket_count() * sizeof(void*);
  bytes_.fetch_add(sizeof(std::string) + string_heap_bytes(stored) + node +
                       (buckets - shard.bucket_bytes),
                   std::memory_order_relaxed);
  shard.bucket_bytes = buckets;
  return id;
}

std::optional<InternPool::Id> InternPool::find(std::string_view s) const {
  Shard& shard = shard_of(s);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(s);
  if (it == shard.index.end()) return std::nullopt;
  return it->second;
}

const std::string& InternPool::name(Id id) const {
  std::size_t chunk_index = id >> kChunkBits;
  const Chunk* chunk = chunk_index < kMaxChunks
                           ? chunks_[chunk_index].load(std::memory_order_acquire)
                           : nullptr;
  const std::string* s =
      chunk != nullptr
          ? chunk->slots[id & (kChunkSize - 1)].load(std::memory_order_acquire)
          : nullptr;
  if (s == nullptr) {
    throw std::out_of_range("InternPool::name: unknown id");
  }
  return *s;
}

}  // namespace netobs::util
