#include "eval/diversity.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace netobs::eval {

double DiversityResult::items_at_user_fraction(std::size_t core_index,
                                               double fraction) const {
  const auto& curve = core_index == static_cast<std::size_t>(-1) ||
                              core_index >= cores.size()
                          ? all_ccdf
                          : cores[core_index].outside_ccdf;
  return util::ccdf_value_at_fraction(curve, fraction);
}

DiversityResult analyze_diversity(
    const std::vector<std::vector<std::uint64_t>>& per_user_items,
    std::vector<double> thresholds) {
  if (per_user_items.empty()) {
    throw std::invalid_argument("analyze_diversity: no users");
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());

  // Deduplicate per user and count, per item, how many users touched it.
  std::vector<std::unordered_set<std::uint64_t>> user_sets;
  user_sets.reserve(per_user_items.size());
  std::unordered_map<std::uint64_t, std::size_t> touch_count;
  for (const auto& items : per_user_items) {
    std::unordered_set<std::uint64_t> set(items.begin(), items.end());
    for (std::uint64_t item : set) ++touch_count[item];
    user_sets.push_back(std::move(set));
  }
  auto users = static_cast<double>(user_sets.size());

  DiversityResult result;
  result.distinct_items = touch_count.size();

  std::vector<double> totals;
  totals.reserve(user_sets.size());
  for (const auto& set : user_sets) {
    totals.push_back(static_cast<double>(set.size()));
  }
  result.all_ccdf = util::ccdf(totals);

  for (double threshold : thresholds) {
    CoreResult core;
    core.threshold = threshold;
    std::unordered_set<std::uint64_t> core_set;
    for (const auto& [item, count] : touch_count) {
      if (static_cast<double>(count) / users >= threshold) {
        core_set.insert(item);
        core.members.push_back(item);
      }
    }
    std::sort(core.members.begin(), core.members.end());

    std::vector<double> outside;
    outside.reserve(user_sets.size());
    std::size_t zero_outside = 0;
    for (const auto& set : user_sets) {
      std::size_t n = 0;
      for (std::uint64_t item : set) {
        if (!core_set.contains(item)) ++n;
      }
      if (n == 0) ++zero_outside;
      outside.push_back(static_cast<double>(n));
    }
    core.outside_ccdf = util::ccdf(outside);
    core.users_with_zero_outside = static_cast<double>(zero_outside) / users;
    result.cores.push_back(std::move(core));
  }
  return result;
}

}  // namespace netobs::eval
