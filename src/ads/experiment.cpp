#include "ads/experiment.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netobs::ads {

namespace {

/// Impression/click tallies per serving arm, Prometheus-labelled so the
/// exported series mirror the Section 6.4 CTR table.
struct ExperimentMetrics {
  obs::Counter& impressions_original;
  obs::Counter& impressions_eavesdropper;
  obs::Counter& impressions_random;
  obs::Counter& clicks_original;
  obs::Counter& clicks_eavesdropper;
  obs::Counter& clicks_random;
  obs::Counter& reports;
  obs::Counter& replacements;

  static ExperimentMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    auto imp = [&reg](const char* arm) -> obs::Counter& {
      return reg.counter("netobs_ads_impressions_total",
                         "Ad impressions by serving arm", {{"arm", arm}});
    };
    auto clk = [&reg](const char* arm) -> obs::Counter& {
      return reg.counter("netobs_ads_clicks_total", "Ad clicks by serving arm",
                         {{"arm", arm}});
    };
    static ExperimentMetrics m{
        imp("original"),
        imp("eavesdropper"),
        imp("random_control"),
        clk("original"),
        clk("eavesdropper"),
        clk("random_control"),
        reg.counter("netobs_ads_reports_total",
                    "Extension reports (profile + ad-list refreshes)"),
        reg.counter("netobs_ads_replacements_total",
                    "Impressions replaced by an eavesdropper ad"),
    };
    return m;
  }
};

/// Dominant top-level topic of a category vector (Figure 6 aggregation).
std::size_t dominant_topic_of_label(const ontology::CategoryVector& label,
                                    const ontology::CategorySpace& space) {
  std::vector<double> per_topic(space.top_level_ids().size(), 0.0);
  // top_level_ids()[k] is the flat id of topic k; map flat ids to topics.
  std::unordered_map<std::size_t, std::size_t> topic_of_flat_top;
  for (std::size_t k = 0; k < space.top_level_ids().size(); ++k) {
    topic_of_flat_top[space.top_level_ids()[k]] = k;
  }
  for (std::size_t f = 0; f < label.size(); ++f) {
    if (label[f] <= 0.0F) continue;
    per_topic[topic_of_flat_top.at(space.top_level_of(f))] +=
        static_cast<double>(label[f]);
  }
  return static_cast<std::size_t>(
      std::max_element(per_topic.begin(), per_topic.end()) -
      per_topic.begin());
}

std::size_t dominant_topic_of_mix(const std::vector<float>& mix) {
  if (mix.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(mix.begin(), mix.end()) - mix.begin());
}

}  // namespace

ExperimentRunner::ExperimentRunner(const synth::HostnameUniverse& universe,
                                   const synth::UserPopulation& population,
                                   synth::BrowsingParams browsing,
                                   ExperimentParams params)
    : universe_(&universe),
      population_(&population),
      browsing_(browsing),
      params_(params) {}

ExperimentResult ExperimentRunner::run() {
  auto& metrics = ExperimentMetrics::get();
  obs::Span run_span("ads.experiment");
  const auto& space = universe_->category_space();
  std::size_t topic_count = universe_->topic_count();

  // --- Setup: ontology view, blocklists (via the hosts-file path), ad DB.
  ontology::HostLabeler labeler = universe_->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("synthetic-trackers",
                           universe_->tracker_hosts_file());
  AdDatabase ad_db = AdDatabase::collect(*universe_, labeler,
                                         params_.ad_db_size, params_.seed);
  EavesdropperSelector selector(ad_db, labeler, params_.selector);
  AdNetwork adnet(ad_db, *universe_, params_.adnet);
  ClickModel clicks(params_.click);

  profile::ProfilingService service(labeler, &blocklist, params_.service);

  util::Pcg32 rng(params_.seed, 0xE0);
  util::Pcg32 control_rng(params_.seed, 0xC7);
  util::Pcg32 click_rng(params_.seed, 0xC11C);

  synth::BrowsingSimulator simulator(*universe_, *population_, browsing_);

  ExperimentResult result;
  result.topics.visited.assign(
      static_cast<std::size_t>(params_.profiling_days),
      std::vector<double>(topic_count, 0.0));
  result.topics.original_ads = result.topics.visited;
  result.topics.eavesdropper_ads = result.topics.visited;

  // --- Data-collection phase: events only (ads are being harvested).
  auto collection = simulator.simulate(0, params_.collection_days);
  service.ingest(collection.events);
  if (service.retrain(params_.collection_days - 1)) ++result.retrainings;

  // --- Profiling phase.
  auto trace = simulator.simulate(params_.collection_days,
                                  params_.profiling_days);
  std::unordered_set<std::string> unique_hosts;
  for (const auto& e : trace.events) unique_hosts.insert(e.hostname);
  result.unique_hostnames = unique_hosts.size();
  result.connections = trace.events.size();

  struct UserExpState {
    util::Timestamp last_report = -1;
    std::vector<AdId> ad_list;
    ArmStats original;
    ArmStats eavesdropper;
  };
  std::unordered_map<std::uint32_t, UserExpState> user_state;

  std::int64_t current_day = params_.collection_days - 1;
  auto advance_day_to = [&](util::Timestamp t) {
    std::int64_t day = util::day_index(t);
    while (current_day < day) {
      ++current_day;
      if (service.retrain(current_day - 1)) ++result.retrainings;
    }
  };

  std::size_t next_event = 0;
  std::size_t filtered_before = service.filtered_events();

  for (const auto& view : trace.page_views) {
    // Feed all observer events up to this page view.
    while (next_event < trace.events.size() &&
           trace.events[next_event].timestamp <= view.timestamp) {
      const auto& e = trace.events[next_event];
      advance_day_to(e.timestamp);
      service.ingest(e);
      // Figure 6a tally: topic of each labeled connection.
      if (const auto* label = labeler.label_of(e.hostname)) {
        auto day = static_cast<std::size_t>(util::day_index(e.timestamp) -
                                            params_.collection_days);
        if (day < result.topics.visited.size()) {
          result.topics.visited[day][dominant_topic_of_label(*label, space)] +=
              1.0;
        }
      }
      ++next_event;
    }
    advance_day_to(view.timestamp);

    const synth::User& user = population_->user(view.user_id);
    auto& state = user_state[view.user_id];
    auto day = static_cast<std::size_t>(util::day_index(view.timestamp) -
                                        params_.collection_days);

    // The ad-network's tracker sees this page with its coverage probability.
    if (rng.bernoulli(params_.adnet.tracker_coverage)) {
      adnet.observe_page(view.user_id, view.topic);
    }

    // Extension report every report_interval (Section 5.2).
    if (service.has_model() &&
        (state.last_report < 0 ||
         view.timestamp - state.last_report >= params_.report_interval)) {
      state.last_report = view.timestamp;
      ++result.reports;
      metrics.reports.inc();
      auto profile = service.profile_user(view.user_id, view.timestamp);
      if (profile.empty()) {
        ++result.empty_profiles;
        state.ad_list.clear();
      } else {
        state.ad_list = selector.select(profile.categories);
      }
    }

    // Fill the page's ad slots.
    for (const auto& slot : view.slots) {
      AdId original_ad = adnet.serve(view.user_id, view.topic, slot);

      // Replacement: only if the eavesdropper list has a size-compatible ad.
      AdId replacement = static_cast<AdId>(-1);
      for (AdId candidate : state.ad_list) {
        if (ad_db.ad(candidate).size == slot) {
          replacement = candidate;
          break;
        }
      }
      bool replaced = replacement != static_cast<AdId>(-1) &&
                      rng.bernoulli(params_.replace_prob);

      const Ad& shown =
          replaced ? ad_db.ad(replacement) : ad_db.ad(original_ad);
      bool clicked = clicks.click(user, shown, click_rng);
      if (replaced) {
        ++result.replacements;
        metrics.replacements.inc();
        ++state.eavesdropper.impressions;
        metrics.impressions_eavesdropper.inc();
        state.eavesdropper.clicks += clicked ? 1 : 0;
        if (clicked) metrics.clicks_eavesdropper.inc();
        if (day < result.topics.eavesdropper_ads.size()) {
          result.topics.eavesdropper_ads
              [day][dominant_topic_of_mix(shown.topic_mix)] += 1.0;
        }
      } else {
        ++state.original.impressions;
        metrics.impressions_original.inc();
        state.original.clicks += clicked ? 1 : 0;
        if (clicked) metrics.clicks_original.inc();
        if (day < result.topics.original_ads.size()) {
          result.topics.original_ads
              [day][dominant_topic_of_mix(shown.topic_mix)] += 1.0;
        }
      }

      // Counterfactual random-ad control on the same impression.
      const Ad& random_ad = ad_db.ad(static_cast<AdId>(
          control_rng.next_below(static_cast<std::uint32_t>(ad_db.size()))));
      ++result.random_control.impressions;
      metrics.impressions_random.inc();
      bool random_clicked = clicks.click(user, random_ad, control_rng);
      result.random_control.clicks += random_clicked ? 1 : 0;
      if (random_clicked) metrics.clicks_random.inc();
    }
  }
  // Drain remaining events (after the last page view).
  while (next_event < trace.events.size()) {
    advance_day_to(trace.events[next_event].timestamp);
    service.ingest(trace.events[next_event]);
    ++next_event;
  }
  result.filtered_connections = service.filtered_events() - filtered_before;

  // --- Aggregate.
  for (const auto& [user_id, state] : user_state) {
    result.original.impressions += state.original.impressions;
    result.original.clicks += state.original.clicks;
    result.eavesdropper.impressions += state.eavesdropper.impressions;
    result.eavesdropper.clicks += state.eavesdropper.clicks;
  }
  // Paired per-user CTRs: deterministic user order.
  std::vector<std::uint32_t> ids;
  ids.reserve(user_state.size());
  for (const auto& [user_id, state] : user_state) ids.push_back(user_id);
  std::sort(ids.begin(), ids.end());
  for (std::uint32_t id : ids) {
    const auto& state = user_state[id];
    if (state.original.impressions > 0 &&
        state.eavesdropper.impressions > 0) {
      result.user_ctr_original.push_back(state.original.ctr());
      result.user_ctr_eavesdropper.push_back(state.eavesdropper.ctr());
    }
  }
  result.paired_users = result.user_ctr_original.size();
  if (result.paired_users >= 2) {
    result.paired_ttest = util::paired_t_test(result.user_ctr_eavesdropper,
                                              result.user_ctr_original);
  }
  if (result.original.impressions > 0 &&
      result.eavesdropper.impressions > 0) {
    result.proportion_test = util::two_proportion_z_test(
        result.eavesdropper.clicks, result.eavesdropper.impressions,
        result.original.clicks, result.original.impressions);
  }
  return result;
}

}  // namespace netobs::ads
