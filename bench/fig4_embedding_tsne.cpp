// Figures 4 & 5 — qualitative embedding structure, quantified.
//
// Paper: embeddings of one day of traffic, collapsed to second-level
// domains (~3K points from 470K hostnames), projected with t-SNE, show
// tight topical clusters (porn / sports-streaming / travel) even for hosts
// that were never co-requested, and unlabeled API/CDN endpoints land next
// to their owner sites.
//
// This bench (a) trains SGNS on one simulated day, (b) scores neighbour
// topic purity and satellite attachment against ground truth, (c) runs
// exact t-SNE on the most frequent second-level domains and reports 2D
// cluster separation (mean same-topic vs cross-topic distance).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <unordered_map>

#include "bench/common.hpp"
#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "eval/purity.hpp"
#include "tsne/bhtsne.hpp"
#include "tsne/tsne.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 1, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout,
                     "Figures 4-5: hostname embeddings + t-SNE clusters");
  bench::print_scale_note(cfg, world);

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);

  // One sequence per user-day, SLD-collapsed as in Section 6.2.
  std::unordered_map<std::uint64_t, embedding::Sequence> sequences;
  for (const auto& e : trace.events) {
    std::uint64_t key = (static_cast<std::uint64_t>(e.user_id) << 16) |
                        static_cast<std::uint64_t>(
                            util::day_index(e.timestamp));
    sequences[key].push_back(util::second_level_domain(e.hostname));
  }
  std::vector<embedding::Sequence> corpus;
  corpus.reserve(sequences.size());
  for (auto& [key, seq] : sequences) corpus.push_back(std::move(seq));
  std::sort(corpus.begin(), corpus.end());

  embedding::SgnsParams params;  // paper defaults: d=100, m=2, K=5
  params.seed = cfg.seed;
  embedding::SgnsTrainer trainer(params);
  auto model = trainer.fit(corpus);
  std::cout << "SGNS: " << model.size() << " SLD tokens, d=" << model.dim()
            << ", epoch losses:";
  for (double l : trainer.epoch_losses()) std::cout << util::format(" %.3f", l);
  std::cout << "\n";

  embedding::CosineKnnIndex index(model);

  // Ground-truth topic of an SLD: the dominant topic of any site with that
  // SLD (satellites excluded — they have no ground truth).
  std::unordered_map<std::string, std::size_t> sld_topic;
  std::unordered_map<std::string, std::string> sld_owner;
  for (const auto& h : world.universe->hosts()) {
    std::string sld = util::second_level_domain(h.name);
    if (!h.topic_mix.empty() && h.kind != synth::HostKind::kUniversal) {
      sld_topic[sld] = static_cast<std::size_t>(
          std::max_element(h.topic_mix.begin(), h.topic_mix.end()) -
          h.topic_mix.begin());
    }
    if (h.kind == synth::HostKind::kSatellite) {
      sld_owner[sld] = util::second_level_domain(
          world.universe->host(h.owner).name);
    }
  }
  auto topic_of = [&](const std::string& s) -> std::optional<std::size_t> {
    auto it = sld_topic.find(s);
    if (it == sld_topic.end()) return std::nullopt;
    return it->second;
  };
  auto owner_of = [&](const std::string& s) -> std::optional<std::string> {
    auto it = sld_owner.find(s);
    if (it == sld_owner.end()) return std::nullopt;
    return it->second;
  };

  auto purity = eval::neighbor_topic_purity(model, index, topic_of, 10);
  auto attach = eval::satellite_attachment(model, index, owner_of, topic_of);

  util::Table quality({"metric", "measured", "random baseline"});
  quality.add_row({"neighbour topic purity (k=10)",
                   util::format("%.3f", purity.mean_purity),
                   util::format("%.3f", purity.random_baseline)});
  quality.add_row({"satellite nearest-site = owner",
                   util::format("%.3f", attach.owner_top1), "~1/sites"});
  quality.add_row({"satellite nearest-site same topic",
                   util::format("%.3f", attach.same_topic_top1),
                   util::format("%.3f", purity.random_baseline)});
  quality.add_row({"scored hosts / satellites",
                   util::format("%zu / %zu", purity.scored_hosts,
                                attach.scored_satellites),
                   "-"});
  quality.print(std::cout);

  // --- t-SNE over the most frequent SLDs with known topics.
  std::unordered_map<std::string, std::size_t> freq;
  for (const auto& seq : corpus) {
    for (const auto& s : seq) ++freq[s];
  }
  std::vector<std::pair<std::size_t, std::string>> ranked;
  for (const auto& [sld, count] : freq) {
    if (model.id_of(sld) && topic_of(sld)) ranked.push_back({count, sld});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::size_t n = std::min<std::size_t>(500, ranked.size());
  ranked.resize(n);

  std::vector<float> rows;
  std::vector<std::size_t> topics;
  for (const auto& [count, sld] : ranked) {
    auto vec = *model.vector_of(sld);
    rows.insert(rows.end(), vec.begin(), vec.end());
    topics.push_back(*topic_of(sld));
  }
  tsne::TsneParams tp;
  tp.iterations = 300;
  tp.seed = cfg.seed;
  auto projection = tsne::run_tsne(rows, n, model.dim(), tp);

  double intra = 0.0;
  double inter = 0.0;
  std::size_t ni = 0;
  std::size_t nj = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double dx = projection.x(i, 0) - projection.x(j, 0);
      double dy = projection.x(i, 1) - projection.x(j, 1);
      double d = std::sqrt(dx * dx + dy * dy);
      if (topics[i] == topics[j]) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nj;
      }
    }
  }
  util::Table tsne_table({"metric", "value"});
  tsne_table.add_row({"t-SNE points (top SLDs)", std::to_string(n)});
  tsne_table.add_row({"final KL divergence",
                      util::format("%.3f", projection.kl_history.back())});
  tsne_table.add_row({"mean same-topic 2D distance",
                      util::format("%.2f", intra / std::max<std::size_t>(1, ni))});
  tsne_table.add_row({"mean cross-topic 2D distance",
                      util::format("%.2f", inter / std::max<std::size_t>(1, nj))});
  tsne_table.add_row({"separation ratio (cross/same)",
                      util::format("%.2f", (inter / std::max<std::size_t>(1, nj)) /
                                               std::max(1e-9, intra / std::max<std::size_t>(1, ni)))});
  tsne_table.print(std::cout);

  // Barnes-Hut t-SNE scales the same projection to the full SLD vocabulary
  // (the paper's Figure 4 plots ~3K points; exact t-SNE is O(n^2)/iter).
  {
    constexpr std::size_t big_n = 2000;
    // `ranked` was truncated for the exact run; rebuild the top big_n.
    std::vector<std::pair<std::size_t, std::string>> big;
    for (const auto& [sld, count] : freq) {
      if (model.id_of(sld) && topic_of(sld)) big.push_back({count, sld});
    }
    std::sort(big.rbegin(), big.rend());
    if (big.size() > big_n) big.resize(big_n);
    std::vector<float> big_rows;
    std::vector<std::size_t> big_topics;
    for (const auto& [count, sld] : big) {
      auto vec = *model.vector_of(sld);
      big_rows.insert(big_rows.end(), vec.begin(), vec.end());
      big_topics.push_back(*topic_of(sld));
    }
    tsne::BhTsneParams bh;
    bh.iterations = 300;
    bh.seed = cfg.seed;
    auto bh_proj = tsne::run_bhtsne(big_rows, big.size(), model.dim(), bh);

    // Cluster quality in the 2D plane: fraction of each point's 10 nearest
    // projected neighbours sharing its topic (the "visible clusters" of
    // Figure 4), vs the random expectation.
    double purity2d = 0.0;
    std::unordered_map<std::size_t, std::size_t> topic_freq;
    for (std::size_t t : big_topics) ++topic_freq[t];
    double baseline2d = 0.0;
    for (const auto& [t, f] : topic_freq) {
      double share = static_cast<double>(f) / static_cast<double>(big.size());
      baseline2d += share * share;
    }
    std::vector<std::pair<double, std::size_t>> dists;
    for (std::size_t i = 0; i < big.size(); ++i) {
      dists.clear();
      for (std::size_t j = 0; j < big.size(); ++j) {
        if (j == i) continue;
        double dx = bh_proj.x(i, 0) - bh_proj.x(j, 0);
        double dy = bh_proj.x(i, 1) - bh_proj.x(j, 1);
        dists.push_back({dx * dx + dy * dy, j});
      }
      std::partial_sort(dists.begin(), dists.begin() + 10, dists.end());
      std::size_t same = 0;
      for (int k = 0; k < 10; ++k) {
        if (big_topics[dists[static_cast<std::size_t>(k)].second] ==
            big_topics[i]) {
          ++same;
        }
      }
      purity2d += static_cast<double>(same) / 10.0;
    }
    purity2d /= static_cast<double>(big.size());

    util::Table bh_table({"metric (Barnes-Hut, theta=0.5)", "value",
                          "random baseline"});
    bh_table.add_row({"points projected", std::to_string(big.size()), "-"});
    bh_table.add_row({"2D neighbour topic purity (k=10)",
                      util::format("%.3f", purity2d),
                      util::format("%.3f", baseline2d)});
    bh_table.print(std::cout);
  }

  std::cout << "\nshape checks: purity far above the random baseline,\n"
               "satellites attach to their owners' neighbourhoods, and the\n"
               "2D projection separates topics (ratio > 1) — the clusters\n"
               "of Figure 5.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
