// AES-128 (FIPS 197) and AES-128-GCM (NIST SP 800-38D), from scratch.
//
// QUIC v1 protects Initial packets with AES-128-GCM (payload) and raw AES
// block encryption of a ciphertext sample (header protection). A passive
// observer holds the same public-derivable keys, so both primitives are
// needed on the *read* path of the eavesdropper too.
//
// The implementation is table-free where it matters for clarity (the
// S-box is a constant table, the field multiplications are computed), and
// is deliberately simple: the observer pipeline needs correctness and
// reviewability, not constant-time guarantees (it only handles keys that
// are public by construction).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace netobs::crypto {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// AES-128 block cipher (encryption direction only; CTR and GCM never need
/// the inverse cipher).
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  AesBlock encrypt_block(const AesBlock& plaintext) const;

 private:
  std::array<std::uint32_t, 44> round_keys_;
};

/// AES-128-GCM authenticated encryption. 12-byte nonce, 16-byte tag.
class Aes128Gcm {
 public:
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;
  using Nonce = std::array<std::uint8_t, kNonceSize>;
  using Tag = std::array<std::uint8_t, kTagSize>;

  explicit Aes128Gcm(const AesKey& key);

  /// Returns ciphertext || tag.
  std::vector<std::uint8_t> seal(const Nonce& nonce,
                                 std::span<const std::uint8_t> aad,
                                 std::span<const std::uint8_t> plaintext) const;

  /// Input is ciphertext || tag; returns plaintext or nullopt when the tag
  /// does not verify (tampered or wrong key).
  std::optional<std::vector<std::uint8_t>> open(
      const Nonce& nonce, std::span<const std::uint8_t> aad,
      std::span<const std::uint8_t> sealed) const;

 private:
  AesBlock ghash(std::span<const std::uint8_t> aad,
                 std::span<const std::uint8_t> ciphertext) const;
  void ctr_xor(const AesBlock& initial_counter,
               std::span<const std::uint8_t> in,
               std::span<std::uint8_t> out) const;

  Aes128 cipher_;
  AesBlock h_{};  // GHASH subkey E_K(0^128)
};

}  // namespace netobs::crypto
