#include "embedding/vocabulary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netobs::embedding {

Vocabulary::Vocabulary(const std::vector<Sequence>& corpus,
                       VocabularyParams params) {
  std::unordered_map<std::string, std::uint64_t> raw_counts;
  for (const auto& seq : corpus) {
    for (const auto& host : seq) ++raw_counts[host];
  }

  // Keep tokens meeting min_count, most frequent first (id 0 = most
  // frequent, matching word2vec's layout).
  std::vector<std::pair<std::string, std::uint64_t>> kept;
  kept.reserve(raw_counts.size());
  for (auto& [host, count] : raw_counts) {
    if (count >= params.min_count) kept.emplace_back(host, count);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });

  if (kept.empty()) {
    throw std::invalid_argument(
        "Vocabulary: no token meets min_count; lower VocabularyParams::"
        "min_count or supply more data");
  }

  tokens_.reserve(kept.size());
  counts_.reserve(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    tokens_.push_back(kept[i].first);
    counts_.push_back(kept[i].second);
    index_.emplace(kept[i].first, static_cast<TokenId>(i));
    total_count_ += kept[i].second;
  }

  // Negative sampling distribution: count^ns_exponent.
  std::vector<double> ns_weights(tokens_.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    ns_weights[i] =
        std::pow(static_cast<double>(counts_[i]), params.ns_exponent);
  }
  negative_table_ = util::AliasSampler(ns_weights);

  // Subsampling keep-probabilities (word2vec formula):
  //   keep(w) = (sqrt(f/t) + 1) * t / f, clamped to [0,1],
  // where f is the token's corpus frequency and t the threshold.
  keep_prob_.assign(tokens_.size(), 1.0);
  if (params.subsample_threshold > 0.0) {
    double t = params.subsample_threshold;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      double f = static_cast<double>(counts_[i]) /
                 static_cast<double>(total_count_);
      double keep = (std::sqrt(f / t) + 1.0) * t / f;
      keep_prob_[i] = std::min(1.0, keep);
    }
  }
}

std::optional<TokenId> Vocabulary::id_of(const std::string& host) const {
  auto it = index_.find(host);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<TokenId> Vocabulary::encode(const Sequence& seq) const {
  std::vector<TokenId> out;
  out.reserve(seq.size());
  for (const auto& host : seq) {
    if (auto id = id_of(host)) out.push_back(*id);
  }
  return out;
}

}  // namespace netobs::embedding
