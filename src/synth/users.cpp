#include "synth/users.hpp"

#include <cmath>
#include <stdexcept>

namespace netobs::synth {

UserPopulation::UserPopulation(std::size_t topic_count,
                               PopulationParams params)
    : topic_count_(topic_count) {
  if (topic_count == 0) {
    throw std::invalid_argument("UserPopulation: topic_count must be > 0");
  }
  if (params.num_users == 0) {
    throw std::invalid_argument("UserPopulation: num_users must be > 0");
  }
  util::Pcg32 rng(params.seed, 0x05e7);

  users_.reserve(params.num_users);
  std::uint32_t next_id = 0;
  while (users_.size() < params.num_users) {
    // Households: 1 + Poisson users share a NAT ip (Section 7.2's landline
    // scenario); MAC and subscriber ids stay per-user.
    std::size_t household =
        1 + std::min<std::size_t>(3, rng.poisson(params.mean_household - 1.0));
    std::uint32_t nat_ip = 0x0A000000 |
                           (static_cast<std::uint32_t>(households_) & 0xFFFFFF);
    ++households_;
    for (std::size_t m = 0;
         m < household && users_.size() < params.num_users; ++m) {
      User u;
      u.id = next_id++;
      auto mix = rng.dirichlet(topic_count_, params.interest_alpha);
      u.interests.assign(mix.begin(), mix.end());
      u.activity = std::exp(rng.normal(0.0, params.activity_sigma));
      u.mac = 0x020000000000ULL | util::mix64(u.id * 2654435761ULL) >> 16;
      u.subscriber_id = 724000000000000ULL + u.id;  // MCC-MNC style prefix
      u.nat_ip = nat_ip;
      users_.push_back(std::move(u));
    }
  }
}

}  // namespace netobs::synth
