// Cosine k-nearest-neighbour retrieval over hostname embeddings.
//
// Section 4.1 computes, for a session representation s, the N=1000 hostname
// embeddings most similar to s under cosine similarity (the set H_s). Two
// backends implement the `KnnIndex` interface:
//
//   CosineKnnIndex (this file) — the exact blocked sweep: row vectors are
//     L2-normalised once at build time into an aligned, row-padded matrix; a
//     query is a blocked SIMD dot-product sweep feeding a bounded top-k
//     reservoir. The sweep can be amortised across many sessions
//     (query_batch) and sharded across a util::ThreadPool for large
//     vocabularies. All paths (single, batched, sharded, and any SIMD tier
//     whose kernels are bit-compatible) return bit-identical neighbours with
//     the deterministic (similarity desc, id asc) order.
//   IvfKnnIndex (ivf_index.hpp) — the approximate inverted-file index for
//     paper-scale vocabularies, which scans only the nprobe closest k-means
//     partitions in int8 and exact-re-ranks the survivors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "embedding/matrix.hpp"
#include "embedding/sgns.hpp"
#include "embedding/topk.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::embedding {

/// Retrieval backend selector for the profiling pipeline. Exact is the
/// default; kIvf trades a bounded recall loss (see IvfParams) for an
/// order-of-magnitude latency cut at paper-scale vocabularies.
enum class KnnBackend {
  kExact,
  kIvf,
};

const char* knn_backend_name(KnnBackend backend);

/// Interface every retrieval backend implements; SessionProfiler and
/// ProfilingService only speak this. Results are always in the published
/// (similarity desc, id asc) order; zero-norm queries return empty lists.
class KnnIndex {
 public:
  using Neighbor = embedding::Neighbor;

  virtual ~KnnIndex() = default;

  /// Top-n rows most similar to `query`, descending similarity (ties by
  /// ascending id). `query` need not be normalised.
  virtual std::vector<Neighbor> query(std::span<const float> query_vec,
                                      std::size_t n) const = 0;

  /// Answers many queries at once; result i corresponds to queries[i] and
  /// matches query(queries[i], n) bit-for-bit on both backends.
  virtual std::vector<std::vector<Neighbor>> query_batch(
      const std::vector<std::vector<float>>& queries, std::size_t n) const = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t dim() const = 0;
  virtual KnnBackend backend() const = 0;

  /// Heap footprint of the backend's retrieval structures, for the memory
  /// accounting plane.
  virtual std::size_t memory_bytes() const = 0;

  /// Opts query paths into shard-parallel sweeps on `pool` (nullptr =
  /// serial). Results stay bit-identical either way; the pool must outlive
  /// any concurrent queries. The base default ignores the pool.
  virtual void set_thread_pool(util::ThreadPool* pool) { (void)pool; }
};

class CosineKnnIndex : public KnnIndex {
 public:
  /// Builds the index from a model's central vectors.
  explicit CosineKnnIndex(const HostEmbedding& embedding);

  /// Builds from a raw matrix (rows indexed by TokenId).
  explicit CosineKnnIndex(const EmbeddingMatrix& matrix);

  /// Top-n rows most similar to `query`, descending similarity (ties by
  /// ascending id). `query` need not be normalised. Zero-norm queries
  /// return an empty vector.
  std::vector<Neighbor> query(std::span<const float> query_vec,
                              std::size_t n) const override;

  /// Answers many queries in one sweep of the matrix: each scored row
  /// block is reused across all queries while it is cache-hot, which is
  /// substantially faster than calling query() per session. Result i
  /// corresponds to queries[i] and is bit-identical to query(queries[i], n)
  /// (zero-norm queries yield empty results). Sharded across the thread
  /// pool (set_thread_pool) once the index is large enough, with the same
  /// bit-identical merge as single-query scans.
  std::vector<std::vector<Neighbor>> query_batch(
      const std::vector<std::vector<float>>& queries,
      std::size_t n) const override;

  /// Top-n neighbours of a stored row, excluding the row itself.
  std::vector<Neighbor> nearest_to(TokenId id, std::size_t n) const;

  /// Opts single-query and batched scans into shard-parallel sweeps on
  /// `pool` (pass nullptr to go back to serial). Shards only kick in once
  /// the index has at least 2 * min_rows_per_shard rows; results stay
  /// bit-identical to the serial scan. The pool must outlive the index.
  /// (Two-arg overload to tune the shard floor; the KnnIndex override keeps
  /// whatever floor is currently set.)
  void set_thread_pool(util::ThreadPool* pool) override {
    set_thread_pool(pool, min_rows_per_shard_);
  }
  void set_thread_pool(util::ThreadPool* pool, std::size_t min_rows_per_shard);

  std::size_t size() const override { return normalized_.rows(); }
  std::size_t dim() const override { return normalized_.dim(); }
  KnnBackend backend() const override { return KnnBackend::kExact; }
  std::size_t memory_bytes() const override {
    return normalized_.memory_bytes();
  }

  /// The unit-norm padded row matrix (rows indexed by TokenId) — shared
  /// with IvfKnnIndex's exact re-rank stage and the recall sampler.
  const EmbeddingMatrix& normalized_rows() const { return normalized_; }

 private:
  /// `unit_query` must point at stride() floats (zero-padded, 32-byte
  /// aligned, unit norm).
  std::vector<Neighbor> scan(const float* unit_query, std::size_t n,
                             std::ptrdiff_t exclude) const;

  /// Blocked sweep of rows [begin, end) into `heap`.
  void scan_range(const float* unit_query, std::size_t begin, std::size_t end,
                  std::ptrdiff_t exclude, TopK& heap) const;

  /// The batched blocked sweep of rows [begin, end) for every live query:
  /// heaps[i] accumulates candidates for the query at units + live[i] *
  /// stride.
  void scan_range_batch(const float* units, const std::vector<std::size_t>& live,
                        std::size_t begin, std::size_t end,
                        std::vector<TopK>& heaps) const;

  EmbeddingMatrix normalized_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t min_rows_per_shard_ = 16384;
};

}  // namespace netobs::embedding
