#include "profile/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace netobs::profile {

SessionStore::SessionStore(util::Timestamp horizon) : horizon_(horizon) {
  if (horizon <= 0) {
    throw std::invalid_argument("SessionStore: horizon must be > 0");
  }
}

void SessionStore::ingest(const net::HostnameEvent& event) {
  ingest(event.user_id, event.timestamp, event.hostname);
}

void SessionStore::ingest(std::uint32_t user, util::Timestamp timestamp,
                          std::string_view hostname) {
  auto& visits = per_user_[user];
  // Events are expected roughly in order; tolerate small reordering by
  // inserting at the back (queries sort nothing, they scan backwards).
  visits.push_back({timestamp, std::string(hostname)});
  visit_bytes_ += visit_cost(visits.back());
  ++event_count_;
  // Prune anything older than the horizon.
  util::Timestamp cutoff = timestamp - horizon_;
  while (!visits.empty() && visits.front().timestamp < cutoff) {
    visit_bytes_ -= visit_cost(visits.front());
    visits.pop_front();
    --event_count_;
  }
}

void SessionStore::ingest(const std::vector<net::HostnameEvent>& events) {
  for (const auto& e : events) ingest(e);
}

Session SessionStore::session_of(std::uint32_t user, util::Timestamp now,
                                 const Window& window) const {
  Session session;
  session.user_id = user;
  session.end = now;
  auto it = per_user_.find(user);
  if (it == per_user_.end()) return session;
  const auto& visits = it->second;

  // Collect candidate visits inside the window, newest first, then reverse.
  std::vector<const Visit*> in_window;
  for (auto rit = visits.rbegin(); rit != visits.rend(); ++rit) {
    if (rit->timestamp > now) continue;  // future events (out of order feed)
    if (window.mode == Window::Mode::kTime) {
      if (rit->timestamp <= now - window.duration) break;
    } else if (in_window.size() >= window.count) {
      break;
    }
    in_window.push_back(&*rit);
  }
  std::reverse(in_window.begin(), in_window.end());

  // First-visit-only dedup, preserving order of first occurrence.
  std::unordered_set<std::string_view> seen;
  for (const Visit* v : in_window) {
    if (seen.insert(v->hostname).second) {
      session.hostnames.push_back(v->hostname);
    }
  }
  return session;
}

std::vector<std::vector<std::string>> SessionStore::day_sequences(
    std::int64_t day_index) const {
  std::vector<std::vector<std::string>> out;
  util::Timestamp begin = day_index * util::kDay;
  util::Timestamp end = begin + util::kDay;
  for (const auto& [user, visits] : per_user_) {
    std::vector<std::string> seq;
    for (const auto& v : visits) {
      if (v.timestamp >= begin && v.timestamp < end) {
        seq.push_back(v.hostname);
      }
    }
    if (!seq.empty()) out.push_back(std::move(seq));
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> SessionStore::users() const {
  std::vector<std::uint32_t> out;
  out.reserve(per_user_.size());
  for (const auto& [user, visits] : per_user_) {
    if (!visits.empty()) out.push_back(user);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace netobs::profile
