// Property sweeps over randomly generated worlds: the algorithmic
// invariants of Section 4.1 must hold for every seed, not just the tuned
// fixtures used elsewhere.
#include <gtest/gtest.h>

#include <set>

#include "ads/ad_database.hpp"
#include "eval/diversity.hpp"
#include "net/observer.hpp"
#include "profile/service.hpp"
#include "synth/browsing.hpp"
#include "synth/traffic.hpp"
#include "util/string_util.hpp"

namespace netobs {
namespace {

struct SmallWorld {
  std::unique_ptr<ontology::CategoryTree> tree;
  std::unique_ptr<ontology::CategorySpace> space;
  std::unique_ptr<synth::HostnameUniverse> universe;
  std::unique_ptr<synth::UserPopulation> population;

  explicit SmallWorld(std::uint64_t seed) {
    util::Pcg32 rng(seed);
    ontology::AdwordsTreeParams tp;
    tp.top_level = 6 + seed % 6;
    tp.second_level_target = 30 + 2 * (seed % 10);
    tp.total_categories = tp.second_level_target + 60;
    tree = std::make_unique<ontology::CategoryTree>(
        make_adwords_like_tree(rng, tp));
    space = std::make_unique<ontology::CategorySpace>(*tree);
    synth::WorldParams wp;
    wp.seed = seed;
    wp.universal_hosts = 6;
    wp.first_party_hosts = 120 + 10 * (seed % 5);
    wp.shared_cdn_hosts = 5;
    wp.tracker_hosts = 10;
    universe = std::make_unique<synth::HostnameUniverse>(*space, wp);
    synth::PopulationParams pp;
    pp.num_users = 40;
    pp.seed = seed + 1;
    population = std::make_unique<synth::UserPopulation>(
        universe->topic_count(), pp);
  }
};

class WorldSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldSweep, ProfilesAreAlwaysValidCategoryVectors) {
  SmallWorld w(GetParam());
  auto labeler = w.universe->make_labeler();
  synth::BrowsingSimulator sim(*w.universe, *w.population);
  auto trace = sim.simulate(0, 2);

  profile::ServiceParams sp;
  sp.sgns.dim = 24;
  sp.sgns.epochs = 3;
  sp.sgns.seed = GetParam();
  sp.vocab.min_count = 2;
  sp.profiler.knn = 40;
  profile::ProfilingService service(labeler, nullptr, sp);
  service.ingest(trace.events);
  ASSERT_TRUE(service.retrain(0));

  // Profile every user at several times; every profile must be a valid
  // category vector of the right dimension, and empty() must agree with
  // weight_mass.
  for (std::uint32_t u = 0; u < w.population->size(); u += 5) {
    for (util::Timestamp t : {util::kDay + util::kHour,
                              util::kDay + 14 * util::kHour,
                              2 * util::kDay - 1}) {
      auto p = service.profile_user(u, t);
      EXPECT_EQ(p.categories.size(), w.space->size());
      EXPECT_TRUE(ontology::is_valid_category_vector(p.categories));
      if (p.empty()) {
        for (float c : p.categories) EXPECT_FLOAT_EQ(c, 0.0F);
      } else {
        EXPECT_GT(p.weight_mass, 0.0);
      }
    }
  }
}

TEST_P(WorldSweep, ProfilingIsDeterministic) {
  SmallWorld w(GetParam());
  auto labeler = w.universe->make_labeler();
  synth::BrowsingSimulator sim(*w.universe, *w.population);
  auto trace = sim.simulate(0, 1);

  auto run_once = [&] {
    profile::ServiceParams sp;
    sp.sgns.dim = 16;
    sp.sgns.epochs = 2;
    sp.sgns.seed = GetParam();
    sp.vocab.min_count = 2;
    sp.profiler.knn = 25;
    profile::ProfilingService service(labeler, nullptr, sp);
    service.ingest(trace.events);
    if (!service.retrain(0)) return ontology::CategoryVector{};
    return service.profile_user(3, util::kDay - 1).categories;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(WorldSweep, EavesdropperAdListsAreWellFormed) {
  SmallWorld w(GetParam());
  auto labeler = w.universe->make_labeler();
  ads::AdDatabase db =
      ads::AdDatabase::collect(*w.universe, labeler, 400, GetParam());
  ads::EavesdropperSelector selector(db, labeler);

  // Every labeled host's own label, used as a profile, must produce a
  // non-empty, duplicate-free list of valid ad ids.
  std::size_t checked = 0;
  for (const auto& [host, label] : labeler.labels()) {
    if (checked++ > 20) break;
    auto list = selector.select(label);
    ASSERT_FALSE(list.empty());
    EXPECT_LE(list.size(), 20U);
    std::set<ads::AdId> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), list.size());
    for (ads::AdId id : list) EXPECT_LT(id, db.size());
  }
}

TEST_P(WorldSweep, WirePathPreservesEventStream) {
  SmallWorld w(GetParam());
  synth::BrowsingSimulator sim(*w.universe, *w.population);
  auto trace = sim.simulate(0, 1);
  if (trace.events.size() > 4000) trace.events.resize(4000);

  synth::TrafficParams tp;
  tp.quic_fraction = 0.25;
  tp.split_probability = 0.25;
  tp.seed = GetParam();
  synth::TrafficSynthesizer synth(*w.population, tp);
  auto packets = synth.synthesize(trace.events);

  net::SniObserver observer(net::Vantage::kMobileOperator);
  auto recovered = observer.observe_all(packets);
  ASSERT_EQ(recovered.size(), trace.events.size());
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].hostname, trace.events[i].hostname);
  }
}

TEST_P(WorldSweep, DiversityCoresAreNested) {
  SmallWorld w(GetParam());
  synth::BrowsingSimulator sim(*w.universe, *w.population);
  auto trace = sim.simulate(0, 3);
  std::vector<std::vector<std::uint64_t>> per_user(w.population->size());
  for (const auto& e : trace.events) {
    per_user[e.user_id].push_back(
        util::mix64(std::hash<std::string>{}(e.hostname)));
  }
  auto result = eval::analyze_diversity(per_user);
  // Cores must be nested: a higher threshold is a subset of a lower one.
  for (std::size_t i = 1; i < result.cores.size(); ++i) {
    const auto& tighter = result.cores[i - 1].members;
    const auto& looser = result.cores[i].members;
    EXPECT_LE(tighter.size(), looser.size());
    EXPECT_TRUE(std::includes(looser.begin(), looser.end(), tighter.begin(),
                              tighter.end()));
    // A looser threshold means a bigger core, hence fewer items outside it.
    EXPECT_LE(util::ccdf_value_at_fraction(result.cores[i].outside_ccdf, 0.5),
              util::ccdf_value_at_fraction(result.cores[i - 1].outside_ccdf,
                                           0.5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSweep,
                         ::testing::Values(3, 17, 42, 99, 1234));

}  // namespace
}  // namespace netobs
