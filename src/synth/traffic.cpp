#include "synth/traffic.hpp"

#include "net/dns.hpp"
#include "net/quic.hpp"
#include "net/tls.hpp"
#include "util/rng.hpp"

namespace netobs::synth {

TrafficSynthesizer::TrafficSynthesizer(const UserPopulation& population,
                                       TrafficParams params)
    : population_(&population), params_(params) {}

std::uint32_t server_ip_for(const std::string& hostname) {
  std::uint64_t host_hash =
      util::mix64(std::hash<std::string>{}(hostname) ^ 0x5eed);
  return 0x30000000 | static_cast<std::uint32_t>(host_hash & 0x0FFFFFFF);
}

std::vector<net::Packet> TrafficSynthesizer::synthesize(
    const std::vector<net::HostnameEvent>& events) const {
  std::vector<net::Packet> packets;
  packets.reserve(events.size());
  util::Pcg32 rng(params_.seed, 0x7aff1c);

  std::uint32_t flow_serial = 0;
  for (const auto& event : events) {
    const User& user = population_->user(event.user_id);

    net::Packet base;
    base.timestamp = event.timestamp;
    base.src_mac = user.mac;
    base.subscriber_id = user.subscriber_id;
    base.tuple.src_ip = user.nat_ip;
    // Server IP derived from the hostname (stable per host, as with a real
    // resolver cache).
    base.tuple.dst_ip = server_ip_for(event.hostname);
    // Ephemeral port unique per flow so concurrent flows never collide.
    base.tuple.src_port =
        static_cast<std::uint16_t>(1024 + (flow_serial++ % 64512));

    if (params_.emit_dns) {
      net::DnsMessage query;
      query.id = static_cast<std::uint16_t>(rng.next_u32());
      query.questions.push_back(
          {event.hostname, net::DnsType::kA, 1});
      net::Packet dns = base;
      dns.tuple.proto = net::Transport::kUdp;
      dns.tuple.dst_port = 53;
      dns.tuple.dst_ip = 0x08080808;
      dns.payload = net::build_dns_query(query);
      packets.push_back(std::move(dns));
    }

    net::ClientHelloSpec spec;
    // ECH deployments omit the cleartext SNI entirely.
    if (params_.ech_fraction <= 0.0 ||
        !rng.bernoulli(params_.ech_fraction)) {
      spec.sni = event.hostname;
    }
    for (auto& b : spec.random) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }

    if (params_.quic_fraction > 0.0 && rng.bernoulli(params_.quic_fraction)) {
      net::QuicInitialSpec quic;
      quic.dcid.resize(8);
      for (auto& b : quic.dcid) {
        b = static_cast<std::uint8_t>(rng.next_u32());
      }
      quic.scid.resize(8);
      for (auto& b : quic.scid) {
        b = static_cast<std::uint8_t>(rng.next_u32());
      }
      quic.packet_number = rng.next_below(1 << 20);
      quic.client_hello = spec;
      base.tuple.proto = net::Transport::kUdp;
      base.tuple.dst_port = 443;
      base.payload = net::build_quic_initial(quic);
      packets.push_back(std::move(base));
      continue;
    }

    auto record = net::build_client_hello_record(spec);

    base.tuple.proto = net::Transport::kTcp;
    base.tuple.dst_port = 443;
    if (record.size() > 10 && rng.bernoulli(params_.split_probability)) {
      std::size_t cut = 5 + rng.next_below(
                                static_cast<std::uint32_t>(record.size() - 9));
      net::Packet first = base;
      first.payload.assign(record.begin(),
                           record.begin() + static_cast<long>(cut));
      packets.push_back(std::move(first));
      net::Packet second = std::move(base);
      second.payload.assign(record.begin() + static_cast<long>(cut),
                            record.end());
      packets.push_back(std::move(second));
    } else {
      base.payload = std::move(record);
      packets.push_back(std::move(base));
    }
  }
  return packets;
}

}  // namespace netobs::synth
