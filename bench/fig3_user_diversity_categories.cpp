// Figure 3 — User diversity (categories).
//
// Paper: mapping hostnames through the ontology shrinks the space to 328
// categories; category cores 80/60/40/20 have sizes 47/80/124/177; all
// users share the same 14 categories; 50% of users share the same 113
// categories; 1.5/5.2/11.1/23.2% of users have no category outside cores
// 80/60/40/20.
#include <iostream>

#include "bench/common.hpp"
#include "eval/diversity.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {300, 30, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Figure 3: user diversity (categories)");
  bench::print_scale_note(cfg, world);

  auto labeler = world.universe->make_labeler();
  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);

  // Categories assigned to each user: every flat category with positive
  // importance on a labeled host the user visited.
  std::vector<std::vector<std::uint64_t>> per_user(world.population->size());
  std::size_t labeled_connections = 0;
  for (const auto& e : trace.events) {
    const auto* label = labeler.label_of(e.hostname);
    if (label == nullptr) continue;
    ++labeled_connections;
    for (std::size_t c = 0; c < label->size(); ++c) {
      if ((*label)[c] > 0.0F) per_user[e.user_id].push_back(c);
    }
  }
  std::cout << "trace: " << trace.events.size() << " connections, "
            << labeled_connections << " to labeled hosts\n";

  auto result = eval::analyze_diversity(per_user);

  util::Table cores({"core", "size", "paper size",
                     "% users w/ 0 outside", "paper %"});
  const char* paper_sizes[] = {"47", "80", "124", "177"};
  const char* paper_zero[] = {"1.5", "5.2", "11.1", "23.2"};
  for (std::size_t i = 0; i < result.cores.size(); ++i) {
    const auto& core = result.cores[i];
    cores.add_row({util::format("Core %.0f", core.threshold * 100),
                   std::to_string(core.members.size()), paper_sizes[i],
                   util::format("%.1f", core.users_with_zero_outside * 100),
                   paper_zero[i]});
  }
  cores.print(std::cout);

  // "All users are assigned the same 14 categories" -> our Core 100.
  auto full = eval::analyze_diversity(per_user, {1.0, 0.5});
  util::Table shared({"metric", "measured", "paper"});
  shared.add_row({"categories shared by ALL users",
                  std::to_string(full.cores[0].members.size()), "14"});
  shared.add_row({"categories shared by >=50% of users",
                  std::to_string(full.cores[1].members.size()), "113"});
  shared.add_row({"distinct categories assigned",
                  std::to_string(result.distinct_items), "<=328"});
  shared.print(std::cout);

  util::Table ccdf({"N categories", "% users >= N (all)",
                    "% users >= N (outside Core 80)"});
  for (double n : {1.0, 10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 250.0}) {
    auto frac_at = [&](const std::vector<util::CcdfPoint>& curve) {
      double frac = 0.0;
      for (const auto& p : curve) {
        if (p.x >= n) {
          frac = p.fraction;
          break;
        }
      }
      return frac * 100.0;
    };
    ccdf.add_row({util::format("%.0f", n),
                  util::format("%.1f", frac_at(result.all_ccdf)),
                  util::format("%.1f",
                               frac_at(result.cores[0].outside_ccdf))});
  }
  ccdf.print(std::cout);

  std::cout << "\nshape checks: the category space compresses the hostname\n"
               "space (linear-scale CCDF), a universal shared core exists,\n"
               "and a small user fraction has nothing outside each core,\n"
               "growing as the core threshold drops.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
