#include <gtest/gtest.h>

#include <cmath>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "eval/diversity.hpp"
#include "eval/purity.hpp"
#include "eval/report.hpp"
#include "tsne/tsne.hpp"
#include "util/rng.hpp"

namespace netobs {
namespace {

/// Three well-separated Gaussian blobs in 10 dimensions.
std::vector<float> blob_data(std::size_t per_blob, std::size_t dim,
                             std::vector<int>* labels) {
  util::Pcg32 rng(5);
  std::vector<float> rows;
  for (int blob = 0; blob < 3; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        double center = d == static_cast<std::size_t>(blob) ? 8.0 : 0.0;
        rows.push_back(static_cast<float>(rng.normal(center, 0.4)));
      }
      labels->push_back(blob);
    }
  }
  return rows;
}

TEST(Tsne, SeparatesGaussianBlobs) {
  std::vector<int> labels;
  auto rows = blob_data(40, 10, &labels);
  tsne::TsneParams params;
  params.perplexity = 15.0;
  params.iterations = 300;
  auto result = tsne::run_tsne(rows, 120, 10, params);
  ASSERT_EQ(result.points, 120U);
  ASSERT_EQ(result.embedding.size(), 240U);

  // Mean intra-blob distance must be far below inter-blob distance.
  auto dist = [&](std::size_t i, std::size_t j) {
    double dx = result.x(i, 0) - result.x(j, 0);
    double dy = result.x(i, 1) - result.x(j, 1);
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0.0;
  double inter = 0.0;
  std::size_t ni = 0;
  std::size_t nj = 0;
  for (std::size_t i = 0; i < 120; i += 3) {
    for (std::size_t j = i + 1; j < 120; j += 3) {
      if (labels[i] == labels[j]) {
        intra += dist(i, j);
        ++ni;
      } else {
        inter += dist(i, j);
        ++nj;
      }
    }
  }
  ASSERT_GT(ni, 0U);
  ASSERT_GT(nj, 0U);
  EXPECT_GT(inter / static_cast<double>(nj),
            2.0 * intra / static_cast<double>(ni));
}

TEST(Tsne, KlDecreasesAfterExaggeration) {
  std::vector<int> labels;
  auto rows = blob_data(25, 6, &labels);
  tsne::TsneParams params;
  params.perplexity = 10.0;
  params.iterations = 220;
  auto result = tsne::run_tsne(rows, 75, 6, params);
  ASSERT_EQ(result.kl_history.size(), 220U);
  // Compare KL right after exaggeration ends with the final KL.
  double after_exag = result.kl_history[params.exaggeration_iters + 5];
  EXPECT_LT(result.kl_history.back(), after_exag);
  EXPECT_GT(result.kl_history.back(), 0.0);
}

TEST(Tsne, DeterministicForSeed) {
  std::vector<int> labels;
  auto rows = blob_data(25, 6, &labels);
  tsne::TsneParams params;
  params.perplexity = 8.0;
  params.iterations = 50;
  auto r1 = tsne::run_tsne(rows, 75, 6, params);
  auto r2 = tsne::run_tsne(rows, 75, 6, params);
  EXPECT_EQ(r1.embedding, r2.embedding);
}

TEST(Tsne, RejectsBadInput) {
  std::vector<float> rows(10 * 3, 0.0F);
  EXPECT_THROW(tsne::run_tsne(rows, 10, 4, {}), std::invalid_argument);
  tsne::TsneParams params;
  params.perplexity = 30.0;
  EXPECT_THROW(tsne::run_tsne(rows, 10, 3, params), std::invalid_argument);
  params.perplexity = 0.5;
  EXPECT_THROW(tsne::run_tsne(rows, 10, 3, params), std::invalid_argument);
}

TEST(Diversity, CoresAndCcdfMatchHandComputation) {
  // 4 users; item 1 touched by all, item 2 by 3 users, the rest unique.
  std::vector<std::vector<std::uint64_t>> users = {
      {1, 2, 10, 11},
      {1, 2, 20},
      {1, 2, 30, 31, 32},
      {1, 40},
  };
  auto result = eval::analyze_diversity(users, {0.9, 0.6});
  EXPECT_EQ(result.distinct_items, 9U);
  ASSERT_EQ(result.cores.size(), 2U);

  // Core 90: only item 1 (touched by 4/4 users).
  EXPECT_EQ(result.cores[0].members, (std::vector<std::uint64_t>{1}));
  // Core 60: items 1 and 2 (3/4 = 75% >= 60%).
  EXPECT_EQ(result.cores[1].members, (std::vector<std::uint64_t>{1, 2}));

  // Outside core 60 counts: {2, 1, 3, 1}; nobody has zero.
  EXPECT_DOUBLE_EQ(result.cores[1].users_with_zero_outside, 0.0);
  // 75% of users have >= 1 outside item; 25% have >= 3.
  EXPECT_DOUBLE_EQ(result.items_at_user_fraction(1, 0.75), 1.0);
  EXPECT_DOUBLE_EQ(result.items_at_user_fraction(1, 0.25), 3.0);
}

TEST(Diversity, AllCurveUsesTotals) {
  std::vector<std::vector<std::uint64_t>> users = {{1, 2}, {1, 2, 3, 4}};
  auto result = eval::analyze_diversity(users);
  EXPECT_DOUBLE_EQ(
      result.items_at_user_fraction(static_cast<std::size_t>(-1), 1.0), 2.0);
  EXPECT_DOUBLE_EQ(
      result.items_at_user_fraction(static_cast<std::size_t>(-1), 0.5), 4.0);
}

TEST(Diversity, DuplicateItemsCountOnce) {
  std::vector<std::vector<std::uint64_t>> users = {{5, 5, 5}, {5}};
  auto result = eval::analyze_diversity(users, {0.8});
  EXPECT_EQ(result.distinct_items, 1U);
  EXPECT_DOUBLE_EQ(result.cores[0].users_with_zero_outside, 1.0);
}

TEST(Diversity, RejectsEmptyInput) {
  EXPECT_THROW(eval::analyze_diversity({}), std::invalid_argument);
}

embedding::HostEmbedding clustered_model() {
  std::vector<embedding::Sequence> corpus;
  for (int i = 0; i < 80; ++i) {
    corpus.push_back({"travel1.com", "travel2.com", "travel-api.net"});
    corpus.push_back({"sport1.com", "sport2.com", "sport-api.net"});
  }
  embedding::SgnsParams params;
  params.dim = 12;
  params.epochs = 10;
  embedding::VocabularyParams vp;
  vp.min_count = 1;
  vp.subsample_threshold = 0.0;
  embedding::SgnsTrainer trainer(params, vp);
  return trainer.fit(corpus);
}

TEST(Purity, HighForClusteredEmbeddings) {
  auto model = clustered_model();
  embedding::CosineKnnIndex index(model);
  auto topic_of = [](const std::string& host) -> std::optional<std::size_t> {
    if (host.starts_with("travel") && !host.ends_with(".net")) return 0;
    if (host.starts_with("sport") && !host.ends_with(".net")) return 1;
    return std::nullopt;  // APIs have no ground truth
  };
  auto result = eval::neighbor_topic_purity(model, index, topic_of, 1);
  EXPECT_EQ(result.scored_hosts, 4U);
  EXPECT_GT(result.mean_purity, 0.9);
  EXPECT_NEAR(result.random_baseline, 0.5, 1e-9);
}

TEST(Purity, SatelliteAttachmentFindsOwners) {
  auto model = clustered_model();
  embedding::CosineKnnIndex index(model);
  auto topic_of = [](const std::string& host) -> std::optional<std::size_t> {
    if (host.ends_with(".net")) return std::nullopt;
    return host.starts_with("travel") ? 0 : 1;
  };
  auto owner_of = [](const std::string& host) -> std::optional<std::string> {
    if (host == "travel-api.net") return "travel1.com";
    if (host == "sport-api.net") return "sport1.com";
    return std::nullopt;
  };
  auto result = eval::satellite_attachment(model, index, owner_of, topic_of);
  EXPECT_EQ(result.scored_satellites, 2U);
  EXPECT_DOUBLE_EQ(result.same_topic_top1, 1.0);
}

TEST(Report, PercentageShares) {
  std::vector<std::vector<double>> counts = {{2.0, 2.0}, {0.0, 0.0},
                                             {3.0, 1.0}};
  auto shares = eval::to_percentage_shares(counts);
  EXPECT_DOUBLE_EQ(shares[0][0], 50.0);
  EXPECT_DOUBLE_EQ(shares[1][0], 0.0);  // empty day stays zero
  EXPECT_DOUBLE_EQ(shares[2][0], 75.0);

  auto ranked = eval::mean_shares_descending(shares);
  ASSERT_EQ(ranked.size(), 2U);
  EXPECT_EQ(ranked[0].first, 0U);
  EXPECT_GT(ranked[0].second, ranked[1].second);
}

TEST(Report, FormatCtr) {
  EXPECT_EQ(eval::format_ctr(0.00217), "0.217%");
  EXPECT_EQ(eval::format_ctr(0.0), "0.000%");
}

}  // namespace
}  // namespace netobs
