// The full one-month ad experiment of Section 5, end to end:
//
//   data-collection phase  -> browsing trace + harvested ad database,
//   daily model retraining -> SKIPGRAM on the previous day's sequences,
//   profiling phase        -> every report interval (10 min) a user's last
//                             T=20 min of hostnames are profiled and a
//                             20-ad eavesdropper list is prepared,
//   ad replacement         -> an original (ad-network) impression is
//                             replaced only when the list holds an ad of a
//                             compatible size (Section 5.3),
//   measurement            -> CTR per arm, per-user paired CTRs, and the
//                             two-tailed paired t-test of Section 6.4.
//
// A third "random ads" control arm is evaluated counterfactually on the
// same impressions (it never influences the two real arms) to verify the
// targeting signal is real.
#pragma once

#include <cstdint>
#include <vector>

#include "ads/ad_database.hpp"
#include "ads/adnetwork.hpp"
#include "ads/click_model.hpp"
#include "profile/service.hpp"
#include "synth/browsing.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"
#include "util/stats.hpp"

namespace netobs::ads {

struct ExperimentParams {
  std::int64_t collection_days = 2;  ///< data-collection phase length
  std::int64_t profiling_days = 7;   ///< profiling/measurement phase length
  util::Timestamp report_interval = 10 * util::kMinute;
  double replace_prob = 0.8;  ///< replace when a size-compatible ad exists
  std::size_t ad_db_size = 12000;
  ClickParams click;
  AdNetworkParams adnet;
  profile::ServiceParams service;
  EavesdropperSelector::Params selector{20, 20};
  std::uint64_t seed = 2021;
};

/// Impression/click tally for one serving system.
struct ArmStats {
  std::size_t impressions = 0;
  std::size_t clicks = 0;

  double ctr() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(clicks) /
                     static_cast<double>(impressions);
  }
};

/// Per-day, per-topic connection/ad tallies backing Figure 6.
struct DailyTopicCounts {
  /// [day][topic] — day 0 is the first profiling day.
  std::vector<std::vector<double>> visited;
  std::vector<std::vector<double>> original_ads;
  std::vector<std::vector<double>> eavesdropper_ads;
};

struct ExperimentResult {
  ArmStats original;
  ArmStats eavesdropper;
  ArmStats random_control;

  /// Paired per-user CTRs (users with impressions in both arms).
  std::vector<double> user_ctr_eavesdropper;
  std::vector<double> user_ctr_original;
  util::TTestResult paired_ttest;
  util::ProportionTestResult proportion_test;  ///< pooled CTR comparison

  DailyTopicCounts topics;

  std::size_t reports = 0;
  std::size_t replacements = 0;
  std::size_t empty_profiles = 0;
  std::size_t retrainings = 0;
  std::size_t connections = 0;        ///< observer events in profiling phase
  std::size_t filtered_connections = 0;  ///< dropped by the blocklist
  std::size_t unique_hostnames = 0;
  std::size_t paired_users = 0;
};

class ExperimentRunner {
 public:
  /// universe/population must outlive the runner.
  ExperimentRunner(const synth::HostnameUniverse& universe,
                   const synth::UserPopulation& population,
                   synth::BrowsingParams browsing = synth::BrowsingParams(),
                   ExperimentParams params = ExperimentParams());

  ExperimentResult run();

 private:
  const synth::HostnameUniverse* universe_;
  const synth::UserPopulation* population_;
  synth::BrowsingParams browsing_;
  ExperimentParams params_;
};

}  // namespace netobs::ads
