#include "net/trace_io.hpp"

#include <istream>
#include <ostream>

#include "net/bytes.hpp"

namespace netobs::net {

namespace {

constexpr std::uint32_t kPacketMagic = 0x4E504B31;  // "NPK1"
constexpr std::uint32_t kEventMagic = 0x4E455631;   // "NEV1"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw ParseError("trace: truncated u32");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw ParseError("trace: truncated u64");
  return v;
}

}  // namespace

void save_packet_trace(std::ostream& os, const std::vector<Packet>& packets) {
  write_u32(os, kPacketMagic);
  write_u64(os, packets.size());
  for (const auto& p : packets) {
    write_u64(os, static_cast<std::uint64_t>(p.timestamp));
    write_u32(os, p.tuple.src_ip);
    write_u32(os, p.tuple.dst_ip);
    write_u32(os, (static_cast<std::uint32_t>(p.tuple.src_port) << 16) |
                      p.tuple.dst_port);
    write_u32(os, static_cast<std::uint32_t>(p.tuple.proto));
    write_u64(os, p.src_mac);
    write_u64(os, p.subscriber_id);
    write_u64(os, p.payload.size());
    os.write(reinterpret_cast<const char*>(p.payload.data()),
             static_cast<std::streamsize>(p.payload.size()));
  }
  if (!os) throw std::runtime_error("save_packet_trace: write failed");
}

std::vector<Packet> load_packet_trace(std::istream& is) {
  if (read_u32(is) != kPacketMagic) {
    throw ParseError("load_packet_trace: bad magic");
  }
  std::uint64_t count = read_u64(is);
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    Packet p;
    p.timestamp = static_cast<util::Timestamp>(read_u64(is));
    p.tuple.src_ip = read_u32(is);
    p.tuple.dst_ip = read_u32(is);
    std::uint32_t ports = read_u32(is);
    p.tuple.src_port = static_cast<std::uint16_t>(ports >> 16);
    p.tuple.dst_port = static_cast<std::uint16_t>(ports);
    p.tuple.proto = static_cast<Transport>(read_u32(is));
    p.src_mac = read_u64(is);
    p.subscriber_id = read_u64(is);
    std::uint64_t len = read_u64(is);
    if (len > (1ULL << 24)) throw ParseError("load_packet_trace: bad length");
    p.payload.resize(static_cast<std::size_t>(len));
    is.read(reinterpret_cast<char*>(p.payload.data()),
            static_cast<std::streamsize>(len));
    if (!is) throw ParseError("load_packet_trace: truncated payload");
    packets.push_back(std::move(p));
  }
  return packets;
}

void save_event_trace(std::ostream& os,
                      const std::vector<HostnameEvent>& events) {
  write_u32(os, kEventMagic);
  write_u64(os, events.size());
  for (const auto& e : events) {
    write_u32(os, e.user_id);
    write_u64(os, static_cast<std::uint64_t>(e.timestamp));
    write_u32(os, static_cast<std::uint32_t>(e.hostname.size()));
    os.write(e.hostname.data(),
             static_cast<std::streamsize>(e.hostname.size()));
  }
  if (!os) throw std::runtime_error("save_event_trace: write failed");
}

std::vector<HostnameEvent> load_event_trace(std::istream& is) {
  if (read_u32(is) != kEventMagic) {
    throw ParseError("load_event_trace: bad magic");
  }
  std::uint64_t count = read_u64(is);
  std::vector<HostnameEvent> events;
  events.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    HostnameEvent e;
    e.user_id = read_u32(is);
    e.timestamp = static_cast<util::Timestamp>(read_u64(is));
    std::uint32_t len = read_u32(is);
    if (len > 253) throw ParseError("load_event_trace: bad hostname length");
    e.hostname.resize(len);
    is.read(e.hostname.data(), len);
    if (!is) throw ParseError("load_event_trace: truncated hostname");
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace netobs::net
