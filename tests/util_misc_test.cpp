#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/sim_time.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::util {
namespace {

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(split("..", '.'), (std::vector<std::string>{"", "", ""}));
  EXPECT_EQ(split_nonempty("..a..b.", '.'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(ToLower, MixedCase) {
  EXPECT_EQ(to_lower("WwW.GooGle.COM"), "www.google.com");
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(IsValidHostname, AcceptsNormalHosts) {
  EXPECT_TRUE(is_valid_hostname("google.com"));
  EXPECT_TRUE(is_valid_hostname("mail.google.com"));
  EXPECT_TRUE(is_valid_hostname("ds-aksb-a.akamaihd.net"));
  EXPECT_TRUE(is_valid_hostname("a1.b2.c3"));
}

TEST(IsValidHostname, RejectsMalformedHosts) {
  EXPECT_FALSE(is_valid_hostname(""));
  EXPECT_FALSE(is_valid_hostname("nodots"));
  EXPECT_FALSE(is_valid_hostname(".leading.dot"));
  EXPECT_FALSE(is_valid_hostname("trailing.dot."));
  EXPECT_FALSE(is_valid_hostname("dou..ble"));
  EXPECT_FALSE(is_valid_hostname("-dash.start.com"));
  EXPECT_FALSE(is_valid_hostname("dash-.end.com"));
  EXPECT_FALSE(is_valid_hostname("under_score.com"));
  EXPECT_FALSE(is_valid_hostname(std::string(64, 'a') + ".com"));
  EXPECT_FALSE(is_valid_hostname(std::string(254, 'a')));
}

TEST(HostMatchesDomain, SubdomainSemantics) {
  EXPECT_TRUE(host_matches_domain("example.com", "example.com"));
  EXPECT_TRUE(host_matches_domain("a.example.com", "example.com"));
  EXPECT_TRUE(host_matches_domain("a.b.example.com", "example.com"));
  EXPECT_FALSE(host_matches_domain("ample.com", "example.com"));
  EXPECT_FALSE(host_matches_domain("example.com", "a.example.com"));
  EXPECT_FALSE(host_matches_domain("badexample.com", "example.com"));
}

TEST(SecondLevelDomain, CollapsesAsInPaper) {
  // The exact examples from Section 6.2.
  EXPECT_EQ(second_level_domain("mail.google.com"), "google.com");
  EXPECT_EQ(second_level_domain("ds-aksb-a.akamaihd.net"), "akamaihd.net");
}

TEST(SecondLevelDomain, HandlesMultiLabelSuffixes) {
  EXPECT_EQ(second_level_domain("www.blogspot.com.es"), "blogspot.com.es");
  EXPECT_EQ(second_level_domain("x.y.google.co.uk"), "google.co.uk");
  EXPECT_EQ(second_level_domain("api.banco.com.ve"), "banco.com.ve");
}

TEST(SecondLevelDomain, ShortHostsUnchanged) {
  EXPECT_EQ(second_level_domain("google.com"), "google.com");
  EXPECT_EQ(second_level_domain("com.es"), "com.es");
  EXPECT_EQ(second_level_domain("localhost.localdomain"),
            "localhost.localdomain");
}

TEST(Format, BehavesLikePrintf) {
  EXPECT_EQ(format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(VecMath, DotAndNorm) {
  std::vector<float> a = {1.0F, 2.0F, 2.0F};
  std::vector<float> b = {2.0F, 0.0F, 1.0F};
  EXPECT_FLOAT_EQ(dot(a, b), 4.0F);
  EXPECT_FLOAT_EQ(l2_norm(a), 3.0F);
}

TEST(VecMath, AxpyAndScale) {
  std::vector<float> x = {1.0F, 2.0F};
  std::vector<float> y = {10.0F, 20.0F};
  axpy(2.0F, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[1], 24.0F);
  scale(y, 0.5F);
  EXPECT_FLOAT_EQ(y[0], 6.0F);
}

TEST(VecMath, NormalizeUnitLength) {
  std::vector<float> v = {3.0F, 4.0F};
  normalize(v);
  EXPECT_NEAR(l2_norm(v), 1.0F, 1e-6F);
  std::vector<float> zero = {0.0F, 0.0F};
  normalize(zero);  // must not produce NaN
  EXPECT_FLOAT_EQ(zero[0], 0.0F);
}

TEST(VecMath, CosineProperties) {
  std::vector<float> a = {1.0F, 0.0F};
  std::vector<float> b = {0.0F, 2.0F};
  std::vector<float> c = {5.0F, 0.0F};
  EXPECT_FLOAT_EQ(cosine(a, b), 0.0F);
  EXPECT_FLOAT_EQ(cosine(a, c), 1.0F);
  std::vector<float> zero = {0.0F, 0.0F};
  EXPECT_FLOAT_EQ(cosine(a, zero), 0.0F);
}

TEST(VecMath, EuclideanDistance) {
  std::vector<float> a = {0.0F, 3.0F};
  std::vector<float> b = {4.0F, 0.0F};
  EXPECT_FLOAT_EQ(euclidean_distance(a, b), 5.0F);
}

TEST(VecMath, MeanOfRows) {
  std::vector<float> r1 = {1.0F, 3.0F};
  std::vector<float> r2 = {3.0F, 5.0F};
  auto m = mean_of_rows({std::span<const float>(r1), std::span<const float>(r2)});
  ASSERT_EQ(m.size(), 2U);
  EXPECT_FLOAT_EQ(m[0], 2.0F);
  EXPECT_FLOAT_EQ(m[1], 4.0F);
  EXPECT_TRUE(mean_of_rows({}).empty());
}

TEST(SigmoidTable, ApproximatesExactSigmoid) {
  const auto& table = shared_sigmoid_table();
  for (float x = -5.9F; x < 5.9F; x += 0.37F) {
    EXPECT_NEAR(table(x), sigmoid(x), 0.01F) << "x=" << x;
  }
  EXPECT_LT(table(-100.0F), 0.01F);
  EXPECT_GT(table(100.0F), 0.99F);
}

TEST(SigmoidTable, EndpointsAreExact) {
  // The clamped range ends are knots: sigmoid(kMaxExp) exactly, not the
  // last interior knot (the historical table returned sigmoid(~5.988)).
  const auto& table = shared_sigmoid_table();
  EXPECT_EQ(table(SigmoidTable::kMaxExp), sigmoid(SigmoidTable::kMaxExp));
  EXPECT_EQ(table(1000.0F), sigmoid(SigmoidTable::kMaxExp));
  EXPECT_EQ(table(-SigmoidTable::kMaxExp),
            1.0F - sigmoid(SigmoidTable::kMaxExp));
  EXPECT_EQ(table(-1000.0F), 1.0F - sigmoid(SigmoidTable::kMaxExp));
  EXPECT_EQ(table(0.0F), 0.5F);
}

TEST(SigmoidTable, SymmetricAndMonotone) {
  const auto& table = shared_sigmoid_table();
  float prev = 0.0F;
  for (float x = -7.0F; x <= 7.0F; x += 0.013F) {
    // Exact symmetry by construction, not within tolerance.
    EXPECT_EQ(table(-x), 1.0F - table(x)) << "x=" << x;
    float y = table(x);
    EXPECT_GE(y, prev) << "x=" << x;  // monotone non-decreasing
    prev = y;
  }
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ChunkedCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for_chunked(101, 10, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end - begin, 10U);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedHandlesDegenerateInputs) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  // grain 0 coerced to 1; n == 0 dispatches nothing.
  pool.parallel_for_chunked(3, 0, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for_chunked(
      0, 8, [&](std::size_t, std::size_t) { count += 1000; });
  EXPECT_EQ(count.load(), 3);
  // A grain larger than n collapses to one chunk.
  pool.parallel_for_chunked(5, 100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0U);
    EXPECT_EQ(end, 5U);
  });
}

TEST(ThreadPool, ChunkedPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunked(
                   20, 4,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 8) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1U);
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(SimTime, DayArithmetic) {
  EXPECT_EQ(day_index(0), 0);
  EXPECT_EQ(day_index(kDay - 1), 0);
  EXPECT_EQ(day_index(kDay), 1);
  EXPECT_EQ(day_index(30 * kDay + kHour), 30);
  EXPECT_EQ(time_of_day(kDay + 5 * kMinute), 5 * kMinute);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  t.add_row_numeric({3.14159}, 2);
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3U);
}

}  // namespace
}  // namespace netobs::util
