// Long-term user profiles (Section 7.3).
//
// The paper's system emits *session* profiles (the last T minutes). A
// network observer monetising its vantage ("profiles could be sold to
// third-parties ... ads sent via email or SMS") needs durable per-user
// interest profiles. This store aggregates session profiles into an
// exponentially-decayed average per user: recent sessions dominate, old
// interests fade with a configurable half-life, and the result stays a
// valid category vector (every entry in [0,1]).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "ontology/category_tree.hpp"
#include "profile/profiler.hpp"
#include "util/mem_estimate.hpp"
#include "util/sim_time.hpp"

namespace netobs::profile {

struct UserProfileParams {
  /// Time for a past session's influence to halve.
  double half_life = 7.0 * static_cast<double>(util::kDay);
};

class UserProfileStore {
 public:
  explicit UserProfileStore(std::size_t category_count,
                            UserProfileParams params = UserProfileParams());

  /// Folds a session profile observed at `when` into the user's long-term
  /// profile. Empty session profiles are ignored. Throws on dimension
  /// mismatch or time running backwards for the same user.
  void update(std::uint32_t user, util::Timestamp when,
              const SessionProfile& session);
  void update(std::uint32_t user, util::Timestamp when,
              const ontology::CategoryVector& categories);

  /// The user's profile decayed to time `when`; zero vector for unknown
  /// users. All entries in [0,1].
  ontology::CategoryVector profile_at(std::uint32_t user,
                                      util::Timestamp when) const;

  /// Number of sessions folded in for a user (0 when unknown).
  std::size_t session_count(std::uint32_t user) const;

  std::size_t user_count() const { return users_.size(); }
  std::size_t category_count() const { return category_count_; }

  /// Estimated heap footprint: one map node per user plus each user's
  /// accumulator vector (category_count float32 entries — the decay math
  /// runs in double, only the stored state is compacted).
  std::size_t memory_bytes() const {
    return util::unordered_map_bytes(users_) +
           users_.size() *
               util::malloc_rounded(category_count_ * sizeof(float));
  }

 private:
  struct State {
    // Decayed sum of session vectors. Stored as float32 to halve long-term
    // per-user bytes; each update recomputes in double before narrowing, so
    // divergence from a double accumulator stays ~1e-7 per fold (the
    // tolerance test pins <= 1e-5 against a double oracle).
    std::vector<float> accumulator;
    double weight = 0.0;  // decayed count
    util::Timestamp last_update = 0;
    std::size_t sessions = 0;
  };

  double decay_factor(util::Timestamp from, util::Timestamp to) const;

  std::size_t category_count_;
  UserProfileParams params_;
  std::unordered_map<std::uint32_t, State> users_;
};

}  // namespace netobs::profile
