// Minimal DNS message codec (RFC 1035): enough to build and parse the query
// packets a resolver-side observer sees. Section 7.2 of the paper notes that
// a DNS provider is itself a profiler — `examples/dns_observer` runs the
// profiling pipeline over DNS queries instead of TLS ClientHellos.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/bytes.hpp"

namespace netobs::net {

/// DNS query/record types (subset).
enum class DnsType : std::uint16_t {
  kA = 1,
  kAaaa = 28,
  kHttps = 65,
};

struct DnsQuestion {
  std::string qname;  ///< lowercase, no trailing dot
  DnsType qtype = DnsType::kA;
  std::uint16_t qclass = 1;  ///< IN
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  std::vector<DnsQuestion> questions;
};

/// Serialises a DNS query datagram (no compression pointers are emitted).
std::vector<std::uint8_t> build_dns_query(const DnsMessage& msg);

/// Parses a DNS message header + question section. Answer sections, if any,
/// are ignored (an on-path observer only needs the QNAME). Supports
/// RFC 1035 name-compression pointers in QNAMEs. Throws ParseError on
/// malformed input.
DnsMessage parse_dns_message(std::span<const std::uint8_t> datagram);

/// Encodes a hostname into DNS label wire format (length-prefixed labels,
/// terminating zero). Throws std::invalid_argument on invalid names.
std::vector<std::uint8_t> encode_dns_name(const std::string& name);

}  // namespace netobs::net
