// Row-major dense embedding matrix with binary (de)serialisation.
//
// Two of these make up a trained SKIPGRAM model: the "central" matrix W and
// the "context" matrix W' of Section 4.1 (a hostname h's embedding is
// h = one_hot(h) W). Rows are contiguous so training updates and kNN scans
// stay cache-friendly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace netobs::embedding {

class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(std::size_t rows, std::size_t dim);

  /// word2vec initialisation: uniform in [-0.5/dim, 0.5/dim).
  void init_uniform(util::Pcg32& rng);

  void fill(float value);

  std::span<float> row(std::size_t i);
  std::span<const float> row(std::size_t i) const;

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }

  /// Raw storage (rows * dim floats, row-major).
  std::span<const float> data() const { return data_; }
  std::span<float> data() { return data_; }

  /// Binary serialisation: magic, rows, dim, payload. Throws
  /// std::runtime_error on I/O failure or bad magic.
  void save(std::ostream& os) const;
  static EmbeddingMatrix load(std::istream& is);

  bool operator==(const EmbeddingMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace netobs::embedding
