#include "embedding/ivf_index.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

struct IvfMetrics {
  obs::Counter& queries;
  obs::Counter& recall_samples;
  obs::Counter& batch_lists_touched;
  obs::Gauge& index_size;
  obs::Gauge& nlists;
  obs::Gauge& nprobe;
  obs::Gauge& probed_lists;
  obs::Gauge& candidate_pool;
  obs::Gauge& last_recall;
  obs::Gauge& build_seconds;
  obs::Gauge& build_kmeans_seconds;
  obs::Gauge& build_assign_seconds;
  obs::Gauge& build_encode_seconds;
  obs::Gauge& pq_code_bytes;
  obs::Histogram& batch_size;
  obs::QuantileGauges latency;
  obs::QuantileGauges latency_pq;
  /// Counters and gauges are atomic, but the P2 latency estimators are not;
  /// queries may run concurrently from many threads.
  std::mutex latency_mutex{};

  static IvfMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static IvfMetrics m{
        reg.counter("netobs_embedding_ivf_queries_total",
                    "IVF approximate kNN queries answered"),
        reg.counter("netobs_embedding_ivf_recall_samples_total",
                    "Queries that also ran the exact sweep to sample recall"),
        reg.counter(
            "netobs_embedding_ivf_batch_lists_touched_total",
            "Inverted lists swept by batched queries (each touched list "
            "counts once per batch regardless of how many queries probe it)"),
        reg.gauge("netobs_embedding_ivf_index_size",
                  "Rows in the most recently built IVF index"),
        reg.gauge("netobs_embedding_ivf_nlists",
                  "Coarse partitions in the most recently built IVF index"),
        reg.gauge("netobs_embedding_ivf_nprobe",
                  "Configured partitions scanned per query"),
        reg.gauge("netobs_embedding_ivf_probed_lists",
                  "Partitions actually scanned by the latest query"),
        reg.gauge("netobs_embedding_ivf_candidate_pool",
                  "Int8-stage candidates re-ranked by the latest query"),
        reg.gauge("netobs_embedding_ivf_last_recall",
                  "recall@n observed by the most recent recall sample"),
        reg.gauge("netobs_embedding_ivf_build_seconds",
                  "Wall seconds of the most recent IVF index build"),
        reg.gauge("netobs_embedding_ivf_build_kmeans_seconds",
                  "Lloyd-training seconds of the most recent build (0 = warm)"),
        reg.gauge("netobs_embedding_ivf_build_assign_seconds",
                  "Final all-rows assignment seconds of the most recent build"),
        reg.gauge("netobs_embedding_ivf_build_encode_seconds",
                  "List-encode seconds of the most recent build (int8 or PQ)"),
        reg.gauge("netobs_embedding_ivf_pq_bytes",
                  "PQ payload bytes (codes + codebooks) of the most recently "
                  "built IVF index; 0 when PQ is off"),
        reg.histogram("netobs_embedding_ivf_batch_size",
                      "Queries per query_batch() call",
                      obs::exponential_buckets(1.0, 2.0, 10)),
        obs::QuantileGauges(reg, "netobs_embedding_ivf_query_latency_seconds",
                            "Latency quantiles of IVF kNN queries",
                            {0.5, 0.9, 0.99}, {{"backend", "ivf"}}),
        obs::QuantileGauges(reg, "netobs_embedding_ivf_query_latency_seconds",
                            "Latency quantiles of IVF kNN queries",
                            {0.5, 0.9, 0.99}, {{"backend", "ivf_pq"}}),
    };
    return m;
  }
};

EmbeddingMatrix normalized_copy(const EmbeddingMatrix& matrix) {
  EmbeddingMatrix out = matrix;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    util::normalize(out.row(i));
  }
  return out;
}

/// Centroids / rows scored per dot_block call (see knn.cpp kScoreBlock).
constexpr std::size_t kScoreBlock = 64;

/// Fixed grain of the parallel int8 encode — rows per pool chunk. Purely a
/// scheduling knob: encode output is slot-addressed, so it cannot affect
/// the built lists.
constexpr std::size_t kEncodeGrain = 8192;

/// Entries the batched re-rank prefetches ahead of the row it is scoring —
/// enough outstanding loads to hide a DRAM miss behind ~8 dot products.
constexpr std::size_t kRerankPrefetch = 12;

/// Two-distance prefetch schedule for query_batch's re-rank: the far touch
/// (first line only) starts the page walk for a row well before it is
/// needed, the near touch pulls the row's remaining cache lines. A 100-dim
/// row spans ~7 lines of memory the hardware streamer never sees coming
/// (candidates are scattered across the whole matrix), so without both
/// touches every row costs a full exposed DRAM + TLB round trip.
constexpr std::size_t kRerankFar = 32;
constexpr std::size_t kRerankNear = 8;

/// Absolute slack added to the int8 similarity error bound used by the
/// batched re-rank skip. Cosine values are O(1), so 1e-4 dwarfs every
/// float-rounding term in the bound's evaluation (score products, the
/// query-error norm, the not-quite-unit stored rows) while costing a
/// negligible widening of the keep band.
constexpr float kSimBoundMargin = 1e-4F;

/// Training rows per PQ codebook entry (cap on the per-subspace k-means
/// sample). Codebooks live in a pq_dsub_-dimensional space, so far fewer
/// samples saturate them than the coarse quantizer needs; the cap keeps the
/// m training runs a small fraction of build time.
constexpr std::size_t kPqTrainPerCentroid = 32;

using PaddedVector =
    std::vector<float, netobs::util::simd::AlignedAllocator<float>>;

/// Per-row scalar quantization: code_j = round(x_j * 127 / max|x|), the
/// max-abs scheme that keeps the row's largest component at full int8
/// range. Rounding is ties-away-from-zero, spelled out in plain arithmetic
/// so every build of every tier emits identical codes. Pads [dim, qstride)
/// with zero so full-width integer kernels can sweep the pad.
float quantize_row(const float* src, std::size_t dim, std::int8_t* dst,
                   std::size_t qstride) {
  float max_abs = 0.0F;
  for (std::size_t j = 0; j < dim; ++j) {
    max_abs = std::max(max_abs, std::fabs(src[j]));
  }
  if (max_abs == 0.0F) {
    std::memset(dst, 0, qstride);
    return 0.0F;
  }
  const float inv = 127.0F / max_abs;
  for (std::size_t j = 0; j < dim; ++j) {
    float v = src[j] * inv;
    int q = static_cast<int>(v >= 0.0F ? v + 0.5F : v - 0.5F);
    q = std::clamp(q, -127, 127);
    dst[j] = static_cast<std::int8_t>(q);
  }
  std::memset(dst + dim, 0, qstride - dim);
  return max_abs / 127.0F;
}

/// Exact L2 norm of a row's int8 reconstruction residual, inflated a hair
/// so comparisons built on it stay sound under float rounding.
float dequant_error(const float* src, const std::int8_t* codes, float scale,
                    std::size_t dim) {
  double e2 = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double e =
        static_cast<double>(src[j]) -
        static_cast<double>(codes[j]) * static_cast<double>(scale);
    e2 += e * e;
  }
  return static_cast<float>(std::sqrt(e2)) * 1.0005F;
}

inline void prefetch_row(const float* p) {
#if defined(__GNUC__) || defined(__clang__)
  // A 100-dim row spans several cache lines; the first two touches cover
  // the hardware prefetcher's startup, it streams the rest.
  __builtin_prefetch(p);
  __builtin_prefetch(p + 16);
#else
  (void)p;
#endif
}

/// Every cache line of one padded row (16 floats per line).
inline void prefetch_row_all(const float* p, std::size_t stride) {
#if defined(__GNUC__) || defined(__clang__)
  for (std::size_t j = 0; j < stride; j += 16) __builtin_prefetch(p + j);
#else
  (void)p;
  (void)stride;
#endif
}

}  // namespace

IvfKnnIndex::IvfKnnIndex(const EmbeddingMatrix& matrix, IvfParams params,
                         util::ThreadPool* pool)
    : normalized_(normalized_copy(matrix)), params_(params) {
  build(pool, nullptr);
}

IvfKnnIndex::IvfKnnIndex(const HostEmbedding& embedding, IvfParams params,
                         util::ThreadPool* pool)
    : normalized_(normalized_copy(embedding.central())), params_(params) {
  build(pool, nullptr);
}

IvfKnnIndex::IvfKnnIndex(const EmbeddingMatrix& matrix,
                         const EmbeddingMatrix& warm_centroids,
                         IvfParams params, util::ThreadPool* pool)
    : normalized_(normalized_copy(matrix)), params_(params) {
  if (warm_centroids.rows() == 0 || warm_centroids.dim() != normalized_.dim()) {
    throw std::invalid_argument(
        "IvfKnnIndex: warm centroids must be non-empty with matching dim");
  }
  build(pool, &warm_centroids);
}

void IvfKnnIndex::build(util::ThreadPool* pool,
                        const EmbeddingMatrix* warm_centroids) {
  const std::size_t rows = normalized_.rows();
  // int8 rows padded to the register width so the integer kernels can load
  // full 32-byte blocks; the pad is zero and contributes nothing.
  qstride_ = (normalized_.dim() + util::simd::kRowAlignBytes - 1) /
             util::simd::kRowAlignBytes * util::simd::kRowAlignBytes;
  if (rows == 0) {
    centroids_ = EmbeddingMatrix(0, normalized_.dim());
    return;
  }
  if (params_.pq.m > 0) {
    pq_m_ = std::clamp<std::size_t>(params_.pq.m, 1, normalized_.dim());
    pq_dsub_ = (normalized_.dim() + pq_m_ - 1) / pq_m_;
    const std::size_t bits = std::clamp<std::size_t>(params_.pq.bits, 1, 8);
    pq_k_ = std::min<std::size_t>(std::size_t{1} << bits, rows);
  }

  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point from) {
    return std::chrono::duration<double>(Clock::now() - from).count();
  };
  const auto build_start = Clock::now();
  build_stats_ = IvfBuildStats{};

  std::vector<std::uint32_t> assignment;
  if (warm_centroids != nullptr) {
    centroids_ = *warm_centroids;
    const auto assign_start = Clock::now();
    assignment = assign_to_centroids(normalized_, centroids_, pool,
                                     params_.assign_fanout);
    build_stats_.assign_s = seconds_since(assign_start);
  } else {
    std::size_t nlists = params_.nlists;
    if (nlists == 0) {
      // sqrt(rows) balances centroid-scan and list-scan cost: both are
      // O(sqrt(rows)) per probe at the default configuration.
      nlists = static_cast<std::size_t>(
          std::lround(std::sqrt(static_cast<double>(rows))));
    }
    nlists = std::clamp<std::size_t>(nlists, 1, rows);
    KmeansParams kp;
    kp.clusters = nlists;
    kp.iterations = params_.kmeans_iterations;
    kp.seed = params_.seed;
    kp.train_sample = params_.train_sample;
    kp.assign_fanout = params_.assign_fanout;
    const auto kmeans_start = Clock::now();
    KmeansResult km = spherical_kmeans(normalized_, kp, pool);
    build_stats_.kmeans_s = seconds_since(kmeans_start);
    centroids_ = std::move(km.centroids);
    assignment = std::move(km.assignment);
  }

  const auto encode_start = Clock::now();
  encode_lists(assignment, pool);
  build_stats_.encode_s = seconds_since(encode_start);
  build_stats_.total_s = seconds_since(build_start);

  auto& metrics = IvfMetrics::get();
  metrics.index_size.set(static_cast<double>(rows));
  metrics.nlists.set(static_cast<double>(centroids_.rows()));
  metrics.nprobe.set(
      static_cast<double>(std::min(params_.nprobe, centroids_.rows())));
  metrics.build_seconds.set(build_stats_.total_s);
  metrics.build_kmeans_seconds.set(build_stats_.kmeans_s);
  metrics.build_assign_seconds.set(build_stats_.assign_s);
  metrics.build_encode_seconds.set(build_stats_.encode_s);
  metrics.pq_code_bytes.set(static_cast<double>(pq_bytes()));
}

void IvfKnnIndex::encode_lists(const std::vector<std::uint32_t>& assignment,
                               util::ThreadPool* pool) {
  const std::size_t rows = normalized_.rows();
  lists_.assign(centroids_.rows(), List{});
  // Pass 1 (serial): per-row slot within its list. Ascending row order
  // means ascending slot order, so every list's ids stay ascending — the
  // published deterministic scan order.
  std::vector<std::uint32_t> slot(rows);
  std::vector<std::uint32_t> sizes(lists_.size(), 0);
  for (std::size_t r = 0; r < rows; ++r) slot[r] = sizes[assignment[r]]++;
  const bool pq = pq_k_ > 0;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    lists_[l].ids.resize(sizes[l]);
    if (pq) {
      lists_[l].pq.resize(std::size_t{sizes[l]} * pq_m_);
    } else {
      lists_[l].codes.resize(std::size_t{sizes[l]} * qstride_);
      lists_[l].scales.resize(sizes[l]);
    }
  }
  if (pq) {
    row_errs_.clear();
    max_row_err_ = 0.0F;
    for (std::size_t r = 0; r < rows; ++r) {
      lists_[assignment[r]].ids[slot[r]] = static_cast<TokenId>(r);
    }
    train_pq(assignment, slot, pool);
    return;
  }
  row_errs_.resize(rows);
  // Pass 2 (pool-parallel): every row owns a disjoint pre-sized slot and
  // quantize_row is a pure per-row function, so any chunking — or none —
  // produces bit-identical lists.
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t dim = normalized_.dim();
  auto chunk = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      List& list = lists_[assignment[r]];
      const std::size_t s = slot[r];
      list.ids[s] = static_cast<TokenId>(r);
      list.scales[s] = quantize_row(base + r * stride, dim,
                                    list.codes.data() + s * qstride_,
                                    qstride_);
      row_errs_[r] = dequant_error(base + r * stride,
                                   list.codes.data() + s * qstride_,
                                   list.scales[s], dim);
    }
  };
  if (pool != nullptr && rows >= 2 * kEncodeGrain) {
    pool->parallel_for_chunked(rows, kEncodeGrain, chunk);
  } else {
    chunk(0, rows);
  }
  max_row_err_ = 0.0F;
  for (const float e : row_errs_) max_row_err_ = std::max(max_row_err_, e);
}

EmbeddingMatrix IvfKnnIndex::residual_submatrix(
    const std::vector<std::uint32_t>& assignment, std::size_t first_row,
    std::size_t subspace) const {
  const std::size_t dim = normalized_.dim();
  const std::size_t nrows = normalized_.rows() - first_row;
  const std::size_t begin = subspace * pq_dsub_;
  const std::size_t valid =
      begin < dim ? std::min(pq_dsub_, dim - begin) : 0;
  // Rows allocate zero-filled, so the pad — and any dims past the logical
  // end of the last subspace — stay zero.
  EmbeddingMatrix out(nrows, pq_dsub_);
  for (std::size_t i = 0; i < nrows; ++i) {
    auto row = normalized_.row(first_row + i);
    auto cen = centroids_.row(assignment[i]);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < valid; ++j) {
      dst[j] = row[begin + j] - cen[begin + j];
    }
  }
  return out;
}

void IvfKnnIndex::train_pq(const std::vector<std::uint32_t>& assignment,
                           const std::vector<std::uint32_t>& slot,
                           util::ThreadPool* pool) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const std::size_t rows = normalized_.rows();
  pq_codebooks_.clear();
  pq_codebooks_.resize(pq_m_);
  for (std::size_t s = 0; s < pq_m_; ++s) {
    EmbeddingMatrix resid = residual_submatrix(assignment, 0, s);
    KmeansParams kp;
    kp.clusters = pq_k_;
    kp.iterations = params_.kmeans_iterations;
    // Distinct deterministic stream per subspace so codebooks do not share
    // initial seeds across subspaces.
    kp.seed = params_.seed + 1000003ULL * (s + 1);
    // Codebooks live in a pq_dsub_-dim space: a bounded sample per entry
    // saturates them, and the full-rows final assignment below is the
    // actual encode anyway.
    kp.train_sample = kPqTrainPerCentroid * pq_k_;
    if (params_.train_sample != 0) {
      kp.train_sample = std::min(kp.train_sample, params_.train_sample);
    }
    kp.assign_fanout = 0;
    kp.spherical = false;
    KmeansResult km = spherical_kmeans(resid, kp, pool);
    // The final all-rows assignment IS the encode for this subspace.
    for (std::size_t r = 0; r < rows; ++r) {
      List& list = lists_[assignment[r]];
      list.pq[std::size_t{slot[r]} * pq_m_ + s] =
          static_cast<std::uint8_t>(km.assignment[r]);
    }
    pq_codebooks_[s] = std::move(km.centroids);
  }
  build_stats_.pq_train_s =
      std::chrono::duration<double>(Clock::now() - start).count();
}

void IvfKnnIndex::build_pq_lut(const float* unit_query, float* lut) const {
  const std::size_t dim = normalized_.dim();
  PaddedVector sub(pq_codebooks_[0].stride(), 0.0F);
  for (std::size_t s = 0; s < pq_m_; ++s) {
    const EmbeddingMatrix& cb = pq_codebooks_[s];
    const std::size_t begin = s * pq_dsub_;
    const std::size_t valid =
        begin < dim ? std::min(pq_dsub_, dim - begin) : 0;
    std::fill(sub.begin(), sub.end(), 0.0F);
    for (std::size_t j = 0; j < valid; ++j) sub[j] = unit_query[begin + j];
    const float* base = cb.padded_data();
    const std::size_t stride = cb.stride();
    float* out = lut + s * pq_k_;
    for (std::size_t b = 0; b < pq_k_; b += kScoreBlock) {
      std::size_t cnt = std::min(kScoreBlock, pq_k_ - b);
      util::simd::dot_block(sub.data(), base + b * stride, stride, cnt,
                            out + b);
    }
  }
}

std::string IvfKnnIndex::contents_hash() const {
  crypto::Sha256 hasher;
  auto hash_bytes = [&](const void* data, std::size_t bytes) {
    hasher.update({static_cast<const std::uint8_t*>(data), bytes});
  };
  const std::size_t dim = centroids_.dim();
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    hash_bytes(centroids_.row(c).data(), dim * sizeof(float));
  }
  for (const List& list : lists_) {
    std::uint64_t count = list.ids.size();
    hash_bytes(&count, sizeof(count));
    hash_bytes(list.ids.data(), list.ids.size() * sizeof(TokenId));
    hash_bytes(list.codes.data(), list.codes.size());
    hash_bytes(list.scales.data(), list.scales.size() * sizeof(float));
    hash_bytes(list.pq.data(), list.pq.size());
  }
  // PQ-off indexes hash exactly as before (the pq spans above are empty and
  // this block is skipped), so existing recorded hashes stay valid.
  if (pq_enabled()) {
    const std::uint64_t shape[3] = {pq_m_, pq_dsub_, pq_k_};
    hash_bytes(shape, sizeof(shape));
    for (const EmbeddingMatrix& cb : pq_codebooks_) {
      for (std::size_t c = 0; c < cb.rows(); ++c) {
        hash_bytes(cb.row(c).data(), cb.dim() * sizeof(float));
      }
    }
  }
  crypto::Digest d = hasher.finish();
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  hex.reserve(d.size() * 2);
  for (std::uint8_t byte : d) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xF]);
  }
  return hex;
}

void IvfKnnIndex::quantize_into_lists(
    const std::vector<std::uint32_t>& assignment, std::size_t first_row) {
  const std::size_t nnew = normalized_.rows() - first_row;
  if (pq_enabled()) {
    // Encode against the kept codebooks through the same assignment path
    // the build used, so appended codes are bit-compatible with built ones.
    std::vector<std::uint8_t> codes(nnew * pq_m_);
    for (std::size_t s = 0; s < pq_m_; ++s) {
      EmbeddingMatrix resid = residual_submatrix(assignment, first_row, s);
      std::vector<std::uint32_t> a =
          assign_to_centroids(resid, pq_codebooks_[s], nullptr, 0, false);
      for (std::size_t i = 0; i < nnew; ++i) {
        codes[i * pq_m_ + s] = static_cast<std::uint8_t>(a[i]);
      }
    }
    for (std::size_t i = 0; i < nnew; ++i) {
      List& list = lists_[assignment[i]];
      list.ids.push_back(static_cast<TokenId>(first_row + i));
      list.pq.insert(list.pq.end(),
                     codes.begin() + static_cast<std::ptrdiff_t>(i * pq_m_),
                     codes.begin() +
                         static_cast<std::ptrdiff_t>((i + 1) * pq_m_));
    }
    return;
  }
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t dim = normalized_.dim();
  for (std::size_t r = first_row; r < normalized_.rows(); ++r) {
    List& list = lists_[assignment[r - first_row]];
    list.ids.push_back(static_cast<TokenId>(r));
    std::size_t off = list.codes.size();
    list.codes.resize(off + qstride_);
    list.scales.push_back(
        quantize_row(base + r * stride, dim, list.codes.data() + off,
                     qstride_));
    row_errs_.push_back(dequant_error(base + r * stride,
                                      list.codes.data() + off,
                                      list.scales.back(), dim));
    max_row_err_ = std::max(max_row_err_, row_errs_.back());
  }
}

void IvfKnnIndex::add_rows(const EmbeddingMatrix& more) {
  if (more.rows() == 0) return;
  if (more.dim() != normalized_.dim()) {
    throw std::invalid_argument("IvfKnnIndex::add_rows: dim mismatch");
  }
  if (centroids_.rows() == 0) {
    throw std::logic_error("IvfKnnIndex::add_rows: index built empty");
  }
  const std::size_t old_rows = normalized_.rows();
  const std::size_t stride = normalized_.stride();

  EmbeddingMatrix grown(old_rows + more.rows(), normalized_.dim());
  std::memcpy(grown.padded_data(), normalized_.padded_data(),
              old_rows * stride * sizeof(float));
  for (std::size_t r = 0; r < more.rows(); ++r) {
    auto src = more.row(r);
    auto dst = grown.row(old_rows + r);
    std::copy(src.begin(), src.end(), dst.begin());
    util::normalize(dst);
  }
  normalized_ = std::move(grown);

  // New rows keep ascending TokenIds, so per-list id order stays ascending
  // and the deterministic scan order is preserved.
  std::vector<std::uint32_t> assignment(more.rows());
  const float* base = normalized_.padded_data();
  for (std::size_t r = 0; r < more.rows(); ++r) {
    assignment[r] =
        nearest_centroid(centroids_, base + (old_rows + r) * stride);
  }
  quantize_into_lists(assignment, old_rows);

  auto& metrics = IvfMetrics::get();
  metrics.index_size.set(static_cast<double>(normalized_.rows()));
  metrics.pq_code_bytes.set(static_cast<double>(pq_bytes()));
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::exact_scan(
    const float* unit_query, std::size_t n) const {
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  const std::size_t rows = normalized_.rows();
  TopK heap(n);
  float scores[kScoreBlock];
  for (std::size_t b = 0; b < rows; b += kScoreBlock) {
    std::size_t cnt = std::min(kScoreBlock, rows - b);
    util::simd::dot_block(unit_query, base + b * stride, stride, cnt, scores);
    for (std::size_t j = 0; j < cnt; ++j) {
      heap.offer(static_cast<TokenId>(b + j), scores[j]);
    }
  }
  return heap.take_sorted();
}

void IvfKnnIndex::maybe_sample_recall(const float* unit_query,
                                      const std::vector<Neighbor>& out,
                                      std::size_t n) const {
  if (params_.recall_sample_every == 0) return;
  std::uint64_t seq = query_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % params_.recall_sample_every != 0) return;
  auto& metrics = IvfMetrics::get();
  std::vector<Neighbor> exact = exact_scan(unit_query, n);
  std::size_t hits = 0;
  // Both lists are small (<= n); membership via sorted-id probing.
  std::vector<TokenId> got;
  got.reserve(out.size());
  for (const Neighbor& nb : out) got.push_back(nb.id);
  std::sort(got.begin(), got.end());
  for (const Neighbor& nb : exact) {
    hits += std::binary_search(got.begin(), got.end(), nb.id) ? 1 : 0;
  }
  metrics.recall_samples.inc();
  if (!exact.empty()) {
    metrics.last_recall.set(static_cast<double>(hits) /
                            static_cast<double>(exact.size()));
  }
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::scan(const float* unit_query,
                                                     std::size_t n) const {
  auto& metrics = IvfMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(static_cast<obs::Histogram*>(nullptr));

  // Stage 1 — coarse quantizer: rank all centroids, keep the nprobe best.
  const std::size_t nprobe = std::min(params_.nprobe, centroids_.rows());
  TopK probe_heap(nprobe);
  {
    const float* cbase = centroids_.padded_data();
    const std::size_t cstride = centroids_.stride();
    float scores[kScoreBlock];
    for (std::size_t b = 0; b < centroids_.rows(); b += kScoreBlock) {
      std::size_t cnt = std::min(kScoreBlock, centroids_.rows() - b);
      util::simd::dot_block(unit_query, cbase + b * cstride, cstride, cnt,
                            scores);
      for (std::size_t j = 0; j < cnt; ++j) {
        probe_heap.offer(static_cast<TokenId>(b + j), scores[j]);
      }
    }
  }
  std::vector<Neighbor> probes = probe_heap.take_sorted();

  // Stage 2 — approximate list scan: rank every row of the probed lists.
  // int8 layout: the dequantised integer dot product (combined query * row
  // scale applied once per row). PQ layout: centroid score plus the m LUT
  // entries of the row's codes — q.c + sum_s q_s.codebook_s[code_s], the
  // asymmetric-distance estimate of q.row. Equal approximate scores fall
  // back to the ascending-id tie-break inside TopK, so the candidate pool
  // is deterministic across tiers and thread counts.
  const std::size_t pool_k = std::max(n, params_.rerank * n);
  TopK candidates(pool_k);
  std::size_t pooled = 0;
  if (pq_enabled()) {
    std::vector<float> lut(pq_m_ * pq_k_);
    build_pq_lut(unit_query, lut.data());
    for (const Neighbor& probe : probes) {
      const List& list = lists_[probe.id];
      const std::uint8_t* codes = list.pq.data();
      for (std::size_t i = 0; i < list.ids.size(); ++i) {
        const std::uint8_t* code = codes + i * pq_m_;
        float sum = probe.similarity;
        for (std::size_t s = 0; s < pq_m_; ++s) {
          sum += lut[s * pq_k_ + code[s]];
        }
        candidates.offer(list.ids[i], sum);
      }
      pooled += list.ids.size();
    }
  } else {
    const std::size_t dim = normalized_.dim();
    std::vector<std::int8_t, util::simd::AlignedAllocator<std::int8_t>> qcodes(
        qstride_);
    const float qscale =
        quantize_row(unit_query, dim, qcodes.data(), qstride_);
    for (const Neighbor& probe : probes) {
      const List& list = lists_[probe.id];
      for (std::size_t i = 0; i < list.ids.size(); ++i) {
        std::int32_t idot = util::simd::dot_i8(
            qcodes.data(), list.codes.data() + i * qstride_, qstride_);
        candidates.offer(list.ids[i],
                         static_cast<float>(idot) * (qscale * list.scales[i]));
      }
      pooled += list.ids.size();
    }
  }

  // Stage 3 — exact re-rank: rescore the surviving candidates against the
  // full-precision rows with the same kernel the exact index uses, so the
  // returned similarities (and their order) are exact.
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  std::vector<Neighbor> pool_entries = candidates.take_sorted();
  TopK result(n);
  for (const Neighbor& c : pool_entries) {
    result.offer(c.id,
                 util::simd::dot(unit_query, base + c.id * stride, stride));
  }
  std::vector<Neighbor> out = result.take_sorted();

  metrics.probed_lists.set(static_cast<double>(probes.size()));
  metrics.candidate_pool.set(
      static_cast<double>(std::min(pool_entries.size(), pool_k)));
  {
    auto& lat = pq_enabled() ? metrics.latency_pq : metrics.latency;
    std::lock_guard<std::mutex> lock(metrics.latency_mutex);
    lat.observe(timer.elapsed_seconds());
  }

  maybe_sample_recall(unit_query, out, n);
  return out;
}

std::vector<IvfKnnIndex::Neighbor> IvfKnnIndex::query(
    std::span<const float> query_vec, std::size_t n) const {
  if (n == 0 || normalized_.rows() == 0) return {};
  n = std::min(n, normalized_.rows());
  PaddedVector unit(normalized_.stride(), 0.0F);
  std::copy(query_vec.begin(), query_vec.end(), unit.begin());
  float norm = util::l2_norm({unit.data(), query_vec.size()});
  if (norm == 0.0F) return {};
  util::scale({unit.data(), query_vec.size()}, 1.0F / norm);
  return scan(unit.data(), n);
}

std::vector<std::vector<IvfKnnIndex::Neighbor>> IvfKnnIndex::query_batch(
    const std::vector<std::vector<float>>& queries, std::size_t n) const {
  std::vector<std::vector<Neighbor>> results(queries.size());
  if (queries.empty() || n == 0 || normalized_.rows() == 0) return results;
  n = std::min(n, normalized_.rows());
  const std::size_t nq = queries.size();
  const std::size_t stride = normalized_.stride();

  auto& metrics = IvfMetrics::get();
  metrics.queries.inc(nq);
  metrics.batch_size.observe(static_cast<double>(nq));
  obs::ScopedTimer timer(static_cast<obs::Histogram*>(nullptr));

  // Stage 0 — normalise every query into one padded buffer; zero-norm
  // queries keep their empty result, exactly like query().
  PaddedVector units(nq * stride, 0.0F);
  std::vector<char> valid(nq, 0);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    float* unit = units.data() + qi * stride;
    std::copy(queries[qi].begin(), queries[qi].end(), unit);
    float norm = util::l2_norm({unit, queries[qi].size()});
    if (norm == 0.0F) continue;
    util::scale({unit, queries[qi].size()}, 1.0F / norm);
    valid[qi] = 1;
  }

  // Stage 1 — per-query probe selection, the same TopK centroid sweep as
  // query(); bucket the (query, centroid score) pairs by inverted list.
  const std::size_t nprobe = std::min(params_.nprobe, centroids_.rows());
  struct ListQuery {
    std::uint32_t qi;
    float centroid_sim;  ///< dot(query, list centroid) — the PQ base score
  };
  std::vector<std::vector<ListQuery>> buckets(lists_.size());
  std::vector<std::size_t> last_probed(nq, 0);
  {
    const float* cbase = centroids_.padded_data();
    const std::size_t cstride = centroids_.stride();
    float scores[kScoreBlock];
    for (std::size_t qi = 0; qi < nq; ++qi) {
      if (!valid[qi]) continue;
      const float* unit = units.data() + qi * stride;
      TopK probe_heap(nprobe);
      for (std::size_t b = 0; b < centroids_.rows(); b += kScoreBlock) {
        std::size_t cnt = std::min(kScoreBlock, centroids_.rows() - b);
        util::simd::dot_block(unit, cbase + b * cstride, cstride, cnt,
                              scores);
        for (std::size_t j = 0; j < cnt; ++j) {
          probe_heap.offer(static_cast<TokenId>(b + j), scores[j]);
        }
      }
      std::vector<Neighbor> probes = probe_heap.take_sorted();
      last_probed[qi] = probes.size();
      for (const Neighbor& probe : probes) {
        buckets[probe.id].push_back(
            {static_cast<std::uint32_t>(qi), probe.similarity});
      }
    }
  }
  // Touched lists in ascending id order — the canonical batched sweep order
  // (TopK's kept set is offer-order-invariant, so this cannot change any
  // result relative to query()'s probe-score order).
  std::vector<std::uint32_t> touched;
  for (std::size_t l = 0; l < buckets.size(); ++l) {
    if (!buckets[l].empty()) touched.push_back(static_cast<std::uint32_t>(l));
  }
  metrics.batch_lists_touched.inc(touched.size());

  // Per-query quantized representations, computed once up front: int8 query
  // codes, or the PQ LUTs.
  const bool pq = pq_enabled();
  std::vector<std::int8_t, util::simd::AlignedAllocator<std::int8_t>> qcodes;
  std::vector<float> qscales;
  std::vector<float> qerrs;  ///< exact ||q_unit - dequant(q_int8)|| per query
  std::vector<float> luts;
  const std::size_t lut_sz = pq ? pq_m_ * pq_k_ : 0;
  if (pq) {
    luts.resize(nq * lut_sz);
  } else {
    qcodes.resize(nq * qstride_);
    qscales.assign(nq, 0.0F);
    qerrs.assign(nq, 0.0F);
  }
  const std::size_t dim = normalized_.dim();
  for (std::size_t qi = 0; qi < nq; ++qi) {
    if (!valid[qi]) continue;
    const float* unit = units.data() + qi * stride;
    if (pq) {
      build_pq_lut(unit, luts.data() + qi * lut_sz);
    } else {
      qscales[qi] =
          quantize_row(unit, dim, qcodes.data() + qi * qstride_, qstride_);
      // The query-side quantization error is computable exactly (we hold
      // both the unit query and its codes); the row side below has to make
      // do with the max-abs worst case.
      const std::int8_t* qc = qcodes.data() + qi * qstride_;
      double e2 = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double e = static_cast<double>(unit[j]) -
                         static_cast<double>(qc[j]) *
                             static_cast<double>(qscales[qi]);
        e2 += e * e;
      }
      qerrs[qi] = static_cast<float>(std::sqrt(e2)) * 1.001F;
    }
  }

  // Stage 2 — list-centric sweep: every touched list's codes are read
  // exactly once; each cache-hot block of kScoreBlock rows is scored
  // against all queries probing the list before moving on. Scores land in
  // a block array first, then one vectorised compare against the pool's
  // live admission threshold skips candidates that cannot displace it
  // ('>=' keeps equal-similarity rows so the ascending-id tie-break is
  // settled inside TopK — the exact backend's block-filter rule). Score
  // expressions match query()'s stage 2 exactly, so per-(query, row)
  // scores are bit-identical; offer order differs, which TopK absorbs.
  const std::size_t pool_k = std::max(n, params_.rerank * n);
  std::vector<PackedTopK> candidates;
  candidates.reserve(nq);
  for (std::size_t qi = 0; qi < nq; ++qi) candidates.emplace_back(pool_k);

  auto offer_block = [](PackedTopK& cand, const List& list, std::size_t b,
                        std::size_t cnt, const float* sims) {
    std::uint64_t mask =
        util::simd::mask_ge(sims, cnt, cand.worst_similarity());
    while (mask != 0) {
      const auto j = static_cast<std::size_t>(std::countr_zero(mask));
      mask &= mask - 1;
      cand.offer(list.ids[b + j], sims[j]);
    }
  };

  auto sweep_list = [&](std::uint32_t li, auto&& cand_for) {
    const List& list = lists_[li];
    const std::vector<ListQuery>& lq = buckets[li];
    const std::size_t lrows = list.ids.size();
    float sims[kScoreBlock];
    if (pq) {
      for (std::size_t b = 0; b < lrows; b += kScoreBlock) {
        const std::size_t cnt = std::min(kScoreBlock, lrows - b);
        const std::uint8_t* block = list.pq.data() + b * pq_m_;
        for (const ListQuery& q : lq) {
          const float* lut = luts.data() + q.qi * lut_sz;
          for (std::size_t j = 0; j < cnt; ++j) {
            const std::uint8_t* code = block + j * pq_m_;
            float sum = q.centroid_sim;
            for (std::size_t s = 0; s < pq_m_; ++s) {
              sum += lut[s * pq_k_ + code[s]];
            }
            sims[j] = sum;
          }
          offer_block(cand_for(q.qi), list, b, cnt, sims);
        }
      }
    } else {
      std::int32_t idots[kScoreBlock];
      for (std::size_t b = 0; b < lrows; b += kScoreBlock) {
        const std::size_t cnt = std::min(kScoreBlock, lrows - b);
        const std::int8_t* block = list.codes.data() + b * qstride_;
        const float* scales = list.scales.data() + b;
        for (const ListQuery& q : lq) {
          util::simd::dot_i8_block(qcodes.data() + q.qi * qstride_, block,
                                   qstride_, cnt, idots);
          const float qscale = qscales[q.qi];
          for (std::size_t j = 0; j < cnt; ++j) {
            sims[j] = static_cast<float>(idots[j]) * (qscale * scales[j]);
          }
          offer_block(cand_for(q.qi), list, b, cnt, sims);
        }
      }
    }
  };

  if (query_pool_ != nullptr && touched.size() >= 2) {
    // List-sharded parallel sweep. Each chunk accumulates into its own
    // per-query partial reservoirs and merges by re-offering: the merged
    // kept set is the unique top pool_k of the union regardless of chunk
    // boundaries or completion order, so any pool size is bit-identical.
    std::mutex merge_mutex;
    auto chunk = [&](std::size_t begin, std::size_t end) {
      std::vector<std::unique_ptr<PackedTopK>> local(nq);
      auto cand_for = [&](std::uint32_t qi) -> PackedTopK& {
        auto& t = local[qi];
        if (!t) t = std::make_unique<PackedTopK>(pool_k);
        return *t;
      };
      for (std::size_t t = begin; t < end; ++t) {
        sweep_list(touched[t], cand_for);
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      for (std::size_t qi = 0; qi < nq; ++qi) {
        if (!local[qi]) continue;
        // Keys re-offer losslessly: packing already canonicalized the
        // similarity, so unpack-and-repack is the identity.
        for (const std::uint64_t key : local[qi]->take_keys()) {
          candidates[qi].offer(key_id(key), key_sim(key));
        }
      }
    };
    query_pool_->parallel_for_chunked(touched.size(), 1, chunk);
  } else {
    auto cand_for = [&](std::uint32_t qi) -> PackedTopK& {
      return candidates[qi];
    };
    for (std::uint32_t li : touched) sweep_list(li, cand_for);
  }


  // Stage 3 — exact re-rank per query. The pool comes out unsorted (every
  // entry is rescored, so candidate order is irrelevant) and its exact
  // scores are written in place under the two-distance prefetch schedule;
  // the final top n is then selected with nth_element under the published
  // (similarity desc, id asc) order. query()'s re-rank heap computes the
  // same exact-score expression and keeps the same unique top-n set, so
  // the results are bit-identical.
  const float* base = normalized_.padded_data();
  // The int8 pool supports a sound exclusion bound: with eq = ||q - q~||
  // exact (stage 0) and er = ||r - r~|| exact (build time), every pool
  // entry satisfies |exact - approx| <= eq * (1 + er) + er =: eps. The
  // keep_n best-by-approx entries are exact-scored first; the worst of
  // those exact scores is a floor at least keep_n final entries reach, so
  // any tail entry with approx + eps < floor is strictly exact-worse than
  // keep_n others and can be dropped without touching its float row.
  std::vector<std::size_t> pool_sizes(nq, 0);
  auto rerank_query = [&](std::size_t qi) {
    const float* unit = units.data() + qi * stride;
    std::vector<std::uint64_t> keys = candidates[qi].take_keys();
    const std::size_t full_cn = keys.size();
    const std::size_t keep_n = std::min(n, full_cn);
    std::vector<Neighbor> scored;
    scored.reserve(full_cn);
    auto rerank_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (i + kRerankFar < hi) {
          prefetch_row(base + scored[i + kRerankFar].id * stride);
        }
        if (i + kRerankNear < hi) {
          prefetch_row_all(base + scored[i + kRerankNear].id * stride,
                           stride);
        }
        Neighbor& c = scored[i];
        c.similarity = util::simd::dot(unit, base + c.id * stride, stride);
      }
    };
    if (!pq && keep_n > 0 && full_cn > keep_n && !row_errs_.empty()) {
      const float eq = qerrs[qi];
      // Ascending key order is (approx sim desc, id asc) — the same cut
      // TopK's prune would make, now a single-compare partition.
      std::nth_element(keys.begin(),
                       keys.begin() + static_cast<std::ptrdiff_t>(keep_n) - 1,
                       keys.end());
      for (std::size_t i = 0; i < keep_n; ++i) {
        scored.push_back({key_id(keys[i]), 0.0F});
      }
      rerank_range(0, keep_n);
      float floor_sim = std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < keep_n; ++i) {
        floor_sim = std::min(floor_sim, scored[i].similarity);
      }
      // Cheap reject first: a bound key built from the index-wide max row
      // error dismisses most of the tail with one integer compare (eps is
      // monotone in the row error, so eps_i <= eps_max and any key beyond
      // the bound fails the per-row test too).
      const float eps_max =
          eq * (1.0F + max_row_err_) + max_row_err_ + kSimBoundMargin;
      const std::uint64_t bound_key =
          (static_cast<std::uint64_t>(
               ~sim_to_ordered(floor_sim - eps_max))
           << 32) |
          0xFFFFFFFFULL;
      for (std::size_t i = keep_n; i < full_cn; ++i) {
        if (keys[i] > bound_key) continue;
        const TokenId id = key_id(keys[i]);
        const float er = row_errs_[id];
        const float eps = eq * (1.0F + er) + er + kSimBoundMargin;
        if (key_sim(keys[i]) + eps >= floor_sim) {
          scored.push_back({id, 0.0F});
        }
      }
      rerank_range(keep_n, scored.size());
    } else {
      for (const std::uint64_t key : keys) {
        scored.push_back({key_id(key), 0.0F});
      }
      rerank_range(0, full_cn);
    }
    // Final selection under the published order, again on integer keys;
    // the returned similarity is the exact dot carried alongside, never an
    // unpacked key, so stored floats stay bit-identical to query()'s.
    struct KeyedNeighbor {
      std::uint64_t key;
      float sim;
    };
    const std::size_t cn = scored.size();
    const std::size_t keep = std::min(n, cn);
    std::vector<KeyedNeighbor> sel;
    sel.reserve(cn);
    for (const Neighbor& nb : scored) {
      sel.push_back({neighbor_key(nb.id, nb.similarity), nb.similarity});
    }
    const auto key_less = [](const KeyedNeighbor& a, const KeyedNeighbor& b) {
      return a.key < b.key;
    };
    if (keep == 0) {
      sel.clear();
    } else if (keep < cn) {
      std::nth_element(sel.begin(),
                       sel.begin() + static_cast<std::ptrdiff_t>(keep) - 1,
                       sel.end(), key_less);
      sel.resize(keep);
    }
    std::sort(sel.begin(), sel.end(), key_less);
    std::vector<Neighbor> out;
    out.reserve(keep);
    for (const KeyedNeighbor& kn : sel) {
      out.push_back({key_id(kn.key), kn.sim});
    }
    results[qi] = std::move(out);
    pool_sizes[qi] = std::min(full_cn, pool_k);
  };
  // Queries are fully independent after the sweep, so the re-rank shards
  // per query on the same pool; every query's work is self-contained and
  // the outcome is identical to the serial order.
  if (query_pool_ != nullptr && nq >= 2) {
    query_pool_->parallel_for_chunked(nq, 1, [&](std::size_t b,
                                                 std::size_t e) {
      for (std::size_t qi = b; qi < e; ++qi) {
        if (valid[qi]) rerank_query(qi);
      }
    });
  } else {
    for (std::size_t qi = 0; qi < nq; ++qi) {
      if (valid[qi]) rerank_query(qi);
    }
  }
  std::size_t last_pool = 0;
  std::size_t last_valid = nq;
  for (std::size_t qi = 0; qi < nq; ++qi) {
    if (!valid[qi]) continue;
    last_pool = pool_sizes[qi];
    last_valid = qi;
  }
  if (last_valid < nq) {
    metrics.probed_lists.set(static_cast<double>(last_probed[last_valid]));
    metrics.candidate_pool.set(static_cast<double>(last_pool));
  }
  {
    // One lock and one timestamp for the whole batch (the single-query path
    // pays both per query): each query is charged the batch mean.
    const double per_query =
        timer.elapsed_seconds() / static_cast<double>(nq);
    auto& lat = pq ? metrics.latency_pq : metrics.latency;
    std::lock_guard<std::mutex> lock(metrics.latency_mutex);
    for (std::size_t qi = 0; qi < nq; ++qi) lat.observe(per_query);
  }

  for (std::size_t qi = 0; qi < nq; ++qi) {
    if (!valid[qi]) continue;
    maybe_sample_recall(units.data() + qi * stride, results[qi], n);
  }
  return results;
}

std::size_t IvfKnnIndex::pq_bytes() const {
  if (!pq_enabled()) return 0;
  std::size_t bytes = 0;
  for (const List& list : lists_) bytes += list.pq.size();
  for (const EmbeddingMatrix& cb : pq_codebooks_) bytes += cb.memory_bytes();
  return bytes;
}

std::size_t IvfKnnIndex::list_bytes() const {
  if (pq_enabled()) return pq_bytes();
  std::size_t bytes = 0;
  for (const List& list : lists_) {
    bytes += list.codes.size() * sizeof(std::int8_t) +
             list.scales.size() * sizeof(float);
  }
  return bytes;
}

std::vector<float> IvfKnnIndex::reconstruct(TokenId id) const {
  const std::size_t dim = normalized_.dim();
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    const List& list = lists_[l];
    auto it = std::lower_bound(list.ids.begin(), list.ids.end(), id);
    if (it == list.ids.end() || *it != id) continue;
    const std::size_t i = static_cast<std::size_t>(it - list.ids.begin());
    std::vector<float> out(dim, 0.0F);
    if (pq_enabled()) {
      auto cen = centroids_.row(l);
      std::copy(cen.begin(), cen.end(), out.begin());
      const std::uint8_t* code = list.pq.data() + i * pq_m_;
      for (std::size_t s = 0; s < pq_m_; ++s) {
        const std::size_t begin = s * pq_dsub_;
        const std::size_t valid =
            begin < dim ? std::min(pq_dsub_, dim - begin) : 0;
        auto entry = pq_codebooks_[s].row(code[s]);
        for (std::size_t j = 0; j < valid; ++j) out[begin + j] += entry[j];
      }
    } else {
      const std::int8_t* codes = list.codes.data() + i * qstride_;
      const float scale = list.scales[i];
      for (std::size_t j = 0; j < dim; ++j) {
        out[j] = static_cast<float>(codes[j]) * scale;
      }
    }
    return out;
  }
  throw std::out_of_range("IvfKnnIndex::reconstruct: id not indexed");
}

std::size_t IvfKnnIndex::memory_bytes() const {
  std::size_t bytes = normalized_.memory_bytes() + centroids_.memory_bytes() +
                      lists_.capacity() * sizeof(List) +
                      row_errs_.capacity() * sizeof(float);
  for (const List& list : lists_) {
    bytes += list.ids.capacity() * sizeof(TokenId) +
             list.codes.capacity() * sizeof(std::int8_t) +
             list.scales.capacity() * sizeof(float) +
             list.pq.capacity() * sizeof(std::uint8_t);
  }
  for (const EmbeddingMatrix& cb : pq_codebooks_) {
    bytes += cb.memory_bytes();
  }
  bytes += pq_codebooks_.capacity() * sizeof(EmbeddingMatrix);
  return bytes;
}

}  // namespace netobs::embedding
