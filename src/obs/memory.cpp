#include "obs/memory.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/stats_stream.hpp"

namespace netobs::obs {

MemoryAccountant::~MemoryAccountant() {
  if (hub_handle_ != 0) StatsHub::global().remove(hub_handle_);
}

MemoryAccountant& MemoryAccountant::global() {
  static MemoryAccountant* instance = [] {
    auto* a = new MemoryAccountant();
    // Leaked on purpose (like the global registry pattern): probes owned by
    // static-lifetime objects may still run during shutdown.
    a->hub_handle_ = StatsHub::global().add(
        [a] { a->publish(MetricsRegistry::global()); });
    return a;
  }();
  return *instance;
}

MemoryAccountant::Ledger* MemoryAccountant::ledger(
    const std::string& subsystem, bool per_user) {
  std::lock_guard<std::mutex> lock(mutex_);
  ledgers_.emplace_back();
  Ledger& cell = ledgers_.back();
  cell.subsystem_ = subsystem;
  cell.per_user_ = per_user;
  return &cell;
}

void MemoryAccountant::release(Ledger* cell) {
  if (cell == nullptr) return;
  cell->active_.store(false, std::memory_order_relaxed);
}

std::uint64_t MemoryAccountant::add_probe(const std::string& subsystem,
                                          bool per_user, Probe probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t handle = next_handle_++;
  probes_.push_back(ProbeEntry{handle, subsystem, per_user, std::move(probe)});
  return handle;
}

void MemoryAccountant::remove_probe(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(probes_,
                [handle](const ProbeEntry& p) { return p.handle == handle; });
}

std::uint64_t MemoryAccountant::add_user_probe(
    std::function<std::uint64_t()> probe) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t handle = next_handle_++;
  user_probes_.emplace_back(handle, std::move(probe));
  return handle;
}

void MemoryAccountant::remove_user_probe(std::uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase_if(user_probes_,
                [handle](const auto& p) { return p.first == handle; });
}

MemorySnapshot MemoryAccountant::snapshot() const {
  // subsystem name -> (bytes, per_user); per_user is a property of the
  // subsystem, so mixed registrations resolve to "any registrant said so".
  std::map<std::string, std::pair<std::uint64_t, bool>> agg;
  MemorySnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Ledger& cell : ledgers_) {
    if (!cell.active_.load(std::memory_order_relaxed)) continue;
    auto& slot = agg[cell.subsystem_];
    slot.first += cell.bytes();
    slot.second = slot.second || cell.per_user_;
  }
  for (const ProbeEntry& p : probes_) {
    std::uint64_t bytes = 0;
    try {
      bytes = p.probe();
    } catch (...) {
      bytes = 0;
    }
    auto& slot = agg[p.subsystem];
    slot.first += bytes;
    slot.second = slot.second || p.per_user;
  }
  for (const auto& [handle, probe] : user_probes_) {
    (void)handle;
    std::uint64_t users = 0;
    try {
      users = probe();
    } catch (...) {
      users = 0;
    }
    snap.users = std::max(snap.users, users);
  }
  snap.subsystems.reserve(agg.size());
  for (const auto& [name, cell] : agg) {
    snap.subsystems.push_back(MemoryBytes{name, cell.first, cell.second});
    snap.total_bytes += cell.first;
    if (cell.second) snap.per_user_bytes += cell.first;
  }
  snap.bytes_per_user =
      static_cast<double>(snap.per_user_bytes) /
      static_cast<double>(snap.users == 0 ? 1 : snap.users);
  return snap;
}

std::string MemoryAccountant::to_json() const {
  MemorySnapshot snap = snapshot();
  std::string out;
  out.reserve(256 + snap.subsystems.size() * 64);
  char buf[64];
  out += "{\n";
  std::snprintf(buf, sizeof(buf), "  \"total_bytes\": %llu,\n",
                static_cast<unsigned long long>(snap.total_bytes));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"per_user_bytes\": %llu,\n",
                static_cast<unsigned long long>(snap.per_user_bytes));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"users\": %llu,\n",
                static_cast<unsigned long long>(snap.users));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"bytes_per_user\": %.3f,\n",
                snap.bytes_per_user);
  out += buf;
  out += "  \"subsystems\": [\n";
  for (std::size_t i = 0; i < snap.subsystems.size(); ++i) {
    const MemoryBytes& s = snap.subsystems[i];
    // Subsystem names are code-side identifiers (no quotes/backslashes to
    // escape by construction).
    out += "    {\"name\": \"" + s.subsystem + "\", \"bytes\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(s.bytes));
    out += buf;
    out += ", \"per_user\": ";
    out += s.per_user ? "true" : "false";
    out += "}";
    if (i + 1 < snap.subsystems.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

void MemoryAccountant::publish(MetricsRegistry& registry) const {
  MemorySnapshot snap = snapshot();
  for (const MemoryBytes& s : snap.subsystems) {
    registry
        .gauge("netobs_memory_bytes", "Live bytes attributed per subsystem",
               {{"subsystem", s.subsystem}})
        .set(static_cast<double>(s.bytes));
  }
  registry
      .gauge("netobs_memory_total_bytes",
             "Live bytes across all accounted subsystems")
      .set(static_cast<double>(snap.total_bytes));
  registry
      .gauge("netobs_memory_bytes_per_user",
             "Per-user state bytes divided by tracked users")
      .set(snap.bytes_per_user);
  registry
      .gauge("netobs_memory_tracked_users",
             "User population behind the bytes-per-user gauge")
      .set(static_cast<double>(snap.users));
}

}  // namespace netobs::obs
