// Tests for the memory accounting plane (obs/memory.hpp): ledger/probe
// aggregation, the /memz JSON document over a real socket, and the
// reconciliation of the subsystem byte estimates against the counting
// allocator (bench/alloc_count.hpp).
//
// This is the one test TU that defines NETOBS_ALLOC_COUNT_IMPL, so the
// whole test binary runs under the counting operator new/delete and
// heap_bytes_now() reports live usable bytes (0 under sanitizers, where
// the reconciliation cases skip).
#include <gtest/gtest.h>

#define NETOBS_ALLOC_COUNT_IMPL
#include "bench/alloc_count.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>

#include "embedding/matrix.hpp"
#include "obs/http_server.hpp"
#include "obs/memory.hpp"
#include "profile/session.hpp"
#include "util/intern_pool.hpp"

namespace netobs::obs {
namespace {

// ------------------------------------------------- ledger/probe aggregation

TEST(MemoryAccounting, LedgersAndProbesAggregateIntoSnapshots) {
  MemoryAccountant acct;
  MemoryAccountant::Ledger* flow_a = acct.ledger("flow_tables");
  MemoryAccountant::Ledger* flow_b = acct.ledger("flow_tables");
  MemoryAccountant::Ledger* sessions =
      acct.ledger("session_windows", /*per_user=*/true);
  flow_a->set(1000);
  flow_b->set(500);   // same subsystem: snapshots sum the cells
  sessions->set(4000);
  std::uint64_t probe = acct.add_probe("embedding_matrix", /*per_user=*/false,
                                       [] { return std::uint64_t{2500}; });
  std::uint64_t users_a = acct.add_user_probe([] { return std::uint64_t{8}; });
  std::uint64_t users_b = acct.add_user_probe([] { return std::uint64_t{5}; });

  MemorySnapshot snap = acct.snapshot();
  EXPECT_EQ(snap.total_bytes, 1000u + 500u + 4000u + 2500u);
  EXPECT_EQ(snap.per_user_bytes, 4000u);
  EXPECT_EQ(snap.users, 8u);  // max across user probes, not the sum
  EXPECT_DOUBLE_EQ(snap.bytes_per_user, 4000.0 / 8.0);
  ASSERT_EQ(snap.subsystems.size(), 3u);  // aggregated by name, name-sorted
  EXPECT_EQ(snap.subsystems[0].subsystem, "embedding_matrix");
  EXPECT_EQ(snap.subsystems[1].subsystem, "flow_tables");
  EXPECT_EQ(snap.subsystems[1].bytes, 1500u);
  EXPECT_EQ(snap.subsystems[2].subsystem, "session_windows");
  EXPECT_TRUE(snap.subsystems[2].per_user);

  // Retired sources drop out of the next snapshot.
  acct.release(flow_b);
  acct.remove_probe(probe);
  acct.remove_user_probe(users_a);
  snap = acct.snapshot();
  EXPECT_EQ(snap.total_bytes, 1000u + 4000u);
  EXPECT_EQ(snap.users, 5u);
  acct.remove_user_probe(users_b);

  // A throwing probe contributes 0 instead of killing the scrape.
  std::uint64_t bad = acct.add_probe("broken", false, []() -> std::uint64_t {
    throw std::runtime_error("subsystem gone");
  });
  EXPECT_EQ(acct.snapshot().total_bytes, 1000u + 4000u);
  acct.remove_probe(bad);
}

TEST(MemoryAccounting, PublishesGaugesIntoRegistry) {
  MemoryAccountant acct;
  acct.ledger("flow_tables")->set(2048);
  acct.ledger("session_windows", true)->set(1024);
  std::uint64_t users = acct.add_user_probe([] { return std::uint64_t{4}; });
  MetricsRegistry reg;
  acct.publish(reg);
  EXPECT_EQ(reg.gauge("netobs_memory_bytes", "",
                      {{"subsystem", "flow_tables"}})
                .value(),
            2048.0);
  EXPECT_EQ(reg.gauge("netobs_memory_total_bytes", "").value(), 3072.0);
  EXPECT_EQ(reg.gauge("netobs_memory_bytes_per_user", "").value(), 256.0);
  EXPECT_EQ(reg.gauge("netobs_memory_tracked_users", "").value(), 4.0);
  acct.remove_user_probe(users);
}

// ----------------------------------------- counting-allocator reconciliation

/// Live heap delta around `body`, or -1 when byte counting is unavailable
/// (sanitizer builds compile the counting allocator out).
template <class Fn>
std::int64_t heap_delta(Fn&& body) {
  std::uint64_t before = bench::heap_bytes_now();
  body();
  std::uint64_t after = bench::heap_bytes_now();
  return static_cast<std::int64_t>(after) - static_cast<std::int64_t>(before);
}

void expect_within_10pct(std::size_t estimate, std::int64_t actual,
                         const char* what) {
  ASSERT_GT(actual, 0) << what;
  double ratio = static_cast<double>(estimate) / static_cast<double>(actual);
  EXPECT_GE(ratio, 0.9) << what << ": estimate " << estimate << " vs actual "
                        << actual;
  EXPECT_LE(ratio, 1.1) << what << ": estimate " << estimate << " vs actual "
                        << actual;
}

TEST(MemoryAccounting, EmbeddingMatrixBytesReconcile) {
  if (bench::heap_bytes_now() == 0) {
    GTEST_SKIP() << "counting allocator inactive (sanitizer build)";
  }
  std::unique_ptr<embedding::EmbeddingMatrix> matrix;
  std::int64_t actual =
      heap_delta([&] {
        matrix = std::make_unique<embedding::EmbeddingMatrix>(4700, 100);
      });
  expect_within_10pct(matrix->memory_bytes(), actual, "embedding_matrix");
}

TEST(MemoryAccounting, InternPoolBytesReconcile) {
  if (bench::heap_bytes_now() == 0) {
    GTEST_SKIP() << "counting allocator inactive (sanitizer build)";
  }
  auto pool = std::make_unique<util::InternPool>();
  std::int64_t actual = heap_delta([&] {
    for (int i = 0; i < 4000; ++i) {
      // Long enough to spill the SSO buffer, like real FQDNs.
      pool->intern("svc" + std::to_string(i) +
                   ".tier1.edge.compute.cloud.example.com");
    }
  });
  EXPECT_EQ(pool->size(), 4000u);
  expect_within_10pct(pool->bytes(), actual, "intern_pool");
}

TEST(MemoryAccounting, SessionStoreBytesReconcile) {
  if (bench::heap_bytes_now() == 0) {
    GTEST_SKIP() << "counting allocator inactive (sanitizer build)";
  }
  auto store = std::make_unique<profile::SessionStore>();
  std::int64_t actual = heap_delta([&] {
    for (std::uint32_t user = 0; user < 64; ++user) {
      for (int visit = 0; visit < 200; ++visit) {
        store->ingest(user, visit * 10,
                      "host" + std::to_string(visit % 37) +
                          ".shard.service.example.com");
      }
    }
  });
  EXPECT_EQ(store->event_count(), 64u * 200u);
  expect_within_10pct(store->memory_bytes(), actual, "session_windows");
}

// ------------------------------------------------------- /memz over a socket

struct HttpReply {
  int status = 0;
  std::string head;
  std::string body;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` using raw sockets.
HttpReply http_get(std::uint16_t port, const std::string& path) {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n";
  const char* p = request.data();
  std::size_t remaining = request.size();
  while (remaining > 0) {
    ssize_t n = ::send(fd, p, remaining, 0);
    if (n <= 0) break;
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return reply;
  reply.head = raw.substr(0, split);
  reply.body = raw.substr(split + 4);
  if (reply.head.rfind("HTTP/1.1 ", 0) == 0) {
    reply.status = std::atoi(reply.head.c_str() + 9);
  }
  return reply;
}

bool balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(MemzEndpoint, ServesAccountantJsonOverRawSocket) {
  auto& acct = MemoryAccountant::global();
  std::uint64_t probe = acct.add_probe("memz_smoke_fixture", /*per_user=*/true,
                                       [] { return std::uint64_t{12345}; });
  std::uint64_t users = acct.add_user_probe([] { return std::uint64_t{10}; });

  HttpServerOptions options;
  options.port = 0;  // ephemeral
  HttpServer server(options, nullptr);  // nullptr = the global registry
  std::uint16_t port = server.start();
  ASSERT_GT(port, 0);

  // The index advertises the endpoint.
  auto index = http_get(port, "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/memz"), std::string::npos);

  // The /memz document: JSON schema with rollups and per-subsystem rows.
  auto memz = http_get(port, "/memz");
  EXPECT_EQ(memz.status, 200);
  EXPECT_NE(memz.head.find("application/json"), std::string::npos);
  EXPECT_TRUE(balanced(memz.body)) << memz.body;
  for (const char* key : {"\"total_bytes\"", "\"per_user_bytes\"", "\"users\"",
                          "\"bytes_per_user\"", "\"subsystems\"", "\"name\"",
                          "\"per_user\"", "memz_smoke_fixture"}) {
    EXPECT_NE(memz.body.find(key), std::string::npos) << key << "\n"
                                                      << memz.body;
  }

  // The same snapshot backs the Prometheus gauges on /metrics.
  auto metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find(
                "netobs_memory_bytes{subsystem=\"memz_smoke_fixture\"}"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("netobs_memory_bytes_per_user"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("netobs_build_info{"), std::string::npos);

  // Build metadata renders on /statusz (satellite of the same PR).
  auto statusz = http_get(port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("build_git"), std::string::npos);
  EXPECT_NE(statusz.body.find("build_simd_tier"), std::string::npos);

  server.stop();
  acct.remove_probe(probe);
  acct.remove_user_probe(users);
}

}  // namespace
}  // namespace netobs::obs
