#include <gtest/gtest.h>

#include "filter/blocklist.hpp"

namespace netobs::filter {
namespace {

TEST(DomainSet, ExactAndSubdomainMatch) {
  DomainSet set;
  set.add("tracker.net");
  EXPECT_TRUE(set.matches("tracker.net"));
  EXPECT_TRUE(set.matches("cdn.tracker.net"));
  EXPECT_TRUE(set.matches("a.b.tracker.net"));
  EXPECT_FALSE(set.matches("nottracker.net"));
  EXPECT_FALSE(set.matches("tracker.net.evil.com"));
  EXPECT_FALSE(set.matches("tracker.com"));
}

TEST(DomainSet, CanonicalisesCase) {
  DomainSet set;
  set.add("  ADS.Example.COM ");
  EXPECT_TRUE(set.matches("ads.example.com"));
}

TEST(DomainSet, RejectsInvalidEntries) {
  DomainSet set;
  set.add("not a domain");
  set.add("singlelabel");
  set.add("ok.example.com");
  EXPECT_EQ(set.size(), 1U);
  EXPECT_EQ(set.rejected(), 2U);
}

TEST(DomainSet, EmptySetMatchesNothing) {
  DomainSet set;
  EXPECT_FALSE(set.matches("anything.com"));
  EXPECT_FALSE(set.matches(""));
}

TEST(ParseHostsFile, ClassicFormat) {
  std::string content =
      "# adaway-style list\n"
      "127.0.0.1 localhost\n"
      "0.0.0.0 ads.example.com\n"
      "0.0.0.0 track.foo.net   # inline comment\n"
      "\n"
      "127.0.0.1 pixel.bar.org\n";
  auto domains = parse_hosts_file(content);
  EXPECT_EQ(domains, (std::vector<std::string>{
                         "ads.example.com", "track.foo.net", "pixel.bar.org"}));
}

TEST(ParseHostsFile, BareDomainList) {
  auto domains = parse_hosts_file("a.com\nb.net\n# comment\nc.org");
  EXPECT_EQ(domains.size(), 3U);
}

TEST(ParseHostsFile, SkipsGarbageLines) {
  auto domains = parse_hosts_file(
      "0.0.0.0 UPPER.Case.Com\nnot_valid_line!!!\n0.0.0.0\n");
  ASSERT_EQ(domains.size(), 1U);
  EXPECT_EQ(domains[0], "upper.case.com");
}

TEST(Blocklist, AggregatesMultipleLists) {
  Blocklist bl;
  EXPECT_EQ(bl.add_hosts_file("adaway", "0.0.0.0 a.ads.com\n"), 1U);
  EXPECT_EQ(bl.add_domains("yoyo", {"b.ads.net", "c.ads.org"}), 2U);
  EXPECT_EQ(bl.domain_count(), 3U);
  EXPECT_EQ(bl.list_names().size(), 2U);
  EXPECT_TRUE(bl.is_blocked("x.a.ads.com"));
  EXPECT_TRUE(bl.is_blocked("b.ads.net"));
  EXPECT_FALSE(bl.is_blocked("clean.com"));
}

TEST(Blocklist, DeduplicatesAcrossLists) {
  Blocklist bl;
  bl.add_domains("l1", {"dup.ads.com"});
  EXPECT_EQ(bl.add_domains("l2", {"dup.ads.com"}), 0U);
  EXPECT_EQ(bl.domain_count(), 1U);
}

TEST(Blocklist, FilterKeepsCleanHosts) {
  Blocklist bl;
  bl.add_domains("l", {"ads.com"});
  auto out = bl.filter({"good.com", "sub.ads.com", "ads.com", "fine.net"});
  EXPECT_EQ(out, (std::vector<std::string>{"good.com", "fine.net"}));
}

TEST(ToHostsFile, RoundTripsThroughParser) {
  std::vector<std::string> domains = {"ads.one.com", "track.two.net"};
  auto text = to_hosts_file(domains);
  auto parsed = parse_hosts_file(text);
  EXPECT_EQ(parsed, domains);  // localhost line is dropped by the parser
}

}  // namespace
}  // namespace netobs::filter
