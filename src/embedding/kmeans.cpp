#include "embedding/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

/// Centroids scored per dot_block call during assignment (same L1 sizing
/// rationale as the kNN score block).
constexpr std::size_t kCentroidBlock = 64;

/// Fixed parallel grain: chunk boundaries must not depend on the pool's
/// thread count or the parallel assignment would stay deterministic only
/// per machine. Assignments are computed per row independently, so any
/// chunking yields the same values — the fixed grain just keeps the chunk
/// *set* (and with it the scheduling and the update-reduction order)
/// canonical.
constexpr std::size_t kAssignGrain = 8192;

/// Below this many centroids the two-level pruned scan cannot recoup the
/// cost of building and probing the group layer; assignment stays exact.
constexpr std::size_t kGroupedMinCentroids = 128;

/// Cap on the per-chunk partial-sum scratch of the parallel centroid
/// update (doubles). Above it the update degrades to one chunk — still
/// deterministic, because the chunk set depends only on problem sizes.
constexpr std::size_t kUpdateScratchDoubles = std::size_t{1} << 24;  // 128 MiB

struct BestCentroid {
  std::uint32_t id = 0;
  float score = 0.0F;
};

/// `bias` (optional, one entry per centroid) is subtracted from each dot:
/// with bias[c] = ||c||^2 / 2 the argmax is the exact L2-nearest centroid
/// for non-unit centroids (the non-spherical mode); nullptr keeps the pure
/// dot-product scan of the spherical path.
BestCentroid best_centroid(const EmbeddingMatrix& centroids,
                           const float* unit_row,
                           const float* bias = nullptr) {
  const float* base = centroids.padded_data();
  const std::size_t stride = centroids.stride();
  const std::size_t k = centroids.rows();
  float scores[kCentroidBlock];
  BestCentroid best{0, -std::numeric_limits<float>::infinity()};
  for (std::size_t b = 0; b < k; b += kCentroidBlock) {
    std::size_t cnt = std::min(kCentroidBlock, k - b);
    util::simd::dot_block(unit_row, base + b * stride, stride, cnt, scores);
    if (bias != nullptr) {
      for (std::size_t j = 0; j < cnt; ++j) scores[j] -= bias[b + j];
    }
    for (std::size_t j = 0; j < cnt; ++j) {
      // Strict '>' keeps the lowest centroid id on ties — the deterministic
      // tie-break every caller relies on.
      if (scores[j] > best.score) {
        best = {static_cast<std::uint32_t>(b + j), scores[j]};
      }
    }
  }
  return best;
}

/// bias[c] = ||centroid c||^2 / 2, the correction that turns the dot_block
/// sweep into an exact L2 nearest-centroid scan.
std::vector<float> half_sq_norms(const EmbeddingMatrix& centroids) {
  std::vector<float> bias(centroids.rows());
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    auto row = centroids.row(c);
    bias[c] = 0.5F * util::simd::dot(row.data(), row.data(), row.size());
  }
  return bias;
}

/// Deterministic sample of `count` distinct indices from [0, n) in the
/// order the partial Fisher-Yates emits them.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t count,
                                        util::Pcg32& rng) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  count = std::min(count, n);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j =
        i + rng.next_below(static_cast<std::uint32_t>(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

/// The acceleration structure of the two-level pruned scan: centroids
/// re-clustered into ~sqrt(k) groups and copied group-contiguous so each
/// probed group is one dense dot_block sweep.
struct CentroidGrouping {
  EmbeddingMatrix reps;     ///< unit-norm group representatives
  EmbeddingMatrix grouped;  ///< centroid rows, group-major, id-ascending
  std::vector<std::uint32_t> orig_id;      ///< grouped row -> centroid id
  std::vector<std::uint32_t> group_begin;  ///< reps.rows() + 1 offsets
};

CentroidGrouping group_centroids(const EmbeddingMatrix& centroids,
                                 std::size_t fanout, util::ThreadPool* pool) {
  const std::size_t k = centroids.rows();
  KmeansParams gp;
  // Per-row scan cost is s + fanout * k / s dots (group layer + descended
  // groups), minimised at s = sqrt(fanout * k).
  gp.clusters = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::lround(std::sqrt(
          static_cast<double>(k) * static_cast<double>(std::max<std::size_t>(
                                       fanout, 1))))),
      1, k);
  gp.iterations = 4;
  // Fixed seed: the grouping is an acceleration structure, not part of the
  // clustering contract — one canonical layout per centroid matrix.
  gp.seed = 0xA5516EULL;
  gp.train_sample = 0;
  gp.assign_fanout = 0;  // the group layer itself is always exact
  KmeansResult g = spherical_kmeans(centroids, gp, pool);

  CentroidGrouping out;
  const std::size_t s = g.centroids.rows();
  out.reps = std::move(g.centroids);
  out.grouped = EmbeddingMatrix(k, centroids.dim());
  out.orig_id.resize(k);
  out.group_begin.assign(s + 1, 0);
  for (std::uint32_t a : g.assignment) ++out.group_begin[a + 1];
  for (std::size_t i = 1; i <= s; ++i) {
    out.group_begin[i] += out.group_begin[i - 1];
  }
  std::vector<std::uint32_t> fill(out.group_begin.begin(),
                                  out.group_begin.end() - 1);
  // Ascending centroid-id scan keeps each group's rows id-ascending, so the
  // pruned tie-break below sees candidates in a canonical order.
  for (std::size_t c = 0; c < k; ++c) {
    std::uint32_t pos = fill[g.assignment[c]]++;
    out.orig_id[pos] = static_cast<std::uint32_t>(c);
    auto src = centroids.row(c);
    std::copy(src.begin(), src.end(), out.grouped.row(pos).begin());
  }
  return out;
}

/// Per-worker scratch for the pruned scan (group scores + selected group
/// ids), reused across the rows of one chunk.
struct PruneScratch {
  std::vector<float> rep_scores;
  std::vector<std::uint32_t> top_groups;
  std::vector<float> top_scores;
};

BestCentroid best_centroid_pruned(const CentroidGrouping& grouping,
                                  const float* unit_row, std::size_t fanout,
                                  PruneScratch& scratch) {
  const std::size_t s = grouping.reps.rows();
  scratch.rep_scores.resize(s);
  {
    const float* base = grouping.reps.padded_data();
    const std::size_t stride = grouping.reps.stride();
    for (std::size_t b = 0; b < s; b += kCentroidBlock) {
      std::size_t cnt = std::min(kCentroidBlock, s - b);
      util::simd::dot_block(unit_row, base + b * stride, stride, cnt,
                            scratch.rep_scores.data() + b);
    }
  }
  // Top-fanout groups by (score desc, id asc) via insertion into a sorted
  // window — ascending-id scan plus strict '>' at the window floor gives
  // the id-ascending tie-break for free, with no per-row sort.
  fanout = std::min(std::max<std::size_t>(fanout, 1), s);
  auto& top_groups = scratch.top_groups;
  auto& top_scores = scratch.top_scores;
  top_groups.clear();
  top_scores.clear();
  for (std::uint32_t g = 0; g < s; ++g) {
    float score = scratch.rep_scores[g];
    if (top_groups.size() == fanout && score <= top_scores.back()) continue;
    std::size_t pos = top_scores.size();
    while (pos > 0 && score > top_scores[pos - 1]) --pos;
    if (top_groups.size() == fanout) {
      top_groups.pop_back();
      top_scores.pop_back();
    }
    top_groups.insert(top_groups.begin() + static_cast<std::ptrdiff_t>(pos), g);
    top_scores.insert(top_scores.begin() + static_cast<std::ptrdiff_t>(pos),
                      score);
  }

  const float* base = grouping.grouped.padded_data();
  const std::size_t stride = grouping.grouped.stride();
  float scores[kCentroidBlock];
  BestCentroid best{0, -2.0F};
  bool seeded = false;
  for (std::size_t fi = 0; fi < top_groups.size(); ++fi) {
    std::uint32_t g = top_groups[fi];
    const std::size_t begin = grouping.group_begin[g];
    const std::size_t end = grouping.group_begin[g + 1];
    for (std::size_t b = begin; b < end; b += kCentroidBlock) {
      std::size_t cnt = std::min(kCentroidBlock, end - b);
      util::simd::dot_block(unit_row, base + b * stride, stride, cnt, scores);
      for (std::size_t j = 0; j < cnt; ++j) {
        std::uint32_t id = grouping.orig_id[b + j];
        // Same contract as the exact scan: highest score, lowest centroid
        // id on ties — made explicit here because groups are visited in
        // score order, not id order.
        if (!seeded || scores[j] > best.score ||
            (scores[j] == best.score && id < best.id)) {
          best = {id, scores[j]};
          seeded = true;
        }
      }
    }
  }
  return best;
}

void assign_rows(const EmbeddingMatrix& rows,
                 const std::vector<std::size_t>& which,
                 const EmbeddingMatrix& centroids, util::ThreadPool* pool,
                 std::vector<std::uint32_t>* assignment,
                 std::vector<float>* fit,
                 const CentroidGrouping* grouping = nullptr,
                 std::size_t fanout = 0, const float* bias = nullptr) {
  const float* base = rows.padded_data();
  const std::size_t stride = rows.stride();
  auto chunk = [&](std::size_t begin, std::size_t end) {
    PruneScratch scratch;
    for (std::size_t i = begin; i < end; ++i) {
      BestCentroid best =
          grouping != nullptr
              ? best_centroid_pruned(*grouping, base + which[i] * stride,
                                     fanout, scratch)
              : best_centroid(centroids, base + which[i] * stride, bias);
      (*assignment)[i] = best.id;
      if (fit != nullptr) (*fit)[i] = best.score;
    }
  };
  if (pool != nullptr && which.size() >= 2 * kAssignGrain) {
    pool->parallel_for_chunked(which.size(), kAssignGrain, chunk);
  } else {
    chunk(0, which.size());
  }
}

}  // namespace

std::uint32_t nearest_centroid(const EmbeddingMatrix& centroids,
                               const float* unit_row) {
  return best_centroid(centroids, unit_row).id;
}

std::vector<std::uint32_t> assign_to_centroids(const EmbeddingMatrix& rows,
                                               const EmbeddingMatrix& centroids,
                                               util::ThreadPool* pool,
                                               std::size_t fanout,
                                               bool spherical) {
  std::optional<CentroidGrouping> grouping;
  if (spherical && fanout > 0 && centroids.rows() >= kGroupedMinCentroids) {
    grouping = group_centroids(centroids, fanout, pool);
  }
  std::vector<float> bias;
  if (!spherical) bias = half_sq_norms(centroids);
  std::vector<std::size_t> which(rows.rows());
  std::iota(which.begin(), which.end(), 0);
  std::vector<std::uint32_t> assignment(rows.rows(), 0);
  assign_rows(rows, which, centroids, pool, &assignment, nullptr,
              grouping ? &*grouping : nullptr, fanout,
              bias.empty() ? nullptr : bias.data());
  return assignment;
}

KmeansResult spherical_kmeans(const EmbeddingMatrix& rows, KmeansParams params,
                              util::ThreadPool* pool) {
  const std::size_t n = rows.rows();
  const std::size_t dim = rows.dim();
  const std::size_t k = params.clusters;
  if (k == 0 || k > n) {
    throw std::invalid_argument("spherical_kmeans: clusters must be in [1, rows]");
  }

  util::Pcg32 rng(params.seed, 0x1f5);

  // Initial centroids: k distinct rows, copied verbatim (rows are already
  // unit norm).
  KmeansResult result;
  result.centroids = EmbeddingMatrix(k, dim);
  auto seeds = sample_indices(n, k, rng);
  for (std::size_t c = 0; c < k; ++c) {
    auto src = rows.row(seeds[c]);
    std::copy(src.begin(), src.end(), result.centroids.row(c).begin());
  }

  // Lloyd iterations over the (possibly sampled) training set.
  std::vector<std::size_t> train =
      (params.train_sample != 0 && params.train_sample < n)
          ? sample_indices(n, params.train_sample, rng)
          : sample_indices(n, n, rng);
  std::sort(train.begin(), train.end());  // ascending for cache locality

  const bool pruned = params.spherical && params.assign_fanout > 0 &&
                      k >= kGroupedMinCentroids;

  std::vector<std::uint32_t> train_assign(train.size(), 0);
  std::vector<float> train_fit(train.size(), 0.0F);
  std::vector<double> accum(k * dim);
  std::vector<std::size_t> counts(k);
  const float* base = rows.padded_data();
  const std::size_t stride = rows.stride();

  // Fixed chunking for the parallel centroid update: per-chunk partial
  // sums in double, merged in ascending chunk order below. The chunk set
  // depends only on problem sizes, never on the pool, so the update is
  // bit-identical for any pool size (including none).
  std::size_t update_grain = kAssignGrain;
  std::size_t nchunks = train.empty()
                            ? 0
                            : (train.size() + update_grain - 1) / update_grain;
  if (nchunks * k * dim > kUpdateScratchDoubles) {
    update_grain = train.size();
    nchunks = 1;
  }
  std::vector<std::vector<double>> part_sum(nchunks);
  std::vector<std::vector<std::uint32_t>> part_cnt(nchunks);

  for (int iter = 0; iter < std::max(1, params.iterations); ++iter) {
    std::optional<CentroidGrouping> grouping;
    if (pruned) {
      grouping = group_centroids(result.centroids, params.assign_fanout, pool);
    }
    std::vector<float> bias;
    if (!params.spherical) bias = half_sq_norms(result.centroids);
    assign_rows(rows, train, result.centroids, pool, &train_assign,
                &train_fit, grouping ? &*grouping : nullptr,
                params.assign_fanout,
                bias.empty() ? nullptr : bias.data());

    // Mean update: per-chunk partial sums in double over the fixed train
    // order, merged sequentially in ascending chunk order.
    auto update_chunk = [&](std::size_t begin, std::size_t end) {
      std::size_t ci = begin / update_grain;
      auto& acc = part_sum[ci];
      auto& cnt = part_cnt[ci];
      acc.assign(k * dim, 0.0);
      cnt.assign(k, 0);
      for (std::size_t i = begin; i < end; ++i) {
        const float* row = base + train[i] * stride;
        double* dst = acc.data() + train_assign[i] * dim;
        for (std::size_t j = 0; j < dim; ++j) dst[j] += row[j];
        ++cnt[train_assign[i]];
      }
    };
    if (pool != nullptr && nchunks >= 2) {
      pool->parallel_for_chunked(train.size(), update_grain, update_chunk);
    } else {
      for (std::size_t ci = 0; ci < nchunks; ++ci) {
        update_chunk(ci * update_grain,
                     std::min(train.size(), (ci + 1) * update_grain));
      }
    }
    std::fill(accum.begin(), accum.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t ci = 0; ci < nchunks; ++ci) {
      const auto& acc = part_sum[ci];
      for (std::size_t idx = 0; idx < accum.size(); ++idx) {
        accum[idx] += acc[idx];
      }
      const auto& cnt = part_cnt[ci];
      for (std::size_t c = 0; c < k; ++c) counts[c] += cnt[c];
    }

    // Empty clusters are reseeded from the worst-fit training rows (lowest
    // similarity to their centroid, ascending train order on ties) so k
    // partitions survive to the end — deterministic, no RNG involved.
    std::vector<std::size_t> order;
    std::size_t next_worst = 0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = result.centroids.row(c);
      if (counts[c] == 0) {
        if (order.empty()) {
          order.resize(train.size());
          std::iota(order.begin(), order.end(), 0);
          std::stable_sort(order.begin(), order.end(),
                           [&](std::size_t a, std::size_t b) {
                             return train_fit[a] < train_fit[b];
                           });
        }
        const float* row = base + train[order[next_worst++]] * stride;
        std::copy(row, row + dim, centroid.begin());
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* src = accum.data() + c * dim;
      for (std::size_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(src[j] * inv);
      }
      if (params.spherical) {
        util::normalize(centroid);  // re-project to the sphere
      }
      // Non-spherical Lloyd keeps the raw mean — the L2-optimal centroid.
    }
  }

  result.assignment =
      assign_to_centroids(rows, result.centroids, pool, params.assign_fanout,
                          params.spherical);
  return result;
}

}  // namespace netobs::embedding
