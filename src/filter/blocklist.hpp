// Tracker/advertiser hostname filtering (Section 5.4).
//
// The paper removes ~3K tracker/ad hostnames (~8% of all connections,
// ~50 of the top-100 hosts) before profiling, using three hosts-file style
// blocklists (adaway.org, hosts-file.net, yoyo.org). This module parses that
// format and answers suffix-matching queries: blocking "tracker.net" also
// blocks "cdn.tracker.net".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace netobs::filter {

/// Set of domains with subdomain-inclusive matching.
class DomainSet {
 public:
  /// Adds a domain (canonicalised to lowercase). Invalid hostnames are
  /// ignored and counted in rejected().
  void add(std::string_view domain);

  /// True if host equals a stored domain or is a subdomain of one.
  bool matches(std::string_view host) const;

  std::size_t size() const { return domains_.size(); }
  std::size_t rejected() const { return rejected_; }

 private:
  std::unordered_set<std::string> domains_;
  std::size_t rejected_ = 0;
};

/// Parses hosts-file content. Accepts both the classic format
/// ("0.0.0.0 adserver.com  # comment") and bare domain-per-line lists;
/// comment lines (#) and localhost entries are skipped.
std::vector<std::string> parse_hosts_file(std::string_view content);

/// Aggregation of several named lists, mirroring the paper's three sources.
class Blocklist {
 public:
  /// Parses and adds a hosts-file; returns the number of domains added.
  std::size_t add_hosts_file(const std::string& list_name,
                             std::string_view content);

  /// Adds pre-parsed domains under a list name.
  std::size_t add_domains(const std::string& list_name,
                          const std::vector<std::string>& domains);

  bool is_blocked(std::string_view host) const { return set_.matches(host); }

  std::size_t domain_count() const { return set_.size(); }
  const std::vector<std::string>& list_names() const { return list_names_; }

  /// Filters a hostname sequence, returning only unblocked entries.
  std::vector<std::string> filter(const std::vector<std::string>& hosts) const;

 private:
  DomainSet set_;
  std::vector<std::string> list_names_;
};

/// Serialises domains in "0.0.0.0 <domain>" hosts-file format — used by the
/// synthetic world to export its tracker hosts through the same parser a
/// real deployment would use.
std::string to_hosts_file(const std::vector<std::string>& domains);

}  // namespace netobs::filter
