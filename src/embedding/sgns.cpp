#include "embedding/sgns.hpp"

#include <atomic>
#include <cmath>
#include <ctime>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

// Hogwild training races on the embedding rows by design; under TSan the
// multi-thread schedule switches to relaxed-atomic row access (see
// sgns_step_atomic) so the sanitizer sees no unannotated race.
#if defined(__SANITIZE_THREAD__)
#define NETOBS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NETOBS_TSAN 1
#endif
#endif

namespace netobs::embedding {

namespace {

/// Training telemetry is recorded per epoch, never per pair, so the Hogwild
/// inner loop stays untouched (the <3% overhead guarantee of the
/// operational-loop benches is structural, not just the enabled flag).
struct SgnsMetrics {
  obs::Counter& train_pairs;
  obs::Histogram& epoch_seconds;
  obs::Gauge& vocab_size;
  obs::Gauge& epoch_loss;
  obs::Gauge& pairs_per_second;
  obs::Gauge& train_threads;

  static SgnsMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SgnsMetrics m{
        reg.counter("netobs_embedding_train_pairs_total",
                    "SGNS (center, context) pairs processed"),
        reg.histogram("netobs_embedding_epoch_seconds",
                      "Wall time per SGNS training epoch",
                      obs::default_latency_buckets()),
        reg.gauge("netobs_embedding_vocab_size",
                  "Vocabulary size of the last trained model"),
        reg.gauge("netobs_embedding_epoch_loss",
                  "Mean per-pair loss of the last completed epoch"),
        reg.gauge("netobs_embedding_train_pairs_per_second",
                  "Throughput of the last completed epoch"),
        reg.gauge("netobs_embedding_train_threads",
                  "Hogwild worker threads of the last SGNS fit"),
    };
    return m;
  }
};

}  // namespace

HostEmbedding::HostEmbedding(std::vector<std::string> tokens,
                             EmbeddingMatrix central, EmbeddingMatrix context)
    : tokens_(std::move(tokens)),
      central_(std::move(central)),
      context_(std::move(context)) {
  if (central_.rows() != tokens_.size() ||
      context_.rows() != tokens_.size() ||
      central_.dim() != context_.dim()) {
    throw std::invalid_argument("HostEmbedding: shape mismatch");
  }
  index_.reserve(tokens_.size());
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    index_.emplace(tokens_[i], static_cast<TokenId>(i));
  }
}

std::optional<TokenId> HostEmbedding::id_of(const std::string& host) const {
  auto it = index_.find(host);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::span<const float>> HostEmbedding::vector_of(
    const std::string& host) const {
  auto id = id_of(host);
  if (!id) return std::nullopt;
  return vector_of(*id);
}

void HostEmbedding::save(std::ostream& os) const {
  std::uint64_t n = tokens_.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& t : tokens_) {
    std::uint32_t len = static_cast<std::uint32_t>(t.size());
    os.write(reinterpret_cast<const char*>(&len), sizeof(len));
    os.write(t.data(), static_cast<std::streamsize>(t.size()));
  }
  central_.save(os);
  context_.save(os);
  if (!os) throw std::runtime_error("HostEmbedding::save: write failed");
}

HostEmbedding HostEmbedding::load(std::istream& is) {
  std::uint64_t n = 0;
  is.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!is) throw std::runtime_error("HostEmbedding::load: bad header");
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint32_t len = 0;
    is.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!is || len > 253) {
      throw std::runtime_error("HostEmbedding::load: bad token length");
    }
    std::string t(len, '\0');
    is.read(t.data(), len);
    tokens.push_back(std::move(t));
  }
  EmbeddingMatrix central = EmbeddingMatrix::load(is);
  EmbeddingMatrix context = EmbeddingMatrix::load(is);
  return HostEmbedding(std::move(tokens), std::move(central),
                       std::move(context));
}

SgnsTrainer::SgnsTrainer(SgnsParams params, VocabularyParams vocab_params)
    : params_(params), vocab_params_(vocab_params) {
  if (params_.dim == 0) throw std::invalid_argument("SgnsTrainer: dim == 0");
  if (params_.context_radius < 1) {
    throw std::invalid_argument("SgnsTrainer: context_radius < 1");
  }
  if (params_.negatives < 1) {
    throw std::invalid_argument("SgnsTrainer: negatives < 1");
  }
  if (params_.epochs < 1) throw std::invalid_argument("SgnsTrainer: epochs < 1");
}

namespace {

/// One (input, target) SGD step with K negatives. Returns the pair loss.
/// The accumulated input gradient is left in `grad_input` (already scaled
/// by lr); the caller applies it to the input row(s) — one row for
/// SKIPGRAM, every context row for CBOW.
double sgns_step(std::span<const float> input, TokenId target_token,
                 const Vocabulary& vocab, EmbeddingMatrix& ctx_matrix,
                 int negatives, float lr, util::Pcg32& rng,
                 std::span<float> grad_input) {
  const auto& sig = util::shared_sigmoid_table();
  std::fill(grad_input.begin(), grad_input.end(), 0.0F);
  double loss = 0.0;

  auto update_output = [&](TokenId target, float label) {
    std::span<float> out_row = ctx_matrix.row(target);
    float score = util::dot(input, out_row);
    float pred = sig(score);
    float g = (label - pred) * lr;
    // Single fused pass: the input gradient accumulates from the output
    // row's pre-update values, then the output row absorbs g * input.
    util::fused_grad_update(g, input, out_row, grad_input);
    // Numerically-safe loss for reporting.
    float p = label > 0.5F ? pred : 1.0F - pred;
    loss += -std::log(std::max(p, 1e-7F));
  };

  update_output(target_token, 1.0F);
  for (int k = 0; k < negatives; ++k) {
    TokenId neg = vocab.sample_negative(rng);
    if (neg == target_token) continue;  // word2vec skips accidental hits
    update_output(neg, 0.0F);
  }
  return loss;
}

#if NETOBS_TSAN
/// TSan-only Hogwild step: shared context rows are read through one
/// relaxed-atomic snapshot and written through relaxed fetch_add, so the
/// sanitizer sees only annotated concurrent access. Element-wise loads are
/// not the fused kernel, so numerics can differ from sgns_step — which is
/// why this path replaces only the racy multi-thread schedule; threads == 1
/// always runs the plain, bit-exact step.
double sgns_step_atomic(std::span<const float> input, TokenId target_token,
                        const Vocabulary& vocab, EmbeddingMatrix& ctx_matrix,
                        int negatives, float lr, util::Pcg32& rng,
                        std::span<float> grad_input,
                        std::span<float> row_scratch) {
  const auto& sig = util::shared_sigmoid_table();
  std::fill(grad_input.begin(), grad_input.end(), 0.0F);
  double loss = 0.0;

  auto update_output = [&](TokenId target, float label) {
    std::span<float> out_row = ctx_matrix.row(target);
    for (std::size_t j = 0; j < out_row.size(); ++j) {
      row_scratch[j] =
          std::atomic_ref<float>(out_row[j]).load(std::memory_order_relaxed);
    }
    float score =
        util::dot(input, std::span<const float>(row_scratch.data(),
                                                out_row.size()));
    float pred = sig(score);
    float g = (label - pred) * lr;
    for (std::size_t j = 0; j < out_row.size(); ++j) {
      grad_input[j] += g * row_scratch[j];
      std::atomic_ref<float>(out_row[j])
          .fetch_add(g * input[j], std::memory_order_relaxed);
    }
    float p = label > 0.5F ? pred : 1.0F - pred;
    loss += -std::log(std::max(p, 1e-7F));
  };

  update_output(target_token, 1.0F);
  for (int k = 0; k < negatives; ++k) {
    TokenId neg = vocab.sample_negative(rng);
    if (neg == target_token) continue;
    update_output(neg, 0.0F);
  }
  return loss;
}

void atomic_load_row(std::span<const float> row, std::span<float> dst) {
  // atomic_ref<const T> arrives only in C++26; the const_cast is sound
  // because the underlying matrix storage is mutable.
  for (std::size_t j = 0; j < row.size(); ++j) {
    dst[j] = std::atomic_ref<float>(const_cast<float&>(row[j]))
                 .load(std::memory_order_relaxed);
  }
}

void atomic_add_row(std::span<float> row, std::span<const float> delta) {
  for (std::size_t j = 0; j < row.size(); ++j) {
    std::atomic_ref<float>(row[j]).fetch_add(delta[j],
                                             std::memory_order_relaxed);
  }
}
#endif

/// CPU seconds the calling thread has consumed (CLOCK_THREAD_CPUTIME_ID) —
/// sampled at job entry/exit to attribute work to Hogwild workers even
/// when the pool multiplexes them onto fewer hardware threads.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

HostEmbedding SgnsTrainer::fit(const std::vector<Sequence>& corpus,
                               util::ThreadPool* pool) {
  return train(corpus, nullptr, pool);
}

HostEmbedding SgnsTrainer::fit_warm(const std::vector<Sequence>& corpus,
                                    const HostEmbedding& previous,
                                    util::ThreadPool* pool) {
  return train(corpus, &previous, pool);
}

HostEmbedding SgnsTrainer::train(const std::vector<Sequence>& corpus,
                                 const HostEmbedding* previous,
                                 util::ThreadPool* pool) {
  Vocabulary vocab(corpus, vocab_params_);
  util::Pcg32 master(params_.seed, 0x5e'ed);

  EmbeddingMatrix central(vocab.size(), params_.dim);
  EmbeddingMatrix context(vocab.size(), params_.dim);
  central.init_uniform(master);
  // Context matrix starts at zero, as in word2vec.

  if (previous != nullptr) {
    if (previous->dim() != params_.dim) {
      throw std::invalid_argument(
          "SgnsTrainer::fit_warm: dimension mismatch with previous model");
    }
    for (std::size_t i = 0; i < vocab.size(); ++i) {
      auto old_id = previous->id_of(vocab.token(static_cast<TokenId>(i)));
      if (!old_id) continue;
      auto src_c = previous->vector_of(*old_id);
      auto src_x = previous->context_vector_of(*old_id);
      std::copy(src_c.begin(), src_c.end(), central.row(i).begin());
      std::copy(src_x.begin(), src_x.end(), context.row(i).begin());
    }
  }

  // Encode once; the per-epoch subsampling re-samples from these.
  std::vector<std::vector<TokenId>> encoded;
  encoded.reserve(corpus.size());
  std::uint64_t total_tokens = 0;
  for (const auto& seq : corpus) {
    auto ids = vocab.encode(seq);
    total_tokens += ids.size();
    encoded.push_back(std::move(ids));
  }
  if (total_tokens == 0) {
    throw std::invalid_argument("SgnsTrainer::fit: corpus encodes to nothing");
  }

  const std::uint64_t planned =
      total_tokens * static_cast<std::uint64_t>(params_.epochs);
  std::atomic<std::uint64_t> processed{0};

  auto& metrics = SgnsMetrics::get();
  metrics.vocab_size.set(static_cast<double>(vocab.size()));

  epoch_losses_.clear();
  epoch_durations_.clear();
  std::size_t threads = std::max<std::size_t>(1, params_.threads);
  worker_cpu_seconds_.assign(threads, 0.0);
  total_pairs_ = 0;
  pairs_per_second_ = 0.0;
  metrics.train_threads.set(static_cast<double>(threads));

  // One pool for the whole fit — epochs hand off worker jobs instead of
  // spawning threads. threads == 1 never touches a pool (bit-exact inline
  // path).
  std::optional<util::ThreadPool> owned_pool;
  util::ThreadPool* train_pool = nullptr;
  if (threads > 1) {
    if (pool != nullptr) {
      train_pool = pool;
    } else {
      owned_pool.emplace(threads);
      train_pool = &*owned_pool;
    }
  }

  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    obs::ScopedTimer epoch_timer(&metrics.epoch_seconds);
    std::atomic<double> epoch_loss{0.0};
    std::atomic<std::uint64_t> epoch_pairs{0};

    auto worker = [&](std::size_t worker_idx) {
      const double cpu_start = thread_cpu_seconds();
      util::Pcg32 rng(params_.seed,
                      util::mix64((static_cast<std::uint64_t>(epoch) << 16) ^
                                  worker_idx ^ 0xABCDULL));
      std::vector<float> grad(params_.dim, 0.0F);
      std::vector<float> cbow_input(params_.dim, 0.0F);
#if NETOBS_TSAN
      const bool atomic_rows = threads > 1;
      std::vector<float> center_scratch(params_.dim, 0.0F);
      std::vector<float> row_scratch(params_.dim, 0.0F);
#endif
      std::vector<TokenId> kept;
      double local_loss = 0.0;
      std::uint64_t local_pairs = 0;
      std::uint64_t local_tokens = 0;

      for (std::size_t s = worker_idx; s < encoded.size(); s += threads) {
        const auto& seq = encoded[s];
        kept.clear();
        for (TokenId id : seq) {
          if (rng.next_double() < vocab.keep_probability(id)) {
            kept.push_back(id);
          }
        }
        local_tokens += seq.size();
        if (kept.size() < 2) continue;

        for (std::size_t c = 0; c < kept.size(); ++c) {
          int radius = params_.context_radius;
          if (params_.dynamic_window) {
            radius = 1 + static_cast<int>(rng.next_below(
                             static_cast<std::uint32_t>(radius)));
          }
          // Linear LR decay over all planned token visits.
          std::uint64_t seen =
              processed.load(std::memory_order_relaxed) + local_tokens;
          float progress =
              static_cast<float>(seen) / static_cast<float>(planned);
          float lr = std::max(params_.lr_min,
                              params_.lr_start * (1.0F - progress));

          std::size_t lo = c >= static_cast<std::size_t>(radius)
                               ? c - static_cast<std::size_t>(radius)
                               : 0;
          std::size_t hi = std::min(kept.size() - 1,
                                    c + static_cast<std::size_t>(radius));

          if (params_.mode == SgnsMode::kSkipGram) {
            for (std::size_t j = lo; j <= hi; ++j) {
              if (j == c) continue;
              std::span<float> center_row = central.row(kept[c]);
#if NETOBS_TSAN
              if (atomic_rows) {
                atomic_load_row(center_row, center_scratch);
                local_loss += sgns_step_atomic(
                    center_scratch, kept[j], vocab, context,
                    params_.negatives, lr, rng, grad, row_scratch);
                atomic_add_row(center_row, grad);
                ++local_pairs;
                continue;
              }
#endif
              local_loss += sgns_step(center_row, kept[j], vocab, context,
                                      params_.negatives, lr, rng, grad);
              util::axpy(1.0F, grad, center_row);
              ++local_pairs;
            }
          } else {
            // CBOW: averaged context predicts the center (cbow_mean=1).
            if (hi == lo) continue;  // no context
            std::fill(cbow_input.begin(), cbow_input.end(), 0.0F);
            float count = 0.0F;
            for (std::size_t j = lo; j <= hi; ++j) {
              if (j == c) continue;
#if NETOBS_TSAN
              if (atomic_rows) {
                atomic_load_row(central.row(kept[j]), center_scratch);
                util::axpy(1.0F, center_scratch, cbow_input);
                count += 1.0F;
                continue;
              }
#endif
              util::axpy(1.0F, central.row(kept[j]), cbow_input);
              count += 1.0F;
            }
            if (count == 0.0F) continue;
            util::scale(std::span<float>(cbow_input), 1.0F / count);
#if NETOBS_TSAN
            if (atomic_rows) {
              local_loss += sgns_step_atomic(cbow_input, kept[c], vocab,
                                             context, params_.negatives, lr,
                                             rng, grad, row_scratch);
              for (std::size_t j = lo; j <= hi; ++j) {
                if (j == c) continue;
                atomic_add_row(central.row(kept[j]), grad);
              }
              ++local_pairs;
              continue;
            }
#endif
            local_loss += sgns_step(cbow_input, kept[c], vocab, context,
                                    params_.negatives, lr, rng, grad);
            for (std::size_t j = lo; j <= hi; ++j) {
              if (j == c) continue;
              util::axpy(1.0F, grad, central.row(kept[j]));
            }
            ++local_pairs;
          }
        }
        // Publish progress in batches to keep the atomic cheap.
        processed.fetch_add(local_tokens, std::memory_order_relaxed);
        local_tokens = 0;
      }
      processed.fetch_add(local_tokens, std::memory_order_relaxed);
      epoch_loss.fetch_add(local_loss);
      epoch_pairs.fetch_add(local_pairs);
      // Distinct index per worker; no synchronisation needed.
      worker_cpu_seconds_[worker_idx] += thread_cpu_seconds() - cpu_start;
    };

    if (threads == 1) {
      worker(0);
    } else {
      train_pool->parallel_for(threads, worker);
    }

    std::uint64_t pairs = epoch_pairs.load();
    epoch_losses_.push_back(pairs == 0 ? 0.0 : epoch_loss.load() /
                                                   static_cast<double>(pairs));
    double seconds = epoch_timer.stop();
    epoch_durations_.push_back(seconds);
    metrics.train_pairs.inc(pairs);
    metrics.epoch_loss.set(epoch_losses_.back());
    if (seconds > 0.0) {
      metrics.pairs_per_second.set(static_cast<double>(pairs) / seconds);
    }
    total_pairs_ += pairs;
  }

  double total_wall = 0.0;
  for (double s : epoch_durations_) total_wall += s;
  if (total_wall > 0.0) {
    pairs_per_second_ = static_cast<double>(total_pairs_) / total_wall;
  }

  return HostEmbedding(vocab.tokens(), std::move(central), std::move(context));
}

}  // namespace netobs::embedding
