// Heap-allocation counting for the allocs/event numbers in
// BENCH_micro.json's ingest_throughput section, plus live-byte tracking
// for reconciling the obs::MemoryAccountant ledger against the real heap.
//
// Usage: exactly one translation unit per binary defines
// NETOBS_ALLOC_COUNT_IMPL before including this header — that TU provides
// the program-wide replacement operator new/delete (replaceable allocation
// functions must be defined exactly once per program). Every other includer
// just reads the counters. Binaries that never define the macro still link;
// allocations_now() / heap_bytes_now() then stay at 0 and alloc-derived
// metrics read as "not measured".
//
// Live bytes are measured with malloc_usable_size() on the pointer the
// allocator actually returned, so the number includes glibc chunk rounding —
// the same rounding util::malloc_rounded models on the accounting side.
//
// Under ASan/TSan/MSan the replacement is compiled out (the sanitizer
// runtimes intercept the allocator themselves) and the counters stay 0.
#pragma once

#include <atomic>
#include <cstdint>

namespace netobs::bench {

inline std::atomic<std::uint64_t> g_heap_allocations{0};
inline std::atomic<std::uint64_t> g_heap_live_bytes{0};

/// Total operator-new calls in this process so far (0 when the counting
/// operator new is not linked in — see the header comment).
inline std::uint64_t allocations_now() {
  return g_heap_allocations.load(std::memory_order_relaxed);
}

/// Live operator-new bytes (usable sizes) right now; 0 when the counting
/// allocator is not linked in — callers treat 0 as "not measured".
inline std::uint64_t heap_bytes_now() {
  return g_heap_live_bytes.load(std::memory_order_relaxed);
}

}  // namespace netobs::bench

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#undef NETOBS_ALLOC_COUNT_IMPL
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#undef NETOBS_ALLOC_COUNT_IMPL
#endif
#endif

#ifdef NETOBS_ALLOC_COUNT_IMPL

#include <malloc.h>

#include <cstdlib>
#include <new>

namespace {

void* netobs_counted_alloc(std::size_t size) {
  netobs::bench::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) {
    netobs::bench::g_heap_live_bytes.fetch_add(malloc_usable_size(p),
                                               std::memory_order_relaxed);
  }
  return p;
}

void* netobs_counted_alloc_aligned(std::size_t size, std::size_t align) {
  netobs::bench::g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  netobs::bench::g_heap_live_bytes.fetch_add(malloc_usable_size(p),
                                             std::memory_order_relaxed);
  return p;
}

void netobs_counted_free(void* p) {
  if (p != nullptr) {
    netobs::bench::g_heap_live_bytes.fetch_sub(malloc_usable_size(p),
                                               std::memory_order_relaxed);
  }
  std::free(p);
}

}  // namespace

// The replacements pair new->malloc with delete->free, so mixed
// new/free-path ownership across TUs stays consistent. GCC cannot see that
// pairing through the replacement and warns on every inlined delete; the
// diagnostic is a false positive here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  if (void* p = netobs_counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  if (void* p = netobs_counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return netobs_counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return netobs_counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = netobs_counted_alloc_aligned(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = netobs_counted_alloc_aligned(
          size, static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { netobs_counted_free(p); }
void operator delete[](void* p) noexcept { netobs_counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { netobs_counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept {
  netobs_counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  netobs_counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  netobs_counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  netobs_counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  netobs_counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  netobs_counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  netobs_counted_free(p);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // NETOBS_ALLOC_COUNT_IMPL
