// Approximate cosine kNN via an inverted-file (IVF) index: spherical
// k-means coarse quantizer + int8 scalar-quantized list scan + exact
// float re-rank.
//
// The exact blocked sweep (CosineKnnIndex) touches every row per query —
// 4 * dim bytes * rows of memory traffic. At the paper's vocabulary scale
// (~470K hostnames, Section 4.1) that sweep dominates session-profiling
// latency. This index cuts the scanned volume two ways:
//
//   1. Coarse partition: rows are clustered into `nlists` k-means
//      partitions (kmeans.hpp); a query scores only the centroids and
//      descends into the `nprobe` best lists — a ~nlists/nprobe fraction
//      of the corpus.
//   2. Scalar quantization: list rows are stored as int8 codes with one
//      float scale per row (code = round(x * 127 / max|x|)), so the list
//      scan reads 1 byte per element instead of 4 and runs on the integer
//      dot kernel (simd::dot_i8), which is exactly identical across SIMD
//      tiers.
//
// The int8 scan only *ranks candidates*: the best `rerank * n` approximate
// ids are re-scored against the full-precision unit-norm rows with the same
// simd::dot the exact index uses, so returned similarities are exact floats
// and the output order is the published (similarity desc, id asc) one.
// Quantization error therefore costs recall only, never precision of the
// reported scores. With nprobe == nlists and a sufficient re-rank pool the
// index reproduces CosineKnnIndex bit-for-bit (the oracle tests assert
// this); at the default nprobe it trades a bounded recall loss (gated at
// recall@1000 >= 0.98 in the bench suite) for a >5x latency cut.
//
// Everything is deterministic: k-means is seeded, list order is ascending
// id, tie-breaks are (score desc, id asc) at every stage, and the kernels
// are bit-compatible across tiers (int8 exactly; float per the simd.hpp
// contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "embedding/kmeans.hpp"
#include "embedding/knn.hpp"
#include "util/simd.hpp"

namespace netobs::embedding {

/// Optional product quantization of the list payload (residual PQ). When
/// enabled (m > 0) the inverted lists store m-byte PQ codes instead of the
/// qstride int8 rows: each row's residual against its coarse centroid is
/// split into m subspaces and every subspace quantized to its nearest
/// entry of a 2^bits-entry codebook (plain L2 k-means over the residual
/// subvectors, kmeans.hpp spherical = false). A query scores a row as
///
///   q . row = q . centroid + q . residual
///           ~ centroid_score + sum_s LUT_s[code_s]
///
/// where LUT_s[j] = q_s . codebook_s[j] is computed once per query — the
/// classic asymmetric-distance scan, m table adds per row instead of a
/// qstride-byte integer dot. The exact float re-rank stays, so PQ (like
/// int8) costs recall only, never precision of the published similarities.
/// Memory per row drops from qstride + 4 bytes (int8 codes + scale) to m
/// bytes — the knob that fits multi-million-host universes in RAM.
struct IvfPqParams {
  /// Subspaces per row (bytes per PQ code); 0 disables PQ and keeps the
  /// int8 scalar-quantized lists. Clamped to [1, dim] when enabled; each
  /// subspace covers ceil(dim / m) consecutive dimensions (the last one
  /// zero-padded).
  std::size_t m = 0;
  /// log2 codebook entries per subspace, clamped to [1, 8]; codes are
  /// stored one byte each regardless, so bits < 8 trims codebook training
  /// and table size, not the per-row footprint.
  std::size_t bits = 8;
};

struct IvfParams {
  /// Coarse partitions; 0 = auto (~sqrt(rows), clamped to [1, rows]).
  std::size_t nlists = 0;
  /// Partitions scanned per query (clamped to nlists). The recall knob.
  std::size_t nprobe = 16;
  /// Candidate-pool multiplier: the int8 stage keeps rerank * n candidates
  /// for the exact re-rank stage (clamped to at least n).
  std::size_t rerank = 4;
  /// Lloyd iterations for the cold build. 6 is the measured knee at
  /// deployment scale: recall@1000 holds at ~0.992 (vs ~0.993 at 8) while
  /// the dominant k-means stage sheds a quarter of its time. Shrinking
  /// train_sample instead costs real recall — iterate less, sample wide.
  int kmeans_iterations = 6;
  /// Rows sampled for the k-means Lloyd iterations (0 = all rows).
  std::size_t train_sample = 131072;
  std::uint64_t seed = 2021;
  /// When > 0, one query in every `recall_sample_every` also runs the exact
  /// sweep and publishes the observed recall@n to the metrics registry —
  /// cheap continuous recall monitoring in production.
  std::size_t recall_sample_every = 0;
  /// Centroid groups descended into by the two-level pruned assignment
  /// during build (kmeans.hpp); 0 = exact full centroid scan per row. The
  /// default trims the dominant assignment stage ~3.4x at paper scale
  /// (recall@1000 stays >= 0.99, gated in the bench suite). Queries are
  /// unaffected — pruning only moves rows near group boundaries between
  /// lists.
  std::size_t assign_fanout = 4;
  /// Residual product quantization of the list payload (off by default).
  IvfPqParams pq;
};

/// Wall-clock breakdown of the most recent build()/warm build, for the
/// retrain status plane and the ivf_build bench section. Cold builds:
/// kmeans_s covers Lloyd training plus the final all-rows assignment
/// (spherical_kmeans does both), assign_s is zero. Warm rebuilds:
/// kmeans_s is zero, assign_s is the all-rows assignment against the kept
/// centroids. encode_s is the int8 list encode in both cases.
struct IvfBuildStats {
  double kmeans_s = 0.0;
  double assign_s = 0.0;
  double encode_s = 0.0;
  /// PQ codebook training + encode seconds (0 when PQ is off); included in
  /// encode_s' sibling total below.
  double pq_train_s = 0.0;
  double total_s = 0.0;
};

class IvfKnnIndex : public KnnIndex {
 public:
  /// Builds from a raw matrix (rows indexed by TokenId): normalises rows,
  /// trains the coarse quantizer, quantizes every row into its list.
  /// `pool` (optional) parallelises training/assignment; the built index is
  /// bit-identical with or without it and must outlive the pool only if
  /// queries keep using it.
  explicit IvfKnnIndex(const EmbeddingMatrix& matrix, IvfParams params = {},
                       util::ThreadPool* pool = nullptr);

  /// Builds from a model's central vectors.
  explicit IvfKnnIndex(const HostEmbedding& embedding, IvfParams params = {},
                       util::ThreadPool* pool = nullptr);

  /// Warm rebuild: reuses `warm_centroids` (e.g. yesterday's quantizer from
  /// a daily retrain) and skips Lloyd training entirely — rows are just
  /// assigned and quantized. Embedding drift between consecutive retrains
  /// is small, so recall is within noise of a cold build at a fraction of
  /// the build cost.
  IvfKnnIndex(const EmbeddingMatrix& matrix,
              const EmbeddingMatrix& warm_centroids, IvfParams params = {},
              util::ThreadPool* pool = nullptr);

  std::vector<Neighbor> query(std::span<const float> query_vec,
                              std::size_t n) const override;

  /// List-centric batched queries: every query's probe lists are computed
  /// first, the batch is bucketed by inverted list, and each touched list's
  /// codes are swept exactly once — every cache-hot block of kScoreBlock
  /// rows is scored against all queries probing that list (dot_i8_block /
  /// the PQ LUT), instead of each query gathering its lists independently.
  /// Sharded by touched list across set_thread_pool()'s pool when one is
  /// attached. Results are bit-identical to query() per entry for ANY
  /// nprobe, pool size and SIMD tier pairing that query() itself supports:
  /// probe selection reuses the single-query TopK logic, candidate scores
  /// are the same expressions, and the bounded top-k reservoir keeps the
  /// unique (similarity desc, id asc) top set regardless of offer order.
  std::vector<std::vector<Neighbor>> query_batch(
      const std::vector<std::vector<float>>& queries,
      std::size_t n) const override;

  /// Opts query_batch into list-sharded parallel sweeps on `pool` (nullptr
  /// = serial). Batched results stay bit-identical either way; the pool
  /// must outlive any concurrent queries.
  void set_thread_pool(util::ThreadPool* pool) override { query_pool_ = pool; }

  /// Appends rows (TokenIds continue from size()) without retraining the
  /// quantizer: each new row is normalised, assigned to its nearest
  /// centroid and quantized into that list. Intended for intra-day
  /// vocabulary growth between daily retrains.
  void add_rows(const EmbeddingMatrix& more);

  std::size_t size() const override { return normalized_.rows(); }
  std::size_t dim() const override { return normalized_.dim(); }
  KnnBackend backend() const override { return KnnBackend::kIvf; }
  std::size_t memory_bytes() const override;

  std::size_t nlists() const { return centroids_.rows(); }
  const IvfParams& params() const { return params_; }

  bool pq_enabled() const { return !pq_codebooks_.empty(); }
  /// Bytes per row of PQ payload (m); 0 when PQ is off.
  std::size_t pq_code_bytes_per_row() const {
    return pq_enabled() ? pq_m_ : 0;
  }
  /// Total PQ bytes: per-list codes plus the shared codebooks (0 when off).
  std::size_t pq_bytes() const;
  /// The compressible list payload: int8 codes + scales, or PQ codes +
  /// codebooks — what scalar quantization vs PQ trades. Excludes the
  /// full-precision row matrix (kept for the exact re-rank either way) and
  /// the per-list id arrays (identical in both layouts).
  std::size_t list_bytes() const;

  /// Decodes row `id` back to full precision: coarse centroid + dequantized
  /// residual (PQ) or the scaled int8 row (scalar quantization). What the
  /// approximate scan "sees" for the row — diagnostics and the round-trip
  /// error-bound tests; not a hot path (O(nlists * log) list lookup).
  std::vector<float> reconstruct(TokenId id) const;

  /// Trained coarse quantizer — feed into the warm-rebuild constructor of
  /// the next day's index.
  const EmbeddingMatrix& centroids() const { return centroids_; }

  /// The unit-norm padded row matrix backing the exact re-rank stage.
  const EmbeddingMatrix& normalized_rows() const { return normalized_; }

  /// Stage timings of the most recent build (see IvfBuildStats).
  const IvfBuildStats& build_stats() const { return build_stats_; }

  /// SHA-256 (hex) over the index contents: centroids, then every list's
  /// ids / int8 codes / scales in list order. Two indexes agree on the hash
  /// iff they would answer every query identically — the pool-invariance
  /// oracle used by the tests and the bench gate.
  std::string contents_hash() const;

 private:
  /// One inverted list: ids ascending. Scalar-quantized layout: codes[i]
  /// the qstride_-padded int8 row for ids[i], scales[i] its dequantisation
  /// factor. PQ layout: pq[i * m .. (i+1) * m) the per-subspace codebook
  /// indexes for ids[i] (codes/scales stay empty — that is the memory win).
  struct List {
    std::vector<TokenId> ids;
    std::vector<std::int8_t, util::simd::AlignedAllocator<std::int8_t>> codes;
    std::vector<float> scales;
    std::vector<std::uint8_t> pq;
  };

  void build(util::ThreadPool* pool, const EmbeddingMatrix* warm_centroids);
  /// Serial append path (add_rows): quantizes rows [first_row, rows) into
  /// their assigned lists (int8 or, when PQ is on, codes against the kept
  /// codebooks — add_rows never retrains them).
  void quantize_into_lists(const std::vector<std::uint32_t>& assignment,
                           std::size_t first_row);
  /// Build-time encode: sizes every list up front (serial slot pass in
  /// ascending row order, so per-list ids stay ascending), then fills the
  /// disjoint slots pool-parallel — bit-identical for any pool size.
  void encode_lists(const std::vector<std::uint32_t>& assignment,
                    util::ThreadPool* pool);
  /// PQ path of the build encode: trains the per-subspace codebooks on the
  /// residuals (deterministic L2 k-means) and fills every list's pq codes.
  void train_pq(const std::vector<std::uint32_t>& assignment,
                const std::vector<std::uint32_t>& slot,
                util::ThreadPool* pool);
  /// The residual subvectors of rows [first_row, rows) for one subspace,
  /// as a padded matrix ready for kmeans / assignment sweeps.
  EmbeddingMatrix residual_submatrix(
      const std::vector<std::uint32_t>& assignment, std::size_t first_row,
      std::size_t subspace) const;
  /// Fills lut[s * pq_k_ + j] = dot(q_s, codebook_s[j]) for every subspace
  /// — the per-query table of the asymmetric-distance scan.
  void build_pq_lut(const float* unit_query, float* lut) const;

  /// The shared query core; `unit_query` must be stride() floats, padded,
  /// aligned, unit norm.
  std::vector<Neighbor> scan(const float* unit_query, std::size_t n) const;

  /// Exact blocked sweep over all rows (the recall sampler's oracle).
  std::vector<Neighbor> exact_scan(const float* unit_query,
                                   std::size_t n) const;

  /// Continuous recall sampling shared by query() and query_batch(): one
  /// query in every recall_sample_every also runs the exact sweep.
  void maybe_sample_recall(const float* unit_query,
                           const std::vector<Neighbor>& out,
                           std::size_t n) const;

  EmbeddingMatrix normalized_;  ///< all rows, unit norm (re-rank stage)
  EmbeddingMatrix centroids_;
  std::vector<List> lists_;
  /// Exact ||row - dequant(int8 row)|| per TokenId, slightly inflated for
  /// float-rounding soundness — the batched re-rank combines it with the
  /// query-side error into a bound that skips pool entries which provably
  /// cannot reach the exact top n. Empty in PQ mode (the PQ pool is always
  /// fully re-ranked).
  std::vector<float> row_errs_;
  float max_row_err_ = 0.0F;  ///< max of row_errs_ — the cheap reject bound
  IvfParams params_;
  IvfBuildStats build_stats_;
  std::size_t qstride_ = 0;  ///< int8 row stride (dim padded to 32 bytes)
  // PQ state (empty / zero when PQ is off).
  std::vector<EmbeddingMatrix> pq_codebooks_;  ///< m matrices, pq_k_ x pq_dsub_
  std::size_t pq_m_ = 0;     ///< subspaces (clamped)
  std::size_t pq_dsub_ = 0;  ///< dims per subspace (ceil(dim / m))
  std::size_t pq_k_ = 0;     ///< codebook entries (min(2^bits, rows))
  util::ThreadPool* query_pool_ = nullptr;  ///< batched-query sharding
  mutable std::atomic<std::uint64_t> query_seq_{0};  ///< recall sampling clock
};

}  // namespace netobs::embedding
