#include "content/crawler.hpp"

#include <algorithm>
#include <stdexcept>

namespace netobs::content {

ContentCrawler::ContentCrawler(const synth::HostnameUniverse& universe,
                               PageModelParams params)
    : universe_(&universe),
      model_(universe.topic_count(), params),
      seed_(params.seed) {}

std::optional<Document> ContentCrawler::fetch(std::size_t host_index) const {
  const auto& host = universe_->host(host_index);
  if (!host.crawlable) return std::nullopt;
  // Deterministic page per host.
  util::Pcg32 rng(seed_, util::mix64(host_index ^ 0xFE7C4));
  return model_.sample_page(host.topic_mix, rng);
}

std::optional<Document> ContentCrawler::fetch(
    const std::string& hostname) const {
  return fetch(universe_->index_of(hostname));
}

double ContentCrawler::fetch_failure_rate() const {
  return universe_->uncrawlable_fraction();
}

ContentCrawler::ExpansionResult ContentCrawler::expand_labels(
    const ontology::HostLabeler& seed, const ontology::CategorySpace& space,
    double min_confidence) const {
  ExpansionResult result{ontology::HostLabeler(seed.category_count()), 0, 0,
                         0, 0, 0.0};
  for (const auto& [host, label] : seed.labels()) {
    result.labeler.set_label(host, label);
  }

  const auto& tops = space.top_level_ids();
  std::size_t topics = tops.size();

  // Map a seed label to its dominant topic for classifier training.
  auto dominant_topic_of_label =
      [&](const ontology::CategoryVector& label) -> std::size_t {
    std::vector<double> mass(topics, 0.0);
    for (std::size_t f = 0; f < label.size(); ++f) {
      std::size_t top_flat = space.top_level_of(f);
      auto it = std::find(tops.begin(), tops.end(), top_flat);
      mass[static_cast<std::size_t>(it - tops.begin())] += label[f];
    }
    return static_cast<std::size_t>(
        std::max_element(mass.begin(), mass.end()) - mass.begin());
  };

  // --- Train on labeled, crawlable hosts.
  NaiveBayesClassifier classifier(model_.vocab_size(), topics);
  for (const auto& [host, label] : seed.labels()) {
    std::size_t idx;
    try {
      idx = universe_->index_of(host);
    } catch (const std::out_of_range&) {
      continue;  // labels outside the universe (e.g. IP tokens)
    }
    auto page = fetch(idx);
    if (!page) continue;
    classifier.add_document(*page, dominant_topic_of_label(label));
    ++result.training_documents;
  }
  if (result.training_documents == 0) return result;

  // --- Classify every unlabeled host we can crawl.
  std::size_t correct = 0;
  std::size_t scored = 0;
  for (std::size_t i = 0; i < universe_->size(); ++i) {
    const auto& host = universe_->host(i);
    if (result.labeler.is_labeled(host.name)) continue;
    auto page = fetch(i);
    if (!page) {
      ++result.unfetchable;
      continue;
    }
    auto posterior = classifier.predict(*page);
    std::size_t best = static_cast<std::size_t>(
        std::max_element(posterior.begin(), posterior.end()) -
        posterior.begin());
    if (posterior[best] < min_confidence) {
      ++result.rejected_low_confidence;
      continue;
    }
    ontology::CategoryVector label(space.size(), 0.0F);
    label[tops[best]] = static_cast<float>(
        std::clamp(posterior[best], 0.0, 1.0));
    result.labeler.set_label(host.name, std::move(label));
    ++result.predicted;

    if (!host.topic_mix.empty()) {
      ++scored;
      std::size_t truth = static_cast<std::size_t>(
          std::max_element(host.topic_mix.begin(), host.topic_mix.end()) -
          host.topic_mix.begin());
      if (truth == best) ++correct;
    }
  }
  if (scored > 0) {
    result.prediction_accuracy =
        static_cast<double>(correct) / static_cast<double>(scored);
  }
  return result;
}

}  // namespace netobs::content
