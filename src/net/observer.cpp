#include "net/observer.hpp"

#include "net/quic.hpp"
#include "net/tls.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace netobs::net {

namespace {

/// Registry handles cached once; every observe() path increments through
/// these (relaxed atomics, no locks — see obs/metrics.hpp).
struct NetMetrics {
  obs::Counter& packets;
  obs::Counter& payload_bytes;
  obs::Counter& flows;
  obs::Counter& events;
  obs::Counter& sni_missing;
  obs::Counter& parse_failures;
  obs::Counter& flows_evicted;
  obs::Counter& flows_idle_evicted;
  obs::Counter& dns_deduped;
  obs::Gauge& pending_flows;
  obs::RateGauge packet_rate;
  obs::RateGauge event_rate;

  static NetMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static NetMetrics m{
        reg.counter("netobs_net_packets_total", "Packets fed to observers"),
        reg.counter("netobs_net_payload_bytes_total",
                    "Transport payload bytes seen by observers"),
        reg.counter("netobs_net_flows_total",
                    "Flows (TCP connections / QUIC initials / DNS queries)"),
        reg.counter("netobs_net_events_total", "Hostname events extracted"),
        reg.counter("netobs_net_sni_missing_total",
                    "Complete ClientHellos without an SNI (ESNI/ECH)"),
        reg.counter("netobs_net_parse_failures_total",
                    "Flows/datagrams that failed TLS, QUIC or DNS parsing"),
        reg.counter("netobs_net_flows_evicted_total",
                    "Pending flows dropped by the flow-table cap"),
        reg.counter("netobs_net_flows_idle_evicted_total",
                    "Flow-table entries aged out by the idle timeout"),
        reg.counter("netobs_net_dns_deduped_total",
                    "DNS queries suppressed as duplicates within the window"),
        reg.gauge("netobs_net_pending_flows",
                  "TCP flows buffered awaiting a complete ClientHello"),
        obs::RateGauge(reg, "netobs_net_packets_per_second",
                       "Packets observed per second (sliding window)"),
        obs::RateGauge(reg, "netobs_net_events_per_second",
                       "Hostname events extracted per second (sliding window)"),
    };
    return m;
  }
};

std::uint64_t qname_hash(std::string_view qname) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : qname) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string ipv4_to_string(std::uint32_t ip) {
  return util::format("%u.%u.%u.%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                      (ip >> 8) & 0xFF, ip & 0xFF);
}

std::string ip_pseudo_hostname(std::uint32_t dst_ip) {
  return util::format("ip-%08x.addr", dst_ip);
}

std::uint64_t UserDemux::identity_key(const Packet& packet, Vantage vantage) {
  std::uint64_t key = 0;
  switch (vantage) {
    case Vantage::kWifiProvider:
      key = packet.src_mac;
      break;
    case Vantage::kMobileOperator:
      key = packet.subscriber_id;
      break;
    case Vantage::kLandlineIsp:
      key = packet.tuple.src_ip;
      break;
  }
  // Tag the key domain so a MAC never collides with an IP if the vantage is
  // reconfigured between traces.
  return util::mix64(key ^ (static_cast<std::uint64_t>(vantage) << 56));
}

std::uint32_t UserDemux::user_of(const Packet& packet) {
  std::uint64_t key = identity_key(packet, vantage_);
  auto [it, inserted] = ids_.emplace(key, next_id_);
  if (inserted) next_id_ += stride_;
  return it->second;
}

SniFlowEngine::SniFlowEngine(UserDemux& demux, ObserverStats& stats,
                             SniObserverOptions options, bool registry_metrics)
    : options_(options),
      demux_(&demux),
      stats_(&stats),
      registry_metrics_(registry_metrics) {}

void SniFlowEngine::maybe_sweep(util::Timestamp now) {
  if (options_.idle_timeout <= 0) return;
  if (!saw_packet_) {
    saw_packet_ = true;
    max_ts_ = now;
    last_sweep_ = now;
    return;
  }
  if (now > max_ts_) max_ts_ = now;
  if (max_ts_ - last_sweep_ < options_.sweep_interval) return;
  last_sweep_ = max_ts_;
  auto swept = table_.evict_idle(max_ts_ - options_.idle_timeout);
  std::size_t total = swept.pending + swept.done;
  if (total > 0) {
    stats_->idle_evicted += total;
    if (registry_metrics_) {
      auto& metrics = NetMetrics::get();
      metrics.flows_idle_evicted.inc(total);
      metrics.pending_flows.set(static_cast<double>(table_.pending()));
    }
  }
}

std::optional<RawEvent> SniFlowEngine::observe(const Packet& packet) {
  NetMetrics* metrics = registry_metrics_ ? &NetMetrics::get() : nullptr;
  ++stats_->packets;
  if (metrics) {
    metrics->packets.inc();
    metrics->packet_rate.record();
    metrics->payload_bytes.inc(packet.payload.size());
  }
  maybe_sweep(packet.timestamp);
  if (packet.payload.empty()) return std::nullopt;
  // QUIC: the ClientHello arrives in a single UDP Initial datagram whose
  // keys an on-path observer can derive (Section 7.2; RFC 9001 §5.2).
  if (packet.tuple.proto == Transport::kUdp) {
    if (packet.tuple.dst_port != 443 ||
        !looks_like_quic_initial(packet.payload)) {
      return std::nullopt;
    }
    ++stats_->flows;
    if (metrics) metrics->flows.inc();
    auto view = decrypt_quic_initial(packet.payload);
    if (!view) {
      ++stats_->not_tls;
      if (metrics) metrics->parse_failures.inc();
      return std::nullopt;
    }
    RawEvent event;
    event.user_id = demux_->user_of(packet);
    event.timestamp = packet.timestamp;
    if (view->client_hello.sni) {
      host_buf_ = *view->client_hello.sni;
    } else {
      ++stats_->no_sni;
      if (metrics) metrics->sni_missing.inc();
      if (!options_.ip_fallback) return std::nullopt;
      host_buf_ = ip_pseudo_hostname(packet.tuple.dst_ip);
    }
    event.hostname = host_buf_;
    ++stats_->events;
    if (metrics) {
      metrics->events.inc();
      metrics->event_rate.record();
    }
    return event;
  }
  if (packet.tuple.proto != Transport::kTcp) return std::nullopt;

  std::size_t slot = table_.find(packet.tuple);
  if (slot != FlowTable::kNone) {
    FlowEntry& e = table_.entry(slot);
    e.last_seen = packet.timestamp;
    // Flows already resolved (SNI emitted / classified non-TLS) stay in the
    // table so later segments of the same connection are ignored cheaply.
    if (e.phase != FlowPhase::kPending) return std::nullopt;
  } else {
    if (table_.pending() >= options_.max_pending_flows) {
      // Evict an arbitrary stale flow; a production observer would use LRU,
      // for the simulator any victim works and keeps memory bounded.
      if (table_.evict_one_pending()) {
        ++stats_->evicted;
        if (metrics) metrics->flows_evicted.inc();
      }
    }
    slot = table_.insert(packet.tuple, packet.timestamp);
    ++stats_->flows;
    if (metrics) {
      metrics->flows.inc();
      metrics->pending_flows.set(static_cast<double>(table_.pending()));
    }
  }
  FlowEntry& flow = table_.entry(slot);
  table_.append_buffer(slot, packet.payload);

  SniViewResult result = extract_sni_view(flow.buffer, scratch_);
  switch (result.status) {
    case SniStatus::kNeedMoreData:
      if (flow.buffer.size() > options_.max_buffered_bytes) {
        table_.set_phase(slot, FlowPhase::kDoneDead);
        if (metrics) {
          metrics->pending_flows.set(static_cast<double>(table_.pending()));
          metrics->parse_failures.inc();
        }
        ++stats_->not_tls;
      } else {
        ++stats_->incomplete;
      }
      return std::nullopt;
    case SniStatus::kNotTls:
      table_.set_phase(slot, FlowPhase::kDoneDead);
      if (metrics) {
        metrics->pending_flows.set(static_cast<double>(table_.pending()));
        metrics->parse_failures.inc();
      }
      ++stats_->not_tls;
      return std::nullopt;
    case SniStatus::kNoSni: {
      table_.set_phase(slot, FlowPhase::kDoneDead);
      if (metrics) {
        metrics->pending_flows.set(static_cast<double>(table_.pending()));
        metrics->sni_missing.inc();
      }
      ++stats_->no_sni;
      if (!options_.ip_fallback) return std::nullopt;
      ++stats_->events;
      if (metrics) {
        metrics->events.inc();
        metrics->event_rate.record();
      }
      RawEvent ip_event;
      ip_event.user_id = demux_->user_of(packet);
      ip_event.timestamp = packet.timestamp;
      host_buf_ = ip_pseudo_hostname(packet.tuple.dst_ip);
      ip_event.hostname = host_buf_;
      return ip_event;
    }
    case SniStatus::kFound:
      break;
  }

  // The view may point into the flow buffer that set_phase() is about to
  // release; move the name into engine-owned scratch first.
  host_buf_.assign(result.sni);
  table_.set_phase(slot, FlowPhase::kDoneEmitted);
  if (metrics) {
    metrics->pending_flows.set(static_cast<double>(table_.pending()));
  }
  ++stats_->events;
  if (metrics) {
    metrics->events.inc();
    metrics->event_rate.record();
  }
  RawEvent event;
  event.user_id = demux_->user_of(packet);
  event.timestamp = packet.timestamp;
  event.hostname = host_buf_;
  return event;
}

DnsFlowEngine::DnsFlowEngine(UserDemux& demux, ObserverStats& stats,
                             DnsObserverOptions options, bool registry_metrics)
    : options_(options),
      demux_(&demux),
      stats_(&stats),
      registry_metrics_(registry_metrics) {}

void DnsFlowEngine::observe(const Packet& packet, std::vector<RawEvent>& out) {
  NetMetrics* metrics = registry_metrics_ ? &NetMetrics::get() : nullptr;
  ++stats_->packets;
  if (metrics) {
    metrics->packets.inc();
    metrics->packet_rate.record();
    metrics->payload_bytes.inc(packet.payload.size());
  }
  if (packet.tuple.proto != Transport::kUdp || packet.tuple.dst_port != 53) {
    return;
  }
  ++stats_->flows;
  if (metrics) metrics->flows.inc();
  try {
    msg_ = parse_dns_message(packet.payload);
  } catch (const ParseError&) {
    ++stats_->not_tls;  // counted as unparseable
    if (metrics) metrics->parse_failures.inc();
    return;
  }
  if (msg_.is_response) return;
  std::uint32_t user = demux_->user_of(packet);
  std::uint64_t flow_hash = FiveTupleHash{}(packet.tuple);
  for (const auto& q : msg_.questions) {
    if (options_.dedupe_window > 0) {
      std::uint64_t key = util::mix64(flow_hash ^ qname_hash(q.qname));
      auto it = recent_.find(key);
      if (it != recent_.end()) {
        util::Timestamp last = it->second;
        util::Timestamp delta =
            packet.timestamp >= last ? packet.timestamp - last
                                     : last - packet.timestamp;
        if (delta <= options_.dedupe_window) {
          ++stats_->deduped;
          if (metrics) metrics->dns_deduped.inc();
          continue;
        }
        it->second = packet.timestamp;
      } else {
        if (recent_.size() >= options_.max_dedupe_entries) {
          // Prune everything outside the window; duplicates whose state is
          // dropped here are merely re-emitted later, never lost.
          util::Timestamp now = packet.timestamp;
          std::erase_if(recent_, [&](const auto& kv) {
            util::Timestamp d = now >= kv.second ? now - kv.second
                                                 : kv.second - now;
            return d > options_.dedupe_window;
          });
        }
        recent_.emplace(key, packet.timestamp);
      }
    }
    RawEvent e;
    e.user_id = user;
    e.timestamp = packet.timestamp;
    e.hostname = q.qname;
    out.push_back(e);
    ++stats_->events;
    if (metrics) {
      metrics->events.inc();
      metrics->event_rate.record();
    }
  }
}

SniObserver::SniObserver(Vantage vantage, SniObserverOptions options)
    : demux_(vantage), engine_(demux_, stats_, options, true) {}

std::optional<HostnameEvent> SniObserver::observe(const Packet& packet) {
  auto raw = engine_.observe(packet);
  if (!raw) return std::nullopt;
  HostnameEvent event;
  event.user_id = raw->user_id;
  event.timestamp = raw->timestamp;
  event.hostname.assign(raw->hostname);
  return event;
}

std::vector<HostnameEvent> SniObserver::observe_all(
    const std::vector<Packet>& packets) {
  std::vector<HostnameEvent> events;
  for (const auto& p : packets) {
    if (auto e = observe(p)) events.push_back(std::move(*e));
  }
  return events;
}

DnsObserver::DnsObserver(Vantage vantage, DnsObserverOptions options)
    : demux_(vantage), engine_(demux_, stats_, options, true) {}

std::vector<HostnameEvent> DnsObserver::observe(const Packet& packet) {
  raw_.clear();
  engine_.observe(packet, raw_);
  std::vector<HostnameEvent> events;
  events.reserve(raw_.size());
  for (const RawEvent& r : raw_) {
    HostnameEvent e;
    e.user_id = r.user_id;
    e.timestamp = r.timestamp;
    e.hostname.assign(r.hostname);
    events.push_back(std::move(e));
  }
  return events;
}

}  // namespace netobs::net
