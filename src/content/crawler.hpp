// Synthetic crawler: the fetch-and-classify pipeline of Section 4.
//
// fetch() returns a host's page when the host is crawlable and fails
// otherwise — reproducing the study's observation that 67% of hostnames
// "returned an error/empty page when we tried to download the website
// content" (CDN endpoints, API services, trackers). The content-labeling
// baseline is then: crawl what you can, classify it, and accept that the
// rest of the universe stays unlabeled.
#pragma once

#include <optional>

#include "content/bow_classifier.hpp"
#include "content/page_model.hpp"
#include "ontology/host_labeler.hpp"
#include "synth/world.hpp"

namespace netobs::content {

class ContentCrawler {
 public:
  /// universe must outlive the crawler; pages are deterministic per host.
  ContentCrawler(const synth::HostnameUniverse& universe,
                 PageModelParams params = PageModelParams());

  /// Fetches a host's page; nullopt when the host is not crawlable (the
  /// paper's 67%).
  std::optional<Document> fetch(std::size_t host_index) const;
  std::optional<Document> fetch(const std::string& hostname) const;

  const PageModel& page_model() const { return model_; }

  /// Fraction of hosts for which fetch() fails.
  double fetch_failure_rate() const;

  /// The full content-labeling baseline:
  ///   1. train a Naive Bayes classifier on the pages of already-labeled
  ///      crawlable hosts (labels = dominant top-level topic),
  ///   2. classify every crawlable but unlabeled host,
  ///   3. emit an extended labeler whose new labels put the predicted
  ///      posterior mass on the topic's root category.
  /// `min_confidence`: posterior needed to accept a prediction.
  struct ExpansionResult {
    ontology::HostLabeler labeler;          ///< seed + predicted labels
    std::size_t training_documents = 0;
    std::size_t predicted = 0;              ///< labels added
    std::size_t rejected_low_confidence = 0;
    std::size_t unfetchable = 0;            ///< hosts crawl couldn't reach
    double prediction_accuracy = 0.0;  ///< vs ground truth, scored hosts
  };
  ExpansionResult expand_labels(const ontology::HostLabeler& seed,
                                const ontology::CategorySpace& space,
                                double min_confidence = 0.4) const;

 private:
  const synth::HostnameUniverse* universe_;
  PageModel model_;
  std::uint64_t seed_;
};

}  // namespace netobs::content
