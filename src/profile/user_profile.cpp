#include "profile/user_profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netobs::profile {

UserProfileStore::UserProfileStore(std::size_t category_count,
                                   UserProfileParams params)
    : category_count_(category_count), params_(params) {
  if (category_count == 0) {
    throw std::invalid_argument("UserProfileStore: category_count == 0");
  }
  if (params_.half_life <= 0.0) {
    throw std::invalid_argument("UserProfileStore: half_life must be > 0");
  }
}

double UserProfileStore::decay_factor(util::Timestamp from,
                                      util::Timestamp to) const {
  if (to <= from) return 1.0;
  double dt = static_cast<double>(to - from);
  return std::exp2(-dt / params_.half_life);
}

void UserProfileStore::update(std::uint32_t user, util::Timestamp when,
                              const SessionProfile& session) {
  if (session.empty()) return;
  update(user, when, session.categories);
}

void UserProfileStore::update(std::uint32_t user, util::Timestamp when,
                              const ontology::CategoryVector& categories) {
  if (categories.size() != category_count_) {
    throw std::invalid_argument("UserProfileStore::update: bad dimension");
  }
  auto [it, inserted] = users_.try_emplace(user);
  State& state = it->second;
  if (inserted) {
    state.accumulator.assign(category_count_, 0.0F);
  } else if (when < state.last_update) {
    throw std::invalid_argument(
        "UserProfileStore::update: time went backwards for user " +
        std::to_string(user));
  }
  double decay = decay_factor(state.last_update, when);
  state.weight = state.weight * decay + 1.0;
  for (std::size_t i = 0; i < category_count_; ++i) {
    // Fold in double, store in float32 (see State::accumulator).
    state.accumulator[i] = static_cast<float>(
        static_cast<double>(state.accumulator[i]) * decay +
        static_cast<double>(categories[i]));
  }
  state.last_update = when;
  ++state.sessions;
}

ontology::CategoryVector UserProfileStore::profile_at(
    std::uint32_t user, util::Timestamp when) const {
  ontology::CategoryVector out(category_count_, 0.0F);
  auto it = users_.find(user);
  if (it == users_.end()) return out;
  const State& state = it->second;
  // Numerator and denominator decay identically, so the ratio is invariant
  // under further decay — profile_at(t) is constant between updates.
  (void)when;
  if (state.weight <= 0.0) return out;
  for (std::size_t i = 0; i < category_count_; ++i) {
    out[i] = static_cast<float>(std::clamp(
        static_cast<double>(state.accumulator[i]) / state.weight, 0.0, 1.0));
  }
  return out;
}

std::size_t UserProfileStore::session_count(std::uint32_t user) const {
  auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.sessions;
}

}  // namespace netobs::profile
