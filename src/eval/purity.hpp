// Embedding-quality scoring — quantifies what Figures 4-5 show visually.
//
// The paper's qualitative claim is that SKIPGRAM places same-topic
// hostnames near each other (porn, sport-streaming and travel clusters) and
// pulls unlabeled satellites next to their owner sites. Two scores make
// that testable:
//   - neighbour topic purity: the average fraction, over hosts with a known
//     ground-truth topic, of their k nearest embedding neighbours sharing
//     that topic (random baseline = topic frequency),
//   - satellite attachment: the fraction of CDN/API satellites whose
//     nearest *site* neighbour is their actual owner (or a same-topic site).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"

namespace netobs::eval {

struct PurityResult {
  double mean_purity = 0.0;      ///< in [0,1]
  double random_baseline = 0.0;  ///< expected purity of a random embedding
  std::size_t scored_hosts = 0;
  std::size_t neighbors = 0;  ///< k used
};

/// topic_of(host) -> ground-truth topic, or nullopt for infrastructure
/// hosts. Hosts without topics are skipped both as queries and neighbours.
PurityResult neighbor_topic_purity(
    const embedding::HostEmbedding& embedding,
    const embedding::CosineKnnIndex& index,
    const std::function<std::optional<std::size_t>(const std::string&)>&
        topic_of,
    std::size_t k = 10);

struct AttachmentResult {
  double owner_top1 = 0.0;       ///< nearest site is the owner
  double same_topic_top1 = 0.0;  ///< nearest site shares the owner's topic
  std::size_t scored_satellites = 0;
};

/// owner_of(host) -> owner site hostname for satellites, nullopt otherwise;
/// topic_of as above (used for the same-topic relaxation).
AttachmentResult satellite_attachment(
    const embedding::HostEmbedding& embedding,
    const embedding::CosineKnnIndex& index,
    const std::function<std::optional<std::string>(const std::string&)>&
        owner_of,
    const std::function<std::optional<std::size_t>(const std::string&)>&
        topic_of,
    std::size_t probe_neighbors = 20);

}  // namespace netobs::eval
