#include <gtest/gtest.h>

#include <unordered_set>

#include "net/observer.hpp"
#include "util/string_util.hpp"
#include "synth/browsing.hpp"
#include "synth/traffic.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"

namespace netobs::synth {
namespace {

ontology::CategoryTree test_tree(std::uint64_t seed = 1) {
  util::Pcg32 rng(seed);
  ontology::AdwordsTreeParams params;
  params.top_level = 8;
  params.second_level_target = 40;
  params.total_categories = 120;
  return make_adwords_like_tree(rng, params);
}

WorldParams small_world_params() {
  WorldParams p;
  p.universal_hosts = 10;
  p.first_party_hosts = 200;
  p.shared_cdn_hosts = 8;
  p.tracker_hosts = 20;
  return p;
}

class WorldTest : public ::testing::Test {
 protected:
  WorldTest()
      : tree_(test_tree()),
        space_(tree_),
        universe_(space_, small_world_params()) {}

  ontology::CategoryTree tree_;
  ontology::CategorySpace space_;
  HostnameUniverse universe_;
};

TEST_F(WorldTest, UniverseHasAllHostKinds) {
  EXPECT_EQ(universe_.universal().size(), 10U);
  EXPECT_EQ(universe_.shared_cdns().size(), 8U);
  EXPECT_EQ(universe_.trackers().size(), 20U);
  std::size_t first_party = 0;
  std::size_t satellites = 0;
  for (const auto& h : universe_.hosts()) {
    if (h.kind == HostKind::kFirstParty) ++first_party;
    if (h.kind == HostKind::kSatellite) ++satellites;
  }
  EXPECT_EQ(first_party, 200U);
  EXPECT_GT(satellites, 50U);  // ~1.2 per site on average
}

TEST_F(WorldTest, HostnamesAreUniqueAndValid) {
  std::unordered_set<std::string> names;
  for (const auto& h : universe_.hosts()) {
    EXPECT_TRUE(util::is_valid_hostname(h.name)) << h.name;
    EXPECT_TRUE(names.insert(h.name).second) << "duplicate " << h.name;
  }
  EXPECT_EQ(universe_.index_of(universe_.host(5).name), 5U);
  EXPECT_THROW(universe_.index_of("not-in-universe.com"), std::out_of_range);
}

TEST_F(WorldTest, TopicMixesAreDistributions) {
  for (const auto& h : universe_.hosts()) {
    if (h.topic_mix.empty()) continue;
    float total = 0.0F;
    for (float w : h.topic_mix) {
      EXPECT_GE(w, 0.0F);
      total += w;
    }
    EXPECT_NEAR(total, 1.0F, 1e-4F);
  }
}

TEST_F(WorldTest, SatellitesBelongToTheirOwners) {
  for (std::size_t site = 0; site < universe_.size(); ++site) {
    for (std::size_t sat : universe_.satellites_of(site)) {
      EXPECT_EQ(universe_.host(sat).kind, HostKind::kSatellite);
      EXPECT_EQ(universe_.host(sat).owner, site);
      EXPECT_FALSE(universe_.host(sat).crawlable);
    }
  }
}

TEST_F(WorldTest, TopicSiteListsPartitionFirstPartyHosts) {
  std::size_t total = 0;
  for (std::size_t t = 0; t < universe_.topic_count(); ++t) {
    for (std::size_t site : universe_.sites_of_topic(t)) {
      EXPECT_EQ(universe_.host(site).kind, HostKind::kFirstParty);
      ++total;
    }
  }
  EXPECT_EQ(total, 200U);
}

TEST_F(WorldTest, LabelerCoverageMatchesTarget) {
  auto labeler = universe_.make_labeler();
  EXPECT_EQ(labeler.category_count(), space_.size());
  double coverage = labeler.coverage(universe_.size());
  EXPECT_NEAR(coverage, universe_.params().label_coverage, 0.02);
  // Labels only on hosts with ground-truth topics; all vectors valid.
  for (const auto& [host, label] : labeler.labels()) {
    EXPECT_TRUE(ontology::is_valid_category_vector(label));
    EXPECT_FALSE(universe_.host(universe_.index_of(host)).topic_mix.empty());
  }
}

TEST_F(WorldTest, LabelingIsPopularityBiased) {
  auto labeler = universe_.make_labeler();
  // The most popular site of each topic should almost always be labeled
  // while deep-tail sites mostly are not.
  std::size_t head_labeled = 0;
  std::size_t head_total = 0;
  for (std::size_t t = 0; t < universe_.topic_count(); ++t) {
    const auto& sites = universe_.sites_of_topic(t);
    if (sites.empty()) continue;
    ++head_total;
    if (labeler.is_labeled(universe_.host(sites.front()).name)) {
      ++head_labeled;
    }
  }
  EXPECT_GT(static_cast<double>(head_labeled) /
                static_cast<double>(head_total),
            0.5);
}

TEST_F(WorldTest, TrackerHostsFileRoundTrip) {
  filter::Blocklist blocklist;
  std::size_t added =
      blocklist.add_hosts_file("synthetic", universe_.tracker_hosts_file());
  EXPECT_EQ(added, universe_.trackers().size());
  for (std::size_t idx : universe_.trackers()) {
    EXPECT_TRUE(blocklist.is_blocked(universe_.host(idx).name));
  }
  EXPECT_FALSE(
      blocklist.is_blocked(universe_.host(universe_.universal()[0]).name));
}

TEST_F(WorldTest, UncrawlableFractionInPaperRegime) {
  // Section 4 reports 67%; the synthetic world should land in the same
  // regime (satellites, CDNs, trackers and a slice of sites).
  double f = universe_.uncrawlable_fraction();
  EXPECT_GT(f, 0.3);
  EXPECT_LT(f, 0.8);
}

TEST_F(WorldTest, DeterministicForSameSeed) {
  HostnameUniverse again(space_, small_world_params());
  ASSERT_EQ(again.size(), universe_.size());
  for (std::size_t i = 0; i < universe_.size(); ++i) {
    EXPECT_EQ(again.host(i).name, universe_.host(i).name);
  }
}

TEST(UserPopulation, InterestsAreSparseDistributions) {
  PopulationParams params;
  params.num_users = 100;
  UserPopulation pop(20, params);
  EXPECT_EQ(pop.size(), 100U);
  for (const auto& u : pop.users()) {
    float total = 0.0F;
    float max = 0.0F;
    for (float w : u.interests) {
      total += w;
      max = std::max(max, w);
    }
    EXPECT_NEAR(total, 1.0F, 1e-4F);
    EXPECT_GT(u.activity, 0.0);
  }
  // Sparsity: average top-topic mass should be large with alpha = 0.12.
  double mean_max = 0.0;
  for (const auto& u : pop.users()) {
    mean_max += *std::max_element(u.interests.begin(), u.interests.end());
  }
  EXPECT_GT(mean_max / 100.0, 0.45);
}

TEST(UserPopulation, IdentitiesAreDistinctButHouseholdsShared) {
  PopulationParams params;
  params.num_users = 60;
  UserPopulation pop(10, params);
  std::unordered_set<std::uint64_t> macs;
  std::unordered_set<std::uint64_t> imsis;
  std::unordered_set<std::uint32_t> ips;
  for (const auto& u : pop.users()) {
    macs.insert(u.mac);
    imsis.insert(u.subscriber_id);
    ips.insert(u.nat_ip);
  }
  EXPECT_EQ(macs.size(), 60U);
  EXPECT_EQ(imsis.size(), 60U);
  EXPECT_LT(ips.size(), 60U);  // some households have > 1 user
  EXPECT_EQ(ips.size(), pop.household_count());
}

TEST(UserPopulation, RejectsDegenerateParams) {
  PopulationParams params;
  params.num_users = 0;
  EXPECT_THROW(UserPopulation(5, params), std::invalid_argument);
  EXPECT_THROW(UserPopulation(0, PopulationParams()), std::invalid_argument);
}

class BrowsingTest : public ::testing::Test {
 protected:
  BrowsingTest()
      : tree_(test_tree()),
        space_(tree_),
        universe_(space_, small_world_params()),
        population_(universe_.topic_count(),
                    [] {
                      PopulationParams p;
                      p.num_users = 30;
                      return p;
                    }()) {}

  ontology::CategoryTree tree_;
  ontology::CategorySpace space_;
  HostnameUniverse universe_;
  UserPopulation population_;
};

TEST_F(BrowsingTest, TraceIsTimeOrderedAndInDayRange) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(2, 3);
  ASSERT_GT(trace.events.size(), 100U);
  ASSERT_GT(trace.page_views.size(), 50U);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].timestamp, trace.events[i].timestamp);
  }
  for (const auto& e : trace.events) {
    EXPECT_GE(util::day_index(e.timestamp), 2);
    EXPECT_LE(util::day_index(e.timestamp), 5);  // dwell can spill slightly
    EXPECT_LT(e.user_id, 30U);
  }
}

TEST_F(BrowsingTest, EventsCoverAllHostKinds) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 3);
  bool saw_kind[5] = {false, false, false, false, false};
  for (const auto& e : trace.events) {
    saw_kind[static_cast<int>(
        universe_.host(universe_.index_of(e.hostname)).kind)] = true;
  }
  EXPECT_TRUE(saw_kind[static_cast<int>(HostKind::kUniversal)]);
  EXPECT_TRUE(saw_kind[static_cast<int>(HostKind::kFirstParty)]);
  EXPECT_TRUE(saw_kind[static_cast<int>(HostKind::kSatellite)]);
  EXPECT_TRUE(saw_kind[static_cast<int>(HostKind::kSharedCdn)]);
  EXPECT_TRUE(saw_kind[static_cast<int>(HostKind::kTracker)]);
}

TEST_F(BrowsingTest, TrackerShareInPaperRegime) {
  // Section 5.4: ~8% of connections hit tracker hostnames.
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 3);
  std::size_t trackers = 0;
  for (const auto& e : trace.events) {
    if (universe_.host(universe_.index_of(e.hostname)).kind ==
        HostKind::kTracker) {
      ++trackers;
    }
  }
  double share =
      static_cast<double>(trackers) / static_cast<double>(trace.events.size());
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.20);
}

TEST_F(BrowsingTest, InterestsDriveVisitedTopics) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 5);
  // For each user, the most-visited first-party topic should be one the
  // user actually has appreciable interest in, most of the time.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> topic_counts;
  for (const auto& e : trace.events) {
    const auto& h = universe_.host(universe_.index_of(e.hostname));
    if (h.kind != HostKind::kFirstParty) continue;
    auto& counts = topic_counts[e.user_id];
    counts.resize(universe_.topic_count());
    std::size_t topic = static_cast<std::size_t>(
        std::max_element(h.topic_mix.begin(), h.topic_mix.end()) -
        h.topic_mix.begin());
    ++counts[topic];
  }
  std::size_t aligned = 0;
  std::size_t scored = 0;
  for (const auto& [user_id, counts] : topic_counts) {
    if (counts.empty()) continue;
    std::size_t top = static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    ++scored;
    if (population_.user(user_id).interests[top] > 0.05F) ++aligned;
  }
  ASSERT_GT(scored, 10U);
  EXPECT_GT(static_cast<double>(aligned) / static_cast<double>(scored), 0.7);
}

TEST_F(BrowsingTest, DeterministicForSameSeed) {
  BrowsingSimulator sim1(universe_, population_);
  BrowsingSimulator sim2(universe_, population_);
  auto t1 = sim1.simulate(0, 1);
  auto t2 = sim2.simulate(0, 1);
  ASSERT_EQ(t1.events.size(), t2.events.size());
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(t1.events[i], t2.events[i]);
  }
}

TEST_F(BrowsingTest, AdSlotsUseStandardSizes) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 2);
  const auto& sizes = standard_ad_sizes();
  std::size_t slots = 0;
  for (const auto& view : trace.page_views) {
    EXPECT_LE(view.slots.size(), 3U);
    for (const auto& slot : view.slots) {
      ++slots;
      EXPECT_NE(std::find(sizes.begin(), sizes.end(), slot), sizes.end());
    }
  }
  EXPECT_GT(slots, 20U);
}

TEST_F(BrowsingTest, WirePathRoundTrip) {
  // The headline integration property: events -> TLS bytes -> SniObserver
  // reproduces exactly the hostname sequence per user (WiFi vantage).
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 1);
  ASSERT_GT(trace.events.size(), 50U);

  TrafficParams tp;
  tp.split_probability = 0.5;
  TrafficSynthesizer synth(population_, tp);
  auto packets = synth.synthesize(trace.events);
  EXPECT_GT(packets.size(), trace.events.size());  // splits add packets

  net::SniObserver observer(net::Vantage::kWifiProvider);
  auto recovered = observer.observe_all(packets);
  ASSERT_EQ(recovered.size(), trace.events.size());
  // Same hostnames in the same order; user ids are remapped by the demux
  // but must be consistent (same original user -> same observer id).
  std::unordered_map<std::uint32_t, std::uint32_t> id_map;
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].hostname, trace.events[i].hostname);
    EXPECT_EQ(recovered[i].timestamp, trace.events[i].timestamp);
    auto [it, inserted] =
        id_map.emplace(trace.events[i].user_id, recovered[i].user_id);
    EXPECT_EQ(it->second, recovered[i].user_id);
  }
}

TEST_F(BrowsingTest, DnsPathRecoversHostnames) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 1);
  TrafficParams tp;
  tp.emit_dns = true;
  tp.split_probability = 0.0;
  TrafficSynthesizer synth(population_, tp);
  auto packets = synth.synthesize(trace.events);

  net::DnsObserver observer(net::Vantage::kMobileOperator);
  std::size_t dns_events = 0;
  for (const auto& p : packets) {
    dns_events += observer.observe(p).size();
  }
  EXPECT_EQ(dns_events, trace.events.size());
}

TEST_F(BrowsingTest, NatVantageCollapsesHouseholds) {
  BrowsingSimulator sim(universe_, population_);
  auto trace = sim.simulate(0, 1);
  TrafficSynthesizer synth(population_);
  auto packets = synth.synthesize(trace.events);

  net::SniObserver wifi(net::Vantage::kWifiProvider);
  net::SniObserver isp(net::Vantage::kLandlineIsp);
  wifi.observe_all(packets);
  isp.observe_all(packets);
  EXPECT_GT(wifi.demux().distinct_users(), isp.demux().distinct_users());
  // The ISP can at best distinguish households.
  EXPECT_LE(isp.demux().distinct_users(), population_.household_count());
}

}  // namespace
}  // namespace netobs::synth
