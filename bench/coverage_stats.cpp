// Section 4 — why hostnames alone are hard: ontology coverage and
// content-based labeling failure rates, plus the Adwords taxonomy shape of
// Section 5.4.
//
// Paper: Google Adwords classifies only 10.6% of the 470K observed
// hostnames; 67% of hostnames return an error/empty page when crawled;
// the taxonomy has 1397 categories, truncated at two levels to 328.
#include <iostream>

#include "bench/common.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {300, 1, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Section 4 / 5.4: coverage statistics");
  bench::print_scale_note(cfg, world);

  auto labeler = world.universe->make_labeler();

  util::Table ontology({"metric", "measured", "paper"});
  ontology.add_row({"taxonomy categories (full tree)",
                    std::to_string(world.tree->size()), "1397"});
  ontology.add_row({"top-level topics",
                    std::to_string(world.tree->roots().size()), "34"});
  ontology.add_row({"categories at <= 2 levels (|C|)",
                    std::to_string(world.space->size()), "328"});
  ontology.add_row({"max hierarchy depth",
                    std::to_string(world.tree->max_depth() + 1), "5"});
  ontology.print(std::cout);

  // Uneven branching (Telecom: 2 subcats; Computers & Electronics: 123).
  std::size_t min_sub = static_cast<std::size_t>(-1);
  std::size_t max_sub = 0;
  std::string min_name;
  std::string max_name;
  for (auto root : world.tree->roots()) {
    // Count the whole subtree below the root.
    std::size_t subtree = 0;
    for (std::size_t i = 0; i < world.tree->size(); ++i) {
      auto id = static_cast<ontology::CategoryId>(i);
      if (world.tree->at(id).level > 0 &&
          world.tree->ancestor_at_level(id, 0) == root) {
        ++subtree;
      }
    }
    if (subtree < min_sub) {
      min_sub = subtree;
      min_name = world.tree->at(root).name;
    }
    if (subtree > max_sub) {
      max_sub = subtree;
      max_name = world.tree->at(root).name;
    }
  }
  util::Table branching({"extreme", "topic", "subcategories", "paper"});
  branching.add_row({"smallest subtree", min_name, std::to_string(min_sub),
                     "Telecom: 2"});
  branching.add_row({"largest subtree", max_name, std::to_string(max_sub),
                     "Computers & Electronics: 123"});
  branching.print(std::cout);

  util::Table coverage({"metric", "measured", "paper"});
  coverage.add_row(
      {"hostname universe", std::to_string(world.universe->size()),
       "470K"});
  coverage.add_row(
      {"hostnames labeled by ontology",
       util::format("%zu (%.1f%%)", labeler.labeled_count(),
                    100.0 * labeler.coverage(world.universe->size())),
       "~50K (10.6%)"});
  coverage.add_row(
      {"hostnames un-crawlable (content labeling fails)",
       util::format("%.1f%%",
                    100.0 * world.universe->uncrawlable_fraction()),
       "67%"});
  coverage.print(std::cout);

  std::cout << "\nshape checks: coverage near 10%, uncrawlable fraction\n"
               "dominated by CDN/API/tracker endpoints, taxonomy counts\n"
               "matching Section 5.4 exactly.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
