#include "filter/blocklist.hpp"

#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace netobs::filter {

namespace {

struct FilterMetrics {
  obs::Counter& lookups;
  obs::Counter& match_exact;
  obs::Counter& match_suffix;
  obs::Counter& rejected_domains;

  static FilterMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static FilterMetrics m{
        reg.counter("netobs_filter_lookups_total", "Blocklist queries"),
        reg.counter("netobs_filter_matches_total",
                    "Blocklist hits by match kind", {{"kind", "exact"}}),
        reg.counter("netobs_filter_matches_total",
                    "Blocklist hits by match kind", {{"kind", "suffix"}}),
        reg.counter("netobs_filter_rejected_domains_total",
                    "Invalid hostnames rejected while loading blocklists"),
    };
    return m;
  }
};

/// True for dotted entries whose labels are all numeric ("0.0.0.0"): those
/// are IP fields or sinkhole targets, never blockable hostnames.
bool looks_like_ip(std::string_view s) {
  bool any = false;
  for (char c : s) {
    if (c == '.') continue;
    if (c < '0' || c > '9') return false;
    any = true;
  }
  return any;
}

}  // namespace

void DomainSet::add(std::string_view domain) {
  std::string d = util::to_lower(util::trim(domain));
  if (!util::is_valid_hostname(d)) {
    ++rejected_;
    FilterMetrics::get().rejected_domains.inc();
    return;
  }
  domains_.insert(std::move(d));
}

bool DomainSet::matches(std::string_view host) const {
  auto& metrics = FilterMetrics::get();
  metrics.lookups.inc();
  if (domains_.empty() || host.empty()) return false;
  // Probe the host and every parent suffix: "a.b.c.d" probes itself,
  // "b.c.d", "c.d". Single labels are never stored (invalid hostnames).
  std::string_view probe = host;
  for (;;) {
    if (domains_.contains(std::string(probe))) {
      (probe.size() == host.size() ? metrics.match_exact
                                   : metrics.match_suffix)
          .inc();
      return true;
    }
    std::size_t dot = probe.find('.');
    if (dot == std::string_view::npos) return false;
    probe.remove_prefix(dot + 1);
    if (probe.find('.') == std::string_view::npos) return false;
  }
}

std::vector<std::string> parse_hosts_file(std::string_view content) {
  std::vector<std::string> out;
  for (const auto& raw_line : util::split(content, '\n')) {
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    // Strip trailing comments.
    if (std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = util::trim(line.substr(0, hash));
    }
    auto tokens = util::split_nonempty(line, ' ');
    // Tolerate tab-separated entries.
    if (tokens.size() == 1 && tokens[0].find('\t') != std::string::npos) {
      tokens = util::split_nonempty(tokens[0], '\t');
    }
    std::string domain;
    if (tokens.size() >= 2) {
      // "0.0.0.0 domain" / "127.0.0.1 domain" format.
      domain = tokens[1];
    } else if (tokens.size() == 1) {
      domain = tokens[0];
    } else {
      continue;
    }
    domain = util::to_lower(domain);
    if (domain == "localhost" || domain == "localhost.localdomain" ||
        domain == "broadcasthost" || domain == "local") {
      continue;
    }
    if (!looks_like_ip(domain) && util::is_valid_hostname(domain)) {
      out.push_back(std::move(domain));
    }
  }
  return out;
}

std::size_t Blocklist::add_hosts_file(const std::string& list_name,
                                      std::string_view content) {
  return add_domains(list_name, parse_hosts_file(content));
}

std::size_t Blocklist::add_domains(const std::string& list_name,
                                   const std::vector<std::string>& domains) {
  list_names_.push_back(list_name);
  std::size_t before = set_.size();
  for (const auto& d : domains) set_.add(d);
  return set_.size() - before;
}

std::vector<std::string> Blocklist::filter(
    const std::vector<std::string>& hosts) const {
  std::vector<std::string> out;
  out.reserve(hosts.size());
  for (const auto& h : hosts) {
    if (!is_blocked(h)) out.push_back(h);
  }
  return out;
}

std::string to_hosts_file(const std::vector<std::string>& domains) {
  std::string out =
      "# synthetic tracker blocklist (netobs)\n"
      "127.0.0.1 localhost\n";
  for (const auto& d : domains) {
    out += "0.0.0.0 ";
    out += d;
    out += '\n';
  }
  return out;
}

}  // namespace netobs::filter
