#include "embedding/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

/// Centroids scored per dot_block call during assignment (same L1 sizing
/// rationale as the kNN score block).
constexpr std::size_t kCentroidBlock = 64;

/// Fixed parallel grain: chunk boundaries must not depend on the pool's
/// thread count or the parallel assignment would stay deterministic only
/// per machine. Assignments are computed per row independently, so any
/// chunking yields the same values — the fixed grain just keeps the chunk
/// *set* (and with it the scheduling) canonical.
constexpr std::size_t kAssignGrain = 8192;

struct BestCentroid {
  std::uint32_t id = 0;
  float score = 0.0F;
};

BestCentroid best_centroid(const EmbeddingMatrix& centroids,
                           const float* unit_row) {
  const float* base = centroids.padded_data();
  const std::size_t stride = centroids.stride();
  const std::size_t k = centroids.rows();
  float scores[kCentroidBlock];
  BestCentroid best{0, -2.0F};  // cosines live in [-1, 1]
  for (std::size_t b = 0; b < k; b += kCentroidBlock) {
    std::size_t cnt = std::min(kCentroidBlock, k - b);
    util::simd::dot_block(unit_row, base + b * stride, stride, cnt, scores);
    for (std::size_t j = 0; j < cnt; ++j) {
      // Strict '>' keeps the lowest centroid id on ties — the deterministic
      // tie-break every caller relies on.
      if (scores[j] > best.score) {
        best = {static_cast<std::uint32_t>(b + j), scores[j]};
      }
    }
  }
  return best;
}

/// Deterministic sample of `count` distinct indices from [0, n) in the
/// order the partial Fisher-Yates emits them.
std::vector<std::size_t> sample_indices(std::size_t n, std::size_t count,
                                        util::Pcg32& rng) {
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  count = std::min(count, n);
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t j =
        i + rng.next_below(static_cast<std::uint32_t>(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(count);
  return all;
}

void assign_rows(const EmbeddingMatrix& rows,
                 const std::vector<std::size_t>& which,
                 const EmbeddingMatrix& centroids, util::ThreadPool* pool,
                 std::vector<std::uint32_t>* assignment,
                 std::vector<float>* fit) {
  const float* base = rows.padded_data();
  const std::size_t stride = rows.stride();
  auto chunk = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      BestCentroid best =
          best_centroid(centroids, base + which[i] * stride);
      (*assignment)[i] = best.id;
      if (fit != nullptr) (*fit)[i] = best.score;
    }
  };
  if (pool != nullptr && which.size() >= 2 * kAssignGrain) {
    pool->parallel_for_chunked(which.size(), kAssignGrain, chunk);
  } else {
    chunk(0, which.size());
  }
}

}  // namespace

std::uint32_t nearest_centroid(const EmbeddingMatrix& centroids,
                               const float* unit_row) {
  return best_centroid(centroids, unit_row).id;
}

std::vector<std::uint32_t> assign_to_centroids(const EmbeddingMatrix& rows,
                                               const EmbeddingMatrix& centroids,
                                               util::ThreadPool* pool) {
  std::vector<std::size_t> which(rows.rows());
  std::iota(which.begin(), which.end(), 0);
  std::vector<std::uint32_t> assignment(rows.rows(), 0);
  assign_rows(rows, which, centroids, pool, &assignment, nullptr);
  return assignment;
}

KmeansResult spherical_kmeans(const EmbeddingMatrix& rows, KmeansParams params,
                              util::ThreadPool* pool) {
  const std::size_t n = rows.rows();
  const std::size_t dim = rows.dim();
  const std::size_t k = params.clusters;
  if (k == 0 || k > n) {
    throw std::invalid_argument("spherical_kmeans: clusters must be in [1, rows]");
  }

  util::Pcg32 rng(params.seed, 0x1f5);

  // Initial centroids: k distinct rows, copied verbatim (rows are already
  // unit norm).
  KmeansResult result;
  result.centroids = EmbeddingMatrix(k, dim);
  auto seeds = sample_indices(n, k, rng);
  for (std::size_t c = 0; c < k; ++c) {
    auto src = rows.row(seeds[c]);
    std::copy(src.begin(), src.end(), result.centroids.row(c).begin());
  }

  // Lloyd iterations over the (possibly sampled) training set.
  std::vector<std::size_t> train =
      (params.train_sample != 0 && params.train_sample < n)
          ? sample_indices(n, params.train_sample, rng)
          : sample_indices(n, n, rng);
  std::sort(train.begin(), train.end());  // ascending for cache locality

  std::vector<std::uint32_t> train_assign(train.size(), 0);
  std::vector<float> train_fit(train.size(), 0.0F);
  std::vector<double> accum(k * dim);
  std::vector<std::size_t> counts(k);
  const float* base = rows.padded_data();
  const std::size_t stride = rows.stride();

  for (int iter = 0; iter < std::max(1, params.iterations); ++iter) {
    assign_rows(rows, train, result.centroids, pool, &train_assign,
                &train_fit);

    // Mean update, accumulated sequentially in double over the fixed train
    // order — deterministic for any pool size.
    std::fill(accum.begin(), accum.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < train.size(); ++i) {
      const float* row = base + train[i] * stride;
      double* dst = accum.data() + train_assign[i] * dim;
      for (std::size_t j = 0; j < dim; ++j) dst[j] += row[j];
      ++counts[train_assign[i]];
    }

    // Empty clusters are reseeded from the worst-fit training rows (lowest
    // similarity to their centroid, ascending train order on ties) so k
    // partitions survive to the end — deterministic, no RNG involved.
    std::vector<std::size_t> order;
    std::size_t next_worst = 0;
    for (std::size_t c = 0; c < k; ++c) {
      auto centroid = result.centroids.row(c);
      if (counts[c] == 0) {
        if (order.empty()) {
          order.resize(train.size());
          std::iota(order.begin(), order.end(), 0);
          std::stable_sort(order.begin(), order.end(),
                           [&](std::size_t a, std::size_t b) {
                             return train_fit[a] < train_fit[b];
                           });
        }
        const float* row = base + train[order[next_worst++]] * stride;
        std::copy(row, row + dim, centroid.begin());
        continue;
      }
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* src = accum.data() + c * dim;
      for (std::size_t j = 0; j < dim; ++j) {
        centroid[j] = static_cast<float>(src[j] * inv);
      }
      util::normalize(centroid);  // spherical k-means: re-project to the sphere
    }
  }

  result.assignment = assign_to_centroids(rows, result.centroids, pool);
  return result;
}

}  // namespace netobs::embedding
