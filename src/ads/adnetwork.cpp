#include "ads/adnetwork.hpp"

#include <algorithm>
#include <stdexcept>

namespace netobs::ads {

namespace {

std::uint64_t size_key(synth::AdSlot size) {
  return (static_cast<std::uint64_t>(size.width) << 20) | size.height;
}

std::uint64_t size_topic_key(synth::AdSlot size, std::size_t topic) {
  return (size_key(size) << 16) | static_cast<std::uint64_t>(topic & 0xFFFF);
}

std::size_t dominant_topic(const std::vector<float>& mix) {
  if (mix.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(mix.begin(), mix.end()) - mix.begin());
}

}  // namespace

AdNetwork::AdNetwork(const AdDatabase& db,
                     const synth::HostnameUniverse& universe,
                     AdNetworkParams params)
    : db_(&db),
      topic_count_(universe.topic_count()),
      params_(params),
      rng_(params.seed, 0xad0e7) {
  if (db.size() == 0) {
    throw std::invalid_argument("AdNetwork: empty ad database");
  }
  for (const auto& ad : db.ads()) {
    by_size_[size_key(ad.size)].push_back(ad.id);
    by_size_topic_[size_topic_key(ad.size, dominant_topic(ad.topic_mix))]
        .push_back(ad.id);
  }
}

void AdNetwork::observe_page(std::uint32_t user_id, std::size_t topic) {
  auto& state = users_[user_id];
  if (state.topic_counts.empty()) state.topic_counts.assign(topic_count_, 0.0);
  if (topic < topic_count_) state.topic_counts[topic] += 1.0;
}

AdId AdNetwork::random_ad_of_size(synth::AdSlot size) {
  auto it = by_size_.find(size_key(size));
  if (it == by_size_.end() || it->second.empty()) {
    // No creative of this exact size: fall back to any ad (a real network
    // would resize/skip; for accounting we must serve something).
    return static_cast<AdId>(rng_.next_below(
        static_cast<std::uint32_t>(db_->size())));
  }
  const auto& pool = it->second;
  return pool[rng_.next_below(static_cast<std::uint32_t>(pool.size()))];
}

AdId AdNetwork::topical_ad_of_size(std::size_t topic, synth::AdSlot size) {
  auto it = by_size_topic_.find(size_topic_key(size, topic));
  if (it == by_size_topic_.end() || it->second.empty()) {
    return random_ad_of_size(size);
  }
  const auto& pool = it->second;
  return pool[rng_.next_below(static_cast<std::uint32_t>(pool.size()))];
}

AdId AdNetwork::serve(std::uint32_t user_id, std::size_t page_topic,
                      synth::AdSlot size) {
  double total = params_.premium_share + params_.contextual_share +
                 params_.targeted_share + params_.retargeted_share;
  double roll = rng_.uniform(0.0, total);
  auto& state = users_[user_id];

  AdId chosen;
  if (roll < params_.premium_share) {
    chosen = random_ad_of_size(size);
  } else if (roll < params_.premium_share + params_.contextual_share) {
    chosen = topical_ad_of_size(page_topic, size);
  } else if (roll < params_.premium_share + params_.contextual_share +
                        params_.targeted_share) {
    if (state.topic_counts.empty()) {
      chosen = topical_ad_of_size(page_topic, size);  // nothing known yet
    } else {
      std::size_t topic = rng_.categorical(state.topic_counts);
      chosen = topical_ad_of_size(topic, size);
    }
  } else {
    // Retargeting: re-serve a recently shown ad if one matches the size.
    chosen = static_cast<AdId>(-1);
    for (auto it = state.recently_served.rbegin();
         it != state.recently_served.rend(); ++it) {
      if (db_->ad(*it).size == size) {
        chosen = *it;
        break;
      }
    }
    if (chosen == static_cast<AdId>(-1)) chosen = random_ad_of_size(size);
  }

  state.recently_served.push_back(chosen);
  while (state.recently_served.size() > params_.history_limit) {
    state.recently_served.pop_front();
  }
  return chosen;
}

std::vector<double> AdNetwork::profile_of(std::uint32_t user_id) const {
  auto it = users_.find(user_id);
  if (it == users_.end() || it->second.topic_counts.empty()) return {};
  std::vector<double> out = it->second.topic_counts;
  double total = 0.0;
  for (double c : out) total += c;
  if (total > 0.0) {
    for (double& c : out) c /= total;
  }
  return out;
}

}  // namespace netobs::ads
