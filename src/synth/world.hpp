// Synthetic hostname universe — the stand-in for the paper's 470K observed
// hostnames (the evaluation data is closed; see DESIGN.md "Substitutions").
//
// The universe reproduces the structural properties the profiling algorithm
// depends on:
//   - Zipf-distributed popularity with a small "universal core" of hosts
//     (google.com/facebook.com analogues) that almost every user touches
//     (the cores of Figures 2-3),
//   - first-party websites with ground-truth topic mixtures,
//   - CDN/API "satellite" hostnames with *unrelated names* that fire
//     alongside their owner site (the api.bkng.azure.com <-> hotels.com
//     relation of Section 4.1) and are un-crawlable / unlabeled,
//   - shared CDNs serving many sites, and tracker/ad hostnames that the
//     blocklists of Section 5.4 should remove,
//   - an ontology labeling only ~10.6% of hostnames, biased to popular
//     first-party sites (Adwords' coverage in Section 4).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "filter/blocklist.hpp"
#include "ontology/category_tree.hpp"
#include "ontology/host_labeler.hpp"
#include "util/rng.hpp"

namespace netobs::synth {

enum class HostKind : std::uint8_t {
  kUniversal,   ///< google/facebook-scale, visited by nearly everyone
  kFirstParty,  ///< topical website a user deliberately visits
  kSatellite,   ///< CDN/API endpoint owned by one first-party site
  kSharedCdn,   ///< infrastructure shared across many sites
  kTracker,     ///< advertising/tracking hostname
};

struct HostInfo {
  std::string name;
  HostKind kind = HostKind::kFirstParty;
  std::size_t owner = 0;  ///< for kSatellite: index of the owning site
  /// Ground-truth interest weights over *topics* (= top-level categories),
  /// summing to 1 for universal/first-party hosts; empty for
  /// satellites/CDNs/trackers (their meaning comes only from co-requests).
  std::vector<float> topic_mix;
  double popularity = 0.0;  ///< relative visit weight within its kind
  bool crawlable = false;   ///< whether content-based labeling would work
};

struct WorldParams {
  std::size_t universal_hosts = 30;
  std::size_t first_party_hosts = 3000;
  double satellites_per_site = 1.2;   ///< Poisson mean, capped at 4
  std::size_t shared_cdn_hosts = 40;
  std::size_t tracker_hosts = 150;
  double zipf_exponent = 0.9;         ///< popularity within topic
  double label_coverage = 0.106;      ///< fraction of all hosts labeled
  double first_party_crawlable = 0.8; ///< Section 4: 67% of hosts fail
  std::uint64_t seed = 20211207;      ///< CoNEXT'21 start date
};

class HostnameUniverse {
 public:
  HostnameUniverse(const ontology::CategorySpace& space, WorldParams params);

  std::size_t size() const { return hosts_.size(); }
  const HostInfo& host(std::size_t index) const { return hosts_.at(index); }
  const std::vector<HostInfo>& hosts() const { return hosts_; }

  std::size_t topic_count() const { return topic_count_; }

  /// Index lookup by name; throws std::out_of_range when unknown.
  std::size_t index_of(const std::string& name) const;

  /// Universal host indices, most popular first.
  const std::vector<std::size_t>& universal() const { return universal_; }

  /// First-party hosts of a topic, most popular first (a host appears under
  /// its dominant topic only).
  const std::vector<std::size_t>& sites_of_topic(std::size_t topic) const;

  /// Satellites owned by a first-party/universal host.
  const std::vector<std::size_t>& satellites_of(std::size_t site) const;

  /// Shared CDN and tracker index lists.
  const std::vector<std::size_t>& shared_cdns() const { return shared_cdns_; }
  const std::vector<std::size_t>& trackers() const { return trackers_; }

  /// Builds the ontology view: labels `label_coverage` of hosts (popular,
  /// crawlable first-party sites first) with category vectors derived from
  /// their ground-truth topics. The labeler's dimension is |C| of `space`.
  ontology::HostLabeler make_labeler() const;

  /// Exports the tracker hosts as hosts-file text (re-parsed by
  /// filter::Blocklist, exercising the real ingestion path).
  std::string tracker_hosts_file() const;

  /// Fraction of hosts whose content could not be crawled (the paper's 67%).
  double uncrawlable_fraction() const;

  const ontology::CategorySpace& category_space() const { return *space_; }
  const WorldParams& params() const { return params_; }

 private:
  std::string fresh_hostname(util::Pcg32& rng, const char* prefix,
                             const std::vector<std::string_view>& tlds);

  const ontology::CategorySpace* space_;
  WorldParams params_;
  std::size_t topic_count_ = 0;
  std::vector<HostInfo> hosts_;
  std::vector<std::size_t> universal_;
  std::vector<std::vector<std::size_t>> by_topic_;
  std::vector<std::vector<std::size_t>> satellites_;  // indexed by owner site
  std::vector<std::size_t> shared_cdns_;
  std::vector<std::size_t> trackers_;
  std::unordered_map<std::string, std::size_t> index_;
  // Registrable domains already in use: hostnames are generated with unique
  // SLDs so that the Section 6.2 second-level collapse never merges
  // unrelated hosts.
  std::unordered_set<std::string> used_slds_;
};

}  // namespace netobs::synth
