// TLS ClientHello wire codec (RFC 8446 §4.1.2 structures, TLS 1.2-compatible
// framing).
//
// This is the substrate of the whole study: the only thing a network
// observer sees of an HTTPS connection is the ClientHello, and the only
// profiling-relevant field in it is the server_name (SNI) extension. The
// synthetic traffic generator *serialises* real handshake bytes and the
// observer *parses* them back, so the eavesdropper code path is exercised at
// the byte level rather than assumed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/bytes.hpp"

namespace netobs::net {

/// TLS record content types (subset).
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// Handshake message types (subset).
enum class HandshakeType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
};

/// Extension type codes used by the codec.
struct ExtensionType {
  static constexpr std::uint16_t kServerName = 0;
  static constexpr std::uint16_t kSupportedGroups = 10;
  static constexpr std::uint16_t kAlpn = 16;
  static constexpr std::uint16_t kSupportedVersions = 43;
  static constexpr std::uint16_t kKeyShare = 51;
};

/// A raw (type, opaque body) extension.
struct Extension {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> body;
};

/// Decoded ClientHello. `sni` is what the eavesdropper is after.
struct ClientHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint8_t> session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<std::uint8_t> compression_methods;
  std::vector<Extension> extensions;

  /// host_name from the server_name extension, if present.
  std::optional<std::string> sni;
  /// ALPN protocol names, if the extension is present.
  std::vector<std::string> alpn;
};

/// Parameters for building a realistic ClientHello.
struct ClientHelloSpec {
  std::string sni;                        ///< empty -> omit the extension
  std::vector<std::string> alpn = {"h2", "http/1.1"};
  std::vector<std::uint16_t> cipher_suites = {0x1301, 0x1302, 0x1303,
                                              0xc02b, 0xc02f};
  std::array<std::uint8_t, 32> random{};
  std::vector<std::uint8_t> session_id;
  bool offer_tls13 = true;  ///< adds supported_versions {0x0304, 0x0303}
};

/// Serialises a ClientHello handshake message wrapped in a single TLS
/// record, exactly as it appears as the first bytes of a TCP connection.
std::vector<std::uint8_t> build_client_hello_record(const ClientHelloSpec& spec);

/// Serialises only the Handshake message (type + length + body, no record
/// layer) — the form carried inside QUIC CRYPTO frames (RFC 9001 §4).
std::vector<std::uint8_t> build_client_hello_handshake(
    const ClientHelloSpec& spec);

/// Parses a bare Handshake message (as reassembled from CRYPTO frames).
ClientHello parse_client_hello_handshake(
    std::span<const std::uint8_t> handshake);

/// Parses one TLS record; returns the decoded ClientHello.
/// Throws ParseError if the record is truncated, is not a handshake record,
/// or does not contain a well-formed ClientHello.
ClientHello parse_client_hello_record(std::span<const std::uint8_t> record);

/// Outcome of incremental SNI extraction over a byte stream.
enum class SniStatus {
  kFound,         ///< well-formed ClientHello with an SNI
  kNoSni,         ///< well-formed ClientHello without an SNI extension
  kNeedMoreData,  ///< prefix looks like a ClientHello but is incomplete
  kNotTls,        ///< stream does not start with a TLS handshake record
};

struct SniResult {
  SniStatus status = SniStatus::kNotTls;
  std::string sni;
};

/// Zero-copy outcome of the fast scanner: `sni` views into the caller's
/// stream bytes (or into the scratch string passed to extract_sni_view when
/// the wire name needed lowercasing) and is only valid while both live.
struct SniViewResult {
  SniStatus status = SniStatus::kNotTls;
  std::string_view sni;
};

/// Extracts the SNI from the first bytes of a TCP stream without fully
/// validating the handshake — the fast path a passive observer runs per flow.
/// Handles ClientHellos split across TCP segments via kNeedMoreData.
SniResult extract_sni(std::span<const std::uint8_t> stream_prefix);

/// Allocation-free variant of extract_sni for the line-rate ingest path: the
/// ClientHello structure is walked in place (same validation outcomes as
/// extract_sni, which delegates here) and the host name is returned as a
/// view instead of an owning string. `scratch` is reused storage the result
/// borrows when the wire bytes contain uppercase characters.
SniViewResult extract_sni_view(std::span<const std::uint8_t> stream_prefix,
                               std::string& scratch);

/// Returns the total length (record header + body) of the first TLS record,
/// or 0 if the header itself is incomplete.
std::size_t first_record_span(std::span<const std::uint8_t> stream_prefix);

}  // namespace netobs::net
