// Baseline — content-based labeling vs the embedding (Section 4).
//
// The paper dismisses the "crawl the page and classify its text" route for
// a network observer: 67% of hostnames return nothing (CDNs, APIs,
// trackers), and what can be crawled requires per-URL work. This bench
// implements that baseline (synthetic pages + multinomial Naive Bayes) and
// measures it against the ontology seed and the embedding profiler:
//
//   1. label coverage: seed ontology vs ontology+crawler vs what the
//      embedding can *reach* (anything co-requested),
//   2. end-to-end profile quality with each labeler, with and without the
//      embedding's kNN propagation.
#include <iostream>

#include "bench/quality_probe.hpp"
#include "content/crawler.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 3, 2021, ""});
  bench::QualityFixture fx(cfg);
  util::print_banner(std::cout,
                     "Baseline: content-based labeling (Section 4)");
  bench::print_scale_note(cfg, fx.world);

  content::ContentCrawler crawler(*fx.world.universe);
  auto expansion = crawler.expand_labels(fx.labeler, *fx.world.space);

  util::Table crawl({"metric", "measured", "paper"});
  crawl.add_row({"fetch failure rate",
                 util::format("%.1f%%", 100.0 * crawler.fetch_failure_rate()),
                 "67%"});
  crawl.add_row({"seed (ontology) labels",
                 std::to_string(fx.labeler.labeled_count()),
                 "~50K (10.6%)"});
  crawl.add_row({"labels added by crawling+classifying",
                 std::to_string(expansion.predicted), "-"});
  crawl.add_row({"hosts unreachable by crawling",
                 std::to_string(expansion.unfetchable), "the 67%"});
  crawl.add_row({"classifier accuracy (vs ground truth)",
                 util::format("%.3f", expansion.prediction_accuracy), "-"});
  crawl.add_row({"total coverage after crawl",
                 util::format("%.1f%%",
                              100.0 * expansion.labeler.coverage(
                                          fx.world.universe->size())),
                 "-"});
  crawl.print(std::cout);

  // End-to-end quality under each labeler.
  struct Variant {
    const char* name;
    const ontology::HostLabeler* labeler;
    bool embedding;
  };
  const ontology::HostLabeler onto = fx.labeler;  // stable copies
  const ontology::HostLabeler crawled = expansion.labeler;
  const std::vector<Variant> variants = {
      {"ontology only, no embedding", &onto, false},
      {"ontology + crawler labels, no embedding", &crawled, false},
      {"ontology + embedding (paper)", &onto, true},
      {"ontology + crawler + embedding", &crawled, true},
  };

  util::Table quality({"labeling strategy", "top-3 match", "ad affinity",
                       "vs random"});
  for (const auto& v : variants) {
    // Swap the fixture's labeler in place (traces and ad DB stay shared).
    fx.labeler = *v.labeler;

    auto sp = bench::scaled_service_params();
    sp.profiler.use_embedding_neighbors = v.embedding;
    auto q = bench::measure_quality(fx, sp);
    quality.add_row(
        {v.name, util::format("%.3f", q.top3_match),
         util::format("%.3f", q.selected_affinity),
         util::format("%.2fx", q.selected_affinity /
                                   std::max(1e-9, q.random_affinity))});
  }
  fx.labeler = onto;
  quality.print(std::cout);

  std::cout << "\nshape checks: crawling recovers labels only for the\n"
               "crawlable third of the universe and still leaves every\n"
               "CDN/API endpoint dark; the embedding reaches them through\n"
               "co-requests — the paper's argument for representation\n"
               "learning over content analysis.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
