#include "profile/service.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace netobs::profile {

ProfilingService::ProfilingService(const ontology::HostLabeler& labeler,
                                   const filter::Blocklist* blocklist,
                                   ServiceParams params)
    : labeler_(&labeler), blocklist_(blocklist), params_(params) {
  auto& reg = obs::MetricsRegistry::global();
  ingested_ = &reg.counter("netobs_profile_events_ingested_total",
                           "Hostname events accepted into the session store");
  dropped_ = &reg.counter("netobs_filter_dropped_total",
                          "Observer events dropped by the blocklist");
  dropped_base_ = dropped_->value();
  retrains_ = &reg.counter("netobs_profile_retrains_total",
                           "Successful daily retrainings");
  retrain_failures_ =
      &reg.counter("netobs_profile_retrain_failures_total",
                   "Retrainings skipped for lack of usable data");
  retrain_seconds_ = &reg.histogram("netobs_profile_retrain_seconds",
                                    "Wall time of one daily retraining",
                                    obs::default_latency_buckets());
  profiles_ = &reg.counter("netobs_profile_sessions_profiled_total",
                           "Session profiles computed");
  profile_seconds_ = &reg.histogram("netobs_profile_latency_seconds",
                                    "Latency of one session profile",
                                    obs::default_latency_buckets());
}

void ProfilingService::ingest(const net::HostnameEvent& event) {
  if (blocklist_ != nullptr && blocklist_->is_blocked(event.hostname)) {
    dropped_->inc();
    return;
  }
  ingested_->inc();
  store_.ingest(event);
}

void ProfilingService::ingest(const std::vector<net::HostnameEvent>& events) {
  for (const auto& e : events) ingest(e);
}

bool ProfilingService::retrain(std::int64_t train_day) {
  obs::Span span("profile.retrain", retrain_seconds_);
  auto sequences = store_.day_sequences(train_day);
  if (sequences.empty()) {
    retrain_failures_->inc();
    return false;
  }
  embedding::SgnsTrainer trainer(params_.sgns, params_.vocab);
  std::unique_ptr<embedding::HostEmbedding> fresh;
  try {
    fresh = std::make_unique<embedding::HostEmbedding>(
        params_.warm_start && model_ ? trainer.fit_warm(sequences, *model_)
                                     : trainer.fit(sequences));
  } catch (const std::invalid_argument&) {
    // Not enough data for the vocabulary thresholds: keep the old model,
    // exactly what a production back-end would do on a thin day.
    retrain_failures_->inc();
    return false;
  }
  model_ = std::move(fresh);
  index_ = std::make_unique<embedding::CosineKnnIndex>(*model_);
  profiler_ = std::make_unique<SessionProfiler>(*model_, *index_, *labeler_,
                                                params_.profiler);
  retrains_->inc();
  return true;
}

const embedding::HostEmbedding& ProfilingService::model() const {
  if (!model_) throw std::logic_error("ProfilingService: no model trained");
  return *model_;
}

Session ProfilingService::session_of(std::uint32_t user,
                                     util::Timestamp now) const {
  return store_.session_of(user, now, params_.profile_window);
}

SessionProfile ProfilingService::profile_user(std::uint32_t user,
                                              util::Timestamp now) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc();
  return profiler_->profile(session_of(user, now));
}

SessionProfile ProfilingService::profile_hostnames(
    const std::vector<std::string>& hostnames) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc();
  return profiler_->profile(hostnames);
}

std::vector<SessionProfile> ProfilingService::profile_batch(
    const std::vector<std::vector<std::string>>& sessions) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc(sessions.size());
  return profiler_->profile_batch(sessions);
}

std::vector<SessionProfile> ProfilingService::profile_users(
    const std::vector<std::uint32_t>& users, util::Timestamp now) const {
  std::vector<std::vector<std::string>> sessions;
  sessions.reserve(users.size());
  for (std::uint32_t user : users) {
    sessions.push_back(session_of(user, now).hostnames);
  }
  return profile_batch(sessions);
}

}  // namespace netobs::profile
