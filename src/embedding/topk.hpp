// Bounded top-k selection under the published (similarity desc, id asc)
// order — the selector shared by the exact blocked sweep (knn.cpp) and the
// IVF candidate/re-rank stages (ivf_index.cpp).
//
// A candidate reservoir of at most 2k entries is pruned back to the exact k
// best with nth_element whenever it fills. Appends are O(1) and each prune
// is O(k), so a scan costs O(rows + m) for m candidate passes — cheaper in
// practice than a binary heap's per-displacement sift-down, and far cheaper
// than a full materialise-and-sort. The kept set is the unique top k under
// (similarity desc, id asc), so every scan strategy built on this class
// returns bit-identical results.
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "embedding/vocabulary.hpp"

namespace netobs::embedding {

/// One kNN result entry; ordered by (similarity desc, id asc) everywhere.
struct Neighbor {
  TokenId id = 0;
  float similarity = 0.0F;  ///< cosine in [-1, 1]
};

/// Descending similarity, ascending id — the published result order and
/// the deterministic tie-break.
inline bool neighbor_better(float sim_a, TokenId id_a, float sim_b,
                            TokenId id_b) {
  if (sim_a != sim_b) return sim_a > sim_b;
  return id_a < id_b;
}

class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k), cap_(2 * k) { entries_.reserve(cap_); }

  void offer(TokenId id, float sim) {
    // `sim == threshold_` still enters: the id tie-break is settled at the
    // next prune, exactly like the simd::mask_ge '>=' block filter.
    if (has_threshold_ && sim < threshold_) return;
    entries_.push_back({id, sim});
    if (entries_.size() >= cap_) prune();
  }

  /// Once true, worst_similarity() is a valid lower bound for new entries
  /// and callers may pre-filter candidates with simd::mask_ge.
  bool full() const { return has_threshold_ || entries_.size() >= k_; }

  /// Current admission threshold; -inf until the first prune, afterwards
  /// the similarity of the k-th best candidate seen so far (it lags the
  /// true k-th best between prunes, which only makes filtering
  /// conservative, never lossy).
  float worst_similarity() const {
    return has_threshold_ ? threshold_
                          : -std::numeric_limits<float>::infinity();
  }

  /// Exact top k in published order (similarity desc, id asc).
  std::vector<Neighbor> take_sorted() {
    prune();
    std::sort(entries_.begin(), entries_.end(), best_first);
    return std::move(entries_);
  }

 private:
  static bool best_first(const Neighbor& a, const Neighbor& b) {
    return neighbor_better(a.similarity, a.id, b.similarity, b.id);
  }

  /// Shrinks the reservoir to the exact k best and raises the admission
  /// threshold to the new worst kept entry.
  void prune() {
    if (entries_.size() <= k_) return;
    auto kth = entries_.begin() + static_cast<std::ptrdiff_t>(k_) - 1;
    std::nth_element(entries_.begin(), kth, entries_.end(), best_first);
    entries_.resize(k_);
    threshold_ = entries_[k_ - 1].similarity;
    has_threshold_ = true;
  }

  std::size_t k_;
  std::size_t cap_;
  bool has_threshold_ = false;
  float threshold_ = 0.0F;
  std::vector<Neighbor> entries_;
};

}  // namespace netobs::embedding
