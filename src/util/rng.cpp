#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace netobs::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (stream << 1U) | 1U;
  state_ = 0;
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint64_t Pcg32::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Pcg32::next_double() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  if (bound == 0) throw std::invalid_argument("next_below: bound must be > 0");
  // Lemire-style rejection to avoid modulo bias.
  std::uint32_t threshold = static_cast<std::uint32_t>(-bound) % bound;
  for (;;) {
    std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Pcg32::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  double u2 = next_double();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Pcg32::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Pcg32::gamma(double shape) {
  if (shape <= 0.0) throw std::invalid_argument("gamma: shape must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    double u = 0.0;
    do {
      u = next_double();
    } while (u <= 0.0);
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = next_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::size_t Pcg32::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: total weight must be > 0");
  }
  double target = next_double() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Pcg32::dirichlet(std::size_t k, double alpha) {
  return dirichlet(std::vector<double>(k, alpha));
}

std::vector<double> Pcg32::dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) total = 1.0;
  for (double& x : out) x /= total;
  return out;
}

unsigned Pcg32::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  // Knuth for small means; normal approximation beyond that is fine for our
  // workloads (session lengths, page fan-out) which are all small.
  if (mean < 30.0) {
    double l = std::exp(-mean);
    unsigned k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > l);
    return k - 1;
  }
  double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0U : static_cast<unsigned>(x + 0.5);
}

Pcg32 Pcg32::fork(std::uint64_t stream_tag) {
  return Pcg32(next_u64(), mix64(stream_tag));
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Pcg32& rng) const {
  double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace netobs::util
