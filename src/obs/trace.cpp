#include "obs/trace.hpp"

#include <atomic>
#include <utility>

namespace netobs::obs {

void TraceBuffer::push(SpanRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(rec));
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::size_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  dropped_ = 0;
}

namespace {

thread_local Span* tls_current_span = nullptr;

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Process trace epoch: fixed at the first span, so start_seconds are
/// comparable across threads.
double seconds_since_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch)
      .count();
}

}  // namespace

Span::Span(std::string name, Histogram* latency, TraceBuffer* buffer)
    : name_(std::move(name)),
      latency_(latency),
      buffer_(buffer),
      parent_(tls_current_span),
      id_(next_span_id()),
      depth_(parent_ == nullptr ? 0 : parent_->depth_ + 1),
      start_seconds_(seconds_since_epoch()),
      timer_(latency) {
  tls_current_span = this;
}

Span::~Span() {
  double duration = timer_.stop();  // records into latency_ if given
  tls_current_span = parent_;
  TraceBuffer* sink = buffer_ != nullptr
                          ? buffer_
                          : MetricsRegistry::global().trace_buffer();
  if (sink == nullptr) return;
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent_id = parent_ == nullptr ? 0 : parent_->id_;
  rec.depth = depth_;
  rec.start_seconds = start_seconds_;
  rec.duration_seconds = duration;
  sink->push(std::move(rec));
}

const Span* Span::current() { return tls_current_span; }

}  // namespace netobs::obs
