#include "util/alias_sampler.hpp"

#include <stdexcept>

namespace netobs::util {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  if (weights.empty()) {
    throw std::invalid_argument("AliasSampler: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("AliasSampler: weights sum to zero");
  }

  const std::size_t n = weights.size();
  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale so the average bucket holds mass exactly 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    std::uint32_t s = small.back();
    small.pop_back();
    std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both lists hold buckets with mass ~1.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Pcg32& rng) const {
  std::size_t bucket = rng.next_below(static_cast<std::uint32_t>(prob_.size()));
  return rng.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

double AliasSampler::probability(std::size_t i) const {
  return i < normalized_.size() ? normalized_[i] : 0.0;
}

}  // namespace netobs::util
