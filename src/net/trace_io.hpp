// Binary capture persistence: save/load packet traces and hostname-event
// streams, so an observer deployment can record on the wire and replay
// offline (and so experiments are re-runnable from identical inputs).
//
// The format is a minimal length-prefixed record stream with a magic +
// version header — not pcap (no libpcap dependency is available offline),
// but structurally equivalent for this library's Packet model.
#pragma once

#include <iosfwd>
#include <vector>

#include "net/packet.hpp"

namespace netobs::net {

/// Writes packets as a replayable binary stream. Throws std::runtime_error
/// on I/O failure.
void save_packet_trace(std::ostream& os, const std::vector<Packet>& packets);

/// Reads a stream written by save_packet_trace. Throws ParseError on bad
/// magic/corruption and std::runtime_error on I/O failure.
std::vector<Packet> load_packet_trace(std::istream& is);

/// Same for extracted hostname events (the observer's output).
void save_event_trace(std::ostream& os,
                      const std::vector<HostnameEvent>& events);
std::vector<HostnameEvent> load_event_trace(std::istream& is);

}  // namespace netobs::net
