// Observability smoke check, registered as a ctest: drives a tiny synthetic
// world through the full pipeline (wire bytes -> observer -> blocklist ->
// retrain -> kNN -> profiles -> ad selection), dumps the registry as JSON,
// and fails loudly when any expected metric is missing or silently zero —
// so tier-1 catches dead instrumentation, not just compiling stubs.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ads/ad_database.hpp"
#include "bench/quality_probe.hpp"
#include "net/observer.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/traffic.hpp"

namespace {

using namespace netobs;

/// name -> "is it non-zero" (counters: summed over label sets; gauges:
/// value != 0; histograms: count > 0).
std::map<std::string, bool> nonzero_by_name(const obs::RegistrySnapshot& s) {
  std::map<std::string, std::uint64_t> counter_sums;
  std::map<std::string, bool> out;
  for (const auto& c : s.counters) counter_sums[c.name] += c.value;
  for (const auto& [name, sum] : counter_sums) out[name] = sum > 0;
  for (const auto& g : s.gauges) out[g.name] = out[g.name] || g.value != 0.0;
  for (const auto& h : s.histograms) out[h.name] = out[h.name] || h.count > 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::parse_config(argc, argv, {80, 2, 2021, ""});
  obs::MetricsRegistry::global().enable_tracing(1024);

  // --- Tiny world end-to-end, over real wire bytes.
  auto world = bench::make_world(cfg);
  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);
  synth::TrafficSynthesizer synthesizer(*world.population);
  auto packets = synthesizer.synthesize(trace.events);

  net::SniObserver observer(net::Vantage::kWifiProvider);
  auto events = observer.observe_all(packets);

  auto labeler = world.universe->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());

  profile::ProfilingService service(labeler, &blocklist,
                                    bench::scaled_service_params());
  service.ingest(events);
  if (!service.retrain(cfg.days - 1)) {
    std::cerr << "metrics_smoke: retrain failed (world too small?)\n";
    return 1;
  }

  ads::AdDatabase db = ads::AdDatabase::collect(*world.universe, labeler,
                                                1000, cfg.seed);
  ads::EavesdropperSelector selector(db, labeler);
  util::Timestamp now = cfg.days * util::kDay - 1;
  std::size_t profiled = 0;
  for (std::uint32_t user : service.store().users()) {
    auto profile = service.profile_user(user, now);
    if (!profile.empty()) selector.select(profile.categories);
    if (++profiled >= 10) break;
  }

  // --- Dump the artifact (both formats exercise the exporters).
  const std::string json_path =
      cfg.metrics_out.empty() ? "metrics_smoke.json" : cfg.metrics_out;
  obs::dump_metrics_file(json_path);
  obs::dump_metrics_file("metrics_smoke.prom");

  // --- Assert: every subsystem left non-zero telemetry behind.
  const std::vector<std::string> expected = {
      // net
      "netobs_net_packets_total",
      "netobs_net_payload_bytes_total",
      "netobs_net_flows_total",
      "netobs_net_events_total",
      // filter
      "netobs_filter_lookups_total",
      "netobs_filter_matches_total",
      "netobs_filter_dropped_total",
      // embedding
      "netobs_embedding_train_pairs_total",
      "netobs_embedding_epoch_seconds",
      "netobs_embedding_vocab_size",
      "netobs_embedding_knn_queries_total",
      "netobs_embedding_knn_query_seconds",
      // profile
      "netobs_profile_events_ingested_total",
      "netobs_profile_retrains_total",
      "netobs_profile_retrain_seconds",
      "netobs_profile_sessions_profiled_total",
      "netobs_profile_latency_seconds",
      // ads
      "netobs_ads_selections_total",
      "netobs_ads_selection_seconds",
  };

  auto snapshot = obs::MetricsRegistry::global().snapshot();
  auto nonzero = nonzero_by_name(snapshot);

  std::ifstream json_in(json_path);
  std::stringstream json_text;
  json_text << json_in.rdbuf();
  const std::string json = json_text.str();

  int failures = 0;
  for (const auto& name : expected) {
    auto it = nonzero.find(name);
    if (it == nonzero.end()) {
      std::cerr << "MISSING  " << name << " (never registered)\n";
      ++failures;
    } else if (!it->second) {
      std::cerr << "ZERO     " << name << " (registered but never recorded)\n";
      ++failures;
    } else if (json.find('"' + name + '"') == std::string::npos) {
      std::cerr << "NOT-EXPORTED " << name << " (absent from JSON dump)\n";
      ++failures;
    } else {
      std::cout << "ok       " << name << "\n";
    }
  }

  auto* spans = obs::MetricsRegistry::global().trace_buffer();
  if (spans == nullptr || spans->size() == 0) {
    std::cerr << "MISSING  trace spans (retrain should have recorded one)\n";
    ++failures;
  } else {
    std::cout << "ok       " << spans->size() << " trace spans recorded\n";
  }

  if (failures > 0) {
    std::cerr << "metrics_smoke: " << failures << " dead metric(s)\n";
    return 1;
  }
  std::cout << "metrics_smoke: all " << expected.size()
            << " expected metrics live; artifacts: " << json_path
            << ", metrics_smoke.prom\n";
  return 0;
}
