// Tests for the trainer extensions: CBOW mode, warm-start retraining, and
// the long-term user-profile aggregation of Section 7.3.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "embedding/sgns.hpp"
#include "profile/user_profile.hpp"
#include "util/rng.hpp"
#include "util/vec_math.hpp"

namespace netobs {
namespace {

using embedding::Sequence;

std::vector<Sequence> clustered_corpus(int repeats = 80) {
  std::vector<Sequence> base = {
      {"travel1.com", "travel2.com", "travel3.com", "travel4.com"},
      {"travel2.com", "travel1.com", "travel4.com", "travel3.com"},
      {"sport1.com", "sport2.com", "sport3.com", "sport4.com"},
      {"sport3.com", "sport4.com", "sport1.com", "sport2.com"}};
  std::vector<Sequence> out;
  for (int r = 0; r < repeats; ++r) {
    out.insert(out.end(), base.begin(), base.end());
  }
  return out;
}

embedding::SgnsParams small_params() {
  embedding::SgnsParams p;
  p.dim = 16;
  p.epochs = 8;
  p.seed = 7;
  return p;
}

embedding::VocabularyParams loose_vocab() {
  embedding::VocabularyParams v;
  v.min_count = 1;
  v.subsample_threshold = 0.0;
  return v;
}

/// Larger random-walk corpus: 3 clusters x 8 tokens. The 8-token toy corpus
/// is degenerate for CBOW (with K=5 negatives drawn from 8 tokens the
/// in-cluster negative pressure on the averaged input dominates), so the
/// CBOW checks use cluster structure at a realistic vocabulary scale.
std::vector<Sequence> walk_corpus() {
  util::Pcg32 rng(1);
  std::vector<Sequence> corpus;
  for (int rep = 0; rep < 600; ++rep) {
    int cl = rep % 3;
    Sequence s;
    for (int i = 0; i < 6; ++i) {
      s.push_back("c" + std::to_string(cl) + "t" +
                  std::to_string(rng.next_below(8)) + ".com");
    }
    corpus.push_back(std::move(s));
  }
  return corpus;
}

TEST(Cbow, LearnsClusterStructure) {
  auto params = small_params();
  params.mode = embedding::SgnsMode::kCbow;
  params.epochs = 15;
  embedding::SgnsTrainer trainer(params, loose_vocab());
  auto model = trainer.fit(walk_corpus());
  double within = 0.0;
  double across = 0.0;
  int n = 0;
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      auto va = model.vector_of("c0t" + std::to_string(a) + ".com");
      auto vb = model.vector_of("c0t" + std::to_string(b) + ".com");
      auto vc = model.vector_of("c1t" + std::to_string(b) + ".com");
      if (!va || !vb || !vc) continue;
      within += util::cosine(*va, *vb);
      across += util::cosine(*va, *vc);
      ++n;
    }
  }
  ASSERT_GT(n, 20);
  EXPECT_GT(within / n, across / n + 0.3);
}

TEST(Cbow, LossDecreases) {
  auto params = small_params();
  params.mode = embedding::SgnsMode::kCbow;
  embedding::SgnsTrainer trainer(params, loose_vocab());
  trainer.fit(clustered_corpus());
  const auto& losses = trainer.epoch_losses();
  ASSERT_EQ(losses.size(), 8U);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Cbow, DiffersFromSkipGram) {
  auto sg_params = small_params();
  auto cbow_params = small_params();
  cbow_params.mode = embedding::SgnsMode::kCbow;
  embedding::SgnsTrainer sg(sg_params, loose_vocab());
  embedding::SgnsTrainer cbow(cbow_params, loose_vocab());
  auto m1 = sg.fit(clustered_corpus(10));
  auto m2 = cbow.fit(clustered_corpus(10));
  EXPECT_FALSE(m1.central() == m2.central());
}

TEST(WarmStart, ReusesKnownRows) {
  embedding::SgnsTrainer trainer(small_params(), loose_vocab());
  auto day1 = trainer.fit(clustered_corpus());

  // Day 2: same hosts plus a new API endpoint riding with the travel
  // cluster — but far fewer observations.
  std::vector<Sequence> day2;
  for (int i = 0; i < 8; ++i) {
    day2.push_back({"travel1.com", "travel-api.net", "travel2.com"});
    day2.push_back({"sport1.com", "sport2.com"});
  }
  auto params = small_params();
  params.epochs = 2;  // too little to learn from scratch
  embedding::SgnsTrainer retrainer(params, loose_vocab());
  auto cold = retrainer.fit(day2);
  auto warm = retrainer.fit_warm(day2, day1);

  auto cos = [](const embedding::HostEmbedding& m, const std::string& a,
                const std::string& b) {
    return util::cosine(*m.vector_of(a), *m.vector_of(b));
  };
  // Warm model keeps the old cluster structure...
  EXPECT_GT(cos(warm, "travel1.com", "travel2.com"),
            cos(warm, "travel1.com", "sport1.com"));
  // ...and places the new API host better than the cold restart.
  EXPECT_GT(cos(warm, "travel-api.net", "travel1.com"),
            cos(cold, "travel-api.net", "travel1.com") - 0.05F);
}

TEST(WarmStart, RejectsDimensionMismatch) {
  embedding::SgnsTrainer t16(small_params(), loose_vocab());
  auto model = t16.fit(clustered_corpus(10));
  auto params = small_params();
  params.dim = 8;
  embedding::SgnsTrainer t8(params, loose_vocab());
  EXPECT_THROW(t8.fit_warm(clustered_corpus(10), model),
               std::invalid_argument);
}

TEST(UserProfileStore, AggregatesSessions) {
  profile::UserProfileStore store(3);
  store.update(1, 0, ontology::CategoryVector{1.0F, 0.0F, 0.0F});
  store.update(1, util::kHour, ontology::CategoryVector{1.0F, 0.5F, 0.0F});
  auto p = store.profile_at(1, util::kHour);
  EXPECT_GT(p[0], 0.9F);  // consistently travel
  EXPECT_GT(p[1], 0.1F);
  EXPECT_FLOAT_EQ(p[2], 0.0F);
  EXPECT_EQ(store.session_count(1), 2U);
  EXPECT_EQ(store.user_count(), 1U);
}

TEST(UserProfileStore, OldInterestsDecay) {
  profile::UserProfileParams params;
  params.half_life = static_cast<double>(util::kDay);
  profile::UserProfileStore store(2, params);
  // Early sports phase, then a week of travel.
  store.update(7, 0, ontology::CategoryVector{0.0F, 1.0F});
  for (int d = 1; d <= 7; ++d) {
    store.update(7, d * util::kDay, ontology::CategoryVector{1.0F, 0.0F});
  }
  auto p = store.profile_at(7, 7 * util::kDay);
  EXPECT_GT(p[0], 0.8F);
  EXPECT_LT(p[1], 0.05F);  // sports faded through 7 half-lives
}

TEST(UserProfileStore, ProfileStaysInUnitRange) {
  profile::UserProfileStore store(4);
  util::Pcg32 rng(3);
  for (int i = 0; i < 200; ++i) {
    ontology::CategoryVector v(4);
    for (auto& x : v) x = static_cast<float>(rng.next_double());
    store.update(0, i * util::kMinute, v);
  }
  auto p = store.profile_at(0, 300 * util::kMinute);
  EXPECT_TRUE(ontology::is_valid_category_vector(p));
}

TEST(UserProfileStore, UnknownUserGivesZeroProfile) {
  profile::UserProfileStore store(2);
  auto p = store.profile_at(42, 0);
  EXPECT_EQ(p, (ontology::CategoryVector{0.0F, 0.0F}));
  EXPECT_EQ(store.session_count(42), 0U);
}

TEST(UserProfileStore, RejectsBadInput) {
  EXPECT_THROW(profile::UserProfileStore(0), std::invalid_argument);
  profile::UserProfileParams params;
  params.half_life = 0.0;
  EXPECT_THROW(profile::UserProfileStore(2, params), std::invalid_argument);

  profile::UserProfileStore store(2);
  EXPECT_THROW(store.update(1, 0, ontology::CategoryVector{1.0F}),
               std::invalid_argument);
  store.update(1, util::kHour, ontology::CategoryVector{1.0F, 0.0F});
  EXPECT_THROW(store.update(1, 0, ontology::CategoryVector{1.0F, 0.0F}),
               std::invalid_argument);  // time went backwards
}

TEST(UserProfileStore, Float32AccumulatorTracksDoubleOracle) {
  // State::accumulator stores float32 (halving per-user bytes); each fold
  // still runs in double before narrowing. Against a pure-double oracle the
  // profile must stay within 1e-5 even after hundreds of decayed folds.
  constexpr std::size_t kCats = 6;
  profile::UserProfileParams params;
  params.half_life = static_cast<double>(util::kDay);
  profile::UserProfileStore store(kCats, params);

  std::vector<double> oracle_acc(kCats, 0.0);
  double oracle_weight = 0.0;
  util::Timestamp last = 0;

  util::Pcg32 rng(11);
  util::Timestamp when = 0;
  for (int fold = 0; fold < 500; ++fold) {
    when += 1 + rng.next_below(static_cast<std::uint32_t>(util::kHour));
    ontology::CategoryVector session(kCats);
    for (auto& v : session) {
      v = static_cast<float>(rng.next_below(1000)) / 1000.0F;
    }
    store.update(7, when, session);

    double decay = std::exp2(-static_cast<double>(when - last) /
                             params.half_life);
    oracle_weight = oracle_weight * decay + 1.0;
    for (std::size_t i = 0; i < kCats; ++i) {
      oracle_acc[i] = oracle_acc[i] * decay + static_cast<double>(session[i]);
    }
    last = when;

    auto profile = store.profile_at(7, when);
    for (std::size_t i = 0; i < kCats; ++i) {
      double want = std::clamp(oracle_acc[i] / oracle_weight, 0.0, 1.0);
      EXPECT_NEAR(static_cast<double>(profile[i]), want, 1e-5)
          << "fold " << fold << " category " << i;
    }
  }
}

TEST(UserProfileStore, IgnoresEmptySessionProfiles) {
  profile::UserProfileStore store(2);
  profile::SessionProfile empty;
  empty.categories = {0.0F, 0.0F};
  store.update(1, 0, empty);
  EXPECT_EQ(store.session_count(1), 0U);
}

}  // namespace
}  // namespace netobs
