// Countermeasures (Section 7.4) — what actually stops a network observer?
//
// Paper: ad-blockers "cannot prevent profiling by network observers";
// encrypted SNI "do[es] not hide the IP address that may be used by the
// profiling algorithm"; VPNs "simply shift the threat"; only TOR-class
// tools cut the signal, at a usability cost.
//
// This bench measures eavesdropper profile quality under each
// countermeasure, end to end over real wire bytes:
//   baseline       — TLS with cleartext SNI,
//   ad-blocker     — the *user* blocks tracker/ad connections client-side,
//   ECH x%         — a fraction of clients omit the SNI; the observer falls
//                    back to destination-IP tokens (same learner),
//   ECH 100%       — nobody sends SNI; profiling survives on IPs alone,
//   TOR            — the observer sees a single relay IP for everything.
#include <algorithm>
#include <iostream>

#include "bench/quality_probe.hpp"
#include "net/observer.hpp"
#include "synth/traffic.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace {

using namespace netobs;

struct Scenario {
  const char* name;
  double ech_fraction;
  bool ip_fallback;
  bool user_adblock;  ///< user-side tracker blocking before the wire
  bool tor;           ///< all traffic to one relay, no SNI
};

}  // namespace

int main(int argc, char** argv) {
  auto cfg = bench::parse_config(argc, argv, {800, 3, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Countermeasures (Section 7.4)");
  bench::print_scale_note(cfg, world);

  auto labeler = world.universe->make_labeler();
  // The observer can resolve every *labeled* hostname to its server IP on
  // its own, so under encrypted SNI the IP tokens of labeled hosts are
  // labeled too (real CDN/anycast IP sharing would blunt this; here the
  // synthetic world maps hosts to IPs 1:1, the optimistic case).
  for (const auto& [host, label] :
       std::unordered_map<std::string, ontology::CategoryVector>(
           labeler.labels())) {
    labeler.set_label(
        net::ip_pseudo_hostname(synth::server_ip_for(host)), label);
  }
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());
  ads::AdDatabase db =
      ads::AdDatabase::collect(*world.universe, labeler, 12000, cfg.seed);
  ads::EavesdropperSelector selector(db, labeler);

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto train_events = sim.simulate(0, 2).events;
  auto probe_events = sim.simulate(2, 1).events;

  const std::vector<Scenario> scenarios = {
      {"baseline (cleartext SNI)", 0.0, false, false, false},
      {"user runs an ad-blocker", 0.0, false, true, false},
      {"ECH 50% adoption + IP fallback", 0.5, true, false, false},
      {"ECH 100% + IP fallback", 1.0, true, false, false},
      {"ECH 100%, no IP fallback", 1.0, false, false, false},
      {"TOR (single relay, no SNI)", 0.0, false, false, true},
  };

  const auto& space = *world.space;
  const auto& tops = space.top_level_ids();

  util::Table table({"countermeasure", "observed events", "profiles",
                     "top-3 match", "ad affinity", "vs random"});
  for (const auto& s : scenarios) {
    // Transform events through the countermeasure + wire + observer.
    auto through_wire = [&](const std::vector<net::HostnameEvent>& events,
                            net::SniObserver& observer) {
      std::vector<net::HostnameEvent> input;
      input.reserve(events.size());
      for (const auto& e : events) {
        if (s.user_adblock && blocklist.is_blocked(e.hostname)) continue;
        input.push_back(e);
      }
      synth::TrafficParams tp;
      tp.ech_fraction = s.tor ? 1.0 : s.ech_fraction;
      tp.seed = cfg.seed;
      synth::TrafficSynthesizer synthesizer(*world.population, tp);
      auto packets = synthesizer.synthesize(input);
      if (s.tor) {
        // Everything tunnels to one relay: a single destination IP.
        for (auto& p : packets) p.tuple.dst_ip = 0x01010101;
      }
      return observer.observe_all(packets);
    };

    net::SniObserverOptions oo;
    oo.ip_fallback = s.ip_fallback || s.tor;
    net::SniObserver observer(net::Vantage::kWifiProvider, oo);
    auto observed_train = through_wire(train_events, observer);
    auto observed_probe = through_wire(probe_events, observer);

    profile::ProfilingService service(labeler, &blocklist,
                                      bench::scaled_service_params());
    service.ingest(observed_train);
    bool trained = service.retrain(1);
    service.ingest(observed_probe);

    // Score against ground truth: map the observer's ids back to users via
    // its own demux (ids are assigned in first-appearance order, so the
    // observer that actually saw the traffic must be asked).
    std::vector<util::Timestamp> last(world.population->size() + 1, 0);
    std::unordered_map<std::uint32_t, std::uint32_t> obs_to_truth;
    for (const auto& u : world.population->users()) {
      net::Packet probe;
      probe.src_mac = u.mac;
      obs_to_truth[observer.demux().user_of(probe)] = u.id;
    }
    for (const auto& e : observed_probe) {
      if (e.user_id < last.size()) {
        last[e.user_id] = std::max(last[e.user_id], e.timestamp);
      }
    }

    double matches = 0.0;
    double aff = 0.0;
    double aff_rand = 0.0;
    std::size_t n_aff = 0;
    std::size_t profiles = 0;
    util::Pcg32 rng(99);
    if (trained) {
      for (std::uint32_t obs_id = 0; obs_id < last.size(); obs_id += 5) {
        if (last[obs_id] == 0) continue;
        auto it = obs_to_truth.find(obs_id);
        if (it == obs_to_truth.end()) continue;
        auto p = service.profile_user(obs_id, last[obs_id]);
        if (p.empty()) continue;
        ++profiles;
        const auto& user = world.population->user(it->second);

        std::vector<double> per_topic(tops.size(), 0.0);
        for (std::size_t f = 0; f < p.categories.size(); ++f) {
          auto t = std::find(tops.begin(), tops.end(), space.top_level_of(f));
          per_topic[static_cast<std::size_t>(t - tops.begin())] +=
              p.categories[f];
        }
        std::size_t ptop = static_cast<std::size_t>(
            std::max_element(per_topic.begin(), per_topic.end()) -
            per_topic.begin());
        std::vector<std::size_t> idx(user.interests.size());
        for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        std::partial_sort(idx.begin(), idx.begin() + 3, idx.end(),
                          [&](std::size_t a, std::size_t b) {
                            return user.interests[a] > user.interests[b];
                          });
        if (ptop == idx[0] || ptop == idx[1] || ptop == idx[2]) {
          matches += 1.0;
        }
        for (ads::AdId id : selector.select(p.categories)) {
          aff += ads::ClickModel::affinity(user, db.ad(id));
          aff_rand += ads::ClickModel::affinity(
              user, db.ad(rng.next_below(
                        static_cast<std::uint32_t>(db.size()))));
          ++n_aff;
        }
      }
    }
    table.add_row(
        {s.name,
         std::to_string(observed_train.size() + observed_probe.size()),
         std::to_string(profiles),
         util::format("%.3f", profiles ? matches / profiles : 0.0),
         util::format("%.3f", n_aff ? aff / static_cast<double>(n_aff) : 0.0),
         n_aff ? util::format("%.2fx", (aff / static_cast<double>(n_aff)) /
                                           std::max(1e-9,
                                                    aff_rand /
                                                        static_cast<double>(
                                                            n_aff)))
               : "-"});
  }
  table.print(std::cout);

  std::cout << "\nshape checks (paper Section 7.4): the ad-blocker does not\n"
               "reduce observer profile quality; ECH degrades but does NOT\n"
               "stop profiling once the observer falls back to destination\n"
               "IPs; removing the fallback under full ECH or tunnelling via\n"
               "a single relay (TOR) is what actually kills the signal.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
