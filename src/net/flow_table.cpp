#include "net/flow_table.hpp"

#include <stdexcept>
#include <utility>

namespace netobs::net {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlowTable::FlowTable(std::size_t initial_capacity)
    : slots_(round_up_pow2(initial_capacity)),
      used_(slots_.size(), false) {}

std::size_t FlowTable::find(const FiveTuple& key) const {
  std::size_t slot = FiveTupleHash{}(key) & mask();
  for (std::size_t dist = 0; dist <= mask(); ++dist) {
    if (!used_[slot]) return kNone;
    if (slots_[slot].key == key) return slot;
    // Linear probing keeps clusters contiguous: once we have probed further
    // than this entry's own displacement we cannot meet `key` any more.
    if (probe_distance(slot) < dist) return kNone;
    slot = (slot + 1) & mask();
  }
  return kNone;
}

std::size_t FlowTable::probe_distance(std::size_t slot) const {
  std::size_t home = FiveTupleHash{}(slots_[slot].key) & mask();
  return (slot + slots_.size() - home) & mask();
}

std::size_t FlowTable::insert(const FiveTuple& key, util::Timestamp now) {
  if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
  FlowEntry incoming;
  incoming.key = key;
  incoming.last_seen = now;
  incoming.phase = FlowPhase::kPending;
  ++size_;
  ++pending_;

  // Robin-Hood insertion: displace entries that are closer to home than the
  // incoming one, which keeps worst-case probe lengths tight.
  std::size_t slot = FiveTupleHash{}(key) & mask();
  std::size_t dist = 0;
  std::size_t result = kNone;
  for (;;) {
    if (!used_[slot]) {
      slots_[slot] = std::move(incoming);
      used_[slot] = true;
      if (result == kNone) result = slot;
      return result;
    }
    std::size_t existing_dist = probe_distance(slot);
    if (existing_dist < dist) {
      std::swap(slots_[slot], incoming);
      if (result == kNone) result = slot;
      dist = existing_dist;
    }
    slot = (slot + 1) & mask();
    ++dist;
  }
}

void FlowTable::erase(std::size_t slot) {
  if (slots_[slot].phase == FlowPhase::kPending) --pending_;
  buffer_bytes_ -= slots_[slot].buffer.capacity();
  --size_;
  // Backward-shift deletion: pull successors one step left until a hole or
  // an entry already at its home slot.
  std::size_t hole = slot;
  for (;;) {
    std::size_t next = (hole + 1) & mask();
    if (!used_[next] || probe_distance(next) == 0) break;
    slots_[hole] = std::move(slots_[next]);
    hole = next;
  }
  slots_[hole] = FlowEntry{};
  used_[hole] = false;
  if (evict_cursor_ > hole) evict_cursor_ = hole;
}

void FlowTable::set_phase(std::size_t slot, FlowPhase phase) {
  FlowEntry& e = slots_[slot];
  if (e.phase == FlowPhase::kPending && phase != FlowPhase::kPending) {
    --pending_;
    buffer_bytes_ -= e.buffer.capacity();
    e.buffer.clear();
    e.buffer.shrink_to_fit();
    buffer_bytes_ += e.buffer.capacity();
  } else if (e.phase != FlowPhase::kPending && phase == FlowPhase::kPending) {
    ++pending_;
  }
  e.phase = phase;
}

void FlowTable::append_buffer(std::size_t slot,
                              std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t>& buf = slots_[slot].buffer;
  buffer_bytes_ -= buf.capacity();
  buf.insert(buf.end(), data.begin(), data.end());
  buffer_bytes_ += buf.capacity();
}

bool FlowTable::evict_one_pending() {
  if (pending_ == 0) return false;
  for (std::size_t probed = 0; probed < slots_.size(); ++probed) {
    std::size_t slot = evict_cursor_;
    evict_cursor_ = (evict_cursor_ + 1) % slots_.size();
    if (used_[slot] && slots_[slot].phase == FlowPhase::kPending) {
      erase(slot);
      return true;
    }
  }
  return false;
}

FlowTable::SweepResult FlowTable::evict_idle(util::Timestamp cutoff) {
  SweepResult result;
  std::size_t slot = 0;
  while (slot < slots_.size()) {
    if (used_[slot] && slots_[slot].last_seen < cutoff) {
      if (slots_[slot].phase == FlowPhase::kPending) {
        ++result.pending;
      } else {
        ++result.done;
      }
      erase(slot);
      // erase() may have shifted a successor into `slot`; re-examine it.
      continue;
    }
    ++slot;
  }
  return result;
}

void FlowTable::rehash(std::size_t new_capacity) {
  std::vector<FlowEntry> old_slots = std::move(slots_);
  std::vector<bool> old_used = std::move(used_);
  slots_.assign(new_capacity, FlowEntry{});
  used_.assign(new_capacity, false);
  std::size_t old_size = size_;
  std::size_t old_pending = pending_;
  size_ = 0;
  pending_ = 0;
  evict_cursor_ = 0;
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    if (!old_used[i]) continue;
    FlowEntry& e = old_slots[i];
    std::size_t slot = insert(e.key, e.last_seen);
    FlowPhase phase = e.phase;
    slots_[slot].buffer = std::move(e.buffer);
    if (phase != FlowPhase::kPending) set_phase(slot, phase);
  }
  if (size_ != old_size || pending_ > old_pending) {
    throw std::logic_error("FlowTable: rehash lost entries");
  }
}

}  // namespace netobs::net
