// User sessions (Section 4.1):
//
//   s_u^T = [h_1, ..., h_n] — the sequence of hosts visited by user u in the
//   last window of length T, where T is either a time interval (the paper's
//   deployment uses T = 20 minutes) or a host count.
//
// If a host was visited more than once inside the window only the first
// visit counts, so interactive services (video/audio streaming) that
// reconnect repeatedly do not dominate the profile.
//
// SessionStore ingests observer HostnameEvents and answers window queries;
// it is also the source of the per-user-per-day training sequences for the
// daily SKIPGRAM retraining of Section 5.4.
//
// Storage (DESIGN §5k): visits are interned — each stored visit is one
// packed 8-byte slot {u32 host_id, u32 dt} in a per-user ring buffer, with
// timestamps delta-encoded against a per-user base. Rings live in per-shard
// chunked arenas (64 KiB chunks, power-of-two spans recycled through
// freelists), and hostname ids resolve through a util::InternPool that the
// store either owns or shares with the ingest pipeline. The store is
// shard-affine: users are owned by shard `user_id % shards` (the same
// strided ownership as net::UserDemux), so one ingest thread per shard
// needs no locks.
//
// Concurrency contract:
//   - Plain ingest()/queries: single writer, or external synchronisation.
//   - ingest_shard()/ingest_shard_id(): safe from one thread per shard
//     concurrently (distinct shards never touch shared mutable state).
//   - Queries against a shard must not race writes to the same shard;
//     quiesce (e.g. epoch barriers) before fanning out reads.
//   - event_count()/user_count()/payload_bytes()/memory_bytes()/
//     max_timestamp()/eviction_stats() are relaxed-atomic and safe from
//     any thread at any time.
//
// Budget / eviction: an optional hard budget over *payload bytes* — the
// shard-invariant per-user cost (fixed map-node share + ring capacity).
// When exceeded, the coldest idle users (smallest last_seen, user id as
// tie-break) are evicted down to a 7/8 low-water mark. Users active within
// the training lookback (default: the horizon) are never evicted. Plain
// ingest() enforces the budget inline (single-writer); shard-affine callers
// must call enforce_budget() at quiesced points instead — eviction crosses
// shards and is not lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "util/intern_pool.hpp"
#include "util/mem_estimate.hpp"
#include "util/sim_time.hpp"

namespace netobs::profile {

/// Window specification: exactly one of the two modes.
struct Window {
  enum class Mode { kTime, kCount };
  Mode mode = Mode::kTime;
  util::Timestamp duration = 20 * util::kMinute;  ///< for kTime
  std::size_t count = 0;                          ///< for kCount

  static Window minutes(std::int64_t m) {
    return Window{Mode::kTime, m * util::kMinute, 0};
  }
  static Window last_hosts(std::size_t n) {
    return Window{Mode::kCount, 0, n};
  }
};

/// A materialised session: unique hostnames in first-visit order.
struct Session {
  std::uint32_t user_id = 0;
  util::Timestamp end = 0;  ///< query time
  std::vector<std::string> hostnames;

  bool empty() const { return hostnames.empty(); }
  std::size_t size() const { return hostnames.size(); }
};

/// Construction-time knobs for the interned store.
struct SessionStoreParams {
  /// History horizon: events older than this (relative to the newest event
  /// per user) are pruned. Must cover at least the training lookback.
  util::Timestamp horizon = 2 * util::kDay;
  /// Sub-store count; users are owned by shard `user_id % shards`. Use the
  /// ingest pipeline's shard count for lock-free shard-affine ingest.
  std::size_t shards = 1;
  /// Hard payload budget in bytes (0 = unbounded). See header comment.
  std::size_t memory_budget_bytes = 0;
  /// Users with last_seen within [now - lookback, now] are never evicted.
  /// 0 means "use the horizon" (the training lookback).
  util::Timestamp eviction_lookback = 0;
  /// Optional shared hostname pool (non-owning; must outlive the store).
  /// When null the store owns a private pool. Sharing the ingest pipeline's
  /// pool enables the zero-copy ingest_id()/ingest_shard_id() fast path.
  util::InternPool* external_pool = nullptr;
};

/// Monotone eviction counters plus a snapshot of the last enforce run.
struct SessionEvictionStats {
  std::uint64_t evicted_users = 0;
  std::uint64_t evicted_events = 0;
  std::uint64_t runs = 0;                 ///< enforce_budget() invocations
  util::Timestamp last_run_now = 0;       ///< `now` of the last run
  util::Timestamp coldest_last_seen = 0;  ///< coldest resident at last run
  bool over_budget = false;               ///< still over after the last run
};

class SessionStore {
 public:
  using Id = util::InternPool::Id;

  explicit SessionStore(util::Timestamp horizon = 2 * util::kDay);
  explicit SessionStore(const SessionStoreParams& params);

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  // --- ingest -------------------------------------------------------------

  void ingest(const net::HostnameEvent& event);
  void ingest(const std::vector<net::HostnameEvent>& events);

  /// Field-wise variant for the interned ingest path: the hostname is
  /// interned (hit-dominated hash probe) and stored as one 8-byte slot.
  void ingest(std::uint32_t user, util::Timestamp timestamp,
              std::string_view hostname);

  /// Zero-copy path: `host_id` must come from this store's pool() (share
  /// the pipeline pool via SessionStoreParams::external_pool).
  void ingest_id(std::uint32_t user, util::Timestamp timestamp, Id host_id);

  /// Lock-free shard-affine lanes: safe concurrently from one thread per
  /// shard. `shard` must equal shard_of(user). Never auto-evicts — call
  /// enforce_budget() from a quiesced point instead.
  void ingest_shard(std::size_t shard, std::uint32_t user,
                    util::Timestamp timestamp, std::string_view hostname);
  void ingest_shard_id(std::size_t shard, std::uint32_t user,
                       util::Timestamp timestamp, Id host_id);

  // --- queries ------------------------------------------------------------

  /// The session of `user` at time `now` for the given window, applying the
  /// first-visit-only rule.
  Session session_of(std::uint32_t user, util::Timestamp now,
                     const Window& window) const;

  /// Id-returning session query: same visits, same first-visit order, no
  /// string materialisation. `out` is cleared and reused (zero-alloc once
  /// warm). Dedup by id is dedup by hostname — interning is injective.
  void session_ids_of(std::uint32_t user, util::Timestamp now,
                      const Window& window, std::vector<Id>& out) const;

  /// Per-user hostname sequences for one whole day (for model training;
  /// Section 5.4 trains on "the sequence of hosts visited by all the users
  /// during the whole previous day"). No dedup here — the raw request
  /// stream is what SKIPGRAM learns from. Sorted lexicographically.
  std::vector<std::vector<std::string>> day_sequences(
      std::int64_t day_index) const;

  /// Id-returning day sequences, sorted by id sequence (deterministic for a
  /// fixed pool). Prefer for_each_day_id_sequence() on hot paths.
  std::vector<std::vector<Id>> day_id_sequences(std::int64_t day_index) const;

  /// Visit every resident user without copying the key set:
  /// fn(std::uint32_t user, util::Timestamp last_seen). Shard-major order,
  /// unspecified within a shard. Zero allocations.
  template <class Fn>
  void for_each_user(Fn&& fn) const {
    for (const auto& shard : shards_) {
      for (const auto& [user, state] : shard->users) {
        fn(user, state.last_seen);
      }
    }
  }

  /// Visit every non-empty per-user day sequence without materialising
  /// strings: fn(std::uint32_t user, std::span<const Id> sequence). The
  /// span is only valid during the callback (one reused scratch buffer —
  /// no per-user allocations). Shard-major order, unspecified within a
  /// shard; callers needing determinism must sort what they build.
  template <class Fn>
  void for_each_day_id_sequence(std::int64_t day_index, Fn&& fn) const {
    std::vector<Id> seq;
    util::Timestamp begin = day_index * util::kDay;
    util::Timestamp end = begin + util::kDay;
    for (const auto& shard : shards_) {
      for (const auto& [user, u] : shard->users) {
        seq.clear();
        for (std::uint32_t i = 0; i < u.count; ++i) {
          const Slot& s = u.ring[(u.head + i) & (u.capacity - 1)];
          util::Timestamp ts = u.base_ts + static_cast<util::Timestamp>(s.dt);
          if (ts >= begin && ts < end) seq.push_back(s.host_id);
        }
        if (!seq.empty()) fn(user, std::span<const Id>(seq));
      }
    }
  }

  /// Users with at least one stored event, sorted. Copies the key set —
  /// prefer for_each_user() on hot paths.
  std::vector<std::uint32_t> users() const;

  /// Resolve interned ids back to hostname strings.
  std::vector<std::string> resolve(std::span<const Id> ids) const;

  // --- accounting (any thread) --------------------------------------------

  std::size_t event_count() const;
  /// Users with at least one stored event (cheap: counters, no scan).
  std::size_t user_count() const;

  /// Estimated heap footprint: per-shard user maps, arena chunks, and the
  /// owned intern pool (shared pools are accounted by their owner).
  std::size_t memory_bytes() const;

  /// Shard-invariant budgeted bytes: per-user fixed cost + ring capacity.
  std::size_t payload_bytes() const;

  /// Largest timestamp ingested so far (the budget clock).
  util::Timestamp max_timestamp() const;

  // --- budget / eviction --------------------------------------------------

  /// Evict coldest idle users until payload_bytes() <= 7/8 of the budget,
  /// never touching users with last_seen >= now - eviction_lookback. Also
  /// refreshes the coldest-resident snapshot. Returns true if anyone was
  /// evicted. NOT safe concurrently with ingest — quiesce first.
  bool enforce_budget(util::Timestamp now);
  /// enforce_budget(max_timestamp()).
  bool enforce_budget();

  SessionEvictionStats eviction_stats() const;

  // --- topology -----------------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(std::uint32_t user) const {
    return user % shards_.size();
  }
  util::InternPool& pool() { return *pool_; }
  const util::InternPool& pool() const { return *pool_; }
  util::Timestamp horizon() const { return horizon_; }
  std::size_t budget_bytes() const { return budget_; }
  util::Timestamp eviction_lookback() const { return lookback_; }

  /// Approximate budgeted cost of one resident user before any visit
  /// payload (map-node share). Exposed for tests and capacity planning.
  static constexpr std::size_t kUserFixedCost = 80;

 private:
  /// One stored visit: interned hostname + seconds since the user's base.
  struct Slot {
    Id host_id;
    std::uint32_t dt;
  };
  static_assert(sizeof(Slot) == 8, "slots must stay 8 bytes");

  /// Chunked slab allocator for ring spans. Spans are power-of-two slot
  /// counts carved from 64 KiB chunks by a bump pointer; released spans go
  /// to per-size freelists and are recycled. Spans larger than a chunk get
  /// a dedicated allocation. chunk_bytes() reports every allocated chunk —
  /// freelisted spans still count (honest footprint).
  class SlotArena {
   public:
    Slot* alloc(std::uint32_t capacity);
    void release(Slot* span, std::uint32_t capacity);
    std::size_t chunk_bytes() const { return chunk_bytes_; }

   private:
    static constexpr std::uint32_t kChunkSlots = 8192;  // 64 KiB
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    Slot* bump_ = nullptr;
    std::uint32_t bump_free_ = 0;
    std::array<std::vector<Slot*>, 32> free_;
    std::size_t chunk_bytes_ = 0;
  };

  struct UserState {
    Slot* ring = nullptr;
    std::uint32_t capacity = 0;  ///< power of two (or 0 before first visit)
    std::uint32_t head = 0;
    std::uint32_t count = 0;
    util::Timestamp base_ts = 0;   ///< dt origin
    util::Timestamp last_seen = 0; ///< max ingested timestamp
  };

  struct Shard {
    std::unordered_map<std::uint32_t, UserState> users;
    SlotArena arena;
    // Mirrors for cross-thread reads; written only by the shard owner (or
    // the quiesced eviction pass).
    std::atomic<std::size_t> events{0};
    std::atomic<std::size_t> payload{0};
    std::atomic<std::size_t> mem{0};
    std::atomic<std::size_t> user_count{0};
    std::atomic<util::Timestamp> max_ts{0};
  };

  static constexpr std::uint32_t kMinCapacity = 8;

  void shard_ingest(Shard& shard, std::uint32_t user, util::Timestamp ts,
                    Id host_id);
  static void prune(Shard& shard, UserState& u, util::Timestamp cutoff);
  static void grow(Shard& shard, UserState& u);
  /// Shift the delta origin to `new_base` (<= every stored timestamp).
  static void rebase(UserState& u, util::Timestamp new_base);
  void refresh_mem(Shard& shard);
  void maybe_auto_evict();
  /// Scan for the coldest resident last_seen (0 when empty).
  util::Timestamp coldest_resident() const;

  util::Timestamp horizon_;
  util::Timestamp lookback_;
  std::size_t budget_;
  std::unique_ptr<util::InternPool> owned_pool_;
  util::InternPool* pool_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> evicted_users_{0};
  std::atomic<std::uint64_t> evicted_events_{0};
  std::atomic<std::uint64_t> eviction_runs_{0};
  std::atomic<util::Timestamp> last_run_now_{0};
  std::atomic<util::Timestamp> coldest_last_seen_{0};
  std::atomic<bool> over_budget_{false};
};

}  // namespace netobs::profile
