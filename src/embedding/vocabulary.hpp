// Hostname vocabulary for the SKIPGRAM model.
//
// Maps hostnames to dense token ids, tracks request counts, filters rare
// hostnames (min_count), and precomputes the two distributions SGNS needs:
//   - the unigram^0.75 negative-sampling distribution P_D of Eq. 2
//     (Mikolov et al. 2013),
//   - the frequent-token subsampling keep-probabilities (GENSIM's
//     `sample=1e-3` default), which downsample google.com-scale hostnames
//     that carry little profiling information (Section 6.3 makes the same
//     observation about popular hosts).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

namespace netobs::embedding {

using TokenId = std::uint32_t;
using Sequence = std::vector<std::string>;

struct VocabularyParams {
  std::size_t min_count = 5;       ///< drop hostnames seen fewer times
  double ns_exponent = 0.75;       ///< negative-sampling distribution power
  double subsample_threshold = 1e-3;  ///< GENSIM `sample`; 0 disables
};

class Vocabulary {
 public:
  /// Builds the vocabulary from hostname sequences.
  Vocabulary(const std::vector<Sequence>& corpus,
             VocabularyParams params = VocabularyParams());

  std::size_t size() const { return tokens_.size(); }

  /// Id of a hostname, or nullopt when unknown/pruned.
  std::optional<TokenId> id_of(const std::string& host) const;

  const std::string& token(TokenId id) const { return tokens_.at(id); }
  std::uint64_t count(TokenId id) const { return counts_.at(id); }
  std::uint64_t total_count() const { return total_count_; }

  /// Draws a negative sample from the unigram^ns_exponent distribution.
  TokenId sample_negative(util::Pcg32& rng) const {
    return static_cast<TokenId>(negative_table_.sample(rng));
  }

  /// Probability of keeping an occurrence of `id` under frequent-token
  /// subsampling; 1.0 when subsampling is disabled.
  double keep_probability(TokenId id) const { return keep_prob_.at(id); }

  /// Encodes a sequence, dropping unknown tokens (no subsampling here; the
  /// trainer applies it per-epoch so every epoch sees a different sample).
  std::vector<TokenId> encode(const Sequence& seq) const;

  const std::vector<std::string>& tokens() const { return tokens_; }

 private:
  std::vector<std::string> tokens_;
  std::vector<std::uint64_t> counts_;
  std::unordered_map<std::string, TokenId> index_;
  std::vector<double> keep_prob_;
  util::AliasSampler negative_table_;
  std::uint64_t total_count_ = 0;
};

}  // namespace netobs::embedding
