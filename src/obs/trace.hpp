// RAII wall-time instrumentation: ScopedTimer records a scope's duration
// into a Histogram; Span additionally maintains a per-thread parent chain so
// nested scopes form a trace tree, optionally mirrored into a bounded
// in-memory TraceBuffer for post-run inspection.
//
// Both measure with std::chrono::steady_clock — the single clock path shared
// by bench-reported numbers and exported metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace netobs::obs {

/// Records elapsed seconds into a histogram when destroyed (or on stop()).
class ScopedTimer {
 public:
  /// `hist` may be nullptr: the timer then only measures, never records.
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  explicit ScopedTimer(Histogram& hist) : ScopedTimer(&hist) {}

  ~ScopedTimer() {
    if (!stopped_) stop();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records once and returns the elapsed seconds; idempotent.
  double stop() {
    if (!stopped_) {
      // Freeze the measurement before flipping stopped_: elapsed_seconds()
      // short-circuits to the frozen value once stopped_ is set.
      elapsed_ = elapsed_seconds();
      stopped_ = true;
      if (hist_ != nullptr) hist_->observe(elapsed_);
    }
    return elapsed_;
  }

  /// Seconds since construction (live until stop(), then frozen).
  double elapsed_seconds() const {
    if (stopped_) return elapsed_;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Histogram* hist_;
  bool stopped_ = false;
  double elapsed_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

/// One finished span, as stored in a TraceBuffer.
struct SpanRecord {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span
  int depth = 0;                ///< 0 = root
  double start_seconds = 0.0;   ///< since the process trace epoch
  double duration_seconds = 0.0;
};

/// Bounded MPSC-ish ring of finished spans (mutex-protected; pushes happen
/// at span end, never on a per-event hot path). Oldest records are dropped
/// when full and counted in dropped().
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 4096) : capacity_(capacity) {}

  void push(SpanRecord rec);

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  std::size_t dropped() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
  std::size_t dropped_ = 0;
};

/// A named hierarchical timing scope. On destruction the span's wall time is
/// recorded into `latency` (when given) and a SpanRecord is pushed to
/// `buffer` — or, when no buffer is given, to the global registry's trace
/// buffer if tracing has been enabled (MetricsRegistry::enable_tracing).
/// Parent/depth come from a thread-local span stack, so spans nest per
/// thread without any coordination.
class Span {
 public:
  explicit Span(std::string name, Histogram* latency = nullptr,
                TraceBuffer* buffer = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  double elapsed_seconds() const { return timer_.elapsed_seconds(); }
  std::uint64_t id() const { return id_; }
  int depth() const { return depth_; }

  /// Innermost live span on this thread (nullptr outside any span).
  static const Span* current();

 private:
  std::string name_;
  Histogram* latency_;
  TraceBuffer* buffer_;
  Span* parent_;
  std::uint64_t id_;
  int depth_;
  double start_seconds_;
  ScopedTimer timer_;
};

}  // namespace netobs::obs
