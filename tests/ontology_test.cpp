#include <gtest/gtest.h>

#include "ontology/category_tree.hpp"
#include "ontology/host_labeler.hpp"

namespace netobs::ontology {
namespace {

CategoryTree small_tree() {
  CategoryTree tree;
  auto travel = tree.add_root("Travel");
  auto hotels = tree.add_child(travel, "Hotels");
  tree.add_child(travel, "Flights");
  tree.add_child(hotels, "Hostels");  // level 2
  auto sports = tree.add_root("Sports");
  tree.add_child(sports, "Football");
  return tree;
}

TEST(CategoryTree, BuildsHierarchy) {
  auto tree = small_tree();
  EXPECT_EQ(tree.size(), 6U);
  EXPECT_EQ(tree.roots().size(), 2U);
  EXPECT_EQ(tree.at(1).name, "Travel/Hotels");
  EXPECT_EQ(tree.at(3).name, "Travel/Hotels/Hostels");
  EXPECT_EQ(tree.at(3).level, 2);
  EXPECT_EQ(tree.max_depth(), 2);
}

TEST(CategoryTree, AncestorWalk) {
  auto tree = small_tree();
  EXPECT_EQ(tree.ancestor_at_level(3, 1), 1U);  // Hostels -> Hotels
  EXPECT_EQ(tree.ancestor_at_level(3, 0), 0U);  // Hostels -> Travel
  EXPECT_EQ(tree.ancestor_at_level(0, 0), 0U);  // roots stay
}

TEST(CategoryTree, ChildrenLookup) {
  auto tree = small_tree();
  auto kids = tree.children(0);
  EXPECT_EQ(kids.size(), 2U);  // Hotels, Flights
  EXPECT_TRUE(tree.children(3).empty());
}

TEST(CategoryTree, InvalidIdsThrow) {
  auto tree = small_tree();
  EXPECT_THROW(tree.at(99), std::out_of_range);
  EXPECT_THROW(tree.add_child(99, "X"), std::out_of_range);
}

TEST(AdwordsTree, ReproducesPaperShape) {
  util::Pcg32 rng(1);
  AdwordsTreeParams params;  // defaults: 34 roots, 1397 total, 328 at <= 2
  auto tree = make_adwords_like_tree(rng, params);
  EXPECT_EQ(tree.size(), 1397U);
  EXPECT_EQ(tree.roots().size(), 34U);
  EXPECT_EQ(tree.categories_up_to_level(1).size(), 328U);
  EXPECT_LE(tree.max_depth(), 5);
  EXPECT_GE(tree.max_depth(), 2);  // some deep subtrees exist
}

TEST(AdwordsTree, BranchingIsUneven) {
  util::Pcg32 rng(2);
  auto tree = make_adwords_like_tree(rng, {});
  std::size_t min_kids = 10000;
  std::size_t max_kids = 0;
  for (CategoryId root : tree.roots()) {
    auto n = tree.children(root).size();
    min_kids = std::min(min_kids, n);
    max_kids = std::max(max_kids, n);
  }
  EXPECT_GE(min_kids, 1U);  // every root has at least one subcategory
  EXPECT_GT(max_kids, 10U * std::max<std::size_t>(1, min_kids));
}

TEST(AdwordsTree, RejectsInconsistentParams) {
  util::Pcg32 rng(3);
  AdwordsTreeParams bad;
  bad.top_level = 0;
  EXPECT_THROW(make_adwords_like_tree(rng, bad), std::invalid_argument);
  bad = AdwordsTreeParams();
  bad.second_level_target = 10;  // < 2 * top_level
  EXPECT_THROW(make_adwords_like_tree(rng, bad), std::invalid_argument);
  bad = AdwordsTreeParams();
  bad.total_categories = 100;  // < second_level_target
  EXPECT_THROW(make_adwords_like_tree(rng, bad), std::invalid_argument);
}

TEST(CategorySpace, FlattensToTwoLevels) {
  auto tree = small_tree();
  CategorySpace space(tree);
  // Level <= 1 nodes: Travel, Hotels, Flights, Sports, Football.
  EXPECT_EQ(space.size(), 5U);
  // The level-2 node maps to its level-1 parent.
  EXPECT_EQ(space.flatten(3), space.flatten(1));
  // Top-level mapping.
  EXPECT_EQ(space.top_level_of(space.flatten(1)), space.flatten(0));
  EXPECT_EQ(space.top_level_ids().size(), 2U);
}

TEST(CategorySpace, NamesAndTreeIdsRoundTrip) {
  auto tree = small_tree();
  CategorySpace space(tree);
  for (std::size_t f = 0; f < space.size(); ++f) {
    EXPECT_EQ(space.flatten(space.tree_id(f)), f);
    EXPECT_FALSE(space.name(f).empty());
  }
  EXPECT_THROW(space.name(99), std::out_of_range);
}

TEST(CategoryVector, Validation) {
  EXPECT_TRUE(is_valid_category_vector({0.0F, 0.5F, 1.0F}));
  EXPECT_FALSE(is_valid_category_vector({-0.1F}));
  EXPECT_FALSE(is_valid_category_vector({1.1F}));
  EXPECT_TRUE(is_valid_category_vector({}));
}

TEST(HostLabeler, StoreAndLookup) {
  HostLabeler labeler(3);
  labeler.set_label("espn.com", {0.0F, 1.0F, 0.2F});
  ASSERT_NE(labeler.label_of("espn.com"), nullptr);
  EXPECT_FLOAT_EQ((*labeler.label_of("espn.com"))[1], 1.0F);
  EXPECT_EQ(labeler.label_of("unknown.com"), nullptr);
  EXPECT_TRUE(labeler.is_labeled("espn.com"));
  EXPECT_EQ(labeler.labeled_count(), 1U);
  EXPECT_DOUBLE_EQ(labeler.coverage(10), 0.1);
}

TEST(HostLabeler, RejectsBadVectors) {
  HostLabeler labeler(3);
  EXPECT_THROW(labeler.set_label("a.com", {1.0F}), std::invalid_argument);
  EXPECT_THROW(labeler.set_label("a.com", {0.0F, 2.0F, 0.0F}),
               std::invalid_argument);
  EXPECT_THROW(HostLabeler(0), std::invalid_argument);
}

TEST(HostLabeler, ReplacesExistingLabel) {
  HostLabeler labeler(2);
  labeler.set_label("a.com", {1.0F, 0.0F});
  labeler.set_label("a.com", {0.0F, 1.0F});
  EXPECT_EQ(labeler.labeled_count(), 1U);
  EXPECT_FLOAT_EQ((*labeler.label_of("a.com"))[1], 1.0F);
}

// Sweep: the space size always equals the level<=1 node count for varying
// tree shapes.
class AdwordsTreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdwordsTreeSweep, SpaceMatchesSecondLevelTarget) {
  util::Pcg32 rng(GetParam());
  AdwordsTreeParams params;
  params.top_level = 10 + GetParam() % 20;
  params.second_level_target = 50 + 5 * (GetParam() % 30);
  params.total_categories = params.second_level_target + 200;
  auto tree = make_adwords_like_tree(rng, params);
  CategorySpace space(tree);
  EXPECT_EQ(space.size(), params.second_level_target);
  EXPECT_EQ(space.top_level_ids().size(), params.top_level);
  // Every flat id's top-level ancestor is itself a top-level flat id.
  for (std::size_t f = 0; f < space.size(); ++f) {
    std::size_t top = space.top_level_of(f);
    EXPECT_EQ(space.top_level_of(top), top);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AdwordsTreeSweep,
                         ::testing::Values(11, 23, 37, 59, 83));

}  // namespace
}  // namespace netobs::ontology
