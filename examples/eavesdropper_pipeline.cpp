// Full eavesdropper pipeline on real wire bytes.
//
// Synthetic users browse -> every request is serialised as a genuine TLS
// ClientHello (SNI in the handshake bytes, sometimes split across TCP
// segments) -> the sharded ingest pipeline at a WiFi vantage reassembles
// flows, extracts hostnames, interns them, and hands batched events to the
// profiling back-end, which filters trackers, retrains the SKIPGRAM model
// daily, and serves per-session profiles and eavesdropper ad lists. Nothing
// in the observer or profiler ever touches the simulator's ground truth.
//
// --ingest-shards=N sets the worker count (default 4; 1 reproduces the
// single-threaded observer event stream bit for bit).
// --train-threads=N sets the Hogwild worker count of the daily SKIPGRAM
// retrain (default: hardware concurrency; 1 is the bit-exact serial path).
// --store-budget-kb=N caps the session store's payload (0 = unlimited);
// --store-lookback-min=N protects users active in the last N minutes from
// eviction. Budget state is live on /statusz via store_status().
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>

#include "ads/ad_database.hpp"
#include "bench/common.hpp"
#include "net/ingest.hpp"
#include "net/pcap.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/log.hpp"
#include "profile/service.hpp"
#include "synth/traffic.hpp"
#include "util/intern_pool.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  constexpr const char* kSite = "examples.eavesdropper";
  auto cfg = bench::parse_config(argc, argv, {400, 4, 7, ""});
  std::size_t ingest_shards = 4;
  std::size_t train_threads = 0;  // 0 = keep the service default (hardware)
  std::uint64_t store_budget_kb = 0;  // 0 = unlimited
  std::uint64_t store_lookback_min = 0;  // 0 = keep the store default
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--ingest-shards=", 0) == 0) {
      ingest_shards = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string("--ingest-shards=").size(), nullptr, 10));
      if (ingest_shards == 0) ingest_shards = 1;
    } else if (arg.rfind("--train-threads=", 0) == 0) {
      train_threads = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string("--train-threads=").size(), nullptr, 10));
    } else if (arg.rfind("--store-budget-kb=", 0) == 0) {
      store_budget_kb = std::strtoull(
          arg.c_str() + std::string("--store-budget-kb=").size(), nullptr,
          10);
    } else if (arg.rfind("--store-lookback-min=", 0) == 0) {
      store_lookback_min = std::strtoull(
          arg.c_str() + std::string("--store-lookback-min=").size(), nullptr,
          10);
    }
  }
  auto server = bench::serve_telemetry(cfg);
  if (server) server->health().set_status("model", false, "not trained yet");
  auto world = bench::make_world(cfg);
  std::cout << "== eavesdropper pipeline (bytes on the wire) ==\n";

  // --- The world browses; the wire carries TLS handshakes.
  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);
  synth::TrafficParams tp;
  tp.split_probability = 0.3;
  tp.quic_fraction = 0.2;
  synth::TrafficSynthesizer synthesizer(*world.population, tp);
  auto packets = synthesizer.synthesize(trace.events);
  std::cout << "wire: " << packets.size() << " packets carrying "
            << trace.events.size() << " TLS/QUIC connections\n";
  obs::log_info(kSite, "traffic synthesised",
                {{"packets", std::to_string(packets.size())},
                 {"connections", std::to_string(trace.events.size())}});

  // --- Round-trip the capture through a standard pcap file, as a real tap
  // deployment would (open /tmp/netobs_capture.pcap in Wireshark).
  {
    std::ofstream pcap_out("/tmp/netobs_capture.pcap", std::ios::binary);
    net::write_pcap(pcap_out, packets);
  }
  std::ifstream pcap_in("/tmp/netobs_capture.pcap", std::ios::binary);
  packets = net::read_pcap(pcap_in);
  std::cout << "pcap: capture written and replayed from "
               "/tmp/netobs_capture.pcap ("
            << packets.size() << " frames)\n";

  // --- Back-end: blocklists, daily retraining, profiling. Constructed
  // first because the ingest pipeline delivers straight into it.
  auto labeler = world.universe->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());

  profile::ServiceParams sp;
  sp.profiler.knn = 50;
  sp.profiler.aggregation = profile::Aggregation::kNormalizedMean;
  sp.vocab.min_count = 2;
  sp.sgns.epochs = 15;
  if (train_threads > 0) sp.sgns.threads = train_threads;
  // Session store: shard-affine with the ingest pipeline, optionally under
  // a hard memory budget with coldest-first idle eviction.
  sp.store.shards = ingest_shards;
  if (store_budget_kb > 0) {
    sp.store.memory_budget_bytes = store_budget_kb * 1024;
  }
  if (store_lookback_min > 0) {
    sp.store.eviction_lookback =
        static_cast<util::Timestamp>(store_lookback_min) * util::kMinute;
  }
  std::cout << "retrain: " << std::max<std::size_t>(1, sp.sgns.threads)
            << " Hogwild worker(s)\n";
  profile::ProfilingService service(labeler, &blocklist, sp);
  bench::attach_knn_status(server, service);
  bench::attach_store_status(server, service);

  // --- Passive observation at a WiFi vantage (per-device MAC demux),
  // through the sharded ingest pipeline: packets are routed to per-shard
  // flow tables by sender identity, hostnames are interned once, and the
  // profiler receives batched 16-byte events instead of owning strings.
  // Provenance flight recorder: 1-in-64 of the wire events is stamped at
  // every hop (parse -> ring -> session -> profile), feeding the staleness
  // quantiles on /metrics and the flight_* rows on /statusz.
  obs::FlightRecorderOptions fro;
  fro.sample_every = 64;
  obs::FlightRecorder flight(fro);

  util::InternPool pool;
  net::IngestOptions io;
  io.shards = ingest_shards;
  io.flight = &flight;
  net::IngestPipeline pipeline(
      io, pool, [&](std::span<const net::InternedEvent> batch) {
        service.ingest_interned(batch, pool);
      });
  service.set_flight_recorder(&flight);
  bench::attach_ingest_status(server, pipeline);
  if (server) {
    server->add_status_provider([&flight] { return flight.status(); });
  }
  bench::StageTimer observe_timer("observe");
  pipeline.push(packets);
  pipeline.flush();
  observe_timer.stop_and_report();
  auto istats = pipeline.stats();
  std::cout << "observer: " << istats.observer.events
            << " SNI hostnames from " << istats.observer.flows << " flows ("
            << istats.distinct_users << " distinct devices, "
            << istats.shards << " shards, " << pool.size()
            << " interned names)\n";
  obs::log_info(kSite, "observation pass done",
                {{"events", std::to_string(istats.observer.events)},
                 {"flows", std::to_string(istats.observer.flows)},
                 {"devices", std::to_string(istats.distinct_users)},
                 {"shards", std::to_string(istats.shards)}});
  std::cout << "back-end: " << service.store().event_count()
            << " events kept, " << service.filtered_events()
            << " tracker connections dropped\n";
  std::cout << "store: " << service.store().user_count()
            << " resident users in " << service.store().memory_bytes() / 1024
            << " KiB ("
            << (store_budget_kb > 0 ? std::to_string(store_budget_kb) + " KiB budget, "
                                    : std::string("no budget, "))
            << service.store().eviction_stats().evicted_users
            << " users evicted)\n";
  std::cout << "flight: " << flight.sampled_count() << " events traced 1/"
            << fro.sample_every << " (" << flight.completed_count()
            << " closed at session, " << flight.in_flight()
            << " in flight)\n";

  bench::StageTimer retrain_timer("retrain");
  if (!service.retrain(cfg.days - 2)) {
    obs::log_error(kSite, "not enough data to train",
                   {{"hint", "increase --users/--days"}});
    return 1;
  }
  retrain_timer.stop_and_report();
  if (server) server->health().set_status("model", true, "trained");
  std::cout << "model: " << service.model().size() << " hostnames, d="
            << service.model().dim() << "\n\n";

  // --- Profile the three most active observed users at end of trace.
  auto db = ads::AdDatabase::collect(*world.universe, labeler, 2000, 1);
  ads::EavesdropperSelector selector(db, labeler);
  util::Timestamp now = (cfg.days)*util::kDay - 1;

  std::vector<std::pair<std::size_t, std::uint32_t>> activity;
  for (std::uint32_t u : service.store().users()) {
    activity.push_back(
        {service.session_of(u, now).size(), u});
  }
  std::sort(activity.rbegin(), activity.rend());

  const auto& space = *world.space;
  int shown = 0;
  for (auto [len, user] : activity) {
    if (shown++ >= 3) break;
    auto session = service.session_of(user, now);
    auto profile = service.profile_user(user, now);
    std::cout << "observed user #" << user << ": session of "
              << session.size() << " hostnames, e.g. [";
    for (std::size_t i = 0; i < std::min<std::size_t>(3, session.size());
         ++i) {
      std::cout << (i ? ", " : "") << session.hostnames[i];
    }
    std::cout << "]\n";
    if (profile.empty()) {
      std::cout << "  (no categorisable activity in the last 20 min)\n";
      continue;
    }
    std::cout << "  top categories:";
    for (std::size_t c : profile.top_categories(3)) {
      std::cout << util::format("  %s=%.2f", space.name(c).c_str(),
                                profile.categories[c]);
    }
    auto ad_list = selector.select(profile.categories);
    std::cout << "\n  eavesdropper ad list: " << ad_list.size()
              << " ads, first landing on "
              << (ad_list.empty() ? "-" : db.ad(ad_list[0]).landing_host)
              << "\n";
  }
  std::cout << "\nThe entire chain consumed only bytes a passive network\n"
               "observer sees: TLS handshakes in, targeted ads out.\n";
  bench::dump_telemetry(cfg);
  bench::hold_if_serving(server);
  return 0;
}
