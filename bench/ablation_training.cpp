// Ablation — training-objective and retraining-strategy variants.
//
// The paper fixes SKIPGRAM with GENSIM defaults and retrains a fresh model
// every day on the previous day's data, noting that "the amount of data
// used for training is configurable". This bench compares:
//   - SKIPGRAM vs CBOW (the standard word2vec alternative),
//   - cold daily retraining (the paper) vs warm-started retraining
//     (initialise from yesterday's model — our extension),
//   - single-threaded vs Hogwild multi-threaded training (the "fully
//     parallelizable" claim of Section 4.1: quality must not degrade).
#include <iostream>

#include "bench/quality_probe.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 3, 2021, ""});
  bench::QualityFixture fx(cfg);
  util::print_banner(std::cout, "Ablation: training variants");
  bench::print_scale_note(cfg, fx.world);

  util::Table objective({"objective", "top-3 match", "ad affinity",
                         "vs random"});
  for (auto mode : {embedding::SgnsMode::kSkipGram,
                    embedding::SgnsMode::kCbow}) {
    auto sp = bench::scaled_service_params();
    sp.sgns.mode = mode;
    auto q = bench::measure_quality(fx, sp);
    objective.add_row(
        {mode == embedding::SgnsMode::kSkipGram ? "SKIPGRAM (paper)" : "CBOW",
         util::format("%.3f", q.top3_match),
         util::format("%.3f", q.selected_affinity),
         util::format("%.2fx", q.selected_affinity /
                                   std::max(1e-9, q.random_affinity))});
  }
  objective.print(std::cout);

  util::Table retraining({"retraining", "top-3 match", "ad affinity"});
  for (bool warm : {false, true}) {
    auto sp = bench::scaled_service_params();
    sp.warm_start = warm;
    // Two consecutive daily retrainings: day 0 then day 1; warm start
    // carries day-0 knowledge into the day-1 model.
    auto q = bench::measure_quality(fx, sp, true, 7, {0, 1});
    retraining.add_row({warm ? "warm-started (extension)" : "cold (paper)",
                        util::format("%.3f", q.top3_match),
                        util::format("%.3f", q.selected_affinity)});
  }
  retraining.print(std::cout);

  util::Table threading({"threads", "top-3 match", "ad affinity"});
  for (std::size_t threads : {1UL, 4UL}) {
    auto sp = bench::scaled_service_params();
    sp.sgns.threads = threads;
    auto q = bench::measure_quality(fx, sp);
    threading.add_row({std::to_string(threads),
                       util::format("%.3f", q.top3_match),
                       util::format("%.3f", q.selected_affinity)});
  }
  threading.print(std::cout);

  std::cout << "\nshape checks: SKIPGRAM edges out CBOW but both learn the\n"
               "structure (the paper's choice is not load-bearing); cold\n"
               "daily restarts — the paper's design — hold up well (the\n"
               "full-rate LR schedule of a warm restart re-shocks old rows,\n"
               "so warm-starting is no free win); Hogwild threading does\n"
               "not degrade quality.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
