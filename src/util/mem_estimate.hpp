// Heap-footprint estimators for standard containers, shared by every
// subsystem that reports into obs::MemoryAccountant.
//
// These are *estimates*: node-based containers are modelled as one
// allocation per element (libstdc++ layout: next pointer + cached hash +
// value, malloc-rounded) plus the bucket pointer array. The memz
// reconciliation test pins them against the counting allocator to within
// 10%, which is the accuracy the budgeting work (ROADMAP item 3) needs —
// trend and magnitude, not malloc-exact bytes.
#pragma once

#include <cstddef>
#include <string>

namespace netobs::util {

/// Malloc-style size rounding: glibc serves requests in 16-byte steps with
/// an 8-byte usable-size bonus over the header.
inline std::size_t malloc_rounded(std::size_t request) {
  if (request == 0) return 0;
  std::size_t chunk = (request + 8 + 15) & ~std::size_t{15};
  return chunk < 32 ? 24 : chunk - 8;
}

/// Approximate heap bytes of an unordered associative container: one node
/// per element plus the bucket pointer array.
template <class Map>
std::size_t unordered_map_bytes(const Map& map) {
  using Value = typename Map::value_type;
  std::size_t node = malloc_rounded(sizeof(Value) + 2 * sizeof(void*));
  return map.size() * node + map.bucket_count() * sizeof(void*);
}

/// Heap payload of one std::string — zero while the small-string
/// optimisation holds the bytes inline.
inline std::size_t string_heap_bytes(const std::string& s) {
  return s.capacity() > 15 ? malloc_rounded(s.capacity() + 1) : 0;
}

}  // namespace netobs::util
