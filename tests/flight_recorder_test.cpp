// Tests for the provenance flight recorder (obs/flight_recorder.hpp): the
// shard-layout-invariant sampling function, end-to-end hop stamping through
// a real IngestPipeline, overflow bounds on the in-flight table, and a
// FlightConcurrency suite that runs under the sanitizer_smoke ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/ingest.hpp"
#include "net/tls.hpp"
#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "util/intern_pool.hpp"

namespace netobs::obs {
namespace {

net::Packet tls_packet(std::uint32_t src_ip, std::uint64_t mac,
                       const std::string& host, util::Timestamp ts,
                       std::uint16_t src_port, std::uint32_t dst_ip) {
  net::Packet p;
  p.timestamp = ts;
  p.tuple = {src_ip, dst_ip, src_port, 443, net::Transport::kTcp};
  p.src_mac = mac;
  p.subscriber_id = mac;
  net::ClientHelloSpec spec;
  spec.sni = host;
  p.payload = net::build_client_hello_record(spec);
  return p;
}

/// Flow-per-packet corpus with advancing timestamps — enough hostname and
/// timestamp variety for the sampling hash to exercise both outcomes.
std::vector<net::Packet> corpus(std::size_t flows, std::size_t users,
                                std::size_t hosts) {
  std::vector<net::Packet> packets;
  packets.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    std::size_t u = (i * 7) % users;
    packets.push_back(tls_packet(
        0x0A000000 + static_cast<std::uint32_t>(u), 100 + u,
        "svc" + std::to_string(i % hosts) + ".example.com",
        static_cast<util::Timestamp>(i / 50),
        static_cast<std::uint16_t>(20000 + i % 30000),
        0xC0000000 + static_cast<std::uint32_t>(i)));
  }
  return packets;
}

/// Sorted (timestamp, hostname) sample log — the shard-count-invariant view.
std::vector<std::pair<std::int64_t, std::string>> sorted_log(
    const FlightRecorder& recorder) {
  auto log = recorder.sample_log();
  std::sort(log.begin(), log.end());
  return log;
}

TEST(FlightRecorder, SamplingIsDeterministicAndSeedSensitive) {
  FlightRecorderOptions opts;
  opts.sample_every = 8;
  opts.seed = 42;
  FlightRecorder a(opts), b(opts);
  FlightRecorderOptions other = opts;
  other.seed = 43;
  FlightRecorder c(other);

  int sampled = 0, seed_disagreements = 0;
  for (int i = 0; i < 512; ++i) {
    std::string host = "svc" + std::to_string(i) + ".example.com";
    std::int64_t ts = i / 50;
    bool hit = a.sampled(ts, host);
    EXPECT_EQ(hit, b.sampled(ts, host)) << host;  // pure function of opts
    sampled += hit ? 1 : 0;
    seed_disagreements += hit != c.sampled(ts, host) ? 1 : 0;
  }
  // Roughly 1-in-8 of 512 inputs; a different seed picks a different set.
  EXPECT_GT(sampled, 20);
  EXPECT_LT(sampled, 200);
  EXPECT_GT(seed_disagreements, 0);

  FlightRecorderOptions off = opts;
  off.sample_every = 0;
  EXPECT_FALSE(FlightRecorder(off).sampled(0, "any.example.com"));
  FlightRecorderOptions all = opts;
  all.sample_every = 1;
  EXPECT_TRUE(FlightRecorder(all).sampled(0, "any.example.com"));
}

TEST(FlightRecorder, SampledSetInvariantAcrossShardCounts) {
  auto packets = corpus(1200, 16, 60);
  FlightRecorderOptions fr;
  fr.sample_every = 16;
  fr.keep_sample_log = true;

  auto run = [&](std::size_t shards, FlightRecorder& recorder) {
    util::InternPool pool;
    net::IngestOptions opts;
    opts.shards = shards;
    opts.flight = &recorder;
    net::IngestPipeline pipeline(opts, pool,
                                 [](std::span<const net::InternedEvent>) {});
    pipeline.push(packets);
    pipeline.stop();
  };

  FlightRecorder one(fr), three(fr);
  run(1, one);
  run(3, three);

  // user_id/host_id differ across shard layouts; the sampled
  // (timestamp, hostname) set must not.
  auto log1 = sorted_log(one);
  auto log3 = sorted_log(three);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log3);
  EXPECT_EQ(one.sampled_count(), three.sampled_count());
}

TEST(FlightRecorder, StampsEveryHopAndPublishesStaleness) {
  auto packets = corpus(400, 8, 30);
  FlightRecorderOptions fr;
  fr.sample_every = 1;  // trace everything: each event must close
  FlightRecorder recorder(fr);

  util::InternPool pool;
  net::IngestOptions opts;  // shards = 1
  opts.flight = &recorder;
  std::vector<std::uint32_t> users;
  net::IngestPipeline pipeline(
      opts, pool, [&](std::span<const net::InternedEvent> batch) {
        for (const auto& e : batch) {
          recorder.complete_session(e.user_id, e.host_id, e.timestamp);
          users.push_back(e.user_id);
        }
      });
  pipeline.push(packets);
  pipeline.stop();

  EXPECT_EQ(recorder.sampled_count(), packets.size());
  EXPECT_GT(recorder.completed_count(), 0u);
  // The consumer completes records batch by batch, so the small in-flight
  // table never overflows on the lossless path.
  EXPECT_EQ(recorder.completed_count(),
            recorder.sampled_count() - recorder.overflow_count());
  EXPECT_EQ(recorder.in_flight(), 0u);

  // Profile queries retire the parked packet->profile records.
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  for (std::uint32_t user : users) recorder.record_profile(user);
  EXPECT_GT(recorder.profiled_count(), 0u);
  EXPECT_EQ(recorder.profiled_count(), users.size());

  // The hop and staleness quantiles land on the global registry.
  StatsHub::global().publish();
  std::ostringstream os;
  write_prometheus(os, MetricsRegistry::global());
  const std::string text = os.str();
  for (const char* series :
       {"netobs_flight_hop_seconds{hop=\"parse_to_enqueue\"",
        "netobs_flight_hop_seconds{hop=\"enqueue_to_dequeue\"",
        "netobs_flight_hop_seconds{hop=\"dequeue_to_session\"",
        "netobs_flight_staleness_seconds{quantile=\"0.5\",stage=\"session\"",
        "netobs_flight_staleness_seconds{quantile=\"0.99\",stage=\"profile\""}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }

  // /statusz rows carry the lifetime counters.
  auto rows = recorder.status();
  auto find_row = [&](const std::string& key) {
    for (const auto& [k, v] : rows) {
      if (k == key) return v;
    }
    return std::string("<missing>");
  };
  EXPECT_EQ(find_row("flight_sample_every"), "1");
  EXPECT_EQ(find_row("flight_sampled"), std::to_string(packets.size()));
}

TEST(FlightRecorder, OverflowIsBoundedAndCounted) {
  FlightRecorderOptions fr;
  fr.sample_every = 1;
  fr.max_in_flight = 8;
  FlightRecorder recorder(fr);
  // Open far more records than the table holds, never completing any: the
  // table must not grow, and the spill must be counted, not blocked on.
  for (std::uint32_t i = 0; i < 200; ++i) {
    recorder.record_parse(i, i, static_cast<std::int64_t>(i), 0,
                          "host.example.com");
  }
  EXPECT_EQ(recorder.sampled_count(), 200u);
  EXPECT_LE(recorder.in_flight(), 8u);
  EXPECT_GT(recorder.overflow_count(), 0u);
}

// Part of the sanitizer_smoke ctest: worker threads stamp kParse/kEnqueue,
// the consumer stamps kDequeue/kSession, and a scraping thread reads the
// counters and status rows — the full cross-thread surface under TSan.
TEST(FlightConcurrency, PipelineTracingUnderLoad) {
  auto packets = corpus(1500, 24, 80);
  FlightRecorderOptions fr;
  fr.sample_every = 4;
  FlightRecorder recorder(fr);

  util::InternPool pool;
  net::IngestOptions opts;
  opts.shards = 3;
  opts.batch_size = 64;
  opts.ring_capacity = 512;
  opts.flight = &recorder;
  std::atomic<std::uint64_t> delivered{0};
  net::IngestPipeline pipeline(
      opts, pool, [&](std::span<const net::InternedEvent> batch) {
        for (const auto& e : batch) {
          recorder.complete_session(e.user_id, e.host_id, e.timestamp);
        }
        delivered.fetch_add(batch.size());
        if (!batch.empty()) recorder.record_profile(batch.front().user_id);
      });
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)recorder.in_flight();
      (void)recorder.status();
      std::this_thread::yield();
    }
  });
  pipeline.push(packets);
  pipeline.flush();
  done.store(true, std::memory_order_release);
  scraper.join();
  pipeline.stop();

  EXPECT_GT(delivered.load(), 0u);
  EXPECT_GT(recorder.sampled_count(), 0u);
  // Every sampled record was completed, displaced (overflow) or is still
  // parked in the table — the accounting never loses one.
  EXPECT_EQ(recorder.completed_count() + recorder.overflow_count() +
                recorder.in_flight(),
            recorder.sampled_count());
}

}  // namespace
}  // namespace netobs::obs
