// Deterministic spherical k-means — the coarse quantizer behind the IVF
// approximate kNN index (ivf_index.hpp).
//
// Rows are expected unit-norm (the kNN indexes normalise at build time), so
// "nearest centroid" under Euclidean distance is "largest dot product" and
// every assignment pass is a dot_block sweep over the centroid matrix.
// Lloyd iterations on an optional deterministic subsample keep paper-scale
// builds (470K rows) in seconds; the final assignment always covers every
// row. Everything is seeded through util::Pcg32; the parallel assignment
// uses a fixed chunk grain with sequential reduction, and the parallel
// centroid update accumulates per-chunk partial sums (fixed chunk
// boundaries) merged in ascending chunk order — so results are
// bit-identical for any thread-pool size (including none).
//
// Assignment can optionally go through a two-level pruned scan
// (assign_fanout > 0): the centroids themselves are clustered into
// ~sqrt(fanout * k) groups, a row scores the group representatives first
// and only descends into the `assign_fanout` best groups. The group count
// minimises the per-row cost s + fanout * k / s — at the paper's 470K x
// 686 deployment shape that cuts assignment from 686 dots to ~104 and the
// measured stage time ~3.4x. The pruned result can differ from the exact
// argmax for rows near group boundaries (bounded recall cost, gated in
// the bench suite); it is still fully deterministic and pool-invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "embedding/matrix.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::embedding {

struct KmeansParams {
  std::size_t clusters = 0;  ///< k; must be >= 1 and <= rows
  int iterations = 8;        ///< Lloyd iterations over the training sample
  std::uint64_t seed = 2021;
  /// Rows used for the Lloyd iterations (deterministic sample without
  /// replacement); 0 = train on every row. The final assignment is always
  /// over all rows regardless.
  std::size_t train_sample = 131072;
  /// Two-level pruned assignment: number of centroid groups a row descends
  /// into (0 = exact full scan over all k centroids). Only engages once k
  /// is large enough for the group layer to pay for itself.
  std::size_t assign_fanout = 0;
  /// true (default): spherical k-means over unit-norm rows — centroids are
  /// re-projected to the sphere and "nearest" is the largest dot product.
  /// false: plain Lloyd L2 k-means over arbitrary vectors (the PQ residual
  /// codebooks): centroids stay at the cluster mean and assignment scores
  /// dot(x, c) - ||c||^2 / 2, the dot-product form of the L2 argmin, so
  /// the same SIMD dot_block sweep serves both metrics. The pruned
  /// two-level scan assumes unit norms and is disabled in this mode.
  bool spherical = true;
};

struct KmeansResult {
  /// k unit-norm centroid rows (padded/aligned like any EmbeddingMatrix).
  EmbeddingMatrix centroids;
  /// assignment[r] = centroid of row r, for every input row.
  std::vector<std::uint32_t> assignment;
};

/// Index of the centroid with the largest dot product against `unit_row`
/// (ties by ascending centroid id). `unit_row` must point at
/// centroids.stride() floats, zero-padded and 32-byte aligned.
std::uint32_t nearest_centroid(const EmbeddingMatrix& centroids,
                               const float* unit_row);

/// Clusters the unit-norm rows of `rows` into params.clusters partitions.
/// `pool` (optional) parallelises the assignment and centroid-update
/// passes; the output is bit-identical with or without it. Throws
/// std::invalid_argument when params.clusters is 0 or exceeds rows.rows().
KmeansResult spherical_kmeans(const EmbeddingMatrix& rows, KmeansParams params,
                              util::ThreadPool* pool = nullptr);

/// Assigns every row of `rows` to its nearest centroid (the final pass of
/// spherical_kmeans, reusable for warm rebuilds against kept centroids).
/// fanout > 0 routes through the two-level pruned scan described above.
/// spherical = false scores dot(x, c) - ||c||^2 / 2 (exact L2 nearest for
/// non-unit centroids, e.g. PQ codebook encode); fanout is ignored there.
std::vector<std::uint32_t> assign_to_centroids(const EmbeddingMatrix& rows,
                                               const EmbeddingMatrix& centroids,
                                               util::ThreadPool* pool = nullptr,
                                               std::size_t fanout = 0,
                                               bool spherical = true);

}  // namespace netobs::embedding
