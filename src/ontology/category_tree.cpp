#include "ontology/category_tree.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/string_util.hpp"

namespace netobs::ontology {

CategoryId CategoryTree::add_root(std::string name) {
  nodes_.push_back({std::move(name), kNoCategory, 0});
  return static_cast<CategoryId>(nodes_.size() - 1);
}

CategoryId CategoryTree::add_child(CategoryId parent, std::string_view name) {
  const Category& p = at(parent);
  Category child;
  child.name = p.name + "/" + std::string(name);
  child.parent = parent;
  child.level = p.level + 1;
  nodes_.push_back(std::move(child));
  return static_cast<CategoryId>(nodes_.size() - 1);
}

const Category& CategoryTree::at(CategoryId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("CategoryTree::at: bad id " + std::to_string(id));
  }
  return nodes_[id];
}

CategoryId CategoryTree::ancestor_at_level(CategoryId id, int max_level) const {
  CategoryId cur = id;
  while (at(cur).level > max_level) cur = at(cur).parent;
  return cur;
}

std::vector<CategoryId> CategoryTree::roots() const {
  return categories_up_to_level(0);
}

std::vector<CategoryId> CategoryTree::categories_up_to_level(
    int max_level) const {
  std::vector<CategoryId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].level <= max_level) {
      out.push_back(static_cast<CategoryId>(i));
    }
  }
  return out;
}

std::vector<CategoryId> CategoryTree::children(CategoryId id) const {
  std::vector<CategoryId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == id) out.push_back(static_cast<CategoryId>(i));
  }
  return out;
}

int CategoryTree::max_depth() const {
  int depth = 0;
  for (const auto& n : nodes_) depth = std::max(depth, n.level);
  return depth;
}

namespace {

// The top-level Adwords topics visible in Figure 6 of the paper.
constexpr const char* kTopLevelNames[] = {
    "Online Communities", "Arts & Entertainment", "People & Society",
    "Jobs & Education", "Games", "Internet & Telecom",
    "Computers & Electronics", "Shopping", "News", "Business & Industrial",
    "Reference", "Books & Literature", "Sports", "Travel", "Finance",
    "Health", "Real Estate", "Beauty & Fitness", "Autos & Vehicles",
    "Science", "Hobbies & Leisure", "Food & Drink", "Law & Government",
    "Pets & Animals", "Home & Garden", "Telecom", "Copiers & Fax",
    "Awards & Prizes", "Reviews & Comparisons", "DIY & Expert Content",
    "Clubs & Nightlife", "Scholarships & Financial Aid",
    "Telescopes & Optical Devices", "Crime & Mystery Films",
};
constexpr std::size_t kTopLevelNameCount =
    sizeof(kTopLevelNames) / sizeof(kTopLevelNames[0]);

}  // namespace

CategoryTree make_adwords_like_tree(util::Pcg32& rng,
                                    const AdwordsTreeParams& params) {
  if (params.top_level == 0) {
    throw std::invalid_argument("make_adwords_like_tree: need >= 1 root");
  }
  if (params.second_level_target < params.top_level * 2 ||
      params.total_categories < params.second_level_target) {
    throw std::invalid_argument(
        "make_adwords_like_tree: need top_level*2 <= second_level_target <= "
        "total_categories");
  }

  CategoryTree tree;
  std::vector<CategoryId> roots;
  roots.reserve(params.top_level);
  for (std::size_t i = 0; i < params.top_level; ++i) {
    std::string name = i < kTopLevelNameCount
                           ? kTopLevelNames[i]
                           : util::format("Topic %zu", i);
    roots.push_back(tree.add_root(std::move(name)));
  }

  // Second level: distribute (target - roots) subcategories unevenly, each
  // root getting at least one ("Telecom only has two subcategories, while
  // Computers & Electronics has 123").
  std::size_t second_total = params.second_level_target - params.top_level;
  auto shares = rng.dirichlet(params.top_level, 0.35);
  // Every root keeps at least two subcategories ("Telecom only has two
  // subcategories") when the budget allows it.
  std::size_t floor_subcats = second_total >= 2 * params.top_level ? 2 : 1;
  std::vector<std::size_t> per_root(params.top_level, floor_subcats);
  std::size_t assigned = floor_subcats * params.top_level;
  for (std::size_t i = 0; i < params.top_level && assigned < second_total;
       ++i) {
    auto extra = static_cast<std::size_t>(
        shares[i] * static_cast<double>(second_total - assigned));
    extra = std::min(extra, second_total - assigned);
    per_root[i] += extra;
    assigned += extra;
  }
  // Rounding leftovers go to random roots.
  while (assigned < second_total) {
    ++per_root[rng.next_below(static_cast<std::uint32_t>(params.top_level))];
    ++assigned;
  }

  std::vector<CategoryId> internal;  // candidate parents for deeper levels
  for (std::size_t i = 0; i < params.top_level; ++i) {
    for (std::size_t j = 0; j < per_root[i]; ++j) {
      CategoryId child =
          tree.add_child(roots[i], util::format("Sub %zu", j));
      internal.push_back(child);
    }
  }

  // Deeper levels: attach the remaining categories below random level >= 1
  // nodes, respecting max_depth. Bias toward a few "deep" roots by the same
  // uneven shares.
  std::size_t remaining = params.total_categories - tree.size();
  std::size_t serial = 0;
  while (remaining > 0) {
    CategoryId parent =
        internal[rng.next_below(static_cast<std::uint32_t>(internal.size()))];
    if (tree.at(parent).level >= params.max_depth - 1) continue;
    CategoryId child =
        tree.add_child(parent, util::format("Node %zu", serial++));
    internal.push_back(child);
    --remaining;
  }
  return tree;
}

CategorySpace::CategorySpace(const CategoryTree& tree) : tree_(&tree) {
  tree_to_flat_.assign(tree.size(), 0);
  for (CategoryId id : tree.categories_up_to_level(1)) {
    flat_to_tree_.push_back(id);
  }
  // Flat index lookup for level <= 1 nodes.
  std::vector<std::size_t> flat_of_tree(tree.size(),
                                        static_cast<std::size_t>(-1));
  for (std::size_t f = 0; f < flat_to_tree_.size(); ++f) {
    flat_of_tree[flat_to_tree_[f]] = f;
  }
  for (std::size_t t = 0; t < tree.size(); ++t) {
    CategoryId anc =
        tree.ancestor_at_level(static_cast<CategoryId>(t), 1);
    tree_to_flat_[t] = flat_of_tree[anc];
  }
  top_of_flat_.resize(flat_to_tree_.size());
  for (std::size_t f = 0; f < flat_to_tree_.size(); ++f) {
    CategoryId top = tree.ancestor_at_level(flat_to_tree_[f], 0);
    top_of_flat_[f] = flat_of_tree[top];
    if (tree.at(flat_to_tree_[f]).level == 0) {
      top_level_ids_.push_back(f);
    }
  }
}

std::size_t CategorySpace::flatten(CategoryId tree_id) const {
  if (tree_id >= tree_to_flat_.size()) {
    throw std::out_of_range("CategorySpace::flatten: bad tree id");
  }
  return tree_to_flat_[tree_id];
}

CategoryId CategorySpace::tree_id(std::size_t flat_id) const {
  if (flat_id >= flat_to_tree_.size()) {
    throw std::out_of_range("CategorySpace::tree_id: bad flat id");
  }
  return flat_to_tree_[flat_id];
}

const std::string& CategorySpace::name(std::size_t flat_id) const {
  return tree_->at(tree_id(flat_id)).name;
}

std::size_t CategorySpace::top_level_of(std::size_t flat_id) const {
  if (flat_id >= top_of_flat_.size()) {
    throw std::out_of_range("CategorySpace::top_level_of: bad flat id");
  }
  return top_of_flat_[flat_id];
}

bool is_valid_category_vector(const CategoryVector& v) {
  return std::all_of(v.begin(), v.end(),
                     [](float x) { return x >= 0.0F && x <= 1.0F; });
}

}  // namespace netobs::ontology
