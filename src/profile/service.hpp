// End-to-end profiling service: the back-end of Section 5.
//
// Operational loop (Section 5.4):
//   - hostname events stream in from the observer (tracker/ad hostnames
//     dropped through the blocklist first — "we decided not to use those
//     hostnames for profiling"),
//   - the SKIPGRAM model is retrained every day on the previous day's
//     request sequences of all users,
//   - whenever a user reports, her session profile is computed from the
//     hostnames of the last T = 20 minutes with the current model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>

#include "embedding/ivf_index.hpp"
#include "filter/blocklist.hpp"
#include "net/ingest.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "profile/profiler.hpp"
#include "profile/session.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::profile {

/// Service-level SGNS defaults: identical to the trainer's own defaults
/// except threads, which follows the hardware — the daily retrain is the
/// service's dominant offline cost and Section 4.1 calls training "fully
/// parallelizable". Single-core boxes (and the determinism-minded) get
/// threads = 1, the bit-exact path.
inline embedding::SgnsParams default_service_sgns() {
  embedding::SgnsParams p;
  p.threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  return p;
}

struct ServiceParams {
  Window profile_window = Window::minutes(20);
  ProfilerParams profiler;
  embedding::SgnsParams sgns = default_service_sgns();
  embedding::VocabularyParams vocab;
  /// When true, each daily retraining warm-starts from the previous day's
  /// model instead of training from scratch (extension; the paper retrains
  /// fresh every day).
  bool warm_start = false;
  /// Retrieval backend behind every profile: kExact reproduces the paper's
  /// full sweep; kIvf answers with the approximate inverted-file index
  /// (embedding/ivf_index.hpp) — recommended at paper-scale vocabularies.
  embedding::KnnBackend knn_backend = embedding::KnnBackend::kExact;
  /// IVF tuning; only read when knn_backend == kIvf. Under warm_start the
  /// daily rebuild also reuses the previous day's coarse quantizer.
  embedding::IvfParams ivf;
  /// Session-store layout: shard count (match the ingest pipeline's for the
  /// lock-free ingest_interned_shard path), memory budget and eviction
  /// lookback, and optionally the pipeline's shared InternPool (which turns
  /// ingest_interned into a zero-copy id hand-off).
  SessionStoreParams store;
};

class ProfilingService {
 public:
  /// labeler must outlive the service; blocklist may be nullptr (no
  /// filtering).
  ProfilingService(const ontology::HostLabeler& labeler,
                   const filter::Blocklist* blocklist,
                   ServiceParams params = ServiceParams());
  ~ProfilingService();

  /// Feeds observer events (blocked hostnames are silently dropped).
  void ingest(const net::HostnameEvent& event);
  void ingest(const std::vector<net::HostnameEvent>& events);

  /// Batch entry points for the sharded ingest pipeline: no per-event
  /// HostnameEvent materialisation, store-depth gauges updated once per
  /// batch instead of once per event. Behaviour (blocklist included) is
  /// identical to calling ingest() per event.
  void ingest(std::span<const net::HostnameEvent> events);
  void ingest(std::uint32_t user, util::Timestamp timestamp,
              std::string_view hostname);

  /// Interned-event batch: hostnames resolve through `pool` (the pipeline's
  /// InternPool). The natural Sink for net::IngestPipeline:
  ///   IngestPipeline::Sink sink = [&](std::span<const InternedEvent> b) {
  ///     service.ingest_interned(b, pool);
  ///   };
  void ingest_interned(std::span<const net::InternedEvent> events,
                       const util::InternPool& pool);

  /// Shard-affine interned batch for IngestOptions::shard_sink: safe to
  /// call concurrently from one worker thread per shard, with no locks on
  /// the store path, provided the store's shard count equals the pipeline's
  /// (ServiceParams::store.shards) — both stride users the same way, so a
  /// worker's events land in exactly one sub-store. Never auto-evicts;
  /// call store().enforce_budget() from a quiesced point.
  void ingest_interned_shard(std::size_t shard,
                             std::span<const net::InternedEvent> events,
                             const util::InternPool& pool);

  /// Number of events dropped by the blocklist since this service was
  /// constructed. Thin reader over the registry counter
  /// netobs_filter_dropped_total (per-instance baseline snapshotted at
  /// construction); frozen while the metrics registry is disabled.
  std::size_t filtered_events() const {
    return static_cast<std::size_t>(dropped_->value() - dropped_base_);
  }

  /// Retrains the model on the sequences of `train_day` (the operational
  /// loop passes yesterday). Returns false (keeping any previous model)
  /// when that day has no usable data.
  bool retrain(std::int64_t train_day);

  bool has_model() const { return model_ != nullptr; }
  const embedding::HostEmbedding& model() const;

  /// Session of `user` ending at `now` under the service window.
  Session session_of(std::uint32_t user, util::Timestamp now) const;

  /// Profiles a user at time `now`. Requires a trained model.
  SessionProfile profile_user(std::uint32_t user, util::Timestamp now) const;

  /// Profiles an explicit hostname list with the current model.
  SessionProfile profile_hostnames(
      const std::vector<std::string>& hostnames) const;

  /// Profiles many users at `now` in one batched kNN sweep; result i
  /// corresponds to users[i] and is bit-identical to profile_user(users[i],
  /// now). This is the line-rate path for reporting bursts: the embedding
  /// matrix is swept once per batch instead of once per user.
  std::vector<SessionProfile> profile_users(
      const std::vector<std::uint32_t>& users, util::Timestamp now) const;

  /// Batched variant of profile_hostnames (one matrix sweep for the whole
  /// batch).
  std::vector<SessionProfile> profile_batch(
      const std::vector<std::vector<std::string>>& sessions) const;

  SessionStore& store() { return store_; }
  const SessionStore& store() const { return store_; }

  /// Retrieval backend currently answering profiles (config value until the
  /// first retrain builds an index).
  embedding::KnnBackend knn_backend() const { return params_.knn_backend; }

  /// Key/value lines describing the live retrieval configuration —
  /// backend, IVF geometry and the int8 SIMD tier — for /statusz status
  /// providers (obs::HttpServer::add_status_provider).
  std::vector<std::pair<std::string, std::string>> knn_status() const;

  /// Key/value lines describing session-store occupancy, budget and
  /// eviction state for /statusz (budget bytes, live payload/heap bytes,
  /// users evicted, oldest resident age).
  std::vector<std::pair<std::string, std::string>> store_status() const;

  /// Attaches a provenance tracer: ingest_interned() closes in-flight
  /// records (kSession) and profile queries retire parked ones (kProfile).
  /// Pass the same recorder the ingest pipeline uses; nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* flight) { flight_ = flight; }

 private:
  /// Blocklist + store insert for one event, no gauge updates. Returns
  /// whether the event was accepted.
  bool ingest_one(std::uint32_t user, util::Timestamp timestamp,
                  std::string_view hostname);
  /// Interned variant: skips re-interning when `pool` is the store's pool.
  bool ingest_one_id(std::uint32_t user, util::Timestamp timestamp,
                     util::InternPool::Id host_id,
                     const util::InternPool& pool, bool shard_affine);
  void sync_store_gauges();
  void register_memory_probes();
  /// The pool shared by the retrain stages (Hogwild SGNS workers + IVF
  /// build), created lazily at sgns.threads and reused across retrains;
  /// nullptr when threads <= 1 (the bit-exact serial path).
  util::ThreadPool* retrain_pool();

  const ontology::HostLabeler* labeler_;
  const filter::Blocklist* blocklist_;
  ServiceParams params_;
  SessionStore store_;

  // Registry handles (obs/metrics.hpp); dropped_base_ makes
  // filtered_events() a per-instance view of the process-wide counter.
  obs::Counter* ingested_;
  obs::Counter* dropped_;
  std::uint64_t dropped_base_;
  obs::Counter* retrains_;
  obs::Counter* retrain_failures_;
  obs::Histogram* retrain_seconds_;
  obs::Counter* profiles_;
  obs::Histogram* profile_seconds_;
  // Live-telemetry derivatives (obs/stats_stream.hpp): ingest rate, profile
  // latency percentiles and session-store depth, published on every scrape.
  obs::Gauge* store_events_;
  obs::Gauge* store_users_;
  obs::Gauge* store_payload_bytes_;
  obs::Gauge* store_budget_bytes_;
  obs::Gauge* store_evicted_users_;
  obs::Gauge* store_evicted_events_;
  obs::RateGauge ingest_rate_;
  mutable obs::QuantileGauges profile_latency_q_;  // observed from const profilers

  std::unique_ptr<embedding::HostEmbedding> model_;
  std::unique_ptr<embedding::KnnIndex> index_;
  std::unique_ptr<SessionProfiler> profiler_;
  std::unique_ptr<util::ThreadPool> retrain_pool_;

  // Last-retrain parallelism readout for knn_status() / /statusz.
  std::size_t last_train_threads_ = 0;
  double last_train_pairs_per_s_ = 0.0;

  obs::FlightRecorder* flight_ = nullptr;

  // MemoryAccountant mirrors: the store/model/index are mutated on the
  // consumer (or caller) thread while probes read from the scraping thread,
  // so probes only ever see these atomics (refreshed per batch / retrain).
  std::atomic<std::size_t> store_bytes_{0};
  std::atomic<std::size_t> store_users_count_{0};
  std::atomic<std::size_t> model_bytes_{0};
  std::atomic<std::size_t> index_bytes_{0};
  std::atomic<std::size_t> pq_bytes_{0};
  std::vector<std::uint64_t> memory_probe_handles_;
  std::uint64_t user_probe_handle_ = 0;
};

}  // namespace netobs::profile
