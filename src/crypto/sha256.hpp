// SHA-256 (FIPS 180-4), HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869),
// implemented from scratch.
//
// Why a crypto module in a profiling library: Section 7.2 notes that QUIC
// leaks the requested hostname just like TLS. Unlike TCP+TLS, a QUIC
// Initial packet is *encrypted* — but with keys derived purely from the
// public Destination Connection ID (RFC 9001 §5.2), so any passive
// observer can derive them. Extracting the SNI from QUIC therefore needs
// HKDF-SHA256 (key derivation) and AES-128-GCM (payload) plus AES-ECB
// (header protection); this header provides the hash side.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace netobs::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finalises and returns the digest; the object must not be reused.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256.
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message);

/// HKDF-Extract (RFC 5869 §2.2).
Digest hkdf_extract(std::span<const std::uint8_t> salt,
                    std::span<const std::uint8_t> ikm);

/// HKDF-Expand (RFC 5869 §2.3). length <= 255 * 32.
std::vector<std::uint8_t> hkdf_expand(std::span<const std::uint8_t> prk,
                                      std::span<const std::uint8_t> info,
                                      std::size_t length);

/// HKDF-Expand-Label (RFC 8446 §7.1) with the "tls13 " label prefix, as
/// QUIC v1 uses for initial secrets.
std::vector<std::uint8_t> hkdf_expand_label(std::span<const std::uint8_t> secret,
                                            std::string_view label,
                                            std::span<const std::uint8_t> context,
                                            std::size_t length);

}  // namespace netobs::crypto
