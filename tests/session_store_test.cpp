// Oracle, eviction-edge, allocation-regression and concurrency tests for
// the interned SessionStore (DESIGN §5k).
//
// LegacySessionStore below is a verbatim port of the seed deque-of-strings
// implementation this store replaced; the oracle suite replays randomized
// event streams (out-of-order feeds included) into both and requires
// bit-identical query answers at every shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench/alloc_count.hpp"
#include "profile/session.hpp"
#include "util/rng.hpp"

namespace netobs::profile {
namespace {

using util::kDay;
using util::kHour;
using util::kMinute;

// --- the seed implementation, kept as the behavioural oracle --------------

class LegacySessionStore {
 public:
  explicit LegacySessionStore(util::Timestamp horizon = 2 * kDay)
      : horizon_(horizon) {}

  void ingest(std::uint32_t user, util::Timestamp timestamp,
              std::string_view hostname) {
    auto& visits = per_user_[user];
    visits.push_back({timestamp, std::string(hostname)});
    ++event_count_;
    util::Timestamp cutoff = timestamp - horizon_;
    while (!visits.empty() && visits.front().timestamp < cutoff) {
      visits.pop_front();
      --event_count_;
    }
  }

  Session session_of(std::uint32_t user, util::Timestamp now,
                     const Window& window) const {
    Session session;
    session.user_id = user;
    session.end = now;
    auto it = per_user_.find(user);
    if (it == per_user_.end()) return session;
    const auto& visits = it->second;

    std::vector<const Visit*> in_window;
    for (auto rit = visits.rbegin(); rit != visits.rend(); ++rit) {
      if (rit->timestamp > now) continue;
      if (window.mode == Window::Mode::kTime) {
        if (rit->timestamp <= now - window.duration) break;
      } else if (in_window.size() >= window.count) {
        break;
      }
      in_window.push_back(&*rit);
    }
    std::reverse(in_window.begin(), in_window.end());

    std::unordered_set<std::string_view> seen;
    for (const Visit* v : in_window) {
      if (seen.insert(v->hostname).second) {
        session.hostnames.push_back(v->hostname);
      }
    }
    return session;
  }

  std::vector<std::vector<std::string>> day_sequences(
      std::int64_t day_index) const {
    std::vector<std::vector<std::string>> out;
    util::Timestamp begin = day_index * kDay;
    util::Timestamp end = begin + kDay;
    for (const auto& [user, visits] : per_user_) {
      std::vector<std::string> seq;
      for (const auto& v : visits) {
        if (v.timestamp >= begin && v.timestamp < end) {
          seq.push_back(v.hostname);
        }
      }
      if (!seq.empty()) out.push_back(std::move(seq));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::vector<std::uint32_t> users() const {
    std::vector<std::uint32_t> out;
    out.reserve(per_user_.size());
    for (const auto& [user, visits] : per_user_) {
      if (!visits.empty()) out.push_back(user);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::size_t event_count() const { return event_count_; }

 private:
  struct Visit {
    util::Timestamp timestamp;
    std::string hostname;
  };
  util::Timestamp horizon_;
  std::unordered_map<std::uint32_t, std::deque<Visit>> per_user_;
  std::size_t event_count_ = 0;
};

struct RawEvent {
  std::uint32_t user;
  util::Timestamp ts;
  std::string host;
};

// Randomized stream: 10 users, 25 hosts, ~3 days of mostly-increasing
// timestamps with occasional backward jumps (the out-of-order feed the seed
// tolerated) and occasional far-future spikes (exercises the query-time
// future-skip).
std::vector<RawEvent> random_stream(std::uint64_t seed, std::size_t n) {
  util::Pcg32 rng(seed);
  std::vector<RawEvent> out;
  out.reserve(n);
  util::Timestamp ts = 5 * kMinute;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t user = rng.next_below(10);
    std::uint32_t host = rng.next_below(25);
    std::uint32_t step = rng.next_below(100);
    if (step < 4) {
      ts -= rng.next_below(3 * static_cast<std::uint32_t>(kMinute));
      if (ts < 0) ts = 0;
    } else {
      ts += rng.next_below(2 * static_cast<std::uint32_t>(kMinute));
    }
    util::Timestamp event_ts = ts;
    if (step >= 97) event_ts += kHour;  // future spike relative to the feed
    out.push_back({user, event_ts, "host" + std::to_string(host) + ".com"});
  }
  return out;
}

TEST(SessionStoreOracle, MatchesLegacyStoreAtAnyShardCount) {
  for (std::uint64_t seed : {7ULL, 99ULL}) {
    auto stream = random_stream(seed, 4000);
    LegacySessionStore legacy;
    for (const auto& e : stream) legacy.ingest(e.user, e.ts, e.host);

    for (std::size_t shards : {1U, 2U, 4U, 8U}) {
      SessionStoreParams params;
      params.shards = shards;
      SessionStore store(params);
      for (const auto& e : stream) store.ingest(e.user, e.ts, e.host);

      ASSERT_EQ(store.event_count(), legacy.event_count())
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(store.users(), legacy.users());
      for (std::int64_t day = 0; day < 4; ++day) {
        EXPECT_EQ(store.day_sequences(day), legacy.day_sequences(day))
            << "seed " << seed << " shards " << shards << " day " << day;
      }

      util::Timestamp last = stream.back().ts;
      for (std::uint32_t user = 0; user < 10; ++user) {
        for (util::Timestamp now :
             {last, last - 17 * kMinute, last + kHour, 2 * kDay + 1}) {
          for (Window w : {Window::minutes(20), Window::minutes(3),
                           Window::last_hosts(5), Window::last_hosts(1)}) {
            auto got = store.session_of(user, now, w);
            auto want = legacy.session_of(user, now, w);
            EXPECT_EQ(got.hostnames, want.hostnames)
                << "seed " << seed << " shards " << shards << " user " << user
                << " now " << now;
          }
        }
      }
    }
  }
}

TEST(SessionStoreOracle, IdVariantsMatchStringVariants) {
  auto stream = random_stream(42, 3000);
  SessionStoreParams params;
  params.shards = 4;
  SessionStore store(params);
  for (const auto& e : stream) store.ingest(e.user, e.ts, e.host);

  util::Timestamp now = stream.back().ts;
  std::vector<SessionStore::Id> ids;
  for (std::uint32_t user = 0; user < 10; ++user) {
    for (Window w : {Window::minutes(20), Window::last_hosts(4)}) {
      store.session_ids_of(user, now, w, ids);
      EXPECT_EQ(store.resolve(ids), store.session_of(user, now, w).hostnames)
          << "user " << user;
    }
  }

  for (std::int64_t day = 0; day < 3; ++day) {
    auto id_seqs = store.day_id_sequences(day);
    std::vector<std::vector<std::string>> resolved;
    resolved.reserve(id_seqs.size());
    for (const auto& seq : id_seqs) resolved.push_back(store.resolve(seq));
    std::sort(resolved.begin(), resolved.end());
    EXPECT_EQ(resolved, store.day_sequences(day)) << "day " << day;

    // The zero-alloc iterator visits exactly the same sequences.
    std::vector<std::vector<std::string>> iterated;
    store.for_each_day_id_sequence(
        day, [&](std::uint32_t, std::span<const SessionStore::Id> seq) {
          iterated.push_back(store.resolve(seq));
        });
    std::sort(iterated.begin(), iterated.end());
    EXPECT_EQ(iterated, store.day_sequences(day)) << "day " << day;
  }
}

TEST(SessionStore, PruneKeepsEventAtExactHorizon) {
  // Seed semantics: prune strictly-older-than-cutoff, so an event exactly
  // `horizon` old survives the ingest that defines the cutoff.
  SessionStoreParams params;
  params.horizon = kHour;
  SessionStore store(params);
  store.ingest(1, 1000, "edge.com");
  store.ingest(1, 1000 + kHour, "now.com");  // cutoff = 1000: edge survives
  EXPECT_EQ(store.event_count(), 2U);
  auto s = store.session_of(1, 1000 + kHour, Window::last_hosts(10));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"edge.com", "now.com"}));

  store.ingest(1, 1001 + kHour, "later.com");  // cutoff = 1001: edge pruned
  EXPECT_EQ(store.event_count(), 2U);
  s = store.session_of(1, 1001 + kHour, Window::last_hosts(10));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"now.com", "later.com"}));
}

// --- budget / eviction edges ----------------------------------------------

// Per-user payload with <= 8 visits: fixed cost + the minimum 8-slot ring.
constexpr std::size_t kSmallUserBytes = SessionStore::kUserFixedCost + 8 * 8;

TEST(SessionStoreEviction, EvictThenRevisitRebuildsSession) {
  SessionStoreParams params;
  params.memory_budget_bytes = 10 * kSmallUserBytes;
  params.eviction_lookback = kHour;
  SessionStore store(params);
  for (std::uint32_t user = 0; user < 20; ++user) {
    store.ingest(user, 1000 + user, "old" + std::to_string(user) + ".com");
  }
  util::Timestamp now = 1000 + 20 + 2 * kHour;
  ASSERT_TRUE(store.enforce_budget(now));
  auto stats = store.eviction_stats();
  EXPECT_GT(stats.evicted_users, 0U);
  EXPECT_LE(store.payload_bytes(), store.budget_bytes());

  // User 0 was the coldest, hence evicted; a revisit rebuilds from scratch.
  EXPECT_TRUE(store.session_of(0, now, Window::last_hosts(10)).empty());
  store.ingest(0, now, "fresh.com");
  auto s = store.session_of(0, now, Window::last_hosts(10));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"fresh.com"}));
}

TEST(SessionStoreEviction, VictimsAreShardInvariant) {
  // payload_bytes is defined over shard-invariant per-user costs and
  // victims sort by (last_seen, user_id), so the surviving set must be
  // identical at every shard count.
  auto build = [](std::size_t shards) {
    SessionStoreParams params;
    params.shards = shards;
    params.memory_budget_bytes = 30 * kSmallUserBytes;
    params.eviction_lookback = kHour;
    auto store = std::make_unique<SessionStore>(params);
    for (std::uint32_t user = 0; user < 64; ++user) {
      // Staggered idle times, decorrelated from user id.
      util::Timestamp ts = 1000 + ((user * 37) % 64) * kMinute;
      for (int i = 0; i < 1 + static_cast<int>(user % 3); ++i) {
        store->ingest(user, ts + i, "h" + std::to_string(user % 7) + ".com");
      }
    }
    return store;
  };

  util::Timestamp now = 1000 + 64 * kMinute + 2 * kHour;
  std::vector<std::uint32_t> reference;
  for (std::size_t shards : {1U, 2U, 4U, 8U}) {
    auto store = build(shards);
    store->enforce_budget(now);
    auto survivors = store->users();
    if (shards == 1) {
      reference = survivors;
      EXPECT_LT(survivors.size(), 64U);  // something was actually evicted
    } else {
      EXPECT_EQ(survivors, reference) << "shards " << shards;
    }
  }
}

TEST(SessionStoreEviction, TieBreakByUserId) {
  // Equal last_seen everywhere: victims must be the lowest user ids.
  SessionStoreParams params;
  params.shards = 4;
  params.memory_budget_bytes = 10 * kSmallUserBytes;
  params.eviction_lookback = kHour;
  SessionStore store(params);
  for (std::uint32_t user = 0; user < 16; ++user) {
    store.ingest(user, 5000, "same.com");
  }
  ASSERT_TRUE(store.enforce_budget(5000 + 2 * kHour));
  auto survivors = store.users();
  ASSERT_FALSE(survivors.empty());
  ASSERT_LT(survivors.size(), 16U);
  // Survivors are exactly the highest ids.
  std::uint32_t lowest_survivor = survivors.front();
  EXPECT_EQ(survivors.size(), 16U - lowest_survivor);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i], lowest_survivor + i);
  }
}

TEST(SessionStoreEviction, LookbackGuardProtectsActiveUsers) {
  // Everyone is active within the lookback: the budget stays violated but
  // nobody is evicted (the trainer's day sequences must not lose users).
  SessionStoreParams params;
  params.memory_budget_bytes = 2 * kSmallUserBytes;
  params.eviction_lookback = kDay;
  SessionStore store(params);
  for (std::uint32_t user = 0; user < 12; ++user) {
    store.ingest(user, 9000 + user, "live.com");
  }
  util::Timestamp now = 9000 + 12 + kHour;  // all within the 1-day lookback
  EXPECT_FALSE(store.enforce_budget(now));
  EXPECT_EQ(store.users().size(), 12U);
  auto stats = store.eviction_stats();
  EXPECT_EQ(stats.evicted_users, 0U);
  EXPECT_TRUE(stats.over_budget);
  EXPECT_EQ(stats.last_run_now, now);
  EXPECT_EQ(stats.coldest_last_seen, 9000);

  // Once users age past the lookback the same budget evicts them.
  util::Timestamp later = 9000 + 12 + 2 * kDay;
  EXPECT_TRUE(store.enforce_budget(later));
  EXPECT_FALSE(store.eviction_stats().over_budget);
}

TEST(SessionStoreEviction, PlainIngestAutoEvicts) {
  SessionStoreParams params;
  params.memory_budget_bytes = 8 * kSmallUserBytes;
  params.eviction_lookback = kMinute;
  SessionStore store(params);
  for (std::uint32_t user = 0; user < 200; ++user) {
    store.ingest(user, 1000 + user * 10 * kMinute, "auto.com");
  }
  EXPECT_GT(store.eviction_stats().evicted_users, 0U);
  EXPECT_LE(store.payload_bytes(), store.budget_bytes());
}

// --- allocation regression -------------------------------------------------

TEST(SessionStoreAlloc, IterationMakesNoPerUserAllocations) {
  if (bench::allocations_now() == 0) {
    GTEST_SKIP() << "counting allocator not linked (sanitizer build)";
  }
  constexpr std::uint32_t kUsers = 256;
  SessionStoreParams params;
  params.shards = 4;
  SessionStore store(params);
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    for (int i = 0; i < 6; ++i) {
      store.ingest(user, 100 + i * kMinute,
                   "host" + std::to_string(user % 11) + ".com");
    }
  }

  // for_each_user: strictly zero allocations.
  std::uint64_t before = bench::allocations_now();
  std::size_t visited = 0;
  store.for_each_user([&](std::uint32_t, util::Timestamp) { ++visited; });
  EXPECT_EQ(bench::allocations_now() - before, 0U);
  EXPECT_EQ(visited, kUsers);

  // for_each_day_id_sequence: O(1) scratch growth, never O(users). This is
  // the retrain iteration path — the seed's day_sequences() allocated
  // per-user vectors *and* per-visit strings.
  before = bench::allocations_now();
  visited = 0;
  store.for_each_day_id_sequence(
      0, [&](std::uint32_t, std::span<const SessionStore::Id>) { ++visited; });
  std::uint64_t iter_allocs = bench::allocations_now() - before;
  EXPECT_EQ(visited, kUsers);
  EXPECT_LE(iter_allocs, 8U) << "per-user allocations crept into iteration";

  // session_ids_of with a warm out-vector: zero steady-state allocations.
  std::vector<SessionStore::Id> ids;
  store.session_ids_of(0, kHour, Window::minutes(20), ids);
  before = bench::allocations_now();
  for (std::uint32_t user = 0; user < kUsers; ++user) {
    store.session_ids_of(user, kHour, Window::minutes(20), ids);
  }
  EXPECT_EQ(bench::allocations_now() - before, 0U);
}

TEST(SessionStoreAlloc, SteadyStateIngestIdIsAllocationFree) {
  if (bench::allocations_now() == 0) {
    GTEST_SKIP() << "counting allocator not linked (sanitizer build)";
  }
  // Warm rings + already-interned host + prune keeping counts flat: the
  // zero-copy ingest lane must touch the heap zero times per event.
  SessionStoreParams params;
  params.horizon = kHour;
  SessionStore store(params);
  auto id = store.pool().intern("steady.com");
  util::Timestamp ts = 0;
  for (int i = 0; i < 64; ++i) {  // warm-up: maps, rings, arena chunk
    ts += kHour + 1;
    for (std::uint32_t user = 0; user < 8; ++user) {
      store.ingest_id(user, ts, id);
    }
  }
  std::uint64_t before = bench::allocations_now();
  for (int i = 0; i < 256; ++i) {
    ts += kHour + 1;
    for (std::uint32_t user = 0; user < 8; ++user) {
      store.ingest_id(user, ts, id);
    }
  }
  EXPECT_EQ(bench::allocations_now() - before, 0U);
}

// --- concurrency (sanitizer_smoke: SessionConcurrency.*) --------------------

TEST(SessionConcurrency, ShardAffineIngestMatchesSerial) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint32_t kUsersPerShard = 12;
  constexpr int kEventsPerUser = 300;

  SessionStoreParams params;
  params.shards = kShards;
  SessionStore store(params);
  SessionStore serial;  // 1 shard, same logical stream

  auto host_of = [](std::uint32_t user, int i) {
    return "h" + std::to_string((user * 31 + i) % 17) + ".net";
  };
  auto ts_of = [](std::uint32_t user, int i) {
    return static_cast<util::Timestamp>(1000 + i * 20 + user % 7);
  };

  for (std::uint32_t user = 0; user < kShards * kUsersPerShard; ++user) {
    for (int i = 0; i < kEventsPerUser; ++i) {
      serial.ingest(user, ts_of(user, i), host_of(user, i));
    }
  }

  // One writer per shard; concurrent readers hammer the atomic accounting
  // surface the whole time (the documented any-thread-safe set).
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::size_t sink = 0;
    while (!done.load(std::memory_order_acquire)) {
      sink += store.event_count() + store.user_count() +
              store.payload_bytes() + store.memory_bytes() +
              static_cast<std::size_t>(store.max_timestamp()) +
              store.eviction_stats().evicted_users;
    }
    EXPECT_GT(sink, 0U);
  });
  std::vector<std::thread> writers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    writers.emplace_back([&, shard] {
      for (std::uint32_t u = 0; u < kUsersPerShard; ++u) {
        std::uint32_t user = static_cast<std::uint32_t>(shard + u * kShards);
        ASSERT_EQ(store.shard_of(user), shard);
        for (int i = 0; i < kEventsPerUser; ++i) {
          store.ingest_shard(shard, user, ts_of(user, i), host_of(user, i));
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  // Quiesced: full-fidelity comparison against the serial build.
  ASSERT_EQ(store.event_count(), serial.event_count());
  ASSERT_EQ(store.user_count(), serial.user_count());
  EXPECT_EQ(store.users(), serial.users());
  EXPECT_EQ(store.max_timestamp(), serial.max_timestamp());
  util::Timestamp now = serial.max_timestamp();
  for (std::uint32_t user = 0; user < kShards * kUsersPerShard; ++user) {
    EXPECT_EQ(store.session_of(user, now, Window::minutes(20)).hostnames,
              serial.session_of(user, now, Window::minutes(20)).hostnames)
        << "user " << user;
  }
  EXPECT_EQ(store.day_sequences(0), serial.day_sequences(0));
}

TEST(SessionConcurrency, SharedPoolIdIngestAcrossShards) {
  // The zero-copy lane: ids interned once in a shared pool, handed to
  // ingest_shard_id from one thread per shard (the pipeline's shard_sink
  // shape). The pool's intern() is thread-safe; name() is lock-free.
  constexpr std::size_t kShards = 4;
  util::InternPool pool;
  SessionStoreParams params;
  params.shards = kShards;
  params.external_pool = &pool;
  SessionStore store(params);

  std::vector<std::thread> writers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    writers.emplace_back([&, shard] {
      for (int i = 0; i < 2000; ++i) {
        std::uint32_t user = static_cast<std::uint32_t>(
            shard + (i % 8) * kShards);
        auto id = pool.intern("site" + std::to_string(i % 23) + ".com");
        store.ingest_shard_id(shard, user, 1000 + i, id);
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(store.event_count(), kShards * 2000U);
  EXPECT_EQ(store.user_count(), kShards * 8U);
  // Every stored id resolves through the shared pool.
  auto s = store.session_of(0, 3000, Window::last_hosts(5));
  EXPECT_FALSE(s.empty());
  for (const auto& host : s.hostnames) {
    EXPECT_NE(host.find("site"), std::string::npos);
  }
}

}  // namespace
}  // namespace netobs::profile
