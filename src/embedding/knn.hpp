// Brute-force cosine k-nearest-neighbour index over hostname embeddings.
//
// Section 4.1 computes, for a session representation s, the N=1000 hostname
// embeddings most similar to s under cosine similarity (the set H_s). Row
// vectors are L2-normalised once at build time so each query is a dense
// dot-product scan plus a partial sort — exact, cache-friendly, and fast
// enough for the ~10^5-hostname vocabularies the paper deals with.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "embedding/matrix.hpp"
#include "embedding/sgns.hpp"

namespace netobs::embedding {

class CosineKnnIndex {
 public:
  struct Neighbor {
    TokenId id = 0;
    float similarity = 0.0F;  ///< cosine in [-1, 1]
  };

  /// Builds the index from a model's central vectors.
  explicit CosineKnnIndex(const HostEmbedding& embedding);

  /// Builds from a raw matrix (rows indexed by TokenId).
  explicit CosineKnnIndex(const EmbeddingMatrix& matrix);

  /// Top-n rows most similar to `query`, descending similarity. `query`
  /// need not be normalised. Zero-norm queries return an empty vector.
  std::vector<Neighbor> query(std::span<const float> query_vec,
                              std::size_t n) const;

  /// Top-n neighbours of a stored row, excluding the row itself.
  std::vector<Neighbor> nearest_to(TokenId id, std::size_t n) const;

  std::size_t size() const { return normalized_.rows(); }
  std::size_t dim() const { return normalized_.dim(); }

 private:
  std::vector<Neighbor> scan(std::span<const float> unit_query, std::size_t n,
                             std::ptrdiff_t exclude) const;

  EmbeddingMatrix normalized_;
};

}  // namespace netobs::embedding
