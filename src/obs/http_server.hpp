// Embedded telemetry endpoint: a dependency-free HTTP/1.1 server exposing
// the metrics registry, health checks and the trace buffer while a run is
// live — the Prometheus pull model an always-on vantage point needs, instead
// of PR 1's dump-on-exit file.
//
//   GET /             endpoint index
//   GET /metrics      Prometheus text exposition (rate/quantile gauges are
//                     refreshed through StatsHub before every render)
//   GET /metrics.json same registry as pretty JSON
//   GET /healthz      per-check readiness; 200 when all pass, 503 otherwise
//   GET /tracez       TraceBuffer snapshot rendered as a span tree
//   GET /statusz      build info, uptime, caller-supplied status key/values
//
// Design: one background thread runs a blocking accept loop (poll with a
// short timeout so stop() is prompt) and serves connections serially —
// telemetry scrapes are rare and tiny, so a serial loop bounds resource use
// by construction. Responses are built entirely from registry snapshots;
// the hot instrumentation paths never see the server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace netobs::obs {

struct HealthResult {
  bool ok = true;
  std::string detail;
};

/// Pluggable readiness/liveness checks behind /healthz. Two flavours:
/// callback checks (evaluated per request) and stored statuses flipped with
/// set_status() from anywhere in the pipeline.
class HealthRegistry {
 public:
  void register_check(const std::string& name,
                      std::function<HealthResult()> check);
  /// Creates or updates a stored status check named `name`.
  void set_status(const std::string& name, bool ok,
                  const std::string& detail = "");

  /// Evaluates every check. Callback checks that throw count as failing
  /// with the exception text as detail.
  std::vector<std::pair<std::string, HealthResult>> run() const;
  bool healthy() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::function<HealthResult()>>> checks_;
  std::map<std::string, HealthResult> statuses_;
};

struct HttpServerOptions {
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see port())
  std::string bind_address = "127.0.0.1";
  int backlog = 16;
  std::size_t max_request_bytes = 8192;  ///< request head cap; 431 beyond
  int io_timeout_ms = 2000;              ///< per-connection read/write budget
  /// Extra key/value lines for /statusz (SIMD tier, thread-pool size, run
  /// configuration — whatever the embedding binary wants visible).
  std::vector<std::pair<std::string, std::string>> status_info;
};

class HttpServer {
 public:
  /// `registry` may be nullptr for the process-global registry. The server
  /// never outlives it (no ownership taken).
  explicit HttpServer(HttpServerOptions options = HttpServerOptions(),
                      MetricsRegistry* registry = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and spawns the serving thread. Returns the bound port
  /// (the chosen one when options.port was 0). Throws std::runtime_error
  /// when the socket cannot be set up. Idempotent while running.
  std::uint16_t start();

  /// Stops the loop, joins the thread, closes the socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  HealthRegistry& health() { return health_; }

  /// Registers a hook run before every /metrics or /metrics.json render
  /// (after the StatsHub flush) — e.g. refreshing queue-depth gauges.
  void add_collector(std::function<void()> collector);

  /// Registers a provider of live /statusz key/value lines, evaluated per
  /// request and rendered after options_.status_info — use for state that
  /// changes at runtime (active kNN backend, index geometry, ...) where the
  /// static status_info snapshot would go stale. A provider that throws
  /// renders one `<error>` line instead of killing the page.
  void add_status_provider(
      std::function<std::vector<std::pair<std::string, std::string>>()>
          provider);

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Request router, exposed for tests: returns (status, content-type,
  /// body) for a method + path (query strings already stripped by the
  /// transport layer).
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response handle(const std::string& method, const std::string& path);

 private:
  void serve_loop();
  void serve_connection(int fd);
  void run_collectors();
  Response metrics_text();
  Response metrics_json();
  Response healthz();
  Response tracez();
  Response statusz();
  Response memz();
  Response index();

  HttpServerOptions options_;
  MetricsRegistry* registry_;
  HealthRegistry health_;

  std::mutex collectors_mutex_;
  std::vector<std::function<void()>> collectors_;
  std::vector<std::function<std::vector<std::pair<std::string, std::string>>()>>
      status_providers_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::chrono::steady_clock::time_point started_{};
};

}  // namespace netobs::obs
