#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace netobs::util {

void RunningStats::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q out of [0,100]");
  }
  std::sort(xs.begin(), xs.end());
  double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double log_gamma(double x) {
  // Lanczos approximation, g=7, n=9.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,   12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = coeffs[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += coeffs[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

namespace {

// Continued-fraction evaluation for the incomplete beta (Numerical Recipes
// style modified Lentz).
double beta_cont_frac(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    double dm = static_cast<double>(m);
    double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("incomplete_beta: a,b must be > 0");
  }
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                    a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cont_frac(a, b, x) / a;
  }
  return 1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_cdf: df must be > 0");
  double x = df / (df + t * t);
  double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

TTestResult paired_t_test(std::span<const double> a,
                          std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("paired_t_test: size mismatch");
  }
  if (a.size() < 2) {
    throw std::invalid_argument("paired_t_test: need >= 2 pairs");
  }
  std::vector<double> diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  double md = mean(diff);
  double sd = stddev(diff);
  auto n = static_cast<double>(diff.size());

  TTestResult r;
  r.mean_difference = md;
  r.degrees_of_freedom = n - 1.0;
  if (sd == 0.0) {
    // All differences identical: either exactly zero (p = 1) or a constant
    // nonzero shift (p -> 0).
    r.t_statistic = md == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    r.p_value = md == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = md / (sd / std::sqrt(n));
  double cdf = student_t_cdf(std::fabs(r.t_statistic), r.degrees_of_freedom);
  r.p_value = 2.0 * (1.0 - cdf);
  return r;
}

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  if (a.size() < 2 || b.size() < 2) {
    throw std::invalid_argument("welch_t_test: need >= 2 samples per side");
  }
  double ma = mean(a);
  double mb = mean(b);
  double va = sample_variance(a);
  double vb = sample_variance(b);
  auto na = static_cast<double>(a.size());
  auto nb = static_cast<double>(b.size());
  double se2 = va / na + vb / nb;

  TTestResult r;
  r.mean_difference = ma - mb;
  if (se2 == 0.0) {
    r.t_statistic = r.mean_difference == 0.0
                        ? 0.0
                        : std::numeric_limits<double>::infinity();
    r.degrees_of_freedom = na + nb - 2.0;
    r.p_value = r.mean_difference == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = r.mean_difference / std::sqrt(se2);
  double num = se2 * se2;
  double den = (va / na) * (va / na) / (na - 1.0) +
               (vb / nb) * (vb / nb) / (nb - 1.0);
  r.degrees_of_freedom = num / den;
  double cdf = student_t_cdf(std::fabs(r.t_statistic), r.degrees_of_freedom);
  r.p_value = 2.0 * (1.0 - cdf);
  return r;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

ProportionTestResult two_proportion_z_test(std::size_t successes1,
                                           std::size_t trials1,
                                           std::size_t successes2,
                                           std::size_t trials2) {
  if (trials1 == 0 || trials2 == 0) {
    throw std::invalid_argument("two_proportion_z_test: zero trials");
  }
  ProportionTestResult r;
  auto n1 = static_cast<double>(trials1);
  auto n2 = static_cast<double>(trials2);
  r.p1 = static_cast<double>(successes1) / n1;
  r.p2 = static_cast<double>(successes2) / n2;
  double pooled =
      static_cast<double>(successes1 + successes2) / (n1 + n2);
  double se = std::sqrt(pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2));
  if (se == 0.0) {
    r.z_statistic = 0.0;
    r.p_value = 1.0;
    return r;
  }
  r.z_statistic = (r.p1 - r.p2) / se;
  r.p_value = 2.0 * (1.0 - normal_cdf(std::fabs(r.z_statistic)));
  return r;
}

std::vector<CcdfPoint> ccdf(std::vector<double> xs) {
  std::vector<CcdfPoint> out;
  if (xs.empty()) return out;
  std::sort(xs.begin(), xs.end());
  auto n = static_cast<double>(xs.size());
  std::size_t i = 0;
  while (i < xs.size()) {
    std::size_t j = i;
    while (j < xs.size() && xs[j] == xs[i]) ++j;
    // Fraction of samples >= xs[i] is (n - i) / n.
    out.push_back({xs[i], static_cast<double>(xs.size() - i) / n});
    i = j;
  }
  return out;
}

double ccdf_value_at_fraction(const std::vector<CcdfPoint>& curve,
                              double fraction) {
  // Curve is ascending in x and descending in fraction. Return the largest x
  // whose survival fraction is still >= `fraction`.
  double best = curve.empty() ? 0.0 : curve.front().x;
  for (const auto& p : curve) {
    if (p.fraction >= fraction) best = p.x;
  }
  return best;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  double ma = mean(a);
  double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace netobs::util
