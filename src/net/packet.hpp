// Packet and flow model for the passive observer.
//
// A captured packet carries the 5-tuple, the link-layer identity hints whose
// availability depends on the observer's vantage point (Section 7.2: a WiFi
// provider sees MAC addresses, a mobile operator sees IMSI/MSISDN, a
// landline ISP behind a NAT sees only the public IP), and the transport
// payload bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace netobs::net {

enum class Transport : std::uint8_t { kTcp = 6, kUdp = 17 };

/// Connection 5-tuple. IPs are IPv4 in host byte order.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Transport proto = Transport::kTcp;

  bool operator==(const FiveTuple&) const = default;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const {
    std::uint64_t a = (static_cast<std::uint64_t>(t.src_ip) << 32) | t.dst_ip;
    std::uint64_t b = (static_cast<std::uint64_t>(t.src_port) << 24) |
                      (static_cast<std::uint64_t>(t.dst_port) << 8) |
                      static_cast<std::uint64_t>(t.proto);
    // 64-bit mix of both halves.
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL ^ b;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

/// One captured packet (only the fields a passive observer can use).
struct Packet {
  util::Timestamp timestamp = 0;
  FiveTuple tuple;
  std::uint64_t src_mac = 0;        ///< 0 when not visible at the vantage
  std::uint64_t subscriber_id = 0;  ///< IMSI-like id; 0 when not visible
  std::vector<std::uint8_t> payload;
};

/// Observer-side hostname observation: "user X requested hostname H at T".
/// This is the *only* signal the profiling algorithm of Section 4 consumes.
struct HostnameEvent {
  std::uint32_t user_id = 0;
  util::Timestamp timestamp = 0;
  std::string hostname;

  bool operator==(const HostnameEvent&) const = default;
};

/// Dotted-quad formatting, for diagnostics.
std::string ipv4_to_string(std::uint32_t ip);

}  // namespace netobs::net
