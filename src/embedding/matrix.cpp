#include "embedding/matrix.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace netobs::embedding {

namespace {
constexpr std::uint32_t kMagic = 0x4E4F4231;  // "NOB1"
}

EmbeddingMatrix::EmbeddingMatrix(std::size_t rows, std::size_t dim)
    : rows_(rows), dim_(dim), data_(rows * dim, 0.0F) {
  if (dim == 0) throw std::invalid_argument("EmbeddingMatrix: dim must be > 0");
}

void EmbeddingMatrix::init_uniform(util::Pcg32& rng) {
  float half = 0.5F / static_cast<float>(dim_);
  for (float& v : data_) {
    v = static_cast<float>(rng.uniform(-half, half));
  }
}

void EmbeddingMatrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::span<float> EmbeddingMatrix::row(std::size_t i) {
  if (i >= rows_) throw std::out_of_range("EmbeddingMatrix::row");
  return std::span<float>(data_.data() + i * dim_, dim_);
}

std::span<const float> EmbeddingMatrix::row(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("EmbeddingMatrix::row");
  return std::span<const float>(data_.data() + i * dim_, dim_);
}

void EmbeddingMatrix::save(std::ostream& os) const {
  auto put_u64 = [&os](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  put_u64(rows_);
  put_u64(dim_);
  os.write(reinterpret_cast<const char*>(data_.data()),
           static_cast<std::streamsize>(data_.size() * sizeof(float)));
  if (!os) throw std::runtime_error("EmbeddingMatrix::save: write failed");
}

EmbeddingMatrix EmbeddingMatrix::load(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) {
    throw std::runtime_error("EmbeddingMatrix::load: bad magic");
  }
  std::uint64_t rows = 0;
  std::uint64_t dim = 0;
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!is || dim == 0) {
    throw std::runtime_error("EmbeddingMatrix::load: bad header");
  }
  EmbeddingMatrix m(static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(dim));
  is.read(reinterpret_cast<char*>(m.data_.data()),
          static_cast<std::streamsize>(m.data_.size() * sizeof(float)));
  if (!is) throw std::runtime_error("EmbeddingMatrix::load: truncated data");
  return m;
}

bool EmbeddingMatrix::operator==(const EmbeddingMatrix& other) const {
  return rows_ == other.rows_ && dim_ == other.dim_ && data_ == other.data_;
}

}  // namespace netobs::embedding
