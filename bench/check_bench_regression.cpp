// CI perf gate: re-runs the --bench-baseline micro suite (the measurement
// shared with bench/micro_pipeline via bench/micro_baseline.hpp) and
// compares against the committed BENCH_micro.json. A current timing more
// than --tolerance (default 30%) slower than the recorded number, or an
// acceptance speedup dropping below its target, exits non-zero with a
// per-metric report.
//
//   check_bench_regression [--baseline=PATH] [--tolerance=0.30]
//                          [--bench-rows=N] [--update[=PATH]]
//
// --update rewrites the baseline file from the fresh run instead of
// comparing (for refreshing BENCH_micro.json on a quiet machine).
// --bench-rows overrides the vocabulary size; without it the gate re-runs
// at the row count recorded in the baseline's config block, so the
// comparison is always like-for-like. Wire into ctest with
// -DNETOBS_BENCH_GATE=ON; off by default because wall-clock numbers from a
// loaded CI box would make tier-1 flaky.
//
// Four classes of absolute floors (never grandfathered by a stale
// baseline): the exact-path speedups; the IVF floors — recall@1000 >= 0.98
// at the default nprobe always, ivf speedup >= 5.0 vs the blocked heap at
// deployment scale (rows >= 400000), the list-centric batch-32 scan >= 3x
// the single-query path at deployment scale where the box has >= 4
// hardware threads for the pool-sharded sweep (>= 2x on a single thread)
// and bit-identical to it
// always, PQ recall@1000 >= 0.95 with the PQ payload at most a third of
// the int8 one, build time under the 3483 ms ceiling at deployment scale,
// and the build bit-identical for any pool size; the
// sharded-ingest floors — ideal speedup >= 3.0 at >= 4 shards always,
// measured wall-clock speedup >= 3.0 where the box has >= shards hardware
// threads, zero event loss under the block policy, 1-shard output identical
// to the single-threaded observer, and flight-recorder overhead <= 2% of
// serial engine throughput at the shipped 1/1024 sampling rate; and the
// parallel-retrain floors — SGNS ideal speedup >= 3.0 at 4 Hogwild workers
// always, measured wall-clock speedup >= 3.0 where the box has >= 4
// hardware threads, and the threads=1 model digest equal to the seed
// trainer's (the refactor must not move a single float on the serial path).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

// Program-wide counting allocator for the ingest allocs/event numbers.
#define NETOBS_ALLOC_COUNT_IMPL
#include "bench/alloc_count.hpp"
#include "bench/ingest_baseline.hpp"
#include "bench/micro_baseline.hpp"

namespace {

using namespace netobs;

/// Minimal scan for `"key": <number>` in a flat JSON document. Good enough
/// for the file this repo writes; returns false when the key is absent.
bool find_number(const std::string& doc, const std::string& key,
                 double* out) {
  std::string needle = "\"" + key + "\":";
  auto pos = doc.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  while (pos < doc.size() && (doc[pos] == ' ' || doc[pos] == '\t')) ++pos;
  char* end = nullptr;
  double v = std::strtod(doc.c_str() + pos, &end);
  if (end == doc.c_str() + pos) return false;
  *out = v;
  return true;
}

/// Companion scan for `"key": "value"` string fields (digests/hashes).
bool find_string(const std::string& doc, const std::string& key,
                 std::string* out) {
  std::string needle = "\"" + key + "\":";
  auto pos = doc.find(needle);
  if (pos == std::string::npos) return false;
  pos = doc.find('"', pos + needle.size());
  if (pos == std::string::npos) return false;
  auto end = doc.find('"', pos + 1);
  if (end == std::string::npos) return false;
  *out = doc.substr(pos + 1, end - pos - 1);
  return true;
}

struct Check {
  const char* key;        ///< key in BENCH_micro.json
  double current;         ///< freshly measured value
  bool lower_is_better;   ///< timings: true; speedups: false
  /// Wall-clock ceilings recorded on a wider box than this one are not
  /// comparable: skip (with a note) when the measuring machine has fewer
  /// hardware threads than the parallelism the number assumes. 0 = always
  /// compare.
  std::size_t min_hw = 0;
};

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Absolute invariants a macro-soak JSON (bench/macro_soak.cpp) must hold
/// at ANY scale — they are ratios and zero-counters, so the 50K-user ctest
/// smoke is held to the same floors as the committed 1M-user run. Returns
/// the number of violations.
int check_macro_doc(const std::string& doc, const std::string& label) {
  int failures = 0;
  auto require = [&](const char* key, auto pred, const std::string& what) {
    double v = 0.0;
    if (!find_number(doc, key, &v)) {
      std::cerr << "[gate] MISSING  " << key << " not in " << label << "\n";
      ++failures;
      return;
    }
    if (!pred(v)) {
      std::cerr << "[gate] REGRESSED " << label << ": " << key << " = " << v
                << " (" << what << ")\n";
      ++failures;
    } else {
      std::cout << "[gate] ok       " << label << ": " << key << " = " << v
                << "\n";
    }
  };
  const double ceiling =
      bench::IngestBaselineResult::session_bytes_per_user_ceiling();
  require("macro_bytes_per_user",
          [&](double v) { return v > 0.0 && v <= ceiling; },
          "must be in (0, " + std::to_string(ceiling) + "] bytes/user");
  require("macro_event_loss", [](double v) { return v == 0.0; },
          "the direct shard lane must be lossless");
  require("macro_eviction_violations", [](double v) { return v == 0.0; },
          "eviction must never touch a user active within the lookback");
  require("macro_eviction_audits", [](double v) { return v >= 1.0; },
          "the eviction audit must have run");
  require("macro_under_budget", [](double v) { return v == 1.0; },
          "the soak must end within the memory budget");
  require("macro_delivered_events", [](double v) { return v > 0.0; },
          "the soak must have ingested something");
  return failures;
}

}  // namespace

namespace {

/// Macro-soak leg of the gate. Validates the committed 1M-user baseline's
/// absolute invariants, and — when a fresh smoke JSON is supplied — holds
/// that run to the same floors plus a p99 profile-latency comparison
/// against the recorded number (skipped when the baseline was measured on
/// a wider box, mirroring the micro gate's min_hw logic).
int run_macro_gate(const std::string& macro_baseline,
                   const std::string& macro_current, double tolerance) {
  int failures = 0;
  std::string base_doc;
  if (!read_file(macro_baseline, &base_doc)) {
    std::cout << "[gate] note     macro baseline " << macro_baseline
              << " not found; run bench/macro_soak to record it\n";
    return 0;
  }
  failures += check_macro_doc(base_doc, macro_baseline);
  if (macro_current.empty()) return failures;
  std::string cur_doc;
  if (!read_file(macro_current, &cur_doc)) {
    std::cerr << "[gate] MISSING  macro current run " << macro_current
              << " unreadable\n";
    return failures + 1;
  }
  failures += check_macro_doc(cur_doc, macro_current);
  double base_p99 = 0.0, cur_p99 = 0.0;
  double base_hw = 0.0, cur_hw = 0.0;
  if (find_number(base_doc, "macro_profile_p99_ms", &base_p99) &&
      find_number(cur_doc, "macro_profile_p99_ms", &cur_p99) &&
      base_p99 > 0.0) {
    find_number(base_doc, "macro_hardware_threads", &base_hw);
    find_number(cur_doc, "macro_hardware_threads", &cur_hw);
    if (cur_hw > 0.0 && base_hw > cur_hw) {
      std::cout << "[gate] note     macro_profile_p99_ms skipped: baseline "
                << "recorded on " << base_hw << " hw threads, this box has "
                << cur_hw << "\n";
    } else {
      bool ok = cur_p99 <= base_p99 * (1.0 + tolerance);
      std::cout << "[gate] " << (ok ? "ok      " : "REGRESSED ")
                << "macro_profile_p99_ms: recorded " << base_p99
                << ", current " << cur_p99 << " (tolerance "
                << tolerance * 100 << "%)\n";
      if (!ok) ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path = "BENCH_micro.json";
  std::string macro_baseline;
  std::string macro_current;
  bool macro_only = false;
  double tolerance = 0.30;
  bool update = false;
  bench::MicroBaselineOptions opts;
  bool rows_overridden = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::string("--baseline=").size());
    } else if (arg.rfind("--macro-baseline=", 0) == 0) {
      macro_baseline = arg.substr(std::string("--macro-baseline=").size());
    } else if (arg.rfind("--macro-current=", 0) == 0) {
      macro_current = arg.substr(std::string("--macro-current=").size());
    } else if (arg == "--macro-only") {
      macro_only = true;
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance =
          std::strtod(arg.c_str() + std::string("--tolerance=").size(),
                      nullptr);
    } else if (arg.rfind("--bench-rows=", 0) == 0) {
      opts.rows = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string("--bench-rows=").size(), nullptr, 10));
      rows_overridden = true;
    } else if (arg == "--update") {
      update = true;
    } else if (arg.rfind("--update=", 0) == 0) {
      update = true;
      baseline_path = arg.substr(std::string("--update=").size());
    } else if (arg == "--help") {
      std::cout << "usage: " << argv[0]
                << " [--baseline=PATH] [--tolerance=0.30] [--bench-rows=N]"
                   " [--update] [--macro-baseline=PATH]"
                   " [--macro-current=PATH] [--macro-only]\n";
      return 0;
    }
  }

  if (macro_only) {
    if (macro_baseline.empty()) {
      std::cerr << "[gate] --macro-only needs --macro-baseline=PATH\n";
      return 1;
    }
    int failures = run_macro_gate(macro_baseline, macro_current, tolerance);
    if (failures > 0) {
      std::cerr << "[gate] " << failures << " macro check(s) failed\n";
      return 1;
    }
    std::cout << "[gate] all macro checks passed\n";
    return 0;
  }

  std::string doc;
  if (!update) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "[gate] cannot read baseline " << baseline_path
                << " (run micro_pipeline --bench-baseline or pass --update)\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    doc = buf.str();
    // Like-for-like by default: measure at the recorded vocabulary size.
    double recorded_rows = 0.0;
    if (!rows_overridden && find_number(doc, "rows", &recorded_rows) &&
        recorded_rows > 0.0) {
      opts.rows = static_cast<std::size_t>(recorded_rows);
    }
  }

  bench::MicroBaselineResult r = bench::run_micro_baseline(opts);
  bench::IngestBaselineResult ing = bench::run_ingest_baseline();
  bench::TrainBaselineResult tr = bench::run_train_baseline();
  if (update) {
    if (!bench::write_micro_baseline_json(baseline_path, r, ing, tr)) {
      return 1;
    }
    std::cout << "[gate] baseline refreshed: " << baseline_path << "\n";
    return 0;
  }

  std::vector<Check> checks = {
      {"scalar_fullsort_ms", r.fullsort_s * 1e3, true},
      {"blocked_heap_ms", r.blocked_s * 1e3, true},
      {"batch32_per_query_ms", r.batch_per_query_s * 1e3, true},
      {"scalar_ns", r.dot_scalar_ns, true},
      {"speedup_vs_scalar_fullsort", r.knn_speedup(), false},
      {"batch_speedup_vs_single_query", r.batch_speedup(), false},
      {"ivf_query_ms", r.ivf_s * 1e3, true},
      {"recall_at_1000", r.ivf_recall, false},
      {"speedup_vs_blocked_heap", r.ivf_speedup(), false},
      {"ivf_batch32_per_query_ms", r.ivf_batch_per_query_s * 1e3, true},
      {"pq_query_ms", r.pq_s * 1e3, true},
      {"pq_recall_at_1000", r.pq_recall, false},
      {"ingest_singlethread_pps", ing.st_pps(), false},
      {"ingest_speedup_ideal", ing.speedup_ideal(), false},
      {"session_bytes_per_user", ing.session_bytes_per_user(), true},
      {"ivf_build_serial_ms", r.ivf_build_s * 1e3, true},
      {"ivf_build_pool2_ms", r.ivf_build_pool2_s * 1e3, true, 2},
      {"ivf_build_pool4_ms", r.ivf_build_pool4_s * 1e3, true, 4},
      {"train_t1_wall_ms", tr.t1_wall_s * 1e3, true},
      {"train_ideal_speedup_t4", tr.ideal_speedup_t4(), false},
  };

  int failures = 0;
  for (const Check& c : checks) {
    if (c.min_hw > 0 && r.hardware_threads < c.min_hw) {
      std::cout << "[gate] note     " << c.key << " skipped: "
                << r.hardware_threads << " hw thread(s) < " << c.min_hw
                << " the recorded number assumes\n";
      continue;
    }
    double recorded = 0.0;
    if (!find_number(doc, c.key, &recorded)) {
      std::cerr << "[gate] MISSING  " << c.key << " not in " << baseline_path
                << "\n";
      ++failures;
      continue;
    }
    bool ok = c.lower_is_better
                  ? c.current <= recorded * (1.0 + tolerance)
                  : c.current >= recorded * (1.0 - tolerance);
    std::cout << "[gate] " << (ok ? "ok      " : "REGRESSED ") << c.key
              << ": recorded " << recorded << ", current " << c.current
              << " (tolerance " << tolerance * 100 << "%)\n";
    if (!ok) ++failures;
  }

  // The absolute acceptance targets must hold regardless of the recorded
  // numbers — a stale baseline cannot grandfather a slow build in.
  if (r.knn_speedup() < r.knn_speedup_target()) {
    std::cerr << "[gate] REGRESSED knn speedup " << r.knn_speedup()
              << " below the " << r.knn_speedup_target()
              << " acceptance target at " << r.rows << " rows\n";
    ++failures;
  }
  if (r.batch_speedup() < 1.5) {
    std::cerr << "[gate] REGRESSED batch speedup " << r.batch_speedup()
              << " below the 1.5 acceptance target\n";
    ++failures;
  }
  if (r.ivf_recall < 0.98) {
    std::cerr << "[gate] REGRESSED ivf recall@" << r.top_n << " "
              << r.ivf_recall << " below the 0.98 acceptance floor\n";
    ++failures;
  }
  if (r.ivf_speedup_enforced() && r.ivf_speedup() < 5.0) {
    std::cerr << "[gate] REGRESSED ivf speedup " << r.ivf_speedup()
              << " below the 5.0 acceptance target at " << r.rows
              << " rows\n";
    ++failures;
  } else if (!r.ivf_speedup_enforced()) {
    std::cout << "[gate] note     ivf speedup " << r.ivf_speedup()
              << " informational only below 400000 rows (current "
              << r.rows << ")\n";
  }
  // Batched-IVF floors: the list-centric scan must beat 32 single-query
  // sweeps at deployment scale (3x with >= 4 hardware threads for the
  // pool-sharded sweep, 2x on a single thread), and must match the
  // per-query answers bit for bit at any scale.
  const double batch_target = r.ivf_batch_speedup_target();
  if (r.ivf_batch_enforced() && r.ivf_batch_speedup() < batch_target) {
    std::cerr << "[gate] REGRESSED ivf batch speedup "
              << r.ivf_batch_speedup() << " below the " << batch_target
              << " acceptance target at " << r.rows << " rows\n";
    ++failures;
  } else if (!r.ivf_batch_enforced()) {
    std::cout << "[gate] note     ivf batch speedup " << r.ivf_batch_speedup()
              << " informational only below 400000 rows (current " << r.rows
              << ")\n";
  }
  if (!r.ivf_batch_identical) {
    std::cerr << "[gate] REGRESSED batched IVF answers differ from the "
                 "per-query path (bit-identity contract)\n";
    ++failures;
  }
  // PQ floors: recall after the exact re-rank, and the memory claim.
  if (r.pq_recall < bench::MicroBaselineResult::pq_recall_floor()) {
    std::cerr << "[gate] REGRESSED pq recall@" << r.top_n << " "
              << r.pq_recall << " below the "
              << bench::MicroBaselineResult::pq_recall_floor()
              << " acceptance floor\n";
    ++failures;
  }
  if (r.pq_bytes_ratio() >
      bench::MicroBaselineResult::pq_bytes_ratio_ceiling()) {
    std::cerr << "[gate] REGRESSED pq list bytes " << r.pq_list_bytes
              << " above " << bench::MicroBaselineResult::pq_bytes_ratio_ceiling()
              << " of the int8 payload (" << r.int8_list_bytes << ")\n";
    ++failures;
  }
  const double ingest_target = bench::IngestBaselineResult::speedup_target();
  if (ing.ideal_speedup_enforced() && ing.speedup_ideal() < ingest_target) {
    std::cerr << "[gate] REGRESSED ingest ideal speedup "
              << ing.speedup_ideal() << " below the " << ingest_target
              << " acceptance target at " << ing.shards << " shards\n";
    ++failures;
  }
  if (ing.measured_speedup_enforced() &&
      ing.speedup_measured() < ingest_target) {
    std::cerr << "[gate] REGRESSED ingest measured speedup "
              << ing.speedup_measured() << " below the " << ingest_target
              << " acceptance target (" << ing.hardware_threads
              << " hw threads, " << ing.shards << " shards)\n";
    ++failures;
  } else if (!ing.measured_speedup_enforced()) {
    std::cout << "[gate] note     ingest measured speedup "
              << ing.speedup_measured()
              << " informational only: " << ing.hardware_threads
              << " hw thread(s) < " << ing.shards
              << " shards (ideal speedup " << ing.speedup_ideal()
              << " is enforced)\n";
  }
  if (ing.dropped != 0) {
    std::cerr << "[gate] REGRESSED ingest dropped " << ing.dropped
              << " events under the block policy (must be 0)\n";
    ++failures;
  }
  // Session-store memory floor: the interned slot layout must keep the
  // per-user footprint at least 3x under the seed's ~23.6 KB string-deque
  // figure, regardless of what a stale baseline recorded.
  const double bytes_ceiling =
      bench::IngestBaselineResult::session_bytes_per_user_ceiling();
  if (ing.session_store_users == 0) {
    std::cerr << "[gate] REGRESSED session store ingested 0 users in the "
                 "memory pass\n";
    ++failures;
  } else if (ing.session_bytes_per_user() > bytes_ceiling) {
    std::cerr << "[gate] REGRESSED session store " << ing.session_bytes_per_user()
              << " bytes/user above the " << bytes_ceiling
              << " acceptance ceiling (" << ing.session_store_users
              << " users)\n";
    ++failures;
  } else {
    std::cout << "[gate] ok       session store "
              << ing.session_bytes_per_user() << " bytes/user (ceiling "
              << bytes_ceiling << ", " << ing.session_store_users
              << " users)\n";
  }
  const double flight_target =
      bench::IngestBaselineResult::flight_overhead_target_pct();
  if (ing.flight_overhead_enforced() &&
      ing.flight_overhead_pct() > flight_target) {
    std::cerr << "[gate] REGRESSED flight-recorder overhead "
              << ing.flight_overhead_pct() << "% above the " << flight_target
              << "% ceiling at 1/" << ing.flight_sample_every
              << " sampling\n";
    ++failures;
  } else if (ing.flight_overhead_enforced()) {
    std::cout << "[gate] ok       flight-recorder overhead "
              << ing.flight_overhead_pct() << "% (ceiling " << flight_target
              << "%)\n";
  }
  if (!ing.oneshard_identical) {
    std::cerr << "[gate] REGRESSED 1-shard ingest output differs from the "
                 "single-threaded observer\n";
    ++failures;
  }
  // Parallel-retrain floors: ideal speedup always, measured where the box
  // has the cores, and the serial path bit-identical to the seed trainer.
  const double train_target = bench::TrainBaselineResult::speedup_target();
  if (tr.ideal_speedup_t4() < train_target) {
    std::cerr << "[gate] REGRESSED train ideal speedup "
              << tr.ideal_speedup_t4() << " below the " << train_target
              << " acceptance target at 4 Hogwild workers\n";
    ++failures;
  }
  if (tr.measured_speedup_enforced() &&
      tr.measured_speedup_t4() < train_target) {
    std::cerr << "[gate] REGRESSED train measured speedup "
              << tr.measured_speedup_t4() << " below the " << train_target
              << " acceptance target (" << tr.hardware_threads
              << " hw threads)\n";
    ++failures;
  } else if (!tr.measured_speedup_enforced()) {
    std::cout << "[gate] note     train measured speedup "
              << tr.measured_speedup_t4()
              << " informational only: " << tr.hardware_threads
              << " hw thread(s) < 4 workers (ideal speedup "
              << tr.ideal_speedup_t4() << " is enforced)\n";
  }
  if (!tr.digest_matches()) {
    std::cerr << "[gate] REGRESSED threads=1 model digest " << tr.digest_t1
              << " differs from the seed trainer's "
              << bench::kTrainDigestT1 << "\n";
    ++failures;
  }
  // And the recorded digest must match too — catches a baseline refreshed
  // against drifted numerics.
  std::string recorded_digest;
  if (find_string(doc, "train_digest_t1", &recorded_digest) &&
      recorded_digest != tr.digest_t1) {
    std::cerr << "[gate] REGRESSED threads=1 model digest " << tr.digest_t1
              << " differs from the recorded " << recorded_digest << "\n";
    ++failures;
  }
  // IVF build floors: the deployment-scale ceiling and pool-invariance.
  if (r.ivf_build_enforced() &&
      r.ivf_build_s * 1e3 >
          bench::MicroBaselineResult::ivf_build_ceiling_ms()) {
    std::cerr << "[gate] REGRESSED ivf build " << r.ivf_build_s * 1e3
              << " ms above the "
              << bench::MicroBaselineResult::ivf_build_ceiling_ms()
              << " ms ceiling at " << r.rows << " rows\n";
    ++failures;
  } else if (!r.ivf_build_enforced()) {
    std::cout << "[gate] note     ivf build " << r.ivf_build_s * 1e3
              << " ms informational only below 400000 rows (current "
              << r.rows << ")\n";
  }
  if (!r.ivf_pool_invariant) {
    std::cerr << "[gate] REGRESSED ivf build is not pool-invariant: the "
                 "2/4-thread pool builds differ from the serial index\n";
    ++failures;
  }

  if (!macro_baseline.empty()) {
    failures += run_macro_gate(macro_baseline, macro_current, tolerance);
  }

  if (failures > 0) {
    std::cerr << "[gate] " << failures << " check(s) failed against "
              << baseline_path << "\n";
    return 1;
  }
  std::cout << "[gate] all checks passed against " << baseline_path << "\n";
  return 0;
}
