// Browsing simulator — generates the hostname request streams and page
// views the study collected from its Chrome extension (Sections 5.2-5.3).
//
// Behavioural model:
//   - users run a Poisson number of sessions per day (scaled by their
//     activity level) with a diurnal start-time profile,
//   - a session follows a topical random walk over first-party sites drawn
//     from a per-topic Zipf popularity curve (topic chosen from the user's
//     ground-truth interests, sticky across pages),
//   - every page visit fans out into the connections an observer actually
//     sees: the site itself, its CDN/API satellites, shared CDNs, tracker
//     beacons, and occasional detours to universal hosts (the
//     facebook-then-twitter habit Section 4.1 cites),
//   - every page exposes 0-3 IAB-sized ad slots, which the ad experiment
//     (ads/experiment.hpp) fills with original or eavesdropper creatives.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"
#include "util/sim_time.hpp"

namespace netobs::synth {

/// An ad placement on a page, identified by its creative size.
struct AdSlot {
  std::uint16_t width = 0;
  std::uint16_t height = 0;

  bool operator==(const AdSlot&) const = default;
};

/// Standard IAB creative sizes used by the simulator.
const std::vector<AdSlot>& standard_ad_sizes();

/// One page visit: what the extension sees (the observer additionally sees
/// the satellite/tracker connections recorded in `events`).
struct PageView {
  std::uint32_t user_id = 0;
  util::Timestamp timestamp = 0;
  std::size_t site = 0;   ///< index into the universe
  std::size_t topic = 0;  ///< page's dominant topic (for contextual ads)
  std::vector<AdSlot> slots;
};

struct BrowsingTrace {
  std::vector<net::HostnameEvent> events;  ///< time-ordered connections
  std::vector<PageView> page_views;        ///< time-ordered page visits

  std::size_t connections() const { return events.size(); }
};

struct BrowsingParams {
  double sessions_per_day = 4.0;       ///< Poisson mean (x user activity)
  double pages_per_session = 7.0;      ///< 1 + Poisson(mean - 1)
  double topic_switch_prob = 0.3;      ///< per page, re-draw session topic
  double universal_page_prob = 0.15;   ///< page is a universal site
  double universal_detour_prob = 0.25; ///< extra universal hit per page
  double satellite_fire_prob = 0.8;    ///< each satellite of the site fires
  double shared_cdn_prob = 0.5;        ///< page pulls a shared CDN
  double trackers_per_page = 0.25;     ///< Poisson tracker beacons
  double slots_per_page = 1.2;         ///< Poisson ad slots
  double page_dwell_mean_s = 45.0;     ///< exponential dwell between pages
  std::uint64_t seed = 7;
};

class BrowsingSimulator {
 public:
  /// universe/population must outlive the simulator.
  BrowsingSimulator(const HostnameUniverse& universe,
                    const UserPopulation& population,
                    BrowsingParams params = BrowsingParams());

  /// Simulates days [start_day, start_day + num_days). Deterministic: the
  /// trace of a (user, day) pair depends only on the seed.
  BrowsingTrace simulate(std::int64_t start_day, std::int64_t num_days) const;

  const BrowsingParams& params() const { return params_; }

 private:
  void simulate_user_day(const User& user, std::int64_t day,
                         BrowsingTrace& trace) const;

  const HostnameUniverse* universe_;
  const UserPopulation* population_;
  BrowsingParams params_;
  std::vector<util::ZipfSampler> topic_site_samplers_;
  util::ZipfSampler universal_sampler_;
  util::ZipfSampler cdn_sampler_;
  util::ZipfSampler tracker_sampler_;
};

}  // namespace netobs::synth
