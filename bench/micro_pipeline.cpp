// Microbenchmarks — the "traffic analysis at line rate" claim of
// Section 4.1.
//
// Measures the per-operation costs of the passive pipeline: SNI extraction
// from ClientHello bytes, DNS query parsing, blocklist lookups, kNN
// queries, full session profiling, eavesdropper ad selection, and SGNS
// training throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

// This TU provides the program-wide counting allocator behind the
// allocs/event numbers in the ingest_throughput baseline section.
#define NETOBS_ALLOC_COUNT_IMPL
#include "ads/ad_database.hpp"
#include "bench/alloc_count.hpp"
#include "bench/ingest_baseline.hpp"
#include "bench/micro_baseline.hpp"
#include "net/ingest.hpp"
#include "bench/quality_probe.hpp"
#include "embedding/ivf_index.hpp"
#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "net/dns.hpp"
#include "net/observer.hpp"
#include "net/quic.hpp"
#include "net/tls.hpp"
#include "obs/export.hpp"
#include "obs/stats_stream.hpp"
#include "synth/traffic.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/vec_math.hpp"

namespace {

using namespace netobs;

const bench::QualityFixture& fixture() {
  static const bench::QualityFixture fx(bench::BenchConfig{200, 1, 2021, ""});
  return fx;
}

void BM_BuildClientHello(benchmark::State& state) {
  net::ClientHelloSpec spec;
  spec.sni = "api.bkng.azure.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::build_client_hello_record(spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BuildClientHello);

void BM_ExtractSni(benchmark::State& state) {
  net::ClientHelloSpec spec;
  spec.sni = "api.bkng.azure.com";
  auto record = net::build_client_hello_record(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::extract_sni(record));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(record.size()));
}
BENCHMARK(BM_ExtractSni);

void BM_SniObserverPerPacket(benchmark::State& state) {
  const auto& fx = fixture();
  synth::BrowsingSimulator sim(*fx.world.universe, *fx.world.population);
  auto trace = sim.simulate(0, 1);
  synth::TrafficSynthesizer synth(*fx.world.population);
  auto packets = synth.synthesize(trace.events);
  std::size_t i = 0;
  net::SniObserver observer(net::Vantage::kWifiProvider);
  for (auto _ : state) {
    benchmark::DoNotOptimize(observer.observe(packets[i]));
    i = (i + 1) % packets.size();
    if (i == 0) {
      state.PauseTiming();
      observer = net::SniObserver(net::Vantage::kWifiProvider);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SniObserverPerPacket);

void BM_QuicInitialBuild(benchmark::State& state) {
  net::QuicInitialSpec spec;
  spec.dcid = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.client_hello.sni = "api.bkng.azure.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::build_quic_initial(spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuicInitialBuild);

void BM_QuicInitialDecrypt(benchmark::State& state) {
  // The passive-observer cost per QUIC connection: HKDF key derivation,
  // header unprotection, AEAD open, CRYPTO reassembly, ClientHello parse.
  net::QuicInitialSpec spec;
  spec.dcid = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.client_hello.sni = "api.bkng.azure.com";
  auto packet = net::build_quic_initial(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decrypt_quic_initial(packet));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packet.size()));
}
BENCHMARK(BM_QuicInitialDecrypt);

void BM_InternPoolHit(benchmark::State& state) {
  // Steady-state cost of interning an already-seen hostname — the
  // hit-dominated regime of the sharded ingest workers.
  util::InternPool pool;
  std::vector<std::string> hosts;
  for (std::size_t i = 0; i < 64; ++i) {
    hosts.push_back("svc" + std::to_string(i) + ".example.com");
  }
  for (const auto& h : hosts) pool.intern(h);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.intern(hosts[i & 63]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InternPoolHit);

void BM_ExtractSniView(benchmark::State& state) {
  // The allocation-free scanner the flow engines run per completed record.
  net::ClientHelloSpec spec;
  spec.sni = "api.bkng.azure.com";
  auto record = net::build_client_hello_record(spec);
  std::string scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::extract_sni_view(record, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(record.size()));
}
BENCHMARK(BM_ExtractSniView);

void BM_ParseDnsQuery(benchmark::State& state) {
  net::DnsMessage msg;
  msg.id = 7;
  msg.questions.push_back({"mail.google.com", net::DnsType::kA, 1});
  auto wire = net::build_dns_query(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_dns_message(wire));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseDnsQuery);

void BM_BlocklistLookup(benchmark::State& state) {
  const auto& fx = fixture();
  std::vector<std::string> hosts;
  for (std::size_t i = 0; i < 64; ++i) {
    hosts.push_back(fx.world.universe->host(i * 17 % fx.world.universe->size())
                        .name);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.blocklist.is_blocked(hosts[i & 63]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlocklistLookup);

/// Shared trained service for the profiling-side benchmarks.
profile::ProfilingService& trained_service() {
  static profile::ProfilingService* service = [] {
    const auto& fx = fixture();
    auto* s = new profile::ProfilingService(
        fx.labeler, &fx.blocklist, bench::scaled_service_params());
    s->ingest(fx.train_trace.events);
    s->retrain(1);
    return s;
  }();
  return *service;
}

void BM_KnnQuery(benchmark::State& state) {
  auto& service = trained_service();
  embedding::CosineKnnIndex index(service.model());
  std::vector<float> query(service.model().vector_of(0).begin(),
                           service.model().vector_of(0).end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query(query, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KnnQuery)->Arg(10)->Arg(100)->Arg(1000);

void BM_IvfQuery(benchmark::State& state) {
  // The approximate backend on the same trained model (stock IvfParams).
  auto& service = trained_service();
  embedding::IvfKnnIndex index(service.model().central());
  std::vector<float> query(service.model().vector_of(0).begin(),
                           service.model().vector_of(0).end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query(query, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("nlists=" + std::to_string(index.nlists()));
}
BENCHMARK(BM_IvfQuery)->Arg(10)->Arg(100)->Arg(1000);

void BM_IvfQueryBatch(benchmark::State& state) {
  // 32 sessions through the list-centric batched IVF scan: every touched
  // inverted list is swept once for the whole batch.
  auto& service = trained_service();
  embedding::IvfKnnIndex index(service.model().central());
  std::vector<std::vector<float>> queries;
  for (std::size_t i = 0; i < 32; ++i) {
    auto row = service.model().vector_of(static_cast<embedding::TokenId>(
        (i * 13) % service.model().size()));
    queries.emplace_back(row.begin(), row.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query_batch(queries, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.SetLabel("items = queries answered");
}
BENCHMARK(BM_IvfQueryBatch)->Arg(100)->Arg(1000);

void BM_PqQuery(benchmark::State& state) {
  // IVF with product-quantized lists: the asymmetric LUT scan (m = 20 table
  // adds per row instead of a 100-dim int8 dot) plus the exact re-rank.
  auto& service = trained_service();
  embedding::IvfParams params;
  params.rerank = 8;
  params.pq.m = 20;
  embedding::IvfKnnIndex index(service.model().central(), params);
  std::vector<float> query(service.model().vector_of(0).begin(),
                           service.model().vector_of(0).end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query(query, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("pq_bytes/row=" +
                 std::to_string(index.pq_code_bytes_per_row()));
}
BENCHMARK(BM_PqQuery)->Arg(10)->Arg(100)->Arg(1000);

void BM_DotKernel(benchmark::State& state) {
  // d=100 dot product on the tier selected by Arg(0); skipped when the CPU
  // lacks it. Restores the best tier afterwards.
  auto tier = static_cast<util::simd::Tier>(state.range(0));
  if (tier > util::simd::best_supported_tier()) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  auto previous = util::simd::active_tier();
  util::simd::force_tier(tier);
  std::vector<float> a(100), b(100);
  util::Pcg32 rng(11);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::dot(a.data(), b.data(), a.size()));
  }
  util::simd::force_tier(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(util::simd::tier_name(tier));
}
BENCHMARK(BM_DotKernel)->Arg(0)->Arg(1)->Arg(2);

void BM_DotBlock(benchmark::State& state) {
  // The kNN inner loop: one query against 64 padded rows per call.
  constexpr std::size_t kRows = 64;
  constexpr std::size_t kDim = 100;
  const std::size_t stride = util::simd::padded_dim(kDim);
  std::vector<float, util::simd::AlignedAllocator<float>> base(kRows * stride,
                                                               0.0F);
  std::vector<float, util::simd::AlignedAllocator<float>> q(stride, 0.0F);
  util::Pcg32 rng(12);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t j = 0; j < kDim; ++j) {
      base[r * stride + j] = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  for (std::size_t j = 0; j < kDim; ++j) {
    q[j] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  std::vector<float> out(kRows);
  for (auto _ : state) {
    util::simd::dot_block(q.data(), base.data(), stride, kRows, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRows));
  state.SetLabel("items = rows scored");
}
BENCHMARK(BM_DotBlock);

void BM_KnnQueryBatch(benchmark::State& state) {
  // 32 sessions answered in one matrix sweep (Section 4.1 amortised).
  auto& service = trained_service();
  embedding::CosineKnnIndex index(service.model());
  std::vector<std::vector<float>> queries;
  for (std::size_t i = 0; i < 32; ++i) {
    auto row = service.model().vector_of(static_cast<embedding::TokenId>(
        (i * 13) % service.model().size()));
    queries.emplace_back(row.begin(), row.end());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.query_batch(queries, static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
  state.SetLabel("items = queries answered");
}
BENCHMARK(BM_KnnQueryBatch)->Arg(100)->Arg(1000);

void BM_SessionProfile(benchmark::State& state) {
  auto& service = trained_service();
  // A realistic 20-minute session: sample hostnames from the model vocab.
  std::vector<std::string> session;
  for (std::size_t i = 0; i < 18; ++i) {
    session.push_back(service.model().token(static_cast<embedding::TokenId>(
        (i * 97) % service.model().size())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.profile_hostnames(session));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SessionProfile);

void BM_AdSelection(benchmark::State& state) {
  const auto& fx = fixture();
  auto& service = trained_service();
  ads::EavesdropperSelector selector(fx.db, fx.labeler);
  std::vector<std::string> session;
  for (std::size_t i = 0; i < 18; ++i) {
    session.push_back(service.model().token(static_cast<embedding::TokenId>(
        (i * 97) % service.model().size())));
  }
  auto profile = service.profile_hostnames(session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(profile.categories));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdSelection);

// --train-threads=N (default 1, the bit-exact serial path): Hogwild worker
// count for BM_SgnsTrainingEpoch, so the epoch benchmark can be pointed at
// the parallel path without recompiling.
std::size_t g_train_threads = 1;

void BM_SgnsTrainingEpoch(benchmark::State& state) {
  const auto& fx = fixture();
  // One user-day sequence corpus, one epoch per iteration.
  profile::SessionStore store(40 * util::kDay);
  store.ingest(fx.train_trace.events);
  auto corpus = store.day_sequences(1);
  embedding::SgnsParams params;
  params.epochs = 1;
  params.threads = g_train_threads;
  embedding::VocabularyParams vp;
  vp.min_count = 2;
  std::uint64_t tokens = 0;
  for (const auto& seq : corpus) tokens += seq.size();
  for (auto _ : state) {
    embedding::SgnsTrainer trainer(params, vp);
    benchmark::DoNotOptimize(trainer.fit(corpus));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tokens));
  state.SetLabel("items = hostname tokens");
}
BENCHMARK(BM_SgnsTrainingEpoch)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --bench-baseline: the acceptance numbers behind the "line rate" claim.
// The measurement itself lives in bench/micro_baseline.hpp so the
// check_bench_regression gate can re-run it bit-for-bit.

int run_bench_baseline(const std::string& path,
                       const bench::MicroBaselineOptions& opts,
                       const bench::IngestBaselineOptions& ingest_opts) {
  bench::MicroBaselineResult r = bench::run_micro_baseline(opts);
  bench::IngestBaselineResult ing = bench::run_ingest_baseline(ingest_opts);
  std::cerr << "[baseline] training SGNS at 1/2/4 Hogwild workers...\n";
  bench::TrainBaselineResult tr = bench::run_train_baseline();
  if (!bench::write_micro_baseline_json(path, r, ing, tr)) return 1;
  std::cout << "[baseline] fullsort " << r.fullsort_s * 1e3 << " ms, blocked "
            << r.blocked_s * 1e3 << " ms (x" << r.knn_speedup()
            << "), batch32 " << r.batch_per_query_s * 1e3 << " ms/query (x"
            << r.batch_speedup() << " vs single)\n[baseline] ivf "
            << r.ivf_s * 1e3 << " ms/query (x" << r.ivf_speedup()
            << " vs blocked, recall@" << r.top_n << " " << r.ivf_recall
            << ", nlists=" << r.ivf_nlists << " nprobe=" << r.ivf_nprobe
            << ")\n[baseline] ingest " << ing.packets << " pkts: "
            << ing.st_pps() / 1e3 << " kpps 1-thread vs "
            << ing.mt_pps() / 1e3 << " kpps " << ing.shards
            << "-shard wall (x" << ing.speedup_measured() << " measured, x"
            << ing.speedup_ideal() << " ideal, " << ing.hardware_threads
            << " hw threads), dropped=" << ing.dropped
            << ", 1-shard identical="
            << (ing.oneshard_identical ? "yes" : "NO")
            << ", allocs/event " << ing.alloc_per_event_st << " -> "
            << ing.alloc_per_event_sharded << "\n[baseline] flight recorder 1/"
            << ing.flight_sample_every << ": " << ing.flight_overhead_pct()
            << "% overhead (" << ing.flight_sampled
            << " sampled)\n[baseline] memory: "
            << ing.memory.total_bytes / 1024.0 / 1024.0 << " MiB total, "
            << ing.memory.users << " users, " << ing.memory.bytes_per_user
            << " bytes/user\n[baseline] ivf build " << r.ivf_build_s * 1e3
            << " ms serial (kmeans " << r.ivf_build_kmeans_s * 1e3
            << " + encode " << r.ivf_build_encode_s * 1e3 << "), pool2 "
            << r.ivf_build_pool2_s * 1e3 << " ms, pool4 "
            << r.ivf_build_pool4_s * 1e3 << " ms, pool-invariant="
            << (r.ivf_pool_invariant ? "yes" : "NO")
            << "\n[baseline] train " << tr.pairs << " pairs: "
            << tr.t1_wall_s * 1e3 << " ms 1-thread vs " << tr.t4_wall_s * 1e3
            << " ms 4-thread wall (x" << tr.measured_speedup_t4()
            << " measured, x" << tr.ideal_speedup_t4() << " ideal, "
            << tr.hardware_threads << " hw threads), t1 digest "
            << (tr.digest_matches() ? "matches seed" : "DIFFERS FROM SEED")
            << "\n[baseline] wrote " << path << "\n";
  return 0;
}

}  // namespace

// BENCHMARK_MAIN plus a few extra flags. "--metrics-out[=PATH]": after the
// suite runs, the registry (populated by the instrumented pipeline the
// benchmarks drive) is dumped as a machine-readable artifact.
// "--trace-out[=PATH]": enable tracing and dump the span tree at exit.
// "--bench-baseline[=PATH]": skip the google-benchmark suite and run the
// hand-timed kNN acceptance baseline instead, writing PATH (default
// BENCH_micro.json). "--bench-rows=N": vocabulary size for the baseline
// (default 50000; 470000 = the paper's deployment scale).
// "--ingest-flows=N" / "--ingest-shards=N": corpus size and pipeline width
// for the baseline's ingest_throughput section. "--train-threads=N": Hogwild
// worker count for BM_SgnsTrainingEpoch (default 1). All flags are stripped
// before google-benchmark parses the rest.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::string baseline_out;
  netobs::bench::MicroBaselineOptions baseline_opts;
  netobs::bench::IngestBaselineOptions ingest_opts;
  bool run_baseline = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg.rfind("--bench-baseline=", 0) == 0) {
      run_baseline = true;
      baseline_out = arg.substr(std::string("--bench-baseline=").size());
    } else if (arg == "--bench-baseline") {
      run_baseline = true;
    } else if (arg.rfind("--bench-rows=", 0) == 0) {
      baseline_opts.rows = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string("--bench-rows=").size(), nullptr, 10));
    } else if (arg.rfind("--ingest-flows=", 0) == 0) {
      ingest_opts.flows = static_cast<std::size_t>(std::strtoull(
          arg.c_str() + std::string("--ingest-flows=").size(), nullptr, 10));
    } else if (arg.rfind("--ingest-shards=", 0) == 0) {
      ingest_opts.shards = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(
                 arg.c_str() + std::string("--ingest-shards=").size(),
                 nullptr, 10)));
    } else if (arg.rfind("--train-threads=", 0) == 0) {
      g_train_threads = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(
                 arg.c_str() + std::string("--train-threads=").size(),
                 nullptr, 10)));
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) {
    netobs::obs::MetricsRegistry::global().enable_tracing(8192);
  }
  if (run_baseline) {
    if (baseline_out.empty()) baseline_out = "BENCH_micro.json";
    return run_bench_baseline(baseline_out, baseline_opts, ingest_opts);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  netobs::obs::StatsHub::global().publish();
  if (!metrics_out.empty()) {
    try {
      netobs::obs::dump_metrics_file(metrics_out);
    } catch (const std::exception& e) {
      std::cerr << "[metrics] " << e.what() << "\n";
      return 1;
    }
    std::cout << "[metrics] wrote " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    const auto* buffer =
        netobs::obs::MetricsRegistry::global().trace_buffer();
    try {
      netobs::obs::dump_trace_file(trace_out, *buffer);
    } catch (const std::exception& e) {
      std::cerr << "[trace] " << e.what() << "\n";
      return 1;
    }
    std::cout << "[trace] wrote " << trace_out << "\n";
  }
  return 0;
}
