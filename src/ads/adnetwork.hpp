// Ad-network baseline: serves the "Original" ads of Section 5.3.
//
// The paper cannot observe how real ad-networks pick ads; Section 3 lists
// the serving modes that make up their traffic, which this baseline
// reproduces as a mixture:
//   - premium ads: campaign creatives shown to everyone on a site,
//     untargeted (Coca-Cola on espn.com),
//   - contextual ads: matched to the topic of the page being viewed,
//   - targeted ads: matched to the network's *own* profile of the user,
//     accumulated from pages where its trackers run (cookie-based history —
//     the network only learns a page's topic when its tracker fires there),
//   - retargeted ads: repeats of a product the user recently saw.
//
// The network never sees ground-truth interests; its knowledge is exactly
// its tracker coverage, which is the honest analogue of cookie tracking.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ads/ad_database.hpp"
#include "util/rng.hpp"

namespace netobs::ads {

struct AdNetworkParams {
  double premium_share = 0.25;
  double contextual_share = 0.40;
  double targeted_share = 0.25;
  double retargeted_share = 0.10;
  double tracker_coverage = 0.6;  ///< pages where the network's tracker runs
  std::size_t history_limit = 50; ///< remembered recent landing sites
  std::uint64_t seed = 4242;
};

class AdNetwork {
 public:
  /// db must outlive the network; universe provides topics for contextual
  /// serving.
  AdNetwork(const AdDatabase& db, const synth::HostnameUniverse& universe,
            AdNetworkParams params = AdNetworkParams());

  /// Tracker callback: the network observes a page view (and learns its
  /// topic) only when its tracker fires there.
  void observe_page(std::uint32_t user_id, std::size_t topic);

  /// Serves an ad of exactly `size` for a page view. Returns the ad id.
  AdId serve(std::uint32_t user_id, std::size_t page_topic,
             synth::AdSlot size);

  /// The network's accumulated (normalised) topic histogram for a user;
  /// empty if it has never tracked them.
  std::vector<double> profile_of(std::uint32_t user_id) const;

 private:
  AdId random_ad_of_size(synth::AdSlot size);
  AdId topical_ad_of_size(std::size_t topic, synth::AdSlot size);

  const AdDatabase* db_;
  std::size_t topic_count_;
  AdNetworkParams params_;
  util::Pcg32 rng_;

  /// Ads grouped by (size, dominant topic) for fast topical serving.
  std::unordered_map<std::uint64_t, std::vector<AdId>> by_size_topic_;
  std::unordered_map<std::uint64_t, std::vector<AdId>> by_size_;

  struct UserState {
    std::vector<double> topic_counts;
    std::deque<AdId> recently_served;
  };
  std::unordered_map<std::uint32_t, UserState> users_;
};

}  // namespace netobs::ads
