#include "ads/click_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace netobs::ads {

ClickModel::ClickModel(ClickParams params) : params_(params) {
  if (params_.base_ctr <= 0.0 || params_.max_ctr <= 0.0) {
    throw std::invalid_argument("ClickModel: rates must be positive");
  }
}

double ClickModel::affinity(const synth::User& user, const Ad& ad) {
  if (ad.topic_mix.empty() || user.interests.empty()) return 0.0;
  std::size_t n = std::min(ad.topic_mix.size(), user.interests.size());
  double dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(user.interests[i]) *
           static_cast<double>(ad.topic_mix[i]);
  }
  return std::clamp(dot, 0.0, 1.0);
}

double ClickModel::click_probability(const synth::User& user,
                                     const Ad& ad) const {
  double p = params_.base_ctr *
             (params_.floor + params_.gain * affinity(user, ad));
  return std::clamp(p, 0.0, params_.max_ctr);
}

bool ClickModel::click(const synth::User& user, const Ad& ad,
                       util::Pcg32& rng) const {
  return rng.bernoulli(click_probability(user, ad));
}

}  // namespace netobs::ads
