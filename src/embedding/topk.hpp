// Bounded top-k selection under the published (similarity desc, id asc)
// order — the selector shared by the exact blocked sweep (knn.cpp) and the
// IVF candidate/re-rank stages (ivf_index.cpp).
//
// A candidate reservoir of at most 2k entries is pruned back to the exact k
// best with nth_element whenever it fills. Appends are O(1) and each prune
// is O(k), so a scan costs O(rows + m) for m candidate passes — cheaper in
// practice than a binary heap's per-displacement sift-down, and far cheaper
// than a full materialise-and-sort. The kept set is the unique top k under
// (similarity desc, id asc), so every scan strategy built on this class
// returns bit-identical results.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "embedding/vocabulary.hpp"

namespace netobs::embedding {

/// One kNN result entry; ordered by (similarity desc, id asc) everywhere.
struct Neighbor {
  TokenId id = 0;
  float similarity = 0.0F;  ///< cosine in [-1, 1]
};

/// Descending similarity, ascending id — the published result order and
/// the deterministic tie-break.
inline bool neighbor_better(float sim_a, TokenId id_a, float sim_b,
                            TokenId id_b) {
  if (sim_a != sim_b) return sim_a > sim_b;
  return id_a < id_b;
}

class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k), cap_(2 * k) { entries_.reserve(cap_); }

  void offer(TokenId id, float sim) {
    // `sim == threshold_` still enters: the id tie-break is settled at the
    // next prune, exactly like the simd::mask_ge '>=' block filter.
    if (has_threshold_ && sim < threshold_) return;
    entries_.push_back({id, sim});
    if (entries_.size() >= cap_) prune();
  }

  /// Once true, worst_similarity() is a valid lower bound for new entries
  /// and callers may pre-filter candidates with simd::mask_ge.
  bool full() const { return has_threshold_ || entries_.size() >= k_; }

  /// Current admission threshold; -inf until the first prune, afterwards
  /// the similarity of the k-th best candidate seen so far (it lags the
  /// true k-th best between prunes, which only makes filtering
  /// conservative, never lossy).
  float worst_similarity() const {
    return has_threshold_ ? threshold_
                          : -std::numeric_limits<float>::infinity();
  }

  /// Exact top k in published order (similarity desc, id asc).
  std::vector<Neighbor> take_sorted() {
    prune();
    std::sort(entries_.begin(), entries_.end(), best_first);
    return std::move(entries_);
  }

  /// The same exact top-k set, unordered — for callers that rescore every
  /// entry anyway (the batched re-rank) and re-select afterwards.
  std::vector<Neighbor> take_unsorted() {
    prune();
    return std::move(entries_);
  }

 private:
  static bool best_first(const Neighbor& a, const Neighbor& b) {
    return neighbor_better(a.similarity, a.id, b.similarity, b.id);
  }

  /// Shrinks the reservoir to the exact k best and raises the admission
  /// threshold to the new worst kept entry.
  void prune() {
    if (entries_.size() <= k_) return;
    auto kth = entries_.begin() + static_cast<std::ptrdiff_t>(k_) - 1;
    std::nth_element(entries_.begin(), kth, entries_.end(), best_first);
    entries_.resize(k_);
    threshold_ = entries_[k_ - 1].similarity;
    has_threshold_ = true;
  }

  std::size_t k_;
  std::size_t cap_;
  bool has_threshold_ = false;
  float threshold_ = 0.0F;
  std::vector<Neighbor> entries_;
};

/// Order-preserving float -> u32 flip: u64 keys built from it sort with a
/// single integer compare in exactly the published (similarity desc, id
/// asc) order. -0.0 canonicalizes to +0.0 first; the two compare equal
/// under every float comparison, so no ordering decision can change, and
/// packed values are only ever used for ordering and numeric thresholds,
/// never as returned similarities.
inline std::uint32_t sim_to_ordered(float sim) {
  auto u = std::bit_cast<std::uint32_t>(sim + 0.0F);
  return u ^
         (static_cast<std::uint32_t>(static_cast<std::int32_t>(u) >> 31) |
          0x80000000U);
}

/// Inverse of sim_to_ordered (up to the -0.0 canonicalization).
inline float ordered_to_sim(std::uint32_t u) {
  const std::uint32_t v =
      (u & 0x80000000U) != 0U ? (u ^ 0x80000000U) : ~u;
  return std::bit_cast<float>(v);
}

/// Ascending-order key for (similarity desc, id asc): better entries have
/// smaller keys, so plain std::less selection passes match neighbor_better.
inline std::uint64_t neighbor_key(TokenId id, float sim) {
  return (static_cast<std::uint64_t>(~sim_to_ordered(sim)) << 32) |
         static_cast<std::uint64_t>(id);
}

inline TokenId key_id(std::uint64_t key) {
  return static_cast<TokenId>(key & 0xFFFFFFFFULL);
}

inline float key_sim(std::uint64_t key) {
  return ordered_to_sim(~static_cast<std::uint32_t>(key >> 32));
}

/// TopK's kept-set semantics on packed u64 keys: the reservoir keeps the
/// exact top k under (similarity desc, id asc), but every prune and the
/// caller's follow-up selection passes run on single-compare integer keys
/// instead of the branchy two-field comparator — the batched IVF sweep's
/// reservoir. Admission mirrors TopK::offer: sim strictly below the
/// threshold is rejected, equal similarity still enters (any id), so
/// simd::mask_ge pre-filtering composes identically.
class PackedTopK {
 public:
  explicit PackedTopK(std::size_t k) : k_(k), cap_(2 * k) {
    keys_.reserve(cap_);
  }

  void offer(TokenId id, float sim) {
    const std::uint64_t key = neighbor_key(id, sim);
    // key > threshold_key_ iff sim < threshold similarity: the threshold
    // key carries the all-ones id, so every equal-similarity key passes.
    if (has_threshold_ && key > threshold_key_) return;
    keys_.push_back(key);
    if (keys_.size() >= cap_) prune();
  }

  bool full() const { return has_threshold_ || keys_.size() >= k_; }

  /// Numeric admission threshold for simd::mask_ge, -inf until first prune.
  float worst_similarity() const { return threshold_sim_; }

  /// Exact top k as packed keys, unordered.
  std::vector<std::uint64_t> take_keys() {
    prune();
    return std::move(keys_);
  }

 private:
  void prune() {
    if (keys_.size() <= k_) return;
    auto kth = keys_.begin() + static_cast<std::ptrdiff_t>(k_) - 1;
    std::nth_element(keys_.begin(), kth, keys_.end());
    keys_.resize(k_);
    threshold_sim_ = key_sim(keys_[k_ - 1]);
    threshold_key_ = (keys_[k_ - 1] | 0xFFFFFFFFULL);
    has_threshold_ = true;
  }

  std::size_t k_;
  std::size_t cap_;
  bool has_threshold_ = false;
  float threshold_sim_ = -std::numeric_limits<float>::infinity();
  std::uint64_t threshold_key_ = 0;
  std::vector<std::uint64_t> keys_;
};

}  // namespace netobs::embedding
