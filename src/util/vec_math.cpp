#include "util/vec_math.hpp"

#include <cassert>
#include <cmath>

namespace netobs::util {

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float s = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) {
  for (float& v : x) v *= alpha;
}

float l2_norm(std::span<const float> x) {
  return std::sqrt(dot(x, x));
}

void normalize(std::span<float> x) {
  float n = l2_norm(x);
  if (n > 0.0F) scale(x, 1.0F / n);
}

float cosine(std::span<const float> a, std::span<const float> b) {
  float na = l2_norm(a);
  float nb = l2_norm(b);
  if (na == 0.0F || nb == 0.0F) return 0.0F;
  return dot(a, b) / (na * nb);
}

float euclidean_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  float s = 0.0F;
  for (std::size_t i = 0; i < a.size(); ++i) {
    float d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

std::vector<float> mean_of_rows(
    const std::vector<std::span<const float>>& rows) {
  std::vector<float> out;
  if (rows.empty()) return out;
  out.assign(rows.front().size(), 0.0F);
  for (const auto& row : rows) {
    assert(row.size() == out.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += row[i];
  }
  float inv = 1.0F / static_cast<float>(rows.size());
  scale(out, inv);
  return out;
}

float sigmoid(float x) { return 1.0F / (1.0F + std::exp(-x)); }

SigmoidTable::SigmoidTable() : table_(kTableSize) {
  for (std::size_t i = 0; i < kTableSize; ++i) {
    float x = (static_cast<float>(i) / static_cast<float>(kTableSize) * 2.0F -
               1.0F) *
              kMaxExp;
    table_[i] = sigmoid(x);
  }
}

float SigmoidTable::operator()(float x) const {
  if (x <= -kMaxExp) return table_.front();
  if (x >= kMaxExp) return table_.back();
  auto idx = static_cast<std::size_t>((x + kMaxExp) /
                                      (2.0F * kMaxExp) *
                                      static_cast<float>(kTableSize));
  if (idx >= kTableSize) idx = kTableSize - 1;
  return table_[idx];
}

const SigmoidTable& shared_sigmoid_table() {
  static const SigmoidTable table;
  return table;
}

}  // namespace netobs::util
