#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"
#include "net/bytes.hpp"
#include "util/rng.hpp"

namespace netobs::crypto {
namespace {

using net::from_hex;
using net::to_hex;

std::string digest_hex(const Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// --- SHA-256: FIPS 180-4 / NIST CAVP reference vectors.

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Pcg32 rng(5);
  std::vector<std::uint8_t> data(4097);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  Digest oneshot = Sha256::hash(data);
  for (std::size_t split : {1UL, 63UL, 64UL, 65UL, 1000UL}) {
    Sha256 h;
    h.update(std::span(data.data(), split));
    h.update(std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), oneshot) << "split=" << split;
  }
}

// --- HMAC-SHA256: RFC 4231 test cases.

TEST(HmacSha256, Rfc4231Case1) {
  auto key = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  std::string msg = "Hi There";
  auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string msg = "what do ya want for nothing?";
  auto mac = hmac_sha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key of 0xaa, msg "Test Using Larger Than
  // Block-Size Key - Hash Key First".
  std::vector<std::uint8_t> key(131, 0xaa);
  std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto mac = hmac_sha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF: RFC 5869 test case 1.

TEST(Hkdf, Rfc5869Case1) {
  auto ikm = from_hex("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  auto salt = from_hex("000102030405060708090a0b0c");
  auto info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  auto prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(digest_hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  auto okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandRejectsExcessiveLength) {
  Digest prk{};
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(HkdfExpandLabel, MatchesQuicV1InitialSecrets) {
  // RFC 9001 Appendix A.1: DCID 0x8394c8f03e515708.
  auto initial_salt = from_hex("38762cf7f55934b34d179ae6a4c80cadccbb7f0a");
  auto dcid = from_hex("8394c8f03e515708");
  auto initial_secret = hkdf_extract(initial_salt, dcid);
  auto client_secret =
      hkdf_expand_label(initial_secret, "client in", {}, 32);
  EXPECT_EQ(to_hex(client_secret),
            "c00cf151ca5be075ed0ebfb5c80323c42d6b7db67881289af4008f1f6c357aea");
  auto key = hkdf_expand_label(client_secret, "quic key", {}, 16);
  EXPECT_EQ(to_hex(key), "1f369613dd76d5467730efcbe3b1a22d");
  auto iv = hkdf_expand_label(client_secret, "quic iv", {}, 12);
  EXPECT_EQ(to_hex(iv), "fa044b2f42a3fd3b46fb255c");
  auto hp = hkdf_expand_label(client_secret, "quic hp", {}, 16);
  EXPECT_EQ(to_hex(hp), "9f50449e04a0e810283a1e9933adedd2");
}

// --- AES-128: FIPS 197 Appendix C.1.

TEST(Aes128, Fips197Vector) {
  AesKey key;
  auto key_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
  std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
  AesBlock pt;
  auto pt_bytes = from_hex("00112233445566778899aabbccddeeff");
  std::copy(pt_bytes.begin(), pt_bytes.end(), pt.begin());
  Aes128 aes(key);
  auto ct = aes.encrypt_block(pt);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct.data(), ct.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, AllZeroVector) {
  // NIST AESAVS: key=0^128, pt=0^128 -> 66e94bd4ef8a2c3b884cfa59ca342b2e.
  AesKey key{};
  AesBlock pt{};
  Aes128 aes(key);
  auto ct = aes.encrypt_block(pt);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(ct.data(), ct.size())),
            "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

// --- AES-128-GCM: NIST SP 800-38D / McGrew-Viega test cases.

TEST(Aes128Gcm, NistCase1EmptyPlaintext) {
  AesKey key{};
  Aes128Gcm gcm(key);
  Aes128Gcm::Nonce nonce{};
  auto sealed = gcm.seal(nonce, {}, {});
  // Tag-only output: 58e2fccefa7e3061367f1d57a4e7455a.
  EXPECT_EQ(to_hex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Aes128Gcm, NistCase2SingleBlock) {
  AesKey key{};
  Aes128Gcm gcm(key);
  Aes128Gcm::Nonce nonce{};
  auto pt = from_hex("00000000000000000000000000000000");
  auto sealed = gcm.seal(nonce, {}, pt);
  EXPECT_EQ(to_hex(sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Aes128Gcm, NistCase4WithAad) {
  AesKey key;
  auto kb = from_hex("feffe9928665731c6d6a8f9467308308");
  std::copy(kb.begin(), kb.end(), key.begin());
  Aes128Gcm gcm(key);
  Aes128Gcm::Nonce nonce;
  auto nb = from_hex("cafebabefacedbaddecaf888");
  std::copy(nb.begin(), nb.end(), nonce.begin());
  auto pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  auto aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  auto sealed = gcm.seal(nonce, aad, pt);
  EXPECT_EQ(to_hex(sealed),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(Aes128Gcm, OpenRoundTrip) {
  AesKey key;
  util::Pcg32 rng(3);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u32());
  Aes128Gcm gcm(key);
  Aes128Gcm::Nonce nonce;
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng.next_u32());
  std::vector<std::uint8_t> pt(337);
  for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next_u32());
  std::vector<std::uint8_t> aad(21, 0xA5);

  auto sealed = gcm.seal(nonce, aad, pt);
  auto opened = gcm.open(nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aes128Gcm, OpenDetectsTampering) {
  AesKey key{};
  Aes128Gcm gcm(key);
  Aes128Gcm::Nonce nonce{};
  std::vector<std::uint8_t> pt = {1, 2, 3, 4, 5};
  auto sealed = gcm.seal(nonce, {}, pt);

  auto flipped = sealed;
  flipped[0] ^= 0x01;
  EXPECT_FALSE(gcm.open(nonce, {}, flipped).has_value());

  auto bad_tag = sealed;
  bad_tag.back() ^= 0x80;
  EXPECT_FALSE(gcm.open(nonce, {}, bad_tag).has_value());

  std::vector<std::uint8_t> wrong_aad = {9};
  EXPECT_FALSE(gcm.open(nonce, wrong_aad, sealed).has_value());

  EXPECT_FALSE(gcm.open(nonce, {}, std::span<const std::uint8_t>(
                                       sealed.data(), 4))
                   .has_value());  // shorter than a tag
}

}  // namespace
}  // namespace netobs::crypto
