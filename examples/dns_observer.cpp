// Section 7.2: "A DNS provider may actually act as a profiler since it
// learns the hostnames requested by a user via DNS requests."
//
// Same pipeline as the TLS eavesdropper, but the observer parses DNS query
// datagrams instead of ClientHellos. Also contrasts observer vantages: the
// resolver (per-subscriber view) vs a landline ISP behind NAT, where
// household members collapse into one pseudo-user and profiles blur.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "net/observer.hpp"
#include "profile/service.hpp"
#include "synth/traffic.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {120, 3, 23, ""});
  auto world = bench::make_world(cfg);
  std::cout << "== DNS-resolver observer (Section 7.2) ==\n";

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);

  // Wire: each connection is preceded by its DNS lookup.
  synth::TrafficParams tp;
  tp.emit_dns = true;
  synth::TrafficSynthesizer synthesizer(*world.population, tp);
  auto packets = synthesizer.synthesize(trace.events);

  // Observer A: the DNS provider (sees per-subscriber queries).
  net::DnsObserver resolver(net::Vantage::kMobileOperator);
  std::vector<net::HostnameEvent> dns_events;
  for (const auto& p : packets) {
    auto es = resolver.observe(p);
    dns_events.insert(dns_events.end(), es.begin(), es.end());
  }
  std::cout << "resolver: " << dns_events.size() << " QNAMEs from "
            << resolver.demux().distinct_users() << " subscribers ("
            << resolver.stats().deduped
            << " duplicate queries suppressed)\n";

  // Observer B: landline ISP watching the same wire behind NAT.
  net::SniObserver isp(net::Vantage::kLandlineIsp);
  auto nat_events = isp.observe_all(packets);
  std::cout << "NAT'd ISP: " << nat_events.size() << " SNI hostnames from "
            << isp.demux().distinct_users() << " pseudo-users ("
            << world.population->household_count() << " households, "
            << world.population->size() << " real users)\n\n";

  auto labeler = world.universe->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());

  auto profile_sharpness = [&](const std::vector<net::HostnameEvent>& events,
                               const char* name) {
    profile::ServiceParams sp;
    sp.profiler.knn = 50;
    sp.profiler.aggregation = profile::Aggregation::kNormalizedMean;
    sp.vocab.min_count = 2;
    sp.sgns.epochs = 12;
    profile::ProfilingService service(labeler, &blocklist, sp);
    service.ingest(events);
    if (!service.retrain(cfg.days - 2)) {
      std::cout << name << ": not enough data\n";
      return;
    }
    // NAT merges household members into one identity: its 20-minute
    // sessions mix several people's browsing, so they are longer and the
    // resulting profiles flatter (higher entropy). Sample every identity
    // every 2 hours across the last day.
    double session_len = 0.0;
    double entropy = 0.0;
    std::size_t counted = 0;
    for (util::Timestamp now = (cfg.days - 1) * util::kDay;
         now < cfg.days * util::kDay; now += 2 * util::kHour) {
      for (std::uint32_t u : service.store().users()) {
        auto session = service.session_of(u, now);
        if (session.empty()) continue;
        auto p = service.profile_hostnames(session.hostnames);
        if (p.empty()) continue;
        session_len += static_cast<double>(session.size());
        double total = 0.0;
        for (float c : p.categories) total += c;
        double h = 0.0;
        for (float c : p.categories) {
          if (c > 0.0F) {
            double q = c / total;
            h -= q * std::log2(q);
          }
        }
        entropy += h;
        ++counted;
      }
    }
    std::cout << name << ": model=" << service.model().size()
              << " hosts, " << counted << " identity-sessions, "
              << util::format(
                     "mean session %.1f hostnames, profile entropy %.2f bits\n",
                     counted ? session_len / counted : 0.0,
                     counted ? entropy / counted : 0.0);
  };

  profile_sharpness(dns_events, "DNS resolver (per subscriber)");
  profile_sharpness(nat_events, "landline ISP (per NAT household)");

  std::cout << "\nDoH/DoT hide queries from the path but not from the\n"
               "resolver itself — the resolver profiles exactly like the\n"
               "TLS eavesdropper, while NAT only blurs per-user separation.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
