// Paper-scale-plus synthetic soak: a 2M-row corpus (4x the ~470K-hostname
// vocabulary of Section 4.1) exercising the regime product quantization
// exists for — the int8 list payload stops fitting comfortably and the
// m-byte PQ codes must carry retrieval. Gated behind -DNETOBS_BIG_TESTS=ON
// (multi-minute, ~1GB RSS); always compiled, skipped at runtime otherwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "embedding/ivf_index.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

TEST(BigScale, PqAtTwoMillionRowsHoldsRecallAtAThirdOfTheBytes) {
#if !defined(NETOBS_BIG_TESTS)
  GTEST_SKIP() << "configure with -DNETOBS_BIG_TESTS=ON to run";
#else
  constexpr std::size_t kRows = 2'000'000;
  constexpr std::size_t kDim = 32;
  constexpr std::size_t kTopics = 2000;

  // Topic-clustered corpus, same shape the ivf_knn tests use but at scale.
  EmbeddingMatrix centers(kTopics, kDim);
  util::Pcg32 rng(2021, 0xb1);
  for (std::size_t t = 0; t < kTopics; ++t) {
    for (float& v : centers.row(t)) v = static_cast<float>(rng.normal());
    util::normalize(centers.row(t));
  }
  EmbeddingMatrix m(kRows, kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    auto center = centers.row(r % kTopics);
    auto row = m.row(r);
    for (std::size_t j = 0; j < kDim; ++j) {
      row[j] = center[j] + static_cast<float>(0.10 * rng.normal());
    }
  }

  // PQ index under test: m = 8 bytes/row vs qstride + 4 = 36 bytes/row.
  IvfParams pq_params;
  pq_params.nlists = 1024;
  pq_params.nprobe = 32;
  pq_params.rerank = 8;
  pq_params.pq.m = 8;
  pq_params.pq.bits = 8;
  IvfKnnIndex pq(m, pq_params);
  ASSERT_TRUE(pq.pq_enabled());

  // Exact oracle doubling as the int8 payload yardstick: warm rebuild on
  // the same centroids (skips Lloyd), full probe + a re-rank pool covering
  // the corpus makes its answers bit-identical to an exact sweep.
  IvfParams full;
  full.nlists = pq_params.nlists;
  full.nprobe = pq_params.nlists;
  full.rerank = kRows;  // rerank * n >= rows: nothing is cut before re-rank
  IvfKnnIndex int8(m, pq.centroids(), full);
  ASSERT_FALSE(int8.pq_enabled());

  // The memory claim PQ is for: codes + codebooks at most a third of the
  // int8 codes + scales.
  RecordProperty("pq_list_bytes", static_cast<int>(pq.list_bytes() >> 20));
  RecordProperty("int8_list_bytes", static_cast<int>(int8.list_bytes() >> 20));
  EXPECT_LE(pq.list_bytes() * 3, int8.list_bytes());

  // recall@1000 after the exact re-rank stays above the deployment floor.
  constexpr std::size_t kN = 1000;
  constexpr int kQueries = 5;
  double recall_sum = 0.0;
  for (int t = 0; t < kQueries; ++t) {
    auto row = m.row(rng.next_below(kRows));
    std::vector<float> q(row.begin(), row.end());
    auto exact = int8.query(q, kN);
    auto approx = pq.query(q, kN);
    std::vector<TokenId> ids;
    for (const auto& nb : approx) ids.push_back(nb.id);
    std::sort(ids.begin(), ids.end());
    std::size_t hit = 0;
    for (const auto& nb : exact) {
      hit += std::binary_search(ids.begin(), ids.end(), nb.id) ? 1 : 0;
    }
    recall_sum += static_cast<double>(hit) / static_cast<double>(exact.size());
  }
  double recall = recall_sum / kQueries;
  RecordProperty("recall_at_1000_x1000", static_cast<int>(recall * 1000));
  EXPECT_GE(recall, 0.95);

  // Batched remains bit-identical to single at scale as well.
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 8; ++i) {
    auto row = m.row(rng.next_below(kRows));
    queries.emplace_back(row.begin(), row.end());
  }
  auto batched = pq.query_batch(queries, 100);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto single = pq.query(queries[i], 100);
    ASSERT_EQ(batched[i].size(), single.size()) << "query " << i;
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].id, single[j].id);
      EXPECT_EQ(batched[i][j].similarity, single[j].similarity);
    }
  }
#endif
}

}  // namespace
}  // namespace netobs::embedding
