#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hpp"

namespace netobs::util {
namespace {

TEST(RunningStats, MatchesBatchFormulas) {
  RunningStats rs;
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5U);
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.variance(), sample_variance(xs), 1e-12);
}

TEST(RunningStats, VarianceZeroForFewSamples) {
  RunningStats rs;
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(5.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 1.75);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(LogGamma, MatchesKnownValues) {
  // Gamma(1)=1, Gamma(2)=1, Gamma(5)=24, Gamma(0.5)=sqrt(pi).
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_x(a,a) at x=0.5 is exactly 0.5.
  for (double a : {0.5, 1.0, 2.0, 7.5}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10) << "a=" << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.37, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10);
  }
}

TEST(StudentTCdf, MatchesReferenceValues) {
  // Reference values from scipy.stats.t.cdf.
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-10);
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-8);          // Cauchy
  EXPECT_NEAR(student_t_cdf(2.0, 10.0), 0.963306, 1e-5);
  EXPECT_NEAR(student_t_cdf(-2.0, 10.0), 1.0 - 0.963306, 1e-5);
  EXPECT_NEAR(student_t_cdf(1.96, 1000.0), 0.974890, 2e-4);  // ~normal
}

TEST(PairedTTest, ZeroDifferenceGivesPValueOne) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  auto r = paired_t_test(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_difference, 0.0);
  EXPECT_FALSE(r.significant());
}

TEST(PairedTTest, DetectsConstantShift) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.1};
  std::vector<double> b = {2.0, 3.1, 4.0, 5.0};
  auto r = paired_t_test(a, b);
  EXPECT_LT(r.mean_difference, 0.0);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_TRUE(r.significant());
}

TEST(PairedTTest, KnownFixture) {
  // Reference values from exact arithmetic (t) and numerical integration of
  // the t-density (p): t = 2.064187, p = 0.107938 (df = 4).
  std::vector<double> a = {5.1, 4.8, 5.3, 5.0, 4.9};
  std::vector<double> b = {4.9, 4.7, 5.1, 5.1, 4.6};
  auto r = paired_t_test(a, b);
  EXPECT_EQ(r.degrees_of_freedom, 4.0);
  EXPECT_NEAR(r.t_statistic, 2.064187, 1e-5);
  EXPECT_NEAR(r.p_value, 0.107938, 1e-5);
}

TEST(PairedTTest, RejectsMismatchedSizes) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {1.0};
  EXPECT_THROW(paired_t_test(a, b), std::invalid_argument);
  EXPECT_THROW(paired_t_test(b, b), std::invalid_argument);  // < 2 pairs
}

TEST(WelchTTest, EqualSamplesNotSignificant) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  auto r = welch_t_test(a, a);
  EXPECT_DOUBLE_EQ(r.t_statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTTest, KnownFixture) {
  // Reference values from exact arithmetic (t, df) and numerical
  // integration of the t-density (p):
  // t = -2.835264, df = 27.713626, p = 0.008453.
  std::vector<double> a = {27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1,
                           21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4};
  std::vector<double> b = {27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0,
                           24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9};
  auto r = welch_t_test(a, b);
  EXPECT_NEAR(r.t_statistic, -2.835264, 1e-5);
  EXPECT_NEAR(r.degrees_of_freedom, 27.713626, 1e-4);
  EXPECT_NEAR(r.p_value, 0.008453, 1e-5);
}

TEST(TwoProportionZTest, IdenticalProportionsNotSignificant) {
  auto r = two_proportion_z_test(10, 1000, 10, 1000);
  EXPECT_DOUBLE_EQ(r.z_statistic, 0.0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(TwoProportionZTest, LargeGapIsSignificant) {
  auto r = two_proportion_z_test(100, 1000, 20, 1000);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.z_statistic, 0.0);
}

TEST(TwoProportionZTest, RejectsZeroTrials) {
  EXPECT_THROW(two_proportion_z_test(0, 0, 1, 10), std::invalid_argument);
}

TEST(Ccdf, FirstPointIsOne) {
  auto curve = ccdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_FALSE(curve.empty());
  EXPECT_DOUBLE_EQ(curve.front().fraction, 1.0);
  EXPECT_DOUBLE_EQ(curve.front().x, 1.0);
}

TEST(Ccdf, IsMonotoneDecreasing) {
  auto curve = ccdf({5.0, 1.0, 3.0, 3.0, 9.0, 2.0, 7.0});
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].x, curve[i - 1].x);
    EXPECT_LT(curve[i].fraction, curve[i - 1].fraction);
  }
}

TEST(Ccdf, HandlesDuplicates) {
  auto curve = ccdf({2.0, 2.0, 2.0, 5.0});
  ASSERT_EQ(curve.size(), 2U);
  EXPECT_DOUBLE_EQ(curve[0].fraction, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].fraction, 0.25);
}

TEST(Ccdf, EmptyInputGivesEmptyCurve) {
  EXPECT_TRUE(ccdf({}).empty());
}

TEST(CcdfValueAtFraction, ReadsSurvivalThreshold) {
  // Values 1..100: 75% of samples are >= 26.
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  auto curve = ccdf(xs);
  EXPECT_DOUBLE_EQ(ccdf_value_at_fraction(curve, 0.75), 26.0);
  EXPECT_DOUBLE_EQ(ccdf_value_at_fraction(curve, 0.25), 76.0);
  EXPECT_DOUBLE_EQ(ccdf_value_at_fraction(curve, 1.0), 1.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideGivesZero) {
  std::vector<double> a = {1.0, 1.0, 1.0};
  std::vector<double> b = {2.0, 4.0, 6.0};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(NormalCdf, ReferencePoints) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
}

}  // namespace
}  // namespace netobs::util
