#include "embedding/matrix.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace netobs::embedding {

namespace {
constexpr std::uint32_t kMagic = 0x4E4F4231;  // "NOB1"
}

EmbeddingMatrix::EmbeddingMatrix(std::size_t rows, std::size_t dim)
    : rows_(rows),
      dim_(dim),
      stride_(util::simd::padded_dim(dim)),
      data_(rows * util::simd::padded_dim(dim), 0.0F) {
  if (dim == 0) throw std::invalid_argument("EmbeddingMatrix: dim must be > 0");
}

void EmbeddingMatrix::init_uniform(util::Pcg32& rng) {
  // Row-major over the logical elements only, so the drawn sequence is
  // independent of the padded layout (and matches the unpadded original).
  float half = 0.5F / static_cast<float>(dim_);
  for (std::size_t i = 0; i < rows_; ++i) {
    float* r = data_.data() + i * stride_;
    for (std::size_t j = 0; j < dim_; ++j) {
      r[j] = static_cast<float>(rng.uniform(-half, half));
    }
  }
}

void EmbeddingMatrix::fill(float value) {
  for (std::size_t i = 0; i < rows_; ++i) {
    float* r = data_.data() + i * stride_;
    std::fill(r, r + dim_, value);
  }
}

std::span<float> EmbeddingMatrix::row(std::size_t i) {
  if (i >= rows_) throw std::out_of_range("EmbeddingMatrix::row");
  return std::span<float>(data_.data() + i * stride_, dim_);
}

std::span<const float> EmbeddingMatrix::row(std::size_t i) const {
  if (i >= rows_) throw std::out_of_range("EmbeddingMatrix::row");
  return std::span<const float>(data_.data() + i * stride_, dim_);
}

std::vector<float> EmbeddingMatrix::packed_copy() const {
  std::vector<float> out(rows_ * dim_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* r = data_.data() + i * stride_;
    std::copy(r, r + dim_, out.begin() + static_cast<std::ptrdiff_t>(i * dim_));
  }
  return out;
}

void EmbeddingMatrix::save(std::ostream& os) const {
  auto put_u64 = [&os](std::uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  std::uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  put_u64(rows_);
  put_u64(dim_);
  for (std::size_t i = 0; i < rows_; ++i) {
    os.write(reinterpret_cast<const char*>(data_.data() + i * stride_),
             static_cast<std::streamsize>(dim_ * sizeof(float)));
  }
  if (!os) throw std::runtime_error("EmbeddingMatrix::save: write failed");
}

EmbeddingMatrix EmbeddingMatrix::load(std::istream& is) {
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) {
    throw std::runtime_error("EmbeddingMatrix::load: bad magic");
  }
  std::uint64_t rows = 0;
  std::uint64_t dim = 0;
  is.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  is.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!is || dim == 0) {
    throw std::runtime_error("EmbeddingMatrix::load: bad header");
  }
  EmbeddingMatrix m(static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < m.rows_; ++i) {
    is.read(reinterpret_cast<char*>(m.data_.data() + i * m.stride_),
            static_cast<std::streamsize>(m.dim_ * sizeof(float)));
  }
  if (!is) throw std::runtime_error("EmbeddingMatrix::load: truncated data");
  return m;
}

bool EmbeddingMatrix::operator==(const EmbeddingMatrix& other) const {
  if (rows_ != other.rows_ || dim_ != other.dim_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    const float* a = data_.data() + i * stride_;
    const float* b = other.data_.data() + i * other.stride_;
    if (!std::equal(a, a + dim_, b)) return false;
  }
  return true;
}

}  // namespace netobs::embedding
