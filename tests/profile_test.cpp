#include <gtest/gtest.h>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "ontology/host_labeler.hpp"
#include "profile/profiler.hpp"
#include "profile/service.hpp"
#include "profile/session.hpp"

namespace netobs::profile {
namespace {

using util::kMinute;

net::HostnameEvent ev(std::uint32_t user, util::Timestamp t,
                      const std::string& host) {
  return {user, t, host};
}

TEST(SessionStore, TimeWindowSelectsRecentHosts) {
  SessionStore store;
  store.ingest(ev(1, 0 * kMinute, "old.com"));
  store.ingest(ev(1, 15 * kMinute, "mid.com"));
  store.ingest(ev(1, 29 * kMinute, "new.com"));
  auto s = store.session_of(1, 30 * kMinute, Window::minutes(20));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"mid.com", "new.com"}));
}

TEST(SessionStore, FirstVisitOnlyDedup) {
  SessionStore store;
  // Streaming service reconnecting repeatedly must count once, first visit.
  store.ingest(ev(1, 1 * kMinute, "video.com"));
  store.ingest(ev(1, 2 * kMinute, "other.com"));
  store.ingest(ev(1, 3 * kMinute, "video.com"));
  store.ingest(ev(1, 4 * kMinute, "video.com"));
  auto s = store.session_of(1, 5 * kMinute, Window::minutes(20));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"video.com", "other.com"}));
}

TEST(SessionStore, CountWindow) {
  SessionStore store;
  for (int i = 0; i < 10; ++i) {
    store.ingest(ev(1, i * kMinute, "h" + std::to_string(i) + ".com"));
  }
  auto s = store.session_of(1, 10 * kMinute, Window::last_hosts(3));
  EXPECT_EQ(s.hostnames,
            (std::vector<std::string>{"h7.com", "h8.com", "h9.com"}));
}

TEST(SessionStore, UsersAreIsolated) {
  SessionStore store;
  store.ingest(ev(1, kMinute, "mine.com"));
  store.ingest(ev(2, kMinute, "theirs.com"));
  auto s = store.session_of(1, 2 * kMinute, Window::minutes(20));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"mine.com"}));
  EXPECT_TRUE(store.session_of(3, kMinute, Window::minutes(20)).empty());
}

TEST(SessionStore, IgnoresFutureEventsInQuery) {
  SessionStore store;
  store.ingest(ev(1, 5 * kMinute, "now.com"));
  store.ingest(ev(1, 50 * kMinute, "future.com"));
  auto s = store.session_of(1, 10 * kMinute, Window::minutes(20));
  EXPECT_EQ(s.hostnames, (std::vector<std::string>{"now.com"}));
}

TEST(SessionStore, PrunesBeyondHorizon) {
  SessionStore store(util::kHour);
  store.ingest(ev(1, 0, "ancient.com"));
  store.ingest(ev(1, 2 * util::kHour, "fresh.com"));
  EXPECT_EQ(store.event_count(), 1U);
}

TEST(SessionStore, DaySequencesSplitByDay) {
  SessionStore store(10 * util::kDay);
  store.ingest(ev(1, util::kDay + kMinute, "day1a.com"));
  store.ingest(ev(1, util::kDay + 2 * kMinute, "day1b.com"));
  store.ingest(ev(2, util::kDay + 3 * kMinute, "day1c.com"));
  store.ingest(ev(1, 2 * util::kDay + kMinute, "day2.com"));
  auto day1 = store.day_sequences(1);
  EXPECT_EQ(day1.size(), 2U);  // two users
  auto day2 = store.day_sequences(2);
  ASSERT_EQ(day2.size(), 1U);
  EXPECT_EQ(day2[0], (std::vector<std::string>{"day2.com"}));
  EXPECT_TRUE(store.day_sequences(5).empty());
}

TEST(SessionStore, RejectsNonPositiveHorizon) {
  EXPECT_THROW(SessionStore(0), std::invalid_argument);
}

// --- Profiler fixture: a tiny world with two topics and a hand-trained
// embedding is enough to check Eq. 3/4 semantics exactly.
class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : labeler_(2),
        corpus_{{"travel-a.com", "travel-b.com", "travel-api.net",
                 "travel-a.com", "travel-b.com", "travel-api.net"},
                {"sport-a.com", "sport-b.com", "sport-api.net",
                 "sport-a.com", "sport-b.com", "sport-api.net"}} {
    // Category 0 = travel, 1 = sport; APIs are unlabeled.
    labeler_.set_label("travel-a.com", {1.0F, 0.0F});
    labeler_.set_label("travel-b.com", {0.8F, 0.0F});
    labeler_.set_label("sport-a.com", {0.0F, 1.0F});
    labeler_.set_label("sport-b.com", {0.0F, 0.9F});

    embedding::SgnsParams params;
    params.dim = 12;
    params.epochs = 20;
    params.seed = 3;
    embedding::VocabularyParams vp;
    vp.min_count = 1;
    vp.subsample_threshold = 0.0;
    std::vector<embedding::Sequence> corpus;
    for (int i = 0; i < 60; ++i) {
      corpus.insert(corpus.end(), corpus_.begin(), corpus_.end());
    }
    embedding::SgnsTrainer trainer(params, vp);
    model_ = std::make_unique<embedding::HostEmbedding>(trainer.fit(corpus));
    index_ = std::make_unique<embedding::CosineKnnIndex>(*model_);
  }

  ontology::HostLabeler labeler_;
  std::vector<embedding::Sequence> corpus_;
  std::unique_ptr<embedding::HostEmbedding> model_;
  std::unique_ptr<embedding::CosineKnnIndex> index_;
};

TEST_F(ProfilerTest, LabeledSessionGetsItsCategories) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  auto p = profiler.profile({"travel-a.com", "travel-b.com"});
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.labeled_in_session, 2U);
  EXPECT_GT(p.categories[0], p.categories[1]);
  EXPECT_GT(p.categories[0], 0.5F);
}

TEST_F(ProfilerTest, UnlabeledApiHostInheritsThroughEmbedding) {
  // The session contains ONLY the unlabeled API host; the profile must
  // still lean travel because its embedding neighbours are travel sites.
  SessionProfiler profiler(*model_, *index_, labeler_);
  auto p = profiler.profile({"travel-api.net"});
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.labeled_in_session, 0U);
  EXPECT_GT(p.labeled_neighbors, 0U);
  EXPECT_GT(p.categories[0], p.categories[1]);
}

TEST_F(ProfilerTest, ProfileEntriesStayInUnitInterval) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  for (const auto& session :
       {std::vector<std::string>{"travel-a.com", "sport-a.com"},
        std::vector<std::string>{"sport-api.net", "travel-api.net"},
        std::vector<std::string>{"sport-b.com"}}) {
    auto p = profiler.profile(session);
    EXPECT_TRUE(ontology::is_valid_category_vector(p.categories));
  }
}

TEST_F(ProfilerTest, MixedSessionBlendsTopics) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  auto p = profiler.profile({"travel-a.com", "sport-a.com"});
  EXPECT_GT(p.categories[0], 0.2F);
  EXPECT_GT(p.categories[1], 0.2F);
}

TEST_F(ProfilerTest, EmptyAndUnknownSessionsYieldEmptyProfile) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  EXPECT_TRUE(profiler.profile(std::vector<std::string>{}).empty());
  EXPECT_TRUE(
      profiler.profile(std::vector<std::string>{"never-seen.com"}).empty());
}

TEST_F(ProfilerTest, TopCategoriesSortedByImportance) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  auto p = profiler.profile({"sport-a.com", "sport-b.com"});
  auto top = p.top_categories(2);
  ASSERT_EQ(top.size(), 2U);
  EXPECT_EQ(top[0], 1U);  // sport category first
  EXPECT_GE(p.categories[top[0]], p.categories[top[1]]);
}

TEST_F(ProfilerTest, NormalizedMeanAggregationWorksToo) {
  ProfilerParams params;
  params.aggregation = Aggregation::kNormalizedMean;
  SessionProfiler profiler(*model_, *index_, labeler_, params);
  auto p = profiler.profile({"travel-a.com", "travel-api.net"});
  ASSERT_FALSE(p.empty());
  EXPECT_GT(p.categories[0], p.categories[1]);
}

TEST_F(ProfilerTest, BatchProfilesAreBitIdenticalToSerial) {
  SessionProfiler profiler(*model_, *index_, labeler_);
  std::vector<std::vector<std::string>> sessions = {
      {"travel-a.com", "travel-b.com"},
      {"travel-api.net"},
      {},                  // empty session
      {"never-seen.com"},  // out of vocabulary
      {"travel-a.com", "sport-a.com"},
      {"sport-b.com", "sport-api.net"},
  };
  auto batched = profiler.profile_batch(sessions);
  ASSERT_EQ(batched.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    auto serial = profiler.profile(sessions[i]);
    EXPECT_EQ(batched[i].empty(), serial.empty()) << "session " << i;
    EXPECT_EQ(batched[i].hosts_in_vocab, serial.hosts_in_vocab);
    EXPECT_EQ(batched[i].labeled_in_session, serial.labeled_in_session);
    EXPECT_EQ(batched[i].labeled_neighbors, serial.labeled_neighbors);
    EXPECT_EQ(batched[i].weight_mass, serial.weight_mass);
    EXPECT_EQ(batched[i].session_vector, serial.session_vector);
    ASSERT_EQ(batched[i].categories.size(), serial.categories.size());
    for (std::size_t c = 0; c < serial.categories.size(); ++c) {
      // The batched kNN path must reproduce the serial floats exactly.
      EXPECT_EQ(batched[i].categories[c], serial.categories[c])
          << "session " << i << " category " << c;
    }
  }
}

TEST_F(ProfilerTest, InternedProfilesAreBitIdenticalToStringProfiles) {
  // The id-resolving entry points (the SessionStore fast path) feed the
  // exact same std::string objects through the exact same float ops — the
  // profiles must match the string overloads bit for bit, serial and
  // batched alike.
  SessionProfiler profiler(*model_, *index_, labeler_);
  util::InternPool pool;
  std::vector<std::vector<std::string>> sessions = {
      {"travel-a.com", "travel-b.com"},
      {"travel-api.net"},
      {},                  // empty session
      {"never-seen.com"},  // out of vocabulary
      {"travel-a.com", "sport-a.com", "travel-a.com"},
      {"sport-b.com", "sport-api.net"},
  };
  std::vector<std::vector<util::InternPool::Id>> id_sessions;
  for (const auto& hosts : sessions) {
    auto& ids = id_sessions.emplace_back();
    for (const auto& host : hosts) ids.push_back(pool.intern(host));
  }

  auto compare = [](const SessionProfile& got, const SessionProfile& want,
                    std::size_t i) {
    EXPECT_EQ(got.empty(), want.empty()) << "session " << i;
    EXPECT_EQ(got.hosts_in_vocab, want.hosts_in_vocab);
    EXPECT_EQ(got.labeled_in_session, want.labeled_in_session);
    EXPECT_EQ(got.labeled_neighbors, want.labeled_neighbors);
    EXPECT_EQ(got.weight_mass, want.weight_mass);
    EXPECT_EQ(got.session_vector, want.session_vector);
    ASSERT_EQ(got.categories.size(), want.categories.size());
    for (std::size_t c = 0; c < want.categories.size(); ++c) {
      EXPECT_EQ(got.categories[c], want.categories[c])
          << "session " << i << " category " << c;
    }
  };

  auto batched = profiler.profile_interned_batch(id_sessions, pool);
  ASSERT_EQ(batched.size(), sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    auto want = profiler.profile(sessions[i]);
    compare(profiler.profile_interned(id_sessions[i], pool), want, i);
    compare(batched[i], want, i);
  }
}

TEST_F(ProfilerTest, RejectsZeroKnn) {
  ProfilerParams params;
  params.knn = 0;
  EXPECT_THROW(SessionProfiler(*model_, *index_, labeler_, params),
               std::invalid_argument);
}

TEST(ProfilingService, EndToEndDailyLoop) {
  // Two-topic world; service trains on day 0 and profiles on day 1.
  ontology::HostLabeler labeler(2);
  labeler.set_label("travel-a.com", {1.0F, 0.0F});
  labeler.set_label("sport-a.com", {0.0F, 1.0F});

  filter::Blocklist blocklist;
  blocklist.add_domains("t", {"tracker.net"});

  ServiceParams params;
  params.sgns.dim = 12;
  params.sgns.epochs = 15;
  params.vocab.min_count = 1;
  params.vocab.subsample_threshold = 0.0;
  ProfilingService service(labeler, &blocklist, params);

  // Day 0 training data: two users with opposite habits.
  for (int rep = 0; rep < 50; ++rep) {
    util::Timestamp base = rep * 10 * util::kMinute;
    service.ingest({{1, base + 1, "travel-a.com"},
                    {1, base + 2, "travel-api.net"},
                    {1, base + 3, "ads.tracker.net"},
                    {2, base + 1, "sport-a.com"},
                    {2, base + 2, "sport-api.net"}});
  }
  EXPECT_GT(service.filtered_events(), 0U);
  EXPECT_FALSE(service.has_model());
  EXPECT_THROW(service.profile_user(1, util::kDay), std::logic_error);

  ASSERT_TRUE(service.retrain(0));
  ASSERT_TRUE(service.has_model());

  // Day 1: user 1 visits only the unlabeled travel API.
  util::Timestamp now = util::kDay + 5 * util::kMinute;
  service.ingest({{1, now - util::kMinute, "travel-api.net"}});
  auto profile = service.profile_user(1, now);
  ASSERT_FALSE(profile.empty());
  EXPECT_GT(profile.categories[0], profile.categories[1]);

  // Unknown user yields an empty profile, not an error.
  EXPECT_TRUE(service.profile_user(99, now).empty());
}

TEST(ProfilingService, BatchedUserProfilesMatchSerial) {
  ontology::HostLabeler labeler(2);
  labeler.set_label("travel-a.com", {1.0F, 0.0F});
  labeler.set_label("sport-a.com", {0.0F, 1.0F});
  ServiceParams params;
  params.sgns.dim = 12;
  params.sgns.epochs = 10;
  params.vocab.min_count = 1;
  params.vocab.subsample_threshold = 0.0;
  ProfilingService service(labeler, nullptr, params);
  for (int rep = 0; rep < 50; ++rep) {
    util::Timestamp base = rep * 10 * util::kMinute;
    service.ingest({{1, base + 1, "travel-a.com"},
                    {1, base + 2, "travel-api.net"},
                    {2, base + 1, "sport-a.com"},
                    {2, base + 2, "sport-api.net"}});
  }
  ASSERT_TRUE(service.retrain(0));
  util::Timestamp now = util::kDay + 5 * util::kMinute;
  service.ingest({{1, now - util::kMinute, "travel-api.net"},
                  {2, now - util::kMinute, "sport-api.net"}});

  auto batched = service.profile_users({1, 2, 99}, now);
  ASSERT_EQ(batched.size(), 3U);
  for (std::size_t i = 0; i < 2; ++i) {
    auto serial = service.profile_user(static_cast<std::uint32_t>(i + 1), now);
    ASSERT_EQ(batched[i].categories.size(), serial.categories.size());
    for (std::size_t c = 0; c < serial.categories.size(); ++c) {
      EXPECT_EQ(batched[i].categories[c], serial.categories[c]);
    }
  }
  EXPECT_TRUE(batched[2].empty());  // unknown user, no error
  EXPECT_THROW(ProfilingService(labeler, nullptr).profile_batch({{}}),
               std::logic_error);
}

TEST(ProfilingService, IvfBackendWithFullProbeMatchesExactProfiles) {
  // Same data, two services: exact backend vs IVF configured to probe every
  // list with a saturated re-rank pool — the profiles must be identical
  // float for float, and knn_status() must describe the live backend.
  ontology::HostLabeler labeler(2);
  labeler.set_label("travel-a.com", {1.0F, 0.0F});
  labeler.set_label("sport-a.com", {0.0F, 1.0F});
  ServiceParams params;
  params.sgns.dim = 12;
  params.sgns.epochs = 10;
  params.vocab.min_count = 1;
  params.vocab.subsample_threshold = 0.0;
  ServiceParams ivf_params = params;
  ivf_params.knn_backend = embedding::KnnBackend::kIvf;
  ivf_params.ivf.nprobe = 1U << 20;  // clamped to nlists: probe everything
  ivf_params.ivf.rerank = 1U << 20;  // re-rank the whole candidate pool

  ProfilingService exact(labeler, nullptr, params);
  ProfilingService approx(labeler, nullptr, ivf_params);
  EXPECT_EQ(exact.knn_backend(), embedding::KnnBackend::kExact);
  EXPECT_EQ(approx.knn_backend(), embedding::KnnBackend::kIvf);

  for (int rep = 0; rep < 50; ++rep) {
    util::Timestamp base = rep * 10 * util::kMinute;
    for (auto* svc : {&exact, &approx}) {
      svc->ingest({{1, base + 1, "travel-a.com"},
                   {1, base + 2, "travel-api.net"},
                   {2, base + 1, "sport-a.com"},
                   {2, base + 2, "sport-api.net"}});
    }
  }
  ASSERT_TRUE(exact.retrain(0));
  ASSERT_TRUE(approx.retrain(0));

  util::Timestamp now = util::kDay + 5 * util::kMinute;
  for (auto* svc : {&exact, &approx}) {
    svc->ingest({{1, now - util::kMinute, "travel-api.net"},
                 {2, now - util::kMinute, "sport-api.net"}});
  }
  for (std::uint32_t user : {1U, 2U}) {
    auto pe = exact.profile_user(user, now);
    auto pa = approx.profile_user(user, now);
    ASSERT_EQ(pa.categories.size(), pe.categories.size());
    for (std::size_t c = 0; c < pe.categories.size(); ++c) {
      EXPECT_EQ(pa.categories[c], pe.categories[c])
          << "user " << user << " category " << c;
    }
  }

  // knn_status() rows: backend name always; IVF geometry + the int8 simd
  // tier once the ivf backend is live.
  auto find_row = [](const auto& rows, const std::string& key) {
    for (const auto& [k, v] : rows) {
      if (k == key) return v;
    }
    return std::string();
  };
  auto exact_rows = exact.knn_status();
  EXPECT_EQ(find_row(exact_rows, "knn_backend"), "exact");
  auto ivf_rows = approx.knn_status();
  EXPECT_EQ(find_row(ivf_rows, "knn_backend"), "ivf");
  EXPECT_FALSE(find_row(ivf_rows, "knn_nlists").empty());
  EXPECT_FALSE(find_row(ivf_rows, "knn_nprobe").empty());
  EXPECT_FALSE(find_row(ivf_rows, "simd_int8_tier").empty());
}

TEST(ProfilingService, IvfBatchedProfilesMatchSinglesBitForBit) {
  // The batched reporting path (profile_users) rides the IVF list-centric
  // query_batch when the backend is kIvf. At the *default* partial nprobe
  // the batched scan visits lists in a completely different order than the
  // per-user scans — the profiles must still match float for float, with
  // and without PQ compressing the lists.
  ontology::HostLabeler labeler(2);
  labeler.set_label("travel-a.com", {1.0F, 0.0F});
  labeler.set_label("sport-a.com", {0.0F, 1.0F});
  for (std::size_t pass = 0; pass < 2; ++pass) {
    ServiceParams params;
    params.sgns.dim = 12;
    params.sgns.epochs = 10;
    params.vocab.min_count = 1;
    params.vocab.subsample_threshold = 0.0;
    params.knn_backend = embedding::KnnBackend::kIvf;
    if (pass == 1) params.ivf.pq.m = 4;  // second pass: PQ-compressed lists
    ProfilingService service(labeler, nullptr, params);

    for (int rep = 0; rep < 50; ++rep) {
      util::Timestamp base = rep * 10 * util::kMinute;
      service.ingest({{1, base + 1, "travel-a.com"},
                      {1, base + 2, "travel-api.net"},
                      {2, base + 1, "sport-a.com"},
                      {2, base + 2, "sport-api.net"},
                      {3, base + 1, "travel-a.com"},
                      {3, base + 2, "sport-api.net"}});
    }
    ASSERT_TRUE(service.retrain(0));
    util::Timestamp now = util::kDay + 5 * util::kMinute;
    service.ingest({{1, now - util::kMinute, "travel-api.net"},
                    {2, now - util::kMinute, "sport-api.net"},
                    {3, now - util::kMinute, "travel-a.com"}});

    auto batched = service.profile_users({1, 2, 3, 99}, now);
    ASSERT_EQ(batched.size(), 4U);
    for (std::uint32_t user : {1U, 2U, 3U}) {
      auto serial = service.profile_user(user, now);
      const auto& got = batched[user - 1];
      EXPECT_EQ(got.labeled_neighbors, serial.labeled_neighbors);
      EXPECT_EQ(got.weight_mass, serial.weight_mass);
      ASSERT_EQ(got.categories.size(), serial.categories.size());
      for (std::size_t c = 0; c < serial.categories.size(); ++c) {
        EXPECT_EQ(got.categories[c], serial.categories[c])
            << "pass " << pass << " user " << user << " category " << c;
      }
    }
    EXPECT_TRUE(batched[3].empty());

    auto find_row = [](const auto& rows, const std::string& key) {
      for (const auto& [k, v] : rows) {
        if (k == key) return v;
      }
      return std::string();
    };
    auto rows = service.knn_status();
    EXPECT_EQ(find_row(rows, "knn_pq_enabled"), pass == 1 ? "1" : "0");
    if (pass == 1) {
      EXPECT_EQ(find_row(rows, "knn_pq_m"), "4");
      EXPECT_FALSE(find_row(rows, "knn_pq_bytes").empty());
    }
  }
}

TEST(ProfilingService, RetrainFailsGracefullyOnEmptyDay) {
  ontology::HostLabeler labeler(2);
  ProfilingService service(labeler, nullptr);
  EXPECT_FALSE(service.retrain(3));
  EXPECT_FALSE(service.has_model());
}

// Window sweep: dedup invariant — a session never contains duplicates and
// never exceeds the window budget.
class WindowSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSweep, SessionsRespectWindowAndUniqueness) {
  SessionStore store;
  util::Pcg32 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    store.ingest(ev(7, i * 30,
                    "host" + std::to_string(rng.next_below(40)) + ".com"));
  }
  Window w = Window::minutes(GetParam());
  auto s = store.session_of(7, 500 * 30, w);
  std::set<std::string> unique(s.hostnames.begin(), s.hostnames.end());
  EXPECT_EQ(unique.size(), s.hostnames.size());
  EXPECT_LE(static_cast<int>(s.hostnames.size()),
            GetParam() * 2 + 1);  // at most one event per 30s
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep,
                         ::testing::Values(1, 5, 10, 20, 60));

}  // namespace
}  // namespace netobs::profile
