#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "embedding/vocabulary.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

std::vector<Sequence> repeated_corpus(
    const std::vector<Sequence>& base, int repeats) {
  std::vector<Sequence> out;
  for (int r = 0; r < repeats; ++r) {
    out.insert(out.end(), base.begin(), base.end());
  }
  return out;
}

/// Corpus with two disjoint co-occurrence clusters plus rare noise.
std::vector<Sequence> clustered_corpus(int repeats = 80) {
  return repeated_corpus(
      {{"travel1.com", "travel2.com", "travel3.com", "travel4.com"},
       {"travel2.com", "travel1.com", "travel4.com", "travel3.com"},
       {"sport1.com", "sport2.com", "sport3.com", "sport4.com"},
       {"sport3.com", "sport4.com", "sport1.com", "sport2.com"}},
      repeats);
}

TEST(Vocabulary, OrdersTokensByFrequency) {
  std::vector<Sequence> corpus = {
      {"a.com", "a.com", "a.com", "b.com", "b.com", "c.com"}};
  VocabularyParams params;
  params.min_count = 1;
  Vocabulary vocab(corpus, params);
  EXPECT_EQ(vocab.size(), 3U);
  EXPECT_EQ(vocab.token(0), "a.com");
  EXPECT_EQ(vocab.count(0), 3U);
  EXPECT_EQ(vocab.token(1), "b.com");
  EXPECT_EQ(vocab.total_count(), 6U);
}

TEST(Vocabulary, MinCountPrunes) {
  std::vector<Sequence> corpus = {{"keep.com", "keep.com", "drop.com"}};
  VocabularyParams params;
  params.min_count = 2;
  Vocabulary vocab(corpus, params);
  EXPECT_EQ(vocab.size(), 1U);
  EXPECT_TRUE(vocab.id_of("keep.com").has_value());
  EXPECT_FALSE(vocab.id_of("drop.com").has_value());
}

TEST(Vocabulary, ThrowsWhenNothingSurvives) {
  std::vector<Sequence> corpus = {{"once.com"}};
  VocabularyParams params;
  params.min_count = 5;
  EXPECT_THROW(Vocabulary(corpus, params), std::invalid_argument);
}

TEST(Vocabulary, EncodeDropsUnknownTokens) {
  std::vector<Sequence> corpus = {{"a.com", "a.com", "b.com", "b.com"}};
  VocabularyParams params;
  params.min_count = 2;
  Vocabulary vocab(corpus, params);
  auto ids = vocab.encode({"a.com", "unknown.com", "b.com"});
  EXPECT_EQ(ids.size(), 2U);
}

TEST(Vocabulary, NegativeSamplingFollowsPowerLaw) {
  // Token counts 80 vs 10: ratio of sampling probs should be (80/10)^0.75
  // = 4.756, not 8.
  std::vector<Sequence> corpus;
  for (int i = 0; i < 80; ++i) corpus.push_back({"big.com", "pad1.com"});
  for (int i = 0; i < 10; ++i) corpus.push_back({"small.com", "pad1.com"});
  VocabularyParams params;
  params.min_count = 1;
  Vocabulary vocab(corpus, params);
  util::Pcg32 rng(5);
  std::size_t big = *vocab.id_of("big.com");
  std::size_t small = *vocab.id_of("small.com");
  std::vector<int> counts(vocab.size(), 0);
  constexpr int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) ++counts[vocab.sample_negative(rng)];
  double ratio = static_cast<double>(counts[big]) / counts[small];
  EXPECT_NEAR(ratio, std::pow(8.0, 0.75), 0.5);
}

TEST(Vocabulary, SubsamplingTargetsFrequentTokens) {
  std::vector<Sequence> corpus;
  Sequence heavy;
  for (int i = 0; i < 900; ++i) heavy.push_back("google.com");
  for (int i = 0; i < 100; ++i) heavy.push_back("rare" + std::to_string(i % 20) + ".com");
  corpus.push_back(heavy);
  VocabularyParams params;
  params.min_count = 1;
  params.subsample_threshold = 1e-2;
  Vocabulary vocab(corpus, params);
  EXPECT_LT(vocab.keep_probability(*vocab.id_of("google.com")), 0.5);
  EXPECT_DOUBLE_EQ(vocab.keep_probability(*vocab.id_of("rare1.com")), 1.0);
}

TEST(EmbeddingMatrix, InitUniformRange) {
  EmbeddingMatrix m(10, 50);
  util::Pcg32 rng(3);
  m.init_uniform(rng);
  float bound = 0.5F / 50.0F;
  for (float v : m.packed_copy()) {
    EXPECT_GE(v, -bound);
    EXPECT_LT(v, bound);
  }
  // Storage is padded to the SIMD lane quantum; pad lanes stay zero.
  EXPECT_EQ(m.stride(), util::simd::padded_dim(50));
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const float* row = m.padded_data() + i * m.stride();
    for (std::size_t j = m.dim(); j < m.stride(); ++j) {
      EXPECT_EQ(row[j], 0.0F);
    }
  }
}

TEST(EmbeddingMatrix, SaveLoadRoundTrip) {
  EmbeddingMatrix m(4, 8);
  util::Pcg32 rng(9);
  m.init_uniform(rng);
  std::stringstream ss;
  m.save(ss);
  auto loaded = EmbeddingMatrix::load(ss);
  EXPECT_TRUE(m == loaded);
}

TEST(EmbeddingMatrix, LoadRejectsGarbage) {
  std::stringstream ss("not a matrix");
  EXPECT_THROW(EmbeddingMatrix::load(ss), std::runtime_error);
}

TEST(EmbeddingMatrix, RowBoundsChecked) {
  EmbeddingMatrix m(2, 3);
  EXPECT_THROW(m.row(2), std::out_of_range);
  EXPECT_THROW(EmbeddingMatrix(2, 0), std::invalid_argument);
}

SgnsParams small_params() {
  SgnsParams p;
  p.dim = 16;
  p.epochs = 8;
  p.seed = 7;
  return p;
}

VocabularyParams loose_vocab() {
  VocabularyParams v;
  v.min_count = 1;
  v.subsample_threshold = 0.0;
  return v;
}

TEST(SgnsTrainer, LossDecreases) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  trainer.fit(clustered_corpus());
  const auto& losses = trainer.epoch_losses();
  ASSERT_EQ(losses.size(), 8U);
  EXPECT_GT(losses.front(), 0.0);
  EXPECT_LT(losses.back(), losses.front() * 0.9);
}

TEST(SgnsTrainer, LearnsCoOccurrenceStructure) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  auto model = trainer.fit(clustered_corpus());

  auto vec = [&](const std::string& h) { return *model.vector_of(h); };
  float within = util::cosine(vec("travel1.com"), vec("travel2.com")) +
                 util::cosine(vec("sport1.com"), vec("sport2.com"));
  float across = util::cosine(vec("travel1.com"), vec("sport1.com")) +
                 util::cosine(vec("travel2.com"), vec("sport2.com"));
  EXPECT_GT(within / 2.0F, across / 2.0F + 0.3F);
}

TEST(SgnsTrainer, DeterministicForSameSeed) {
  SgnsTrainer t1(small_params(), loose_vocab());
  SgnsTrainer t2(small_params(), loose_vocab());
  auto m1 = t1.fit(clustered_corpus(10));
  auto m2 = t2.fit(clustered_corpus(10));
  EXPECT_TRUE(m1.central() == m2.central());
  EXPECT_TRUE(m1.context() == m2.context());
}

TEST(SgnsTrainer, MultiThreadedTrainingLearns) {
  auto params = small_params();
  params.threads = 4;
  SgnsTrainer trainer(params, loose_vocab());
  auto model = trainer.fit(clustered_corpus());
  auto vec = [&](const std::string& h) { return *model.vector_of(h); };
  EXPECT_GT(util::cosine(vec("travel1.com"), vec("travel2.com")),
            util::cosine(vec("travel1.com"), vec("sport3.com")));
}

TEST(SgnsTrainer, TierParityAtTolerance) {
  // The fused SIMD kernels must train to the same model as the scalar
  // reference tier (bit-identical on AVX2+FMA hosts, tolerance elsewhere).
  auto corpus = clustered_corpus();
  util::simd::Tier saved = util::simd::active_tier();
  util::simd::force_tier(util::simd::Tier::kScalar);
  auto scalar_model = SgnsTrainer(small_params(), loose_vocab()).fit(corpus);
  util::simd::force_tier(util::simd::best_supported_tier());
  auto simd_model = SgnsTrainer(small_params(), loose_vocab()).fit(corpus);
  util::simd::force_tier(saved);

  ASSERT_EQ(scalar_model.size(), simd_model.size());
  for (std::size_t i = 0; i < scalar_model.size(); ++i) {
    auto a = scalar_model.vector_of(static_cast<TokenId>(i));
    auto b = simd_model.vector_of(static_cast<TokenId>(i));
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a[j], b[j], 1e-3F) << "row " << i << " dim " << j;
    }
  }
}

TEST(SgnsTrainer, RejectsBadParams) {
  SgnsParams p;
  p.dim = 0;
  EXPECT_THROW(SgnsTrainer{p}, std::invalid_argument);
  p = SgnsParams();
  p.context_radius = 0;
  EXPECT_THROW(SgnsTrainer{p}, std::invalid_argument);
  p = SgnsParams();
  p.negatives = 0;
  EXPECT_THROW(SgnsTrainer{p}, std::invalid_argument);
  p = SgnsParams();
  p.epochs = 0;
  EXPECT_THROW(SgnsTrainer{p}, std::invalid_argument);
}

TEST(SgnsTrainer, RejectsEmptyEncodedCorpus) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  EXPECT_THROW(trainer.fit({}), std::invalid_argument);
}

TEST(HostEmbedding, LookupAndOov) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  auto model = trainer.fit(clustered_corpus(10));
  EXPECT_EQ(model.dim(), 16U);
  EXPECT_TRUE(model.vector_of(std::string("travel1.com")).has_value());
  EXPECT_FALSE(model.vector_of(std::string("never-seen.com")).has_value());
  auto id = model.id_of("sport2.com");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(model.token(*id), "sport2.com");
}

TEST(HostEmbedding, SaveLoadRoundTrip) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  auto model = trainer.fit(clustered_corpus(10));
  std::stringstream ss;
  model.save(ss);
  auto loaded = HostEmbedding::load(ss);
  EXPECT_EQ(loaded.size(), model.size());
  EXPECT_EQ(loaded.dim(), model.dim());
  EXPECT_TRUE(loaded.central() == model.central());
  auto id = loaded.id_of("travel3.com");
  ASSERT_TRUE(id.has_value());
}

TEST(CosineKnnIndex, FindsClusterNeighbors) {
  SgnsTrainer trainer(small_params(), loose_vocab());
  auto model = trainer.fit(clustered_corpus());
  CosineKnnIndex index(model);
  auto id = *model.id_of("travel1.com");
  auto neighbors = index.nearest_to(id, 3);
  ASSERT_EQ(neighbors.size(), 3U);
  // All three nearest neighbours of travel1 should be travel hosts.
  for (const auto& nb : neighbors) {
    EXPECT_NE(nb.id, id);
    EXPECT_TRUE(model.token(nb.id).starts_with("travel"))
        << model.token(nb.id);
  }
  // Descending similarity.
  EXPECT_GE(neighbors[0].similarity, neighbors[1].similarity);
  EXPECT_GE(neighbors[1].similarity, neighbors[2].similarity);
}

TEST(CosineKnnIndex, QueryByVector) {
  EmbeddingMatrix m(3, 2);
  m.row(0)[0] = 1.0F;  // east
  m.row(1)[1] = 1.0F;  // north
  m.row(2)[0] = -1.0F; // west
  CosineKnnIndex index(m);
  std::vector<float> q = {0.9F, 0.1F};
  auto result = index.query(q, 2);
  ASSERT_EQ(result.size(), 2U);
  EXPECT_EQ(result[0].id, 0U);
  EXPECT_EQ(result[1].id, 1U);
}

TEST(CosineKnnIndex, ZeroQueryReturnsEmpty) {
  EmbeddingMatrix m(2, 2);
  m.row(0)[0] = 1.0F;
  CosineKnnIndex index(m);
  std::vector<float> zero = {0.0F, 0.0F};
  EXPECT_TRUE(index.query(zero, 5).empty());
  std::vector<float> unit = {1.0F, 0.0F};
  EXPECT_TRUE(index.query(unit, 0).empty());
}

TEST(CosineKnnIndex, ClampsRequestedNeighbors) {
  EmbeddingMatrix m(3, 2);
  m.row(0)[0] = 1.0F;
  m.row(1)[0] = 0.5F;
  m.row(2)[1] = 1.0F;
  CosineKnnIndex index(m);
  std::vector<float> east = {1.0F, 0.0F};
  EXPECT_EQ(index.query(east, 100).size(), 3U);
  EXPECT_EQ(index.nearest_to(0, 100).size(), 2U);
}

// Sweep: dynamic vs static windows, subsampling on/off — structure must be
// learned in every configuration.
struct SgnsConfig {
  bool dynamic_window;
  double subsample;
};

class SgnsConfigSweep : public ::testing::TestWithParam<SgnsConfig> {};

TEST_P(SgnsConfigSweep, ClusterStructureLearned) {
  auto params = small_params();
  params.dynamic_window = GetParam().dynamic_window;
  VocabularyParams vp = loose_vocab();
  vp.subsample_threshold = GetParam().subsample;
  SgnsTrainer trainer(params, vp);
  auto model = trainer.fit(clustered_corpus());
  auto vec = [&](const std::string& h) { return *model.vector_of(h); };
  EXPECT_GT(util::cosine(vec("travel1.com"), vec("travel3.com")),
            util::cosine(vec("travel1.com"), vec("sport1.com")));
}

INSTANTIATE_TEST_SUITE_P(Configs, SgnsConfigSweep,
                         ::testing::Values(SgnsConfig{true, 0.0},
                                           SgnsConfig{false, 0.0},
                                           SgnsConfig{true, 1e-3},
                                           SgnsConfig{false, 1e-2}));

}  // namespace
}  // namespace netobs::embedding
