// Synthetic user population — the stand-in for the study's 1329 real
// participants (Section 5.2).
//
// Every user has a sparse ground-truth interest mixture over topics (drawn
// from a low-concentration Dirichlet, so most users care about a handful of
// topics), a browsing-activity level, and the link-layer identities the
// different observer vantages can see (MAC, IMSI-like subscriber id, and a
// NAT household shared with 1-3 other users).
//
// Ground-truth interests are what the click model (ads/click_model.hpp)
// consults; the profiling pipeline never sees them.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace netobs::synth {

struct User {
  std::uint32_t id = 0;
  std::vector<float> interests;  ///< over topics, sums to 1
  double activity = 1.0;         ///< relative browsing intensity
  std::uint64_t mac = 0;
  std::uint64_t subscriber_id = 0;
  std::uint32_t nat_ip = 0;  ///< public IP shared by the NAT household
};

struct PopulationParams {
  std::size_t num_users = 1329;  ///< the study's installation count
  double interest_alpha = 0.12;  ///< Dirichlet concentration (sparse)
  double activity_sigma = 1.0;   ///< lognormal spread of activity
  double mean_household = 2.2;   ///< mean users behind one NAT ip
  std::uint64_t seed = 1329;
};

class UserPopulation {
 public:
  UserPopulation(std::size_t topic_count, PopulationParams params);

  std::size_t size() const { return users_.size(); }
  const User& user(std::uint32_t id) const { return users_.at(id); }
  const std::vector<User>& users() const { return users_; }

  std::size_t topic_count() const { return topic_count_; }

  /// Number of distinct NAT households.
  std::size_t household_count() const { return households_; }

 private:
  std::size_t topic_count_;
  std::vector<User> users_;
  std::size_t households_ = 0;
};

}  // namespace netobs::synth
