#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/trace.hpp"

namespace netobs::obs {

namespace {

/// Shortest lossless double rendering (%.17g round-trips IEEE doubles; try
/// shorter forms first so bucket bounds read "0.001", not 17 digits).
std::string format_double(double v) {
  char buf[64];
  for (int precision : {6, 9, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote and line feed
/// (exposition format §"Comments, help text, and type information").
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Prometheus HELP text escaping: only backslash and line feed — double
/// quotes are NOT escaped in help lines (they are not quoted), and a parser
/// following the spec would render a stray `\"` literally.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// JSON string escaping: the label rules plus \r, \t and \u00XX for the
/// remaining control characters (raw controls make the document invalid).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prom_labels(const Labels& labels, const std::string& extra_key = "",
                        const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + escape(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key + "=\"" + escape(extra_value) + "\"";
  }
  out += '}';
  return out;
}

void write_header(std::ostream& os, const std::string& name,
                  const std::string& help, const char* type) {
  if (!help.empty()) {
    os << "# HELP " << name << ' ' << escape_help(help) << '\n';
  }
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsRegistry& registry) {
  // Synthetic build-info gauge (value always 1, metadata in the labels) —
  // the standard Prometheus idiom for joining build facts onto any series.
  const BuildInfo& build = build_info();
  write_header(os, "netobs_build_info",
               "Build metadata (constant 1; facts live in the labels)",
               "gauge");
  os << "netobs_build_info{git=\"" << escape(build.git_describe)
     << "\",build_type=\"" << escape(build.build_type) << "\",sanitizer=\""
     << escape(build.sanitizer) << "\",compiler=\"" << escape(build.compiler)
     << "\",simd_tier=\"" << escape(build.simd_tier) << "\"} 1\n";

  RegistrySnapshot snap = registry.snapshot();
  // Samples arrive family-sorted from the snapshot; emit one header per
  // family (consecutive samples share the name).
  std::string last;
  for (const auto& c : snap.counters) {
    if (c.name != last) write_header(os, c.name, c.help, "counter");
    last = c.name;
    os << c.name << prom_labels(c.labels) << ' ' << c.value << '\n';
  }
  last.clear();
  for (const auto& g : snap.gauges) {
    if (g.name != last) write_header(os, g.name, g.help, "gauge");
    last = g.name;
    os << g.name << prom_labels(g.labels) << ' ' << format_double(g.value)
       << '\n';
  }
  last.clear();
  for (const auto& h : snap.histograms) {
    if (h.name != last) write_header(os, h.name, h.help, "histogram");
    last = h.name;
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      std::string le =
          i < h.bounds.size() ? format_double(h.bounds[i]) : "+Inf";
      os << h.name << "_bucket" << prom_labels(h.labels, "le", le) << ' '
         << h.cumulative[i] << '\n';
    }
    os << h.name << "_sum" << prom_labels(h.labels) << ' '
       << format_double(h.sum) << '\n';
    os << h.name << "_count" << prom_labels(h.labels) << ' ' << h.count
       << '\n';
  }
}

void write_prometheus(std::ostream& os) {
  write_prometheus(os, MetricsRegistry::global());
}

namespace {

/// Tiny indentation-aware JSON writer: enough structure for the one
/// document shape we emit, keeps pretty and compact output in one code path.
class JsonWriter {
 public:
  JsonWriter(std::ostream& os, JsonStyle style) : os_(os), pretty_(style == JsonStyle::kPretty) {}

  void open(char bracket) {
    os_ << bracket;
    ++depth_;
    fresh_ = true;
  }
  void close(char bracket) {
    --depth_;
    if (!fresh_) newline();
    os_ << bracket;
    fresh_ = false;
  }
  void item() {
    if (!fresh_) os_ << ',';
    fresh_ = false;
    newline();
  }
  void key(const std::string& k) {
    item();
    os_ << '"' << escape_json(k) << "\":";
    if (pretty_) os_ << ' ';
  }
  std::ostream& os() { return os_; }

 private:
  void newline() {
    if (!pretty_) return;
    os_ << '\n';
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }

  std::ostream& os_;
  bool pretty_;
  int depth_ = 0;
  bool fresh_ = true;
};

void write_labels_json(JsonWriter& w, const Labels& labels) {
  w.key("labels");
  w.open('{');
  for (const auto& [k, v] : labels) {
    w.key(k);
    w.os() << '"' << escape_json(v) << '"';
  }
  w.close('}');
}

}  // namespace

void write_json(std::ostream& os, const MetricsRegistry& registry,
                JsonStyle style) {
  RegistrySnapshot snap = registry.snapshot();
  JsonWriter w(os, style);
  w.open('{');

  w.key("build");
  w.open('{');
  const BuildInfo& build = build_info();
  w.key("git");
  w.os() << '"' << escape_json(build.git_describe) << '"';
  w.key("build_type");
  w.os() << '"' << escape_json(build.build_type) << '"';
  w.key("sanitizer");
  w.os() << '"' << escape_json(build.sanitizer) << '"';
  w.key("compiler");
  w.os() << '"' << escape_json(build.compiler) << '"';
  w.key("simd_tier");
  w.os() << '"' << escape_json(build.simd_tier) << '"';
  w.key("uptime_seconds");
  w.os() << format_double(process_uptime_seconds());
  w.close('}');

  w.key("counters");
  w.open('[');
  for (const auto& c : snap.counters) {
    w.item();
    w.open('{');
    w.key("name");
    w.os() << '"' << escape_json(c.name) << '"';
    write_labels_json(w, c.labels);
    w.key("value");
    w.os() << c.value;
    w.close('}');
  }
  w.close(']');

  w.key("gauges");
  w.open('[');
  for (const auto& g : snap.gauges) {
    w.item();
    w.open('{');
    w.key("name");
    w.os() << '"' << escape_json(g.name) << '"';
    write_labels_json(w, g.labels);
    w.key("value");
    w.os() << format_double(g.value);
    w.close('}');
  }
  w.close(']');

  w.key("histograms");
  w.open('[');
  for (const auto& h : snap.histograms) {
    w.item();
    w.open('{');
    w.key("name");
    w.os() << '"' << escape_json(h.name) << '"';
    write_labels_json(w, h.labels);
    w.key("count");
    w.os() << h.count;
    w.key("sum");
    w.os() << format_double(h.sum);
    w.key("buckets");
    w.open('[');
    for (std::size_t i = 0; i < h.cumulative.size(); ++i) {
      w.item();
      w.open('{');
      w.key("le");
      if (i < h.bounds.size()) {
        w.os() << format_double(h.bounds[i]);
      } else {
        w.os() << "\"+Inf\"";
      }
      w.key("count");
      w.os() << h.cumulative[i];
      w.close('}');
    }
    w.close(']');
    w.close('}');
  }
  w.close(']');

  w.close('}');
  os << '\n';
}

void write_json(std::ostream& os, JsonStyle style) {
  write_json(os, MetricsRegistry::global(), style);
}

void dump_metrics_file(const std::string& path,
                       const MetricsRegistry& registry) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("dump_metrics_file: cannot open " + path);
  }
  bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  if (json) {
    write_json(out, registry, JsonStyle::kPretty);
  } else {
    write_prometheus(out, registry);
  }
  if (!out) throw std::runtime_error("dump_metrics_file: write failed");
}

void dump_metrics_file(const std::string& path) {
  dump_metrics_file(path, MetricsRegistry::global());
}

namespace {

std::string format_seconds(double v) {
  char buf[48];
  if (v < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v * 1e6);
  } else if (v < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fms", v * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", v);
  }
  return buf;
}

void write_span_subtree(
    std::ostream& os, const SpanRecord& span,
    const std::map<std::uint64_t, std::vector<const SpanRecord*>>& children,
    double epoch, int indent) {
  for (int i = 0; i < indent; ++i) os << "  ";
  os << span.name << "  " << format_seconds(span.duration_seconds) << "  @+"
     << format_seconds(span.start_seconds - epoch) << '\n';
  auto it = children.find(span.id);
  if (it == children.end()) return;
  for (const SpanRecord* child : it->second) {
    write_span_subtree(os, *child, children, epoch, indent + 1);
  }
}

}  // namespace

void write_trace_tree(std::ostream& os, const TraceBuffer& buffer) {
  std::vector<SpanRecord> spans = buffer.snapshot();
  os << "trace buffer: " << spans.size() << " spans (dropped "
     << buffer.dropped() << ", capacity " << buffer.capacity() << ")\n";
  if (spans.empty()) return;

  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) by_id[s.id] = &s;

  // A span whose parent was evicted from the ring is promoted to a root so
  // partial traces stay readable.
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) != 0) {
      children[s.parent_id].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  auto by_start = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_seconds < b->start_seconds;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    (void)id;
    std::sort(kids.begin(), kids.end(), by_start);
  }

  double epoch = roots.front()->start_seconds;
  for (const SpanRecord* root : roots) {
    write_span_subtree(os, *root, children, epoch, 0);
  }
}

void dump_trace_file(const std::string& path, const TraceBuffer& buffer) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("dump_trace_file: cannot open " + path);
  }
  write_trace_tree(out, buffer);
  if (!out) throw std::runtime_error("dump_trace_file: write failed");
}

}  // namespace netobs::obs
