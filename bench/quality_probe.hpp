// Shared measurement harness for the ablation benches: trains the profiling
// service on one simulated day, profiles every sampled user at the end of
// the next day, and scores the profiles against ground truth. Cheaper and
// more sensitive than a full CTR experiment, so parameter sweeps stay fast.
#pragma once

#include <algorithm>

#include "ads/ad_database.hpp"
#include "ads/click_model.hpp"
#include "bench/common.hpp"
#include "profile/service.hpp"

namespace netobs::bench {

struct QualityResult {
  double top3_match = 0.0;     ///< profile's top topic in user's top-3
  double selected_affinity = 0.0;  ///< mean ground-truth affinity of ads
  double random_affinity = 0.0;
  double empty_rate = 0.0;
  std::size_t profiles = 0;
};

struct QualityInputs {
  const BenchWorld* world = nullptr;
  const ontology::HostLabeler* labeler = nullptr;
  const ads::AdDatabase* db = nullptr;
  const synth::BrowsingTrace* train_trace = nullptr;  ///< days [0,2)
  const synth::BrowsingTrace* probe_trace = nullptr;  ///< day 2
};

/// Builds the shared fixtures once so sweeps re-use traces and the ad DB.
struct QualityFixture {
  BenchWorld world;
  ontology::HostLabeler labeler;
  ads::AdDatabase db;
  filter::Blocklist blocklist;
  synth::BrowsingTrace train_trace;
  synth::BrowsingTrace probe_trace;

  explicit QualityFixture(const BenchConfig& cfg,
                          synth::WorldParams wp = synth::WorldParams())
      : world(make_world(cfg, wp)),
        labeler(world.universe->make_labeler()),
        db(ads::AdDatabase::collect(*world.universe, labeler, 12000,
                                    cfg.seed)) {
    blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());
    synth::BrowsingSimulator sim(*world.universe, *world.population);
    train_trace = sim.simulate(0, 2);
    probe_trace = sim.simulate(2, 1);
  }
};

/// Scale-adapted service defaults shared by the experiment benches
/// (documented in DESIGN.md: the bench universe has ~65x less daily data
/// than the study, compensated with more SGD epochs, a lower min_count and
/// a neighbourhood scaled to the same fraction of the vocabulary).
inline profile::ServiceParams scaled_service_params() {
  profile::ServiceParams sp;
  sp.profiler.knn = 50;
  sp.profiler.aggregation = profile::Aggregation::kNormalizedMean;
  sp.vocab.min_count = 2;
  sp.vocab.subsample_threshold = 1e-4;
  sp.sgns.epochs = 15;
  return sp;
}

inline QualityResult measure_quality(
    const QualityFixture& fx, profile::ServiceParams sp,
    bool use_blocklist = true, std::size_t user_stride = 7,
    const std::vector<std::int64_t>& retrain_days = {1}) {
  profile::ProfilingService service(fx.labeler,
                                    use_blocklist ? &fx.blocklist : nullptr,
                                    sp);
  service.ingest(fx.train_trace.events);
  for (std::int64_t day : retrain_days) service.retrain(day);
  service.ingest(fx.probe_trace.events);

  ads::EavesdropperSelector selector(fx.db, fx.labeler);
  const auto& space = *fx.world.space;
  const auto& tops = space.top_level_ids();

  // Last event time per user on the probe day.
  std::vector<util::Timestamp> last(fx.world.population->size(), 0);
  for (const auto& e : fx.probe_trace.events) {
    last[e.user_id] = std::max(last[e.user_id], e.timestamp);
  }

  QualityResult out;
  double matches = 0.0;
  double aff = 0.0;
  double aff_rand = 0.0;
  std::size_t n_aff = 0;
  std::size_t attempted = 0;
  util::Pcg32 rng(99);

  for (std::uint32_t u = 0; u < fx.world.population->size();
       u += static_cast<std::uint32_t>(user_stride)) {
    if (last[u] == 0) continue;
    ++attempted;
    auto p = service.profile_user(u, last[u]);
    if (p.empty()) continue;
    ++out.profiles;

    std::vector<double> per_topic(tops.size(), 0.0);
    for (std::size_t f = 0; f < p.categories.size(); ++f) {
      std::size_t top_flat = space.top_level_of(f);
      auto it = std::find(tops.begin(), tops.end(), top_flat);
      per_topic[static_cast<std::size_t>(it - tops.begin())] +=
          p.categories[f];
    }
    std::size_t ptop = static_cast<std::size_t>(
        std::max_element(per_topic.begin(), per_topic.end()) -
        per_topic.begin());

    const auto& user = fx.world.population->user(u);
    std::vector<std::size_t> idx(user.interests.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::partial_sort(idx.begin(), idx.begin() + 3, idx.end(),
                      [&](std::size_t a, std::size_t b) {
                        return user.interests[a] > user.interests[b];
                      });
    if (ptop == idx[0] || ptop == idx[1] || ptop == idx[2]) matches += 1.0;

    for (ads::AdId id : selector.select(p.categories)) {
      aff += ads::ClickModel::affinity(user, fx.db.ad(id));
      aff_rand += ads::ClickModel::affinity(
          user, fx.db.ad(rng.next_below(
                    static_cast<std::uint32_t>(fx.db.size()))));
      ++n_aff;
    }
  }
  if (out.profiles > 0) {
    out.top3_match = matches / static_cast<double>(out.profiles);
  }
  if (n_aff > 0) {
    out.selected_affinity = aff / static_cast<double>(n_aff);
    out.random_affinity = aff_rand / static_cast<double>(n_aff);
  }
  if (attempted > 0) {
    out.empty_rate = 1.0 - static_cast<double>(out.profiles) /
                               static_cast<double>(attempted);
  }
  return out;
}

}  // namespace netobs::bench
