// Session profiling — Equations 3 and 4 of Section 4.1.
//
// Given a session s_u^T:
//   1. aggregate the embeddings of its hostnames into a session vector
//      s = g({h : h in s_u^T})  (g defaults to the mean),
//   2. find the N=1000 hostnames most cosine-similar to s (the set H_s),
//   3. join with the session's labeled hosts L to get H_s^L,
//   4. weight every h in H_s^L by Eq. 3:
//        alpha_h = 1                       if h in L
//        alpha_h = [cos(h, s)]_+           otherwise,
//   5. mix the known category vectors c^h of labeled hosts by Eq. 4:
//        c_i = sum_h alpha_h c^h_i / sum_h alpha_h,
// producing the session profile c in [0,1]^C.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "ontology/host_labeler.hpp"
#include "profile/session.hpp"
#include "util/intern_pool.hpp"

namespace netobs::profile {

/// Aggregation function g over hostname embeddings.
enum class Aggregation {
  kMean,            ///< arithmetic mean of raw embeddings (default)
  kNormalizedMean,  ///< mean of L2-normalised embeddings
};

struct ProfilerParams {
  std::size_t knn = 1000;  ///< N, neighbours considered per session
  Aggregation aggregation = Aggregation::kMean;
  /// When false, the kNN step is skipped and only labeled session hosts
  /// contribute (the "ontology-only" baseline the paper argues against).
  bool use_embedding_neighbors = true;
};

/// A computed session profile.
struct SessionProfile {
  ontology::CategoryVector categories;  ///< c^{s_u^T}, entries in [0,1]
  std::vector<float> session_vector;    ///< aggregated embedding s
  std::size_t hosts_in_vocab = 0;       ///< session hosts with embeddings
  std::size_t labeled_in_session = 0;   ///< |L|
  std::size_t labeled_neighbors = 0;    ///< labeled hosts among H_s
  double weight_mass = 0.0;             ///< sum of alpha over contributors

  /// True when no category information could be attached (empty session,
  /// all hosts out of vocabulary, or no labeled host reachable).
  bool empty() const { return weight_mass == 0.0; }

  /// Top-k categories by importance, descending.
  std::vector<std::size_t> top_categories(std::size_t k) const;
};

class SessionProfiler {
 public:
  /// Non-owning: embedding, index and labeler must outlive the profiler.
  /// `index` is any retrieval backend (exact CosineKnnIndex or approximate
  /// IvfKnnIndex) over the same vocabulary as `embedding`.
  SessionProfiler(const embedding::HostEmbedding& embedding,
                  const embedding::KnnIndex& index,
                  const ontology::HostLabeler& labeler,
                  ProfilerParams params = ProfilerParams());

  /// Profiles a hostname list (a session's unique hosts).
  SessionProfile profile(const std::vector<std::string>& hostnames) const;

  SessionProfile profile(const Session& session) const {
    return profile(session.hostnames);
  }

  /// Profiles many sessions at once. The kNN step runs as a single batched
  /// sweep of the embedding matrix (CosineKnnIndex::query_batch), which
  /// amortises the matrix memory traffic across sessions; results are
  /// bit-identical to calling profile() on each session in turn.
  std::vector<SessionProfile> profile_batch(
      const std::vector<std::vector<std::string>>& sessions) const;

  /// Interned-session fast path: hostnames arrive as InternPool ids (e.g.
  /// from SessionStore::session_ids_of) and resolve against `pool` without
  /// materialising per-session string vectors. Bit-identical to profile()
  /// on the resolved hostname list.
  SessionProfile profile_interned(std::span<const util::InternPool::Id> ids,
                                  const util::InternPool& pool) const;
  std::vector<SessionProfile> profile_interned_batch(
      const std::vector<std::vector<util::InternPool::Id>>& sessions,
      const util::InternPool& pool) const;

  const ProfilerParams& params() const { return params_; }

 private:
  struct Pending;

  /// Stages 1-2 of the pipeline: session-vector aggregation plus the
  /// alpha = 1 contributions of labeled in-session hosts. The pointed-to
  /// strings must stay alive until finish_profile (Pending keeps views).
  Pending begin_profile(std::span<const std::string* const> hostnames) const;
  /// One batched kNN sweep feeding apply_neighbors for every pending
  /// profile with a usable session vector.
  void apply_batch_neighbors(std::vector<Pending>& pendings) const;
  static std::vector<const std::string*> resolve_ptrs(
      std::span<const util::InternPool::Id> ids,
      const util::InternPool& pool);
  /// Stage 3: alpha = [cos]_+ contributions of labeled kNN neighbours.
  void apply_neighbors(
      Pending& pending,
      const std::vector<embedding::Neighbor>& neighbors) const;
  /// Stage 4: Eq. 4 normalisation.
  SessionProfile finish_profile(Pending&& pending) const;

  const embedding::HostEmbedding* embedding_;
  const embedding::KnnIndex* index_;
  const ontology::HostLabeler* labeler_;
  ProfilerParams params_;
};

}  // namespace netobs::profile
