// Hostname -> category-vector store: the labeled subset H_L of Section 4.1.
//
// In the paper this is filled by querying the Google Adwords Display Planner
// for ~50K of the 470K observed hostnames (10.6% coverage); here the
// synthetic world plays Adwords' role, labeling a configurable fraction of
// hosts. Everything downstream (Eq. 3/4, ad selection) only sees this
// interface, so the substitution is invisible to the core algorithm.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ontology/category_tree.hpp"

namespace netobs::ontology {

class HostLabeler {
 public:
  /// category_count: dimension |C| of every stored vector.
  explicit HostLabeler(std::size_t category_count);

  /// Stores (or replaces) the label of a host. Throws std::invalid_argument
  /// if the vector has the wrong dimension or entries outside [0,1].
  void set_label(const std::string& host, CategoryVector label);

  /// nullptr when the host is unlabeled.
  const CategoryVector* label_of(const std::string& host) const;

  bool is_labeled(const std::string& host) const;

  std::size_t labeled_count() const { return labels_.size(); }
  std::size_t category_count() const { return category_count_; }

  /// Coverage with respect to a universe of `total_hosts` hostnames
  /// (the paper's 10.6%).
  double coverage(std::size_t total_hosts) const;

  /// All labeled hostnames (unordered).
  std::vector<std::string> labeled_hosts() const;

  const std::unordered_map<std::string, CategoryVector>& labels() const {
    return labels_;
  }

 private:
  std::size_t category_count_;
  std::unordered_map<std::string, CategoryVector> labels_;
};

}  // namespace netobs::ontology
