#include "profile/profiler.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/vec_math.hpp"

namespace netobs::profile {

std::vector<std::size_t> SessionProfile::top_categories(std::size_t k) const {
  std::vector<std::size_t> ids(categories.size());
  std::iota(ids.begin(), ids.end(), 0);
  k = std::min(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(k),
                    ids.end(), [this](std::size_t a, std::size_t b) {
                      if (categories[a] != categories[b]) {
                        return categories[a] > categories[b];
                      }
                      return a < b;
                    });
  ids.resize(k);
  return ids;
}

SessionProfiler::SessionProfiler(const embedding::HostEmbedding& embedding,
                                 const embedding::CosineKnnIndex& index,
                                 const ontology::HostLabeler& labeler,
                                 ProfilerParams params)
    : embedding_(&embedding),
      index_(&index),
      labeler_(&labeler),
      params_(params) {
  if (params_.knn == 0) {
    throw std::invalid_argument("SessionProfiler: knn must be > 0");
  }
}

SessionProfile SessionProfiler::profile(
    const std::vector<std::string>& hostnames) const {
  SessionProfile out;
  out.categories.assign(labeler_->category_count(), 0.0F);

  // --- Aggregate session vector s = g({h}).
  std::vector<std::span<const float>> rows;
  std::vector<std::vector<float>> normalized_storage;
  for (const auto& host : hostnames) {
    auto vec = embedding_->vector_of(host);
    if (!vec) continue;
    if (params_.aggregation == Aggregation::kNormalizedMean) {
      normalized_storage.emplace_back(vec->begin(), vec->end());
      util::normalize(normalized_storage.back());
    } else {
      rows.push_back(*vec);
    }
  }
  if (params_.aggregation == Aggregation::kNormalizedMean) {
    for (const auto& v : normalized_storage) rows.emplace_back(v);
  }
  out.hosts_in_vocab = rows.size();
  if (rows.empty()) return out;  // nothing known about this session
  out.session_vector = util::mean_of_rows(rows);

  // --- Weighted contributors: alpha = 1 for labeled session hosts (L),
  //     alpha = [cos(h, s)]_+ for labeled kNN hosts (Eq. 3). Only hosts in
  //     H_L can contribute category mass (the Eq. 4 sum runs over the
  //     intersection with H_L).
  double total_weight = 0.0;
  std::vector<double> accum(out.categories.size(), 0.0);
  std::unordered_set<std::string> in_session_labeled;

  auto contribute = [&](const ontology::CategoryVector& label, double alpha) {
    for (std::size_t i = 0; i < label.size(); ++i) {
      accum[i] += alpha * static_cast<double>(label[i]);
    }
    total_weight += alpha;
  };

  for (const auto& host : hostnames) {
    if (const auto* label = labeler_->label_of(host)) {
      if (in_session_labeled.insert(host).second) {
        contribute(*label, 1.0);
        ++out.labeled_in_session;
      }
    }
  }

  auto neighbors = params_.use_embedding_neighbors
                       ? index_->query(out.session_vector, params_.knn)
                       : std::vector<embedding::CosineKnnIndex::Neighbor>{};
  for (const auto& nb : neighbors) {
    const std::string& host = embedding_->token(nb.id);
    if (in_session_labeled.contains(host)) continue;  // already alpha = 1
    const auto* label = labeler_->label_of(host);
    if (label == nullptr) continue;
    ++out.labeled_neighbors;
    double alpha = std::max(0.0F, nb.similarity);  // [x]_+
    if (alpha == 0.0) continue;
    contribute(*label, alpha);
  }

  out.weight_mass = total_weight;
  if (total_weight > 0.0) {
    for (std::size_t i = 0; i < accum.size(); ++i) {
      // c^h_i in [0,1] and alpha-weighted average keeps c_i in [0,1].
      out.categories[i] = static_cast<float>(accum[i] / total_weight);
    }
  }
  return out;
}

}  // namespace netobs::profile
