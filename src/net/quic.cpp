#include "net/quic.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/aes.hpp"
#include "crypto/sha256.hpp"
#include "net/bytes.hpp"

namespace netobs::net {

namespace {

// RFC 9001 §5.2: initial salt for QUIC v1.
constexpr std::uint8_t kInitialSaltV1[20] = {
    0x38, 0x76, 0x2c, 0xf7, 0xf5, 0x59, 0x34, 0xb3, 0x4d, 0x17,
    0x9a, 0xe6, 0xa4, 0xc8, 0x0c, 0xad, 0xcc, 0xbb, 0x7f, 0x0a};

constexpr std::uint8_t kFrameCrypto = 0x06;
constexpr std::uint8_t kFramePadding = 0x00;
constexpr std::uint8_t kFramePing = 0x01;

struct InitialKeys {
  crypto::AesKey key;
  std::array<std::uint8_t, 12> iv;
  crypto::AesKey hp;
};

InitialKeys derive_client_initial_keys(std::span<const std::uint8_t> dcid) {
  auto initial_secret = crypto::hkdf_extract(
      std::span<const std::uint8_t>(kInitialSaltV1, sizeof(kInitialSaltV1)),
      dcid);
  auto client_secret =
      crypto::hkdf_expand_label(initial_secret, "client in", {}, 32);
  auto key = crypto::hkdf_expand_label(client_secret, "quic key", {}, 16);
  auto iv = crypto::hkdf_expand_label(client_secret, "quic iv", {}, 12);
  auto hp = crypto::hkdf_expand_label(client_secret, "quic hp", {}, 16);
  InitialKeys out{};
  std::copy(key.begin(), key.end(), out.key.begin());
  std::copy(iv.begin(), iv.end(), out.iv.begin());
  std::copy(hp.begin(), hp.end(), out.hp.begin());
  return out;
}

crypto::Aes128Gcm::Nonce make_nonce(const std::array<std::uint8_t, 12>& iv,
                                    std::uint64_t packet_number) {
  crypto::Aes128Gcm::Nonce nonce;
  std::copy(iv.begin(), iv.end(), nonce.begin());
  for (int i = 0; i < 8; ++i) {
    nonce[4 + static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(packet_number >> (56 - 8 * i));
  }
  return nonce;
}

/// Header-protection mask from the 16-byte ciphertext sample (AES-ECB).
std::array<std::uint8_t, 5> hp_mask(const crypto::AesKey& hp_key,
                                    std::span<const std::uint8_t> sample) {
  crypto::Aes128 aes(hp_key);
  crypto::AesBlock block;
  std::memcpy(block.data(), sample.data(), 16);
  auto enc = aes.encrypt_block(block);
  return {enc[0], enc[1], enc[2], enc[3], enc[4]};
}

constexpr int kPnLength = 4;  // we always encode 4-byte packet numbers

}  // namespace

std::vector<std::uint8_t> build_quic_initial(const QuicInitialSpec& spec) {
  if (spec.dcid.empty() || spec.dcid.size() > 20 || spec.scid.size() > 20) {
    throw std::invalid_argument("build_quic_initial: bad connection id");
  }

  // --- Plaintext payload: one CRYPTO frame + PADDING to the 1200-byte
  // datagram minimum.
  auto handshake = build_client_hello_handshake(spec.client_hello);
  ByteWriter payload;
  payload.put_u8(kFrameCrypto);
  put_varint(payload, 0);  // offset
  put_varint(payload, handshake.size());
  payload.put_bytes(handshake);

  // --- Unprotected header (also the AEAD AAD).
  auto build_header = [&](std::size_t payload_len) {
    ByteWriter h;
    h.put_u8(static_cast<std::uint8_t>(0xC0 | (kPnLength - 1)));  // Initial
    h.put_u32(kQuicVersion1);
    h.put_u8(static_cast<std::uint8_t>(spec.dcid.size()));
    h.put_bytes(spec.dcid);
    h.put_u8(static_cast<std::uint8_t>(spec.scid.size()));
    h.put_bytes(spec.scid);
    put_varint(h, 0);  // token length
    put_varint(h, payload_len + kPnLength + crypto::Aes128Gcm::kTagSize);
    h.put_u32(spec.packet_number);  // 4-byte encoding
    return h.take();
  };

  // Pad the payload so that header + pn + ciphertext + tag >= 1200.
  std::size_t header_guess = build_header(payload.size()).size();
  std::size_t total =
      header_guess + payload.size() + crypto::Aes128Gcm::kTagSize;
  if (total < kQuicMinInitialSize) {
    std::size_t pad = kQuicMinInitialSize - total;
    // Varint length field may grow by 1-2 bytes as the payload grows; the
    // overshoot is harmless (still >= 1200).
    for (std::size_t i = 0; i < pad; ++i) payload.put_u8(kFramePadding);
  }
  auto plaintext = payload.take();
  auto header = build_header(plaintext.size());

  // --- Seal.
  InitialKeys keys = derive_client_initial_keys(spec.dcid);
  crypto::Aes128Gcm aead(keys.key);
  auto sealed = aead.seal(make_nonce(keys.iv, spec.packet_number), header,
                          plaintext);

  std::vector<std::uint8_t> packet = header;
  packet.insert(packet.end(), sealed.begin(), sealed.end());

  // --- Header protection (RFC 9001 §5.4): sample starts 4 bytes after the
  // packet number offset.
  std::size_t pn_offset = header.size() - kPnLength;
  auto mask = hp_mask(keys.hp,
                      std::span<const std::uint8_t>(packet).subspan(
                          pn_offset + 4, 16));
  packet[0] ^= mask[0] & 0x0F;
  for (int i = 0; i < kPnLength; ++i) {
    packet[pn_offset + static_cast<std::size_t>(i)] ^=
        mask[1 + static_cast<std::size_t>(i)];
  }
  return packet;
}

bool looks_like_quic_initial(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < 7) return false;
  // Long header (bit 7), fixed bit (bit 6), packet type Initial (bits 5-4 =
  // 00). Bits 3-0 are header-protected and must be ignored here.
  if ((datagram[0] & 0xF0) != 0xC0) return false;
  std::uint32_t version = (static_cast<std::uint32_t>(datagram[1]) << 24) |
                          (static_cast<std::uint32_t>(datagram[2]) << 16) |
                          (static_cast<std::uint32_t>(datagram[3]) << 8) |
                          datagram[4];
  return version == kQuicVersion1;
}

std::optional<QuicInitialView> decrypt_quic_initial(
    std::span<const std::uint8_t> datagram) {
  if (!looks_like_quic_initial(datagram)) return std::nullopt;
  try {
    ByteReader r(datagram);
    QuicInitialView view;
    r.skip(1);  // first byte (protected bits handled later)
    view.version = r.get_u32();
    std::uint8_t dcid_len = r.get_u8();
    if (dcid_len > 20) return std::nullopt;
    auto dcid = r.get_bytes(dcid_len);
    view.dcid.assign(dcid.begin(), dcid.end());
    std::uint8_t scid_len = r.get_u8();
    if (scid_len > 20) return std::nullopt;
    auto scid = r.get_bytes(scid_len);
    view.scid.assign(scid.begin(), scid.end());
    std::uint64_t token_len = get_varint(r);
    r.skip(static_cast<std::size_t>(token_len));
    std::uint64_t length = get_varint(r);
    std::size_t pn_offset = r.position();
    if (length < kPnLength + crypto::Aes128Gcm::kTagSize ||
        pn_offset + length > datagram.size()) {
      return std::nullopt;
    }

    // --- Remove header protection.
    InitialKeys keys = derive_client_initial_keys(view.dcid);
    if (pn_offset + 4 + 16 > datagram.size()) return std::nullopt;
    auto mask = hp_mask(keys.hp, datagram.subspan(pn_offset + 4, 16));
    std::uint8_t first = datagram[0] ^ (mask[0] & 0x0F);
    int pn_len = (first & 0x03) + 1;

    std::vector<std::uint8_t> header(datagram.begin(),
                                     datagram.begin() +
                                         static_cast<long>(pn_offset) +
                                         pn_len);
    header[0] = first;
    std::uint32_t pn = 0;
    for (int i = 0; i < pn_len; ++i) {
      std::uint8_t b = static_cast<std::uint8_t>(
          datagram[pn_offset + static_cast<std::size_t>(i)] ^
          mask[1 + static_cast<std::size_t>(i)]);
      header[pn_offset + static_cast<std::size_t>(i)] = b;
      pn = (pn << 8) | b;
    }
    view.packet_number = pn;

    // --- Decrypt payload.
    auto ciphertext = datagram.subspan(
        pn_offset + static_cast<std::size_t>(pn_len),
        static_cast<std::size_t>(length) - static_cast<std::size_t>(pn_len));
    crypto::Aes128Gcm aead(keys.key);
    auto plaintext = aead.open(make_nonce(keys.iv, pn), header, ciphertext);
    if (!plaintext) return std::nullopt;

    // --- Reassemble CRYPTO frames.
    std::vector<std::uint8_t> crypto_stream;
    ByteReader frames(*plaintext);
    while (!frames.empty()) {
      std::uint8_t type = frames.get_u8();
      if (type == kFramePadding || type == kFramePing) continue;
      if (type != kFrameCrypto) return std::nullopt;  // unexpected in Initial
      std::uint64_t offset = get_varint(frames);
      std::uint64_t len = get_varint(frames);
      auto data = frames.get_bytes(static_cast<std::size_t>(len));
      if (crypto_stream.size() < offset + len) {
        crypto_stream.resize(static_cast<std::size_t>(offset + len), 0);
      }
      std::copy(data.begin(), data.end(),
                crypto_stream.begin() + static_cast<long>(offset));
    }
    if (crypto_stream.empty()) return std::nullopt;

    view.client_hello = parse_client_hello_handshake(crypto_stream);
    return view;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace netobs::net
