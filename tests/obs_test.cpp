#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "embedding/sgns.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace netobs::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counter, IncrementAndRead) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_events_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_concurrent_total", "help");
  Histogram& h = reg.histogram("netobs_test_concurrent_seconds", "help",
                               {0.5, 1.5});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50000;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      c.inc();
      h.observe(1.0);
    }
  });
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_count(1), kThreads * kPerThread);  // 1.0 <= 1.5
}

// ------------------------------------------------------------------ gauges

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("netobs_test_vocab_size", "help");
  g.set(100.0);
  EXPECT_DOUBLE_EQ(g.value(), 100.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 97.5);
}

// -------------------------------------------------------------- histograms

TEST(Histogram, UpperBoundsAreInclusive) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("netobs_test_latency_seconds", "help", {1.0, 2.0});
  h.observe(0.5);   // bucket 0: v <= 1.0
  h.observe(1.0);   // bucket 0: le is INCLUSIVE
  h.observe(1.001); // bucket 1: 1.0 < v <= 2.0
  h.observe(2.0);   // bucket 1
  h.observe(2.001); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 2.001);

  // Exporter-facing snapshot cumulates: last entry equals count.
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hs.cumulative, (std::vector<std::uint64_t>{2, 4, 5}));
  EXPECT_EQ(hs.cumulative.back(), hs.count);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("netobs_test_bad_seconds", "help", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("netobs_test_flat_seconds", "help", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Histogram, BucketHelpers) {
  auto expo = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(expo, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  auto lin = linear_buckets(0.5, 0.25, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.5, 0.75, 1.0}));
  auto lat = default_latency_buckets();
  EXPECT_GE(lat.size(), 10u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("netobs_test_total", "help");
  Counter& b = reg.counter("netobs_test_total", "help");
  EXPECT_EQ(&a, &b);
  // Different label sets are different instances; label ORDER is ignored.
  Counter& x = reg.counter("netobs_test_labeled_total", "h",
                           {{"arm", "a"}, {"kind", "k"}});
  Counter& y = reg.counter("netobs_test_labeled_total", "h",
                           {{"kind", "k"}, {"arm", "a"}});
  Counter& z = reg.counter("netobs_test_labeled_total", "h", {{"arm", "b"}});
  EXPECT_EQ(&x, &y);
  EXPECT_NE(&x, &z);
}

TEST(MetricsRegistry, TypeConflictAndBadNameThrow) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help");
  EXPECT_THROW(reg.gauge("netobs_test_total", "help"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("netobs_test_total", "help", {1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("0bad name", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("", "help"), std::invalid_argument);
}

TEST(MetricsRegistry, DisabledFastPathFreezesValues) {
  MetricsRegistry reg;  // local: never touch the global enabled flag here
  Counter& c = reg.counter("netobs_test_total", "help");
  Gauge& g = reg.gauge("netobs_test_gauge", "help");
  Histogram& h = reg.histogram("netobs_test_seconds", "help", {1.0});
  c.inc();
  g.set(5.0);
  h.observe(0.5);

  reg.set_enabled(false);
  c.inc(100);
  g.set(99.0);
  g.add(1.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 1u);        // frozen
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_EQ(h.count(), 1u);

  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_total", "help");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("netobs_test_total", "help"), &c);
}

// ------------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, RecordsExactlyOnce) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("netobs_test_timer_seconds", "help",
                               default_latency_buckets());
  {
    ScopedTimer t(&h);
    double first = t.stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(t.stop(), first);  // idempotent
  }                                     // destructor must not record again
  EXPECT_EQ(h.count(), 1u);

  { ScopedTimer t(&h); }  // records on destruction
  EXPECT_EQ(h.count(), 2u);

  ScopedTimer free_running(nullptr);  // measure-only mode is safe
  EXPECT_GE(free_running.stop(), 0.0);
}

// ------------------------------------------------------------------- spans

TEST(Span, NestingTracksDepthAndParents) {
  TraceBuffer buf(16);
  {
    Span outer("outer", nullptr, &buf);
    EXPECT_EQ(Span::current(), &outer);
    {
      Span mid("mid", nullptr, &buf);
      Span inner("inner", nullptr, &buf);
      EXPECT_EQ(inner.depth(), 2);
    }
    EXPECT_EQ(Span::current(), &outer);
  }
  EXPECT_EQ(Span::current(), nullptr);

  auto spans = buf.snapshot();  // finish order: inner, mid, outer
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "mid");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  for (const auto& s : spans) EXPECT_GE(s.duration_seconds, 0.0);
}

TEST(Span, RecordsLatencyHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("netobs_test_span_seconds", "help",
                               default_latency_buckets());
  TraceBuffer buf(4);
  { Span s("work", &h, &buf); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, DropsOldestWhenFull) {
  TraceBuffer buf(2);
  for (int i = 0; i < 3; ++i) {
    SpanRecord rec;
    rec.name = "s" + std::to_string(i);
    buf.push(std::move(rec));
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
  auto spans = buf.snapshot();
  EXPECT_EQ(spans[0].name, "s1");
  EXPECT_EQ(spans[1].name, "s2");
}

// ------------------------------------------------------- Prometheus export

/// True iff `line` is a valid sample line: name, optional {labels}, value.
bool valid_sample_line(const std::string& line) {
  std::size_t i = 0;
  auto name_start = [](char ch) {
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == ':';
  };
  if (i >= line.size() || !name_start(line[i])) return false;
  while (i < line.size() &&
         (name_start(line[i]) ||
          std::isdigit(static_cast<unsigned char>(line[i])))) {
    ++i;
  }
  if (i < line.size() && line[i] == '{') {
    std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  return i + 1 < line.size();  // something after the space = the value
}

TEST(PrometheusExport, GrammarAndNoDuplicateFamilies) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "Total \"things\"\nseen").inc(3);
  reg.counter("netobs_test_arm_total", "per-arm", {{"arm", "a"}}).inc(1);
  reg.counter("netobs_test_arm_total", "per-arm", {{"arm", "b"}}).inc(2);
  reg.gauge("netobs_test_gauge", "g").set(1.5);
  Histogram& h = reg.histogram("netobs_test_seconds", "h", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();

  std::set<std::string> type_lines;
  std::set<std::string> sample_lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // One TYPE declaration per family, even with several label sets.
      EXPECT_TRUE(type_lines.insert(line).second) << "duplicate: " << line;
    } else if (line.rfind("# HELP ", 0) == 0) {
      EXPECT_EQ(line.find('\n'), std::string::npos);  // newline escaped
    } else if (line.rfind("#", 0) != 0) {
      EXPECT_TRUE(valid_sample_line(line)) << "bad sample line: " << line;
      EXPECT_TRUE(sample_lines.insert(line).second) << "duplicate: " << line;
    }
  }
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_total counter"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_arm_total counter"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_gauge gauge"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_seconds histogram"));

  EXPECT_NE(text.find("netobs_test_arm_total{arm=\"a\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_arm_total{arm=\"b\"} 2"),
            std::string::npos);
  // Histogram series: cumulative buckets, +Inf == count, _sum and _count.
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_sum 3.5"), std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_count 2"), std::string::npos);
}

// ------------------------------------------------------------- JSON export

/// Minimal structural validation: brackets balance outside of strings.
bool balanced_json(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char ch = s[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') stack.push_back(ch);
    else if (ch == '}' || ch == ']') {
      if (stack.empty()) return false;
      char open = stack.back();
      stack.pop_back();
      if ((ch == '}') != (open == '{')) return false;
    }
  }
  return stack.empty() && !in_string;
}

TEST(JsonExport, RoundTripsValuesInBothStyles) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help", {{"arm", "a\"b"}}).inc(12345);
  reg.gauge("netobs_test_ratio", "help").set(0.25);
  Histogram& h = reg.histogram("netobs_test_seconds", "help", {1.0});
  h.observe(0.5);
  h.observe(4.0);

  for (JsonStyle style : {JsonStyle::kPretty, JsonStyle::kCompact}) {
    std::ostringstream os;
    write_json(os, reg, style);
    const std::string json = os.str();
    EXPECT_TRUE(balanced_json(json));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"netobs_test_total\""), std::string::npos);
    EXPECT_NE(json.find("12345"), std::string::npos);
    EXPECT_NE(json.find("0.25"), std::string::npos);
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);  // label escaping
    EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  }
  std::ostringstream pretty, compact;
  write_json(pretty, reg, JsonStyle::kPretty);
  write_json(compact, reg, JsonStyle::kCompact);
  EXPECT_GT(pretty.str().size(), compact.str().size());
  // Compact style is a single line (plus the final newline).
  EXPECT_EQ(compact.str().find('\n'), compact.str().size() - 1);
}

// ---------------------------------------------- instrumentation accessors

TEST(SgnsInstrumentation, EpochDurationsMatchEpochLosses) {
  std::vector<embedding::Sequence> corpus;
  for (int s = 0; s < 20; ++s) {
    embedding::Sequence seq;
    for (int i = 0; i < 12; ++i) {
      seq.push_back("host" + std::to_string((s + i) % 6) + ".example");
    }
    corpus.push_back(std::move(seq));
  }
  embedding::SgnsParams params;
  params.epochs = 3;
  params.dim = 8;
  embedding::VocabularyParams vp;
  vp.min_count = 1;
  embedding::SgnsTrainer trainer(params, vp);
  trainer.fit(corpus);
  EXPECT_EQ(trainer.epoch_durations().size(), 3u);
  EXPECT_EQ(trainer.epoch_durations().size(), trainer.epoch_losses().size());
  for (double d : trainer.epoch_durations()) EXPECT_GE(d, 0.0);
}

}  // namespace
}  // namespace netobs::obs
