#include "embedding/knn.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {

namespace {

struct KnnMetrics {
  obs::Counter& queries;
  obs::Counter& batch_queries;
  obs::Histogram& query_seconds;
  obs::Gauge& index_size;

  static KnnMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static KnnMetrics m{
        reg.counter("netobs_embedding_knn_queries_total",
                    "Cosine kNN queries answered"),
        reg.counter("netobs_embedding_knn_batch_queries_total",
                    "Cosine kNN queries answered through query_batch"),
        reg.histogram("netobs_embedding_knn_query_seconds",
                      "Latency of one kNN scan",
                      obs::default_latency_buckets()),
        reg.gauge("netobs_embedding_knn_index_size",
                  "Rows in the most recently built kNN index"),
    };
    return m;
  }
};

EmbeddingMatrix normalized_copy(const EmbeddingMatrix& matrix) {
  EmbeddingMatrix out = matrix;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    util::normalize(out.row(i));
  }
  return out;
}

/// Rows scored per dot_block call; sized so a block of d=100 rows plus the
/// query stays comfortably inside L1, and capped at 64 so one simd::mask_ge
/// call covers a whole block.
constexpr std::size_t kScoreBlock = 64;
static_assert(kScoreBlock <= 64, "mask_ge returns a 64-bit block mask");

using PaddedVector =
    std::vector<float, netobs::util::simd::AlignedAllocator<float>>;

}  // namespace

const char* knn_backend_name(KnnBackend backend) {
  switch (backend) {
    case KnnBackend::kExact:
      return "exact";
    case KnnBackend::kIvf:
      return "ivf";
  }
  return "unknown";
}

CosineKnnIndex::CosineKnnIndex(const HostEmbedding& embedding)
    : normalized_(normalized_copy(embedding.central())) {
  KnnMetrics::get().index_size.set(static_cast<double>(normalized_.rows()));
}

CosineKnnIndex::CosineKnnIndex(const EmbeddingMatrix& matrix)
    : normalized_(normalized_copy(matrix)) {
  KnnMetrics::get().index_size.set(static_cast<double>(normalized_.rows()));
}

void CosineKnnIndex::set_thread_pool(util::ThreadPool* pool,
                                     std::size_t min_rows_per_shard) {
  pool_ = pool;
  min_rows_per_shard_ = std::max<std::size_t>(1, min_rows_per_shard);
}

void CosineKnnIndex::scan_range(const float* unit_query, std::size_t begin,
                                std::size_t end, std::ptrdiff_t exclude,
                                TopK& heap) const {
  const float* base = normalized_.padded_data();
  const std::size_t stride = normalized_.stride();
  float scores[kScoreBlock];
  for (std::size_t b = begin; b < end; b += kScoreBlock) {
    std::size_t cnt = std::min(kScoreBlock, end - b);
    util::simd::dot_block(unit_query, base + b * stride, stride, cnt, scores);
    // The excluded row is a single index, so only the one block containing
    // it pays a per-candidate exclusion compare; every other block goes
    // through the vectorised threshold filter below.
    std::size_t ex = static_cast<std::size_t>(exclude);
    if (exclude >= 0 && ex >= b && ex < b + cnt) {
      for (std::size_t j = 0; j < cnt; ++j) {
        if (b + j == ex) continue;
        heap.offer(static_cast<TokenId>(b + j), scores[j]);
      }
    } else if (!heap.full()) {
      for (std::size_t j = 0; j < cnt; ++j) {
        heap.offer(static_cast<TokenId>(b + j), scores[j]);
      }
    } else {
      // Warm heap: one SIMD compare per 8 scores finds the candidates that
      // could displace the current worst ('>=' keeps equal-similarity rows
      // so the ascending-id tie-break still sees them); everything else is
      // skipped without touching the heap. The threshold is re-read per
      // block, so displacements within the block only make it conservative
      // — offer() re-checks against the live worst entry.
      std::uint64_t mask =
          util::simd::mask_ge(scores, cnt, heap.worst_similarity());
      while (mask != 0) {
        auto j = static_cast<std::size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        heap.offer(static_cast<TokenId>(b + j), scores[j]);
      }
    }
  }
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::scan(
    const float* unit_query, std::size_t n, std::ptrdiff_t exclude) const {
  auto& metrics = KnnMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(&metrics.query_seconds);
  const std::size_t rows = normalized_.rows();
  n = std::min(n, rows);  // bounds the heap reservation

  bool sharded = pool_ != nullptr && rows >= 2 * min_rows_per_shard_;
  if (!sharded) {
    TopK heap(n);
    scan_range(unit_query, 0, rows, exclude, heap);
    return heap.take_sorted();
  }

  // Shard the sweep; each shard keeps its own top-n, and the union of
  // shard top-n sets contains the global top-n, so the merge below is
  // exact (and bit-identical to the serial scan — same scores, same
  // deterministic order).
  std::size_t threads = std::max<std::size_t>(1, pool_->thread_count());
  std::size_t grain =
      std::max(min_rows_per_shard_, (rows + threads - 1) / threads);
  std::size_t shards = (rows + grain - 1) / grain;
  std::vector<std::vector<Neighbor>> partial(shards);
  pool_->parallel_for_chunked(
      rows, grain, [&](std::size_t begin, std::size_t end) {
        TopK heap(n);
        scan_range(unit_query, begin, end, exclude, heap);
        partial[begin / grain] = heap.take_sorted();
      });
  TopK merged(n);
  for (const auto& shard : partial) {
    for (const auto& nb : shard) merged.offer(nb.id, nb.similarity);
  }
  return merged.take_sorted();
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::query(
    std::span<const float> query_vec, std::size_t n) const {
  if (n == 0 || normalized_.rows() == 0) return {};
  PaddedVector unit(normalized_.stride(), 0.0F);
  std::copy(query_vec.begin(), query_vec.end(), unit.begin());
  float norm = util::l2_norm({unit.data(), query_vec.size()});
  if (norm == 0.0F) return {};
  util::scale({unit.data(), query_vec.size()}, 1.0F / norm);
  return scan(unit.data(), n, -1);
}

void CosineKnnIndex::scan_range_batch(const float* units,
                                      const std::vector<std::size_t>& live,
                                      std::size_t begin, std::size_t end,
                                      std::vector<TopK>& heaps) const {
  const std::size_t stride = normalized_.stride();
  // One sweep of the row range: each row block is scored for every live
  // query while it is cache-hot, amortising the memory traffic that
  // dominates a per-session scan.
  float scores[kScoreBlock];
  for (std::size_t b = begin; b < end; b += kScoreBlock) {
    std::size_t cnt = std::min(kScoreBlock, end - b);
    const float* block = normalized_.padded_data() + b * stride;
    for (std::size_t li = 0; li < live.size(); ++li) {
      util::simd::dot_block(units + live[li] * stride, block, stride, cnt,
                            scores);
      TopK& heap = heaps[li];
      if (!heap.full()) {
        for (std::size_t j = 0; j < cnt; ++j) {
          heap.offer(static_cast<TokenId>(b + j), scores[j]);
        }
      } else {
        // Same vectorised threshold filter as scan_range.
        std::uint64_t mask =
            util::simd::mask_ge(scores, cnt, heap.worst_similarity());
        while (mask != 0) {
          auto j = static_cast<std::size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          heap.offer(static_cast<TokenId>(b + j), scores[j]);
        }
      }
    }
  }
}

std::vector<std::vector<CosineKnnIndex::Neighbor>> CosineKnnIndex::query_batch(
    const std::vector<std::vector<float>>& queries, std::size_t n) const {
  auto& metrics = KnnMetrics::get();
  metrics.batch_queries.inc(queries.size());
  obs::ScopedTimer timer(&metrics.query_seconds);

  std::vector<std::vector<Neighbor>> results(queries.size());
  const std::size_t rows = normalized_.rows();
  const std::size_t stride = normalized_.stride();
  if (n == 0 || rows == 0 || queries.empty()) return results;
  n = std::min(n, rows);  // bounds the heap reservations

  // Normalise every usable query into one padded scratch matrix.
  PaddedVector units(queries.size() * stride, 0.0F);
  std::vector<std::size_t> live;  // indexes into `queries`
  live.reserve(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    float* dst = units.data() + qi * stride;
    std::copy(queries[qi].begin(), queries[qi].end(), dst);
    float norm = util::l2_norm({dst, queries[qi].size()});
    if (norm == 0.0F) continue;
    util::scale({dst, queries[qi].size()}, 1.0F / norm);
    live.push_back(qi);
  }
  if (live.empty()) return results;

  bool sharded = pool_ != nullptr && rows >= 2 * min_rows_per_shard_;
  if (!sharded) {
    std::vector<TopK> heaps;
    heaps.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) heaps.emplace_back(n);
    scan_range_batch(units.data(), live, 0, rows, heaps);
    for (std::size_t li = 0; li < live.size(); ++li) {
      results[live[li]] = heaps[li].take_sorted();
    }
    return results;
  }

  // Shard the batched sweep exactly like single-query scans: every shard
  // runs the cache-hot block loop for all live queries into its own top-n
  // heaps, and the per-query merge of shard results is exact, so the output
  // is bit-identical to the serial batch (and to per-query scans).
  std::size_t threads = std::max<std::size_t>(1, pool_->thread_count());
  std::size_t grain =
      std::max(min_rows_per_shard_, (rows + threads - 1) / threads);
  std::size_t shards = (rows + grain - 1) / grain;
  std::vector<std::vector<std::vector<Neighbor>>> partial(shards);
  pool_->parallel_for_chunked(
      rows, grain, [&](std::size_t begin, std::size_t end) {
        std::vector<TopK> heaps;
        heaps.reserve(live.size());
        for (std::size_t i = 0; i < live.size(); ++i) heaps.emplace_back(n);
        scan_range_batch(units.data(), live, begin, end, heaps);
        auto& out = partial[begin / grain];
        out.resize(live.size());
        for (std::size_t li = 0; li < live.size(); ++li) {
          out[li] = heaps[li].take_sorted();
        }
      });
  for (std::size_t li = 0; li < live.size(); ++li) {
    TopK merged(n);
    for (const auto& shard : partial) {
      for (const auto& nb : shard[li]) merged.offer(nb.id, nb.similarity);
    }
    results[live[li]] = merged.take_sorted();
  }
  return results;
}

std::vector<CosineKnnIndex::Neighbor> CosineKnnIndex::nearest_to(
    TokenId id, std::size_t n) const {
  // Stored rows are already unit-norm, padded and aligned: score in place.
  return scan(normalized_.padded_data() + id * normalized_.stride(), n,
              static_cast<std::ptrdiff_t>(id));
}

}  // namespace netobs::embedding
