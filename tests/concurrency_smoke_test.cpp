// The lock-free concurrency hot spots in one place, registered as the
// `sanitizer_smoke` ctest: under -DNETOBS_SANITIZE=thread this is the TSan
// gate for the Hogwild SGNS trainer, the shard-parallel kNN scan and the
// chunked thread-pool dispatch; in plain builds it is a fast smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "embedding/ivf_index.hpp"
#include "embedding/knn.hpp"
#include "embedding/sgns.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netobs {
namespace {

TEST(ConcurrencySmoke, HogwildTrainerRaces) {
  std::vector<embedding::Sequence> corpus;
  for (int r = 0; r < 40; ++r) {
    corpus.push_back({"a.com", "b.com", "c.com", "d.com"});
    corpus.push_back({"c.com", "d.com", "e.com", "f.com"});
  }
  embedding::SgnsParams params;
  params.dim = 16;
  params.epochs = 2;
  params.threads = 4;
  embedding::VocabularyParams vp;
  vp.min_count = 1;
  embedding::SgnsTrainer trainer(params, vp);
  auto model = trainer.fit(corpus);
  EXPECT_EQ(model.size(), 6U);
  for (std::size_t i = 0; i < model.size(); ++i) {
    for (float v : model.vector_of(static_cast<embedding::TokenId>(i))) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST(ConcurrencySmoke, ShardParallelKnnScan) {
  embedding::EmbeddingMatrix m(600, 12);
  util::Pcg32 rng(77);
  m.init_uniform(rng);
  embedding::CosineKnnIndex index(m);
  util::ThreadPool pool(4);
  index.set_thread_pool(&pool, 32);
  std::vector<float> q(m.row(3).begin(), m.row(3).end());
  for (int i = 0; i < 8; ++i) {
    auto nbs = index.query(q, 25);
    ASSERT_EQ(nbs.size(), 25U);
    EXPECT_EQ(nbs.front().id, 3U);  // the row itself wins
  }
}

TEST(ConcurrencySmoke, IvfBuildAndQueryUnderThreadPool) {
  // The parallel paths of the IVF build (k-means assignment sweeps) plus
  // concurrent read-only queries against the finished index.
  embedding::EmbeddingMatrix m(3000, 12);
  util::Pcg32 rng(79);
  m.init_uniform(rng);
  util::ThreadPool pool(4);
  embedding::IvfParams params;
  params.nlists = 24;
  embedding::IvfKnnIndex index(m, params, &pool);
  ASSERT_EQ(index.nlists(), 24U);

  std::vector<float> q(m.row(7).begin(), m.row(7).end());
  auto want = index.query(q, 10);
  std::atomic<int> mismatches{0};
  pool.parallel_for_chunked(64, 8, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      auto got = index.query(q, 10);
      if (got.size() != want.size()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (std::size_t r = 0; r < got.size(); ++r) {
        if (got[r].id != want[r].id ||
            got[r].similarity != want[r].similarity) {
          mismatches.fetch_add(1);
          break;
        }
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencySmoke, ChunkedDispatchCoversAllIndices) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_chunked(1000, 37, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace netobs
