#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "embedding/sgns.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace netobs::obs {
namespace {

// ---------------------------------------------------------------- counters

TEST(Counter, IncrementAndRead) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_events_total", "help");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsSumExactly) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_concurrent_total", "help");
  Histogram& h = reg.histogram("netobs_test_concurrent_seconds", "help",
                               {0.5, 1.5});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 50000;
  util::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      c.inc();
      h.observe(1.0);
    }
  });
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kPerThread));
  EXPECT_EQ(h.bucket_count(1), kThreads * kPerThread);  // 1.0 <= 1.5
}

// ------------------------------------------------------------------ gauges

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("netobs_test_vocab_size", "help");
  g.set(100.0);
  EXPECT_DOUBLE_EQ(g.value(), 100.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 97.5);
}

// -------------------------------------------------------------- histograms

TEST(Histogram, UpperBoundsAreInclusive) {
  MetricsRegistry reg;
  Histogram& h =
      reg.histogram("netobs_test_latency_seconds", "help", {1.0, 2.0});
  h.observe(0.5);   // bucket 0: v <= 1.0
  h.observe(1.0);   // bucket 0: le is INCLUSIVE
  h.observe(1.001); // bucket 1: 1.0 < v <= 2.0
  h.observe(2.0);   // bucket 1
  h.observe(2.001); // +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 2.0 + 2.001);

  // Exporter-facing snapshot cumulates: last entry equals count.
  auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hs.cumulative, (std::vector<std::uint64_t>{2, 4, 5}));
  EXPECT_EQ(hs.cumulative.back(), hs.count);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("netobs_test_bad_seconds", "help", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.histogram("netobs_test_flat_seconds", "help", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Histogram, RejectsEmptyAndNanBounds) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("netobs_test_empty_seconds", "help", {}),
               std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(reg.histogram("netobs_test_nan_seconds", "help", {nan}),
               std::invalid_argument);
  EXPECT_THROW(
      reg.histogram("netobs_test_nan2_seconds", "help", {1.0, nan, 3.0}),
      std::invalid_argument);
  // A failed registration must not poison the name: a valid retry works.
  Histogram& h =
      reg.histogram("netobs_test_empty_seconds", "help", {1.0, 2.0});
  h.observe(0.5);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, RejectsReRegistrationWithDifferentBounds) {
  MetricsRegistry reg;
  reg.histogram("netobs_test_seconds", "help", {1.0, 2.0}, {{"arm", "a"}});
  // Same bounds, different labels: fine (one family, two series).
  reg.histogram("netobs_test_seconds", "help", {1.0, 2.0}, {{"arm", "b"}});
  // Different bounds under the same name: Prometheus clients cannot
  // aggregate the family — reject.
  EXPECT_THROW(
      reg.histogram("netobs_test_seconds", "help", {1.0, 3.0}, {{"arm", "c"}}),
      std::invalid_argument);
  EXPECT_THROW(reg.histogram("netobs_test_seconds", "help", {1.0}),
               std::invalid_argument);
  // Idempotent re-registration of an existing series still returns it.
  Histogram& a1 =
      reg.histogram("netobs_test_seconds", "help", {1.0, 2.0}, {{"arm", "a"}});
  Histogram& a2 =
      reg.histogram("netobs_test_seconds", "help", {1.0, 2.0}, {{"arm", "a"}});
  EXPECT_EQ(&a1, &a2);
}

TEST(Histogram, BucketHelpers) {
  auto expo = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(expo, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  auto lin = linear_buckets(0.5, 0.25, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.5, 0.75, 1.0}));
  auto lat = default_latency_buckets();
  EXPECT_GE(lat.size(), 10u);
  for (std::size_t i = 1; i < lat.size(); ++i) EXPECT_GT(lat[i], lat[i - 1]);
}

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("netobs_test_total", "help");
  Counter& b = reg.counter("netobs_test_total", "help");
  EXPECT_EQ(&a, &b);
  // Different label sets are different instances; label ORDER is ignored.
  Counter& x = reg.counter("netobs_test_labeled_total", "h",
                           {{"arm", "a"}, {"kind", "k"}});
  Counter& y = reg.counter("netobs_test_labeled_total", "h",
                           {{"kind", "k"}, {"arm", "a"}});
  Counter& z = reg.counter("netobs_test_labeled_total", "h", {{"arm", "b"}});
  EXPECT_EQ(&x, &y);
  EXPECT_NE(&x, &z);
}

TEST(MetricsRegistry, TypeConflictAndBadNameThrow) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help");
  EXPECT_THROW(reg.gauge("netobs_test_total", "help"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("netobs_test_total", "help", {1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("0bad name", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("", "help"), std::invalid_argument);
}

TEST(MetricsRegistry, DisabledFastPathFreezesValues) {
  MetricsRegistry reg;  // local: never touch the global enabled flag here
  Counter& c = reg.counter("netobs_test_total", "help");
  Gauge& g = reg.gauge("netobs_test_gauge", "help");
  Histogram& h = reg.histogram("netobs_test_seconds", "help", {1.0});
  c.inc();
  g.set(5.0);
  h.observe(0.5);

  reg.set_enabled(false);
  c.inc(100);
  g.set(99.0);
  g.add(1.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 1u);        // frozen
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_EQ(h.count(), 1u);

  reg.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  Counter& c = reg.counter("netobs_test_total", "help");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("netobs_test_total", "help"), &c);
}

// ------------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, RecordsExactlyOnce) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("netobs_test_timer_seconds", "help",
                               default_latency_buckets());
  {
    ScopedTimer t(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    double first = t.stop();
    // Regression guard: stop() must freeze the *measured* time, not the
    // zero-initialised elapsed_ (stopped_ was once flipped before reading).
    EXPECT_GT(first, 0.0);
    EXPECT_DOUBLE_EQ(t.stop(), first);  // idempotent
    EXPECT_DOUBLE_EQ(t.elapsed_seconds(), first);  // frozen after stop
  }                                     // destructor must not record again
  EXPECT_EQ(h.count(), 1u);

  { ScopedTimer t(&h); }  // records on destruction
  EXPECT_EQ(h.count(), 2u);

  ScopedTimer free_running(nullptr);  // measure-only mode is safe
  EXPECT_GE(free_running.stop(), 0.0);
}

// ------------------------------------------------------------------- spans

TEST(Span, NestingTracksDepthAndParents) {
  TraceBuffer buf(16);
  {
    Span outer("outer", nullptr, &buf);
    EXPECT_EQ(Span::current(), &outer);
    {
      Span mid("mid", nullptr, &buf);
      Span inner("inner", nullptr, &buf);
      EXPECT_EQ(inner.depth(), 2);
    }
    EXPECT_EQ(Span::current(), &outer);
  }
  EXPECT_EQ(Span::current(), nullptr);

  auto spans = buf.snapshot();  // finish order: inner, mid, outer
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "mid");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0);
  EXPECT_EQ(spans[2].parent_id, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  for (const auto& s : spans) EXPECT_GE(s.duration_seconds, 0.0);
}

TEST(Span, RecordsLatencyHistogram) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("netobs_test_span_seconds", "help",
                               default_latency_buckets());
  TraceBuffer buf(4);
  { Span s("work", &h, &buf); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, DropsOldestWhenFull) {
  TraceBuffer buf(2);
  for (int i = 0; i < 3; ++i) {
    SpanRecord rec;
    rec.name = "s" + std::to_string(i);
    buf.push(std::move(rec));
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
  auto spans = buf.snapshot();
  EXPECT_EQ(spans[0].name, "s1");
  EXPECT_EQ(spans[1].name, "s2");
}

// ------------------------------------------------------- Prometheus export

/// True iff `line` is a valid sample line: name, optional {labels}, value.
bool valid_sample_line(const std::string& line) {
  std::size_t i = 0;
  auto name_start = [](char ch) {
    return std::isalpha(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == ':';
  };
  if (i >= line.size() || !name_start(line[i])) return false;
  while (i < line.size() &&
         (name_start(line[i]) ||
          std::isdigit(static_cast<unsigned char>(line[i])))) {
    ++i;
  }
  if (i < line.size() && line[i] == '{') {
    std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  return i + 1 < line.size();  // something after the space = the value
}

TEST(PrometheusExport, GrammarAndNoDuplicateFamilies) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "Total \"things\"\nseen").inc(3);
  reg.counter("netobs_test_arm_total", "per-arm", {{"arm", "a"}}).inc(1);
  reg.counter("netobs_test_arm_total", "per-arm", {{"arm", "b"}}).inc(2);
  reg.gauge("netobs_test_gauge", "g").set(1.5);
  Histogram& h = reg.histogram("netobs_test_seconds", "h", {1.0, 2.0});
  h.observe(0.5);
  h.observe(3.0);

  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();

  std::set<std::string> type_lines;
  std::set<std::string> sample_lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // One TYPE declaration per family, even with several label sets.
      EXPECT_TRUE(type_lines.insert(line).second) << "duplicate: " << line;
    } else if (line.rfind("# HELP ", 0) == 0) {
      EXPECT_EQ(line.find('\n'), std::string::npos);  // newline escaped
    } else if (line.rfind("#", 0) != 0) {
      EXPECT_TRUE(valid_sample_line(line)) << "bad sample line: " << line;
      EXPECT_TRUE(sample_lines.insert(line).second) << "duplicate: " << line;
    }
  }
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_total counter"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_arm_total counter"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_gauge gauge"));
  EXPECT_TRUE(type_lines.count("# TYPE netobs_test_seconds histogram"));

  EXPECT_NE(text.find("netobs_test_arm_total{arm=\"a\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_arm_total{arm=\"b\"} 2"),
            std::string::npos);
  // Histogram series: cumulative buckets, +Inf == count, _sum and _count.
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_sum 3.5"), std::string::npos);
  EXPECT_NE(text.find("netobs_test_seconds_count 2"), std::string::npos);
}

// ------------------------------------------------------------- JSON export

/// Minimal structural validation: brackets balance outside of strings.
bool balanced_json(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char ch = s[i];
    if (in_string) {
      if (ch == '\\') ++i;
      else if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') in_string = true;
    else if (ch == '{' || ch == '[') stack.push_back(ch);
    else if (ch == '}' || ch == ']') {
      if (stack.empty()) return false;
      char open = stack.back();
      stack.pop_back();
      if ((ch == '}') != (open == '{')) return false;
    }
  }
  return stack.empty() && !in_string;
}

TEST(JsonExport, RoundTripsValuesInBothStyles) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help", {{"arm", "a\"b"}}).inc(12345);
  reg.gauge("netobs_test_ratio", "help").set(0.25);
  Histogram& h = reg.histogram("netobs_test_seconds", "help", {1.0});
  h.observe(0.5);
  h.observe(4.0);

  for (JsonStyle style : {JsonStyle::kPretty, JsonStyle::kCompact}) {
    std::ostringstream os;
    write_json(os, reg, style);
    const std::string json = os.str();
    EXPECT_TRUE(balanced_json(json));
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"netobs_test_total\""), std::string::npos);
    EXPECT_NE(json.find("12345"), std::string::npos);
    EXPECT_NE(json.find("0.25"), std::string::npos);
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);  // label escaping
    EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  }
  std::ostringstream pretty, compact;
  write_json(pretty, reg, JsonStyle::kPretty);
  write_json(compact, reg, JsonStyle::kCompact);
  EXPECT_GT(pretty.str().size(), compact.str().size());
  // Compact style is a single line (plus the final newline).
  EXPECT_EQ(compact.str().find('\n'), compact.str().size() - 1);
}

// ---------------------------------------------- instrumentation accessors

TEST(SgnsInstrumentation, EpochDurationsMatchEpochLosses) {
  std::vector<embedding::Sequence> corpus;
  for (int s = 0; s < 20; ++s) {
    embedding::Sequence seq;
    for (int i = 0; i < 12; ++i) {
      seq.push_back("host" + std::to_string((s + i) % 6) + ".example");
    }
    corpus.push_back(std::move(seq));
  }
  embedding::SgnsParams params;
  params.epochs = 3;
  params.dim = 8;
  embedding::VocabularyParams vp;
  vp.min_count = 1;
  embedding::SgnsTrainer trainer(params, vp);
  trainer.fit(corpus);
  EXPECT_EQ(trainer.epoch_durations().size(), 3u);
  EXPECT_EQ(trainer.epoch_durations().size(), trainer.epoch_losses().size());
  for (double d : trainer.epoch_durations()) EXPECT_GE(d, 0.0);
}

// ------------------------------------------------------- exporter escaping

TEST(PrometheusExport, LabelValueEscaping) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help",
              {{"path", "C:\\tmp"}, {"quote", "a\"b"}, {"nl", "x\ny"}})
      .inc();
  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("path=\"C:\\\\tmp\""), std::string::npos) << text;
  EXPECT_NE(text.find("quote=\"a\\\"b\""), std::string::npos) << text;
  EXPECT_NE(text.find("nl=\"x\\ny\""), std::string::npos) << text;
  // The raw newline must not survive into the sample line.
  EXPECT_EQ(text.find("x\ny"), std::string::npos);
}

TEST(PrometheusExport, HelpEscapesBackslashAndNewlineButNotQuotes) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "a \"quoted\" word, a \\ and a\nbreak")
      .inc();
  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();
  auto help_pos = text.find("# HELP netobs_test_total ");
  ASSERT_NE(help_pos, std::string::npos);
  std::string help_line = text.substr(help_pos, text.find('\n', help_pos) - help_pos);
  // Exposition-format HELP rules: backslash and newline are escaped, quotes
  // are NOT (unlike label values).
  EXPECT_NE(help_line.find("a \"quoted\" word"), std::string::npos)
      << help_line;
  EXPECT_EQ(help_line.find("\\\""), std::string::npos) << help_line;
  EXPECT_NE(help_line.find("\\\\"), std::string::npos) << help_line;
  EXPECT_NE(help_line.find("a\\nbreak"), std::string::npos) << help_line;
}

TEST(Exporters, DumpFileErrorPaths) {
  MetricsRegistry reg;
  reg.counter("netobs_test_total", "help").inc();
  EXPECT_THROW(
      dump_metrics_file("/nonexistent-dir-xyz/metrics.json", reg),
      std::runtime_error);
  TraceBuffer buffer(8);
  EXPECT_THROW(dump_trace_file("/nonexistent-dir-xyz/trace.txt", buffer),
               std::runtime_error);

  // Success path: round-trip through a real file, format picked by extension.
  const std::string path =
      ::testing::TempDir() + "/netobs_obs_test_metrics.json";
  dump_metrics_file(path, reg);
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(balanced_json(buf.str()));
  EXPECT_NE(buf.str().find("netobs_test_total"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------- streaming estimators

TEST(RateEstimator, SlidingWindowRateAt) {
  RateEstimator est(10.0, 20);
  // 100 events spread over the first 5 seconds.
  for (int i = 0; i < 100; ++i) est.record_at(i * 0.05);
  // Read just after the burst: 100 events / 10s window = 10/s.
  EXPECT_NEAR(est.rate_at(5.0), 10.0, 1.0);
  // 9s later the burst is sliding out of the window.
  EXPECT_LT(est.rate_at(14.5), 10.0);
  // 20s later nothing remains.
  EXPECT_EQ(est.rate_at(30.0), 0.0);
}

TEST(RateEstimator, WeightedCounts) {
  RateEstimator est(5.0, 10);
  est.record_at(1.0, 50.0);
  est.record_at(1.2, 25.0);
  EXPECT_NEAR(est.rate_at(1.3), 75.0 / 5.0, 1e-9);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  q.observe(5.0);
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  q.observe(1.0);
  q.observe(3.0);
  EXPECT_EQ(q.count(), 3u);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);  // exact median of {1, 3, 5}
}

TEST(P2Quantile, ApproximatesUniformQuantiles) {
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  util::Pcg32 rng(7);
  for (int i = 0; i < 20000; ++i) {
    double x = rng.next_double();  // U(0, 1)
    p50.observe(x);
    p99.observe(x);
  }
  EXPECT_NEAR(p50.value(), 0.5, 0.05);
  EXPECT_NEAR(p99.value(), 0.99, 0.02);
  EXPECT_EQ(p50.count(), 20000u);
}

TEST(P2Quantile, DuplicateHeavyStreamsStayStable) {
  // A constant stream must never drift off the constant: every P² marker
  // sits on the same value, so the parabolic update has nothing to bend.
  P2Quantile constant(0.9);
  for (int i = 0; i < 5000; ++i) constant.observe(2.5);
  EXPECT_DOUBLE_EQ(constant.value(), 2.5);
  EXPECT_EQ(constant.count(), 5000u);

  // 90% duplicates at zero with a sparse positive tail — the degenerate
  // shape flight-recorder hop gauges see when most hops are sub-tick. The
  // median must stick to the duplicated mass and stay inside the support.
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  util::Pcg32 rng(11);
  for (int i = 0; i < 20000; ++i) {
    double x = (i % 10 == 0) ? rng.next_double() : 0.0;
    p50.observe(x);
    p99.observe(x);
  }
  EXPECT_NEAR(p50.value(), 0.0, 0.05);
  EXPECT_GE(p50.value(), 0.0);
  EXPECT_LE(p50.value(), 1.0);
  EXPECT_GE(p99.value(), 0.0);
  EXPECT_LE(p99.value(), 1.0);
}

TEST(StatsStream, RateGaugeAndQuantileGaugesPublishThroughHub) {
  MetricsRegistry reg;
  RateGauge rate(reg, "netobs_test_events_per_second", "help", {10.0});
  QuantileGauges lat(reg, "netobs_test_latency_seconds", "help", {0.5, 0.99});
  for (int i = 0; i < 50; ++i) rate.record();
  for (int i = 1; i <= 100; ++i) lat.observe(i * 0.001);

  // StatsHub::publish() runs both registered publishers; the gauges must
  // carry the estimator values afterwards.
  StatsHub::global().publish();
  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("netobs_test_events_per_second{window=\"10s\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("netobs_test_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("netobs_test_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos)
      << text;
  Gauge& p50 =
      reg.gauge("netobs_test_latency_seconds", "help", {{"quantile", "0.5"}});
  EXPECT_NEAR(p50.value(), 0.050, 0.01);
  Gauge& r10 = reg.gauge("netobs_test_events_per_second", "help",
                         {{"window", "10s"}});
  EXPECT_GT(r10.value(), 0.0);
}

// ------------------------------------------------------------------ logger

TEST(Logger, LevelFilterAndTextFields) {
  Logger logger;
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_format(LogFormat::kText);
  logger.set_level(LogLevel::kWarn);
  logger.set_site_limit_per_second(0);

  logger.log(LogLevel::kInfo, "test.site", "filtered out");
  EXPECT_TRUE(sink.str().empty());
  EXPECT_EQ(logger.emitted(), 0u);

  logger.log(LogLevel::kWarn, "test.site", "queue behind",
             {{"depth", "42"}, {"window", "10s"}});
  const std::string line = sink.str();
  EXPECT_EQ(logger.emitted(), 1u);
  EXPECT_NE(line.find("WARN"), std::string::npos) << line;
  EXPECT_NE(line.find("test.site queue behind"), std::string::npos) << line;
  EXPECT_NE(line.find("depth=42"), std::string::npos) << line;
  EXPECT_NE(line.find("window=10s"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(Logger, JsonLinesAreBalanced) {
  Logger logger;
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_format(LogFormat::kJson);
  logger.set_level(LogLevel::kDebug);
  logger.set_site_limit_per_second(0);

  logger.log(LogLevel::kError, "test.site", "a \"quoted\" failure",
             {{"path", "C:\\tmp"}});
  std::string line = sink.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing newline
  EXPECT_TRUE(balanced_json(line)) << line;
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"site\":\"test.site\""), std::string::npos) << line;
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos) << line;
  EXPECT_NE(line.find("C:\\\\tmp"), std::string::npos) << line;
}

TEST(Logger, PerSiteRateLimitSuppressesExcess) {
  Logger logger;
  std::ostringstream sink;
  logger.set_sink(&sink);
  logger.set_level(LogLevel::kDebug);
  logger.set_site_limit_per_second(2);

  for (int i = 0; i < 5; ++i) {
    logger.log(LogLevel::kInfo, "hot.site", "spam " + std::to_string(i));
  }
  // A different site has its own budget.
  logger.log(LogLevel::kInfo, "cold.site", "once");

  EXPECT_EQ(logger.emitted(), 3u);
  EXPECT_EQ(logger.suppressed(), 3u);
  const std::string out = sink.str();
  EXPECT_NE(out.find("spam 0"), std::string::npos);
  EXPECT_NE(out.find("spam 1"), std::string::npos);
  EXPECT_EQ(out.find("spam 2"), std::string::npos);
  EXPECT_NE(out.find("cold.site once"), std::string::npos);
}

// -------------------------------------------------------------- trace tree

TEST(TraceTree, RendersNestingAndPromotesOrphans) {
  TraceBuffer buffer(16);
  SpanRecord root;
  root.name = "pipeline";
  root.id = 1;
  root.start_seconds = 0.0;
  root.duration_seconds = 1.5;
  SpanRecord child;
  child.name = "ingest";
  child.id = 2;
  child.parent_id = 1;
  child.depth = 1;
  child.start_seconds = 0.1;
  child.duration_seconds = 0.0005;
  SpanRecord orphan;  // parent 99 was evicted from the ring
  orphan.name = "stray";
  orphan.id = 3;
  orphan.parent_id = 99;
  orphan.depth = 2;
  orphan.start_seconds = 0.2;
  orphan.duration_seconds = 0.25;
  buffer.push(child);
  buffer.push(orphan);
  buffer.push(root);

  std::ostringstream os;
  write_trace_tree(os, buffer);
  const std::string text = os.str();
  EXPECT_NE(text.find("trace buffer: 3 spans (dropped 0, capacity 16)"),
            std::string::npos)
      << text;
  // The child nests (indented) under its parent; the orphan prints as an
  // unindented root despite its recorded depth.
  EXPECT_NE(text.find("\npipeline  1.500s  @+0.0us\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("\n  ingest  500.0us"), std::string::npos) << text;
  EXPECT_NE(text.find("\nstray  250.000ms"), std::string::npos) << text;
  // Roots are ordered by start time: pipeline before stray.
  EXPECT_LT(text.find("pipeline"), text.find("stray"));
}

TEST(TraceTree, EmptyBufferPrintsHeaderOnly) {
  TraceBuffer buffer(4);
  std::ostringstream os;
  write_trace_tree(os, buffer);
  EXPECT_EQ(os.str(), "trace buffer: 0 spans (dropped 0, capacity 4)\n");
}

}  // namespace
}  // namespace netobs::obs
