// Deterministic spherical k-means — the coarse quantizer behind the IVF
// approximate kNN index (ivf_index.hpp).
//
// Rows are expected unit-norm (the kNN indexes normalise at build time), so
// "nearest centroid" under Euclidean distance is "largest dot product" and
// every assignment pass is a dot_block sweep over the centroid matrix.
// Lloyd iterations on an optional deterministic subsample keep paper-scale
// builds (470K rows) in seconds; the final assignment always covers every
// row. Everything is seeded through util::Pcg32 and the parallel assignment
// uses a fixed chunk grain with sequential reduction, so results are
// bit-identical for any thread-pool size (including none).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "embedding/matrix.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::embedding {

struct KmeansParams {
  std::size_t clusters = 0;  ///< k; must be >= 1 and <= rows
  int iterations = 8;        ///< Lloyd iterations over the training sample
  std::uint64_t seed = 2021;
  /// Rows used for the Lloyd iterations (deterministic sample without
  /// replacement); 0 = train on every row. The final assignment is always
  /// over all rows regardless.
  std::size_t train_sample = 131072;
};

struct KmeansResult {
  /// k unit-norm centroid rows (padded/aligned like any EmbeddingMatrix).
  EmbeddingMatrix centroids;
  /// assignment[r] = centroid of row r, for every input row.
  std::vector<std::uint32_t> assignment;
};

/// Index of the centroid with the largest dot product against `unit_row`
/// (ties by ascending centroid id). `unit_row` must point at
/// centroids.stride() floats, zero-padded and 32-byte aligned.
std::uint32_t nearest_centroid(const EmbeddingMatrix& centroids,
                               const float* unit_row);

/// Clusters the unit-norm rows of `rows` into params.clusters partitions.
/// `pool` (optional) parallelises the assignment passes; the output is
/// bit-identical with or without it. Throws std::invalid_argument when
/// params.clusters is 0 or exceeds rows.rows().
KmeansResult spherical_kmeans(const EmbeddingMatrix& rows, KmeansParams params,
                              util::ThreadPool* pool = nullptr);

/// Assigns every row of `rows` to its nearest centroid (the final pass of
/// spherical_kmeans, reusable for warm rebuilds against kept centroids).
std::vector<std::uint32_t> assign_to_centroids(const EmbeddingMatrix& rows,
                                               const EmbeddingMatrix& centroids,
                                               util::ThreadPool* pool = nullptr);

}  // namespace netobs::embedding
