// Classic libpcap capture files (the tcpdump format, magic 0xa1b2c3d4,
// LINKTYPE_ETHERNET), written and read without a libpcap dependency.
//
// Combined with net/frame.hpp this lets the observer pipeline consume and
// produce artifacts interoperable with standard tooling: synthetic traffic
// exported here opens in tcpdump/Wireshark, and the SNI observer can be
// pointed at a pcap instead of a live Packet stream.
#pragma once

#include <iosfwd>
#include <vector>

#include "net/packet.hpp"

namespace netobs::net {

/// Writes packets as Ethernet frames into a classic pcap stream.
/// Timestamps map to the epoch-seconds field; sub-second precision is not
/// modelled by the simulator (microseconds are written as 0).
void write_pcap(std::ostream& os, const std::vector<Packet>& packets);

/// Reads a classic pcap stream (both byte orders); non-IPv4 or corrupt
/// frames are skipped. Link-layer identity hints beyond the source MAC are
/// not on the wire, so subscriber_id is 0 on the way back.
std::vector<Packet> read_pcap(std::istream& is);

}  // namespace netobs::net
