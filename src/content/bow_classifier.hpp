// Multinomial Naive Bayes bag-of-words classifier — the "analyze the text"
// labeling baseline of Section 4 (in the spirit of the fastText-style
// linear classifiers the paper cites [Joulin et al. 2017]).
//
// Train on pages of ontology-labeled hostnames, then predict topic
// posteriors for pages of unlabeled (but crawlable) hostnames. Section 4's
// argument against this route — 67% of hostnames return nothing to crawl,
// and CDN/API endpoints never will — is measured by
// bench/baseline_content_labeling.
#pragma once

#include <cstdint>
#include <vector>

#include "content/page_model.hpp"

namespace netobs::content {

class NaiveBayesClassifier {
 public:
  /// vocab: token-id universe; classes: number of labels; alpha: Laplace
  /// smoothing.
  NaiveBayesClassifier(std::size_t vocab, std::size_t classes,
                       double alpha = 1.0);

  /// Adds a labeled training document.
  void add_document(const Document& doc, std::size_t label);

  /// Posterior distribution over classes for a document (sums to 1).
  std::vector<double> predict(const Document& doc) const;

  /// argmax of predict(); ties break to the lower class id.
  std::size_t predict_class(const Document& doc) const;

  std::size_t documents() const { return documents_; }
  std::size_t classes() const { return class_doc_count_.size(); }

 private:
  std::size_t vocab_;
  double alpha_;
  std::vector<std::vector<double>> word_count_;  // [class][token]
  std::vector<double> class_token_total_;
  std::vector<double> class_doc_count_;
  std::size_t documents_ = 0;
};

}  // namespace netobs::content
