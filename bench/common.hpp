// Shared scaffolding for the benchmark binaries: a paper-scale synthetic
// world (34 topics / 1397-category ontology / 328 flat categories, as in
// Section 5.4) and simple --key=value CLI overrides so each figure can be
// re-run at larger or smaller scale.
//
// Scale note: the study had 1329 users over one month; the default bench
// scale (300 users, ~10 days) reproduces every distributional *shape* in
// minutes on one core. Pass --users/--days/--seed to change.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_stream.hpp"
#include "obs/trace.hpp"
#include "ontology/category_tree.hpp"
#include "synth/browsing.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"
#include "util/simd.hpp"

namespace netobs::bench {

struct BenchConfig {
  BenchConfig() = default;
  /// Bench defaults are spelled `{users, days, seed, metrics_out}` at every
  /// call site; the telemetry fields below are flag-driven only.
  BenchConfig(std::size_t u, std::int64_t d, std::uint64_t s,
              std::string metrics = "")
      : users(u), days(d), seed(s), metrics_out(std::move(metrics)) {}

  std::size_t users = 300;
  std::int64_t days = 10;
  std::uint64_t seed = 2021;
  /// When non-empty, the run dumps the metrics registry here on exit
  /// (".json" → pretty JSON, anything else → Prometheus text format).
  std::string metrics_out;
  /// When non-empty, tracing is enabled and the span tree is dumped here on
  /// exit (see obs::write_trace_tree).
  std::string trace_out;
  /// When >= 0, serve_telemetry() starts the embedded HTTP endpoint on this
  /// port (0 = ephemeral) and hold_if_serving() blocks at the end of the run.
  int serve_port = -1;
};

inline BenchConfig parse_config(int argc, char** argv, BenchConfig defaults) {
  BenchConfig cfg = defaults;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& key) -> const char* {
      if (arg.rfind(key, 0) == 0) return arg.c_str() + key.size();
      return nullptr;
    };
    if (const char* v = value_of("--users=")) {
      cfg.users = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v2 = value_of("--days=")) {
      cfg.days = std::strtoll(v2, nullptr, 10);
    } else if (const char* v3 = value_of("--seed=")) {
      cfg.seed = std::strtoull(v3, nullptr, 10);
    } else if (const char* v4 = value_of("--metrics-out=")) {
      cfg.metrics_out = v4;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      cfg.metrics_out = argv[++i];
    } else if (const char* v5 = value_of("--trace-out=")) {
      cfg.trace_out = v5;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      cfg.trace_out = argv[++i];
    } else if (const char* v6 = value_of("--serve-telemetry=")) {
      cfg.serve_port = static_cast<int>(std::strtol(v6, nullptr, 10));
    } else if (arg == "--serve-telemetry" && i + 1 < argc) {
      cfg.serve_port = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--help") {
      std::cout << "usage: " << argv[0]
                << " [--users=N] [--days=N] [--seed=N] [--metrics-out=PATH]"
                   " [--trace-out=PATH] [--serve-telemetry=PORT]\n";
      std::exit(0);
    }
  }
  if (!cfg.trace_out.empty()) {
    obs::MetricsRegistry::global().enable_tracing(8192);
  }
  return cfg;
}

/// Writes the global metrics registry to cfg.metrics_out and the span tree
/// to cfg.trace_out (each a no-op when its flag was not given). Derived
/// gauges (rates, quantiles) are flushed through the StatsHub first so the
/// dump matches what a live scrape would see. Call once at the end of
/// main(). An unwritable path exits 1 with a message instead of aborting on
/// the uncaught exception.
inline void dump_telemetry(const BenchConfig& cfg) {
  if (cfg.metrics_out.empty() && cfg.trace_out.empty()) return;
  obs::StatsHub::global().publish();
  if (!cfg.metrics_out.empty()) {
    try {
      obs::dump_metrics_file(cfg.metrics_out);
    } catch (const std::exception& e) {
      std::cerr << "[metrics] " << e.what() << "\n";
      std::exit(1);
    }
    std::cout << "[metrics] wrote " << cfg.metrics_out << "\n";
  }
  if (!cfg.trace_out.empty()) {
    const obs::TraceBuffer* buffer =
        obs::MetricsRegistry::global().trace_buffer();
    if (buffer == nullptr) {
      std::cerr << "[trace] tracing not enabled\n";
      std::exit(1);
    }
    try {
      obs::dump_trace_file(cfg.trace_out, *buffer);
    } catch (const std::exception& e) {
      std::cerr << "[trace] " << e.what() << "\n";
      std::exit(1);
    }
    std::cout << "[trace] wrote " << cfg.trace_out << "\n";
  }
}

/// Starts the embedded telemetry endpoint when --serve-telemetry was given;
/// returns nullptr otherwise. The /statusz page carries the run
/// configuration and host facts so a scrape identifies the process.
inline std::unique_ptr<obs::HttpServer> serve_telemetry(
    const BenchConfig& cfg) {
  if (cfg.serve_port < 0) return nullptr;
  obs::HttpServerOptions options;
  options.port = static_cast<std::uint16_t>(cfg.serve_port);
  options.status_info = {
      {"simd_tier", util::simd::tier_name(util::simd::active_tier())},
      {"hardware_threads", std::to_string(std::thread::hardware_concurrency())},
      {"users", std::to_string(cfg.users)},
      {"days", std::to_string(cfg.days)},
      {"seed", std::to_string(cfg.seed)},
  };
  auto server = std::make_unique<obs::HttpServer>(std::move(options));
  std::uint16_t port = server->start();
  std::cout << "[telemetry] serving http://127.0.0.1:" << port
            << " (/metrics /healthz /tracez /statusz)\n";
  return server;
}

/// Publishes a live /statusz provider from any object exposing
/// knn_status() (profile::ProfilingService): active kNN backend, IVF
/// geometry and the int8 SIMD tier, re-read on every scrape so backend
/// swaps across retrains stay visible. No-op without a server. The service
/// must outlive the server.
template <typename Service>
inline void attach_knn_status(const std::unique_ptr<obs::HttpServer>& server,
                              const Service& service) {
  if (server == nullptr) return;
  server->add_status_provider([&service] { return service.knn_status(); });
}

/// Publishes a live /statusz row from any object exposing status() as a
/// one-line string (net::IngestPipeline): shard count, queue depth,
/// delivered/dropped totals, distinct users/hostnames — re-read on every
/// scrape. No-op without a server. The pipeline must outlive the server.
template <typename Pipeline>
inline void attach_ingest_status(
    const std::unique_ptr<obs::HttpServer>& server,
    const Pipeline& pipeline) {
  if (server == nullptr) return;
  server->add_status_provider([&pipeline] {
    return std::vector<std::pair<std::string, std::string>>{
        {"ingest", pipeline.status()}};
  });
}

/// Publishes the session store's live /statusz rows from any object
/// exposing store_status() (profile::ProfilingService): resident users,
/// payload vs budget, eviction totals and the coldest last-seen watermark —
/// re-read on every scrape so budget pressure and eviction sweeps are
/// visible while the process runs. No-op without a server. The service must
/// outlive the server.
template <typename Service>
inline void attach_store_status(
    const std::unique_ptr<obs::HttpServer>& server, const Service& service) {
  if (server == nullptr) return;
  server->add_status_provider([&service] { return service.store_status(); });
}

/// Blocks until stdin closes (EOF / Ctrl-D) so a user can curl the endpoint
/// after the run's work is done. No-op when the server was not started.
inline void hold_if_serving(const std::unique_ptr<obs::HttpServer>& server) {
  if (server == nullptr || !server->running()) return;
  std::cout << "[telemetry] run finished; endpoint stays up until EOF on "
               "stdin (Ctrl-D to exit)\n";
  std::cin.ignore(std::numeric_limits<std::streamsize>::max());
}

/// Wall-times one named bench stage through the shared obs clock path: the
/// duration lands in netobs_bench_stage_seconds{stage=...} AND is returned
/// for printing, so bench-reported numbers and exported metrics agree.
class StageTimer {
 public:
  explicit StageTimer(std::string stage)
      : stage_(std::move(stage)),
        timer_(&obs::MetricsRegistry::global().histogram(
            "netobs_bench_stage_seconds", "Wall time of bench stages",
            obs::default_latency_buckets(), {{"stage", stage_}})) {}

  /// Records once; returns elapsed seconds.
  double stop() { return timer_.stop(); }

  /// stop() + a one-line "[time] stage: 1.234 s" report.
  double stop_and_report() {
    double s = stop();
    std::cout << "[time] " << stage_ << ": " << s << " s\n";
    return s;
  }

 private:
  std::string stage_;
  obs::ScopedTimer timer_;
};

/// Owns the ontology + universe + population (the space holds a pointer to
/// the tree, so everything lives behind stable unique_ptrs).
struct BenchWorld {
  std::unique_ptr<ontology::CategoryTree> tree;
  std::unique_ptr<ontology::CategorySpace> space;
  std::unique_ptr<synth::HostnameUniverse> universe;
  std::unique_ptr<synth::UserPopulation> population;
};

inline BenchWorld make_world(const BenchConfig& cfg,
                             synth::WorldParams wp = synth::WorldParams()) {
  BenchWorld w;
  util::Pcg32 tree_rng(cfg.seed, 0x7ee);
  w.tree = std::make_unique<ontology::CategoryTree>(
      ontology::make_adwords_like_tree(tree_rng));
  w.space = std::make_unique<ontology::CategorySpace>(*w.tree);

  wp.seed = cfg.seed;
  w.universe = std::make_unique<synth::HostnameUniverse>(*w.space, wp);

  synth::PopulationParams pp;
  pp.num_users = cfg.users;
  pp.seed = cfg.seed + 1;
  w.population = std::make_unique<synth::UserPopulation>(
      w.universe->topic_count(), pp);
  return w;
}

inline void print_scale_note(const BenchConfig& cfg,
                             const BenchWorld& world) {
  std::cout << "[scale] users=" << cfg.users << " days=" << cfg.days
            << " seed=" << cfg.seed
            << " | universe=" << world.universe->size() << " hostnames, "
            << world.universe->topic_count() << " topics, "
            << world.space->size() << " categories (paper: 1329 users, "
            << "470K hostnames, 34 topics, 328 categories)\n";
}

}  // namespace netobs::bench
