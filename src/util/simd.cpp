#include "util/simd.hpp"

#include <cmath>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define NETOBS_X86 1
#include <immintrin.h>
#else
#define NETOBS_X86 0
#endif

namespace netobs::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier: emulates the 8-lane FMA accumulation of the AVX2 tier with
// std::fma so the two tiers are bit-identical (the canonical order the file
// header documents). This is the portable reference, not a naive loop.
// ---------------------------------------------------------------------------

float dot_scalar(const float* a, const float* b, std::size_t n) {
  float acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      acc[l] = std::fma(a[i + l], b[i + l], acc[l]);
    }
  }
  for (std::size_t l = 0; i + l < n; ++l) {
    acc[l] = std::fma(a[i + l], b[i + l], acc[l]);
  }
  return ((acc[0] + acc[4]) + (acc[2] + acc[6])) +
         ((acc[1] + acc[5]) + (acc[3] + acc[7]));
}

void axpy_scalar(float alpha, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_scalar(float* x, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void fused_scalar(float g, const float* in, float* out, float* grad,
                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = std::fma(g, out[i], grad[i]);
    out[i] = std::fma(g, in[i], out[i]);
  }
}

void dot_block_scalar(const float* q, const float* base, std::size_t stride,
                      std::size_t nrows, float* out) {
  for (std::size_t r = 0; r < nrows; ++r) {
    out[r] = dot_scalar(q, base + r * stride, stride);
  }
}

std::uint64_t mask_ge_scalar(const float* x, std::size_t n, float threshold) {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    m |= static_cast<std::uint64_t>(x[i] >= threshold) << i;
  }
  return m;
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::size_t n) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

void dot_i8_block_scalar(const std::int8_t* q, const std::int8_t* base,
                         std::size_t stride, std::size_t nrows,
                         std::int32_t* out) {
  for (std::size_t r = 0; r < nrows; ++r) {
    out[r] = dot_i8_scalar(q, base + r * stride, stride);
  }
}

#if NETOBS_X86

// ---------------------------------------------------------------------------
// SSE2 tier: 4 lanes, separate multiply and add (no FMA in the ISA), so it
// matches the other tiers only to rounding.
// ---------------------------------------------------------------------------

inline float hsum128(__m128 v) {
  __m128 sh = _mm_movehl_ps(v, v);          // [l2, l3, ., .]
  v = _mm_add_ps(v, sh);                    // [l0+l2, l1+l3, ., .]
  sh = _mm_shuffle_ps(v, v, 0x55);          // lane 1
  v = _mm_add_ss(v, sh);                    // (l0+l2) + (l1+l3)
  return _mm_cvtss_f32(v);
}

float dot_sse2(const float* a, const float* b, std::size_t n) {
  __m128 acc = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  alignas(16) float ta[4] = {};
  alignas(16) float tb[4] = {};
  for (std::size_t l = 0; i + l < n; ++l) {
    ta[l] = a[i + l];
    tb[l] = b[i + l];
  }
  if (i < n) {
    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_load_ps(ta), _mm_load_ps(tb)));
  }
  return hsum128(acc);
}

void axpy_sse2(float alpha, const float* x, float* y, std::size_t n) {
  __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vy = _mm_loadu_ps(y + i);
    vy = _mm_add_ps(vy, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
    _mm_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_sse2(float* x, float alpha, std::size_t n) {
  __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void fused_sse2(float g, const float* in, float* out, float* grad,
                std::size_t n) {
  __m128 vg = _mm_set1_ps(g);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128 vo = _mm_loadu_ps(out + i);
    __m128 vgr = _mm_loadu_ps(grad + i);
    vgr = _mm_add_ps(vgr, _mm_mul_ps(vg, vo));
    vo = _mm_add_ps(vo, _mm_mul_ps(vg, _mm_loadu_ps(in + i)));
    _mm_storeu_ps(grad + i, vgr);
    _mm_storeu_ps(out + i, vo);
  }
  for (; i < n; ++i) {
    grad[i] += g * out[i];
    out[i] += g * in[i];
  }
}

void dot_block_sse2(const float* q, const float* base, std::size_t stride,
                    std::size_t nrows, float* out) {
  std::size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const float* r0 = base + (r + 0) * stride;
    const float* r1 = base + (r + 1) * stride;
    const float* r2 = base + (r + 2) * stride;
    const float* r3 = base + (r + 3) * stride;
    __m128 a0 = _mm_setzero_ps(), a1 = _mm_setzero_ps();
    __m128 a2 = _mm_setzero_ps(), a3 = _mm_setzero_ps();
    for (std::size_t i = 0; i < stride; i += 4) {
      __m128 vq = _mm_load_ps(q + i);
      a0 = _mm_add_ps(a0, _mm_mul_ps(vq, _mm_load_ps(r0 + i)));
      a1 = _mm_add_ps(a1, _mm_mul_ps(vq, _mm_load_ps(r1 + i)));
      a2 = _mm_add_ps(a2, _mm_mul_ps(vq, _mm_load_ps(r2 + i)));
      a3 = _mm_add_ps(a3, _mm_mul_ps(vq, _mm_load_ps(r3 + i)));
    }
    out[r + 0] = hsum128(a0);
    out[r + 1] = hsum128(a1);
    out[r + 2] = hsum128(a2);
    out[r + 3] = hsum128(a3);
  }
  for (; r < nrows; ++r) {
    __m128 a0 = _mm_setzero_ps();
    const float* row = base + r * stride;
    for (std::size_t i = 0; i < stride; i += 4) {
      a0 = _mm_add_ps(a0, _mm_mul_ps(_mm_load_ps(q + i), _mm_load_ps(row + i)));
    }
    out[r] = hsum128(a0);
  }
}

std::int32_t dot_i8_sse2(const std::int8_t* a, const std::int8_t* b,
                         std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // SSE2 has no int8 multiply: sign-extend both operands to int16 (the
    // cmpgt mask is 0xFF exactly for negative lanes) and use the int16
    // multiply-add, which pairs into exact int32 partial sums.
    __m128i sa = _mm_cmpgt_epi8(zero, va);
    __m128i sb = _mm_cmpgt_epi8(zero, vb);
    __m128i a_lo = _mm_unpacklo_epi8(va, sa);
    __m128i a_hi = _mm_unpackhi_epi8(va, sa);
    __m128i b_lo = _mm_unpacklo_epi8(vb, sb);
    __m128i b_hi = _mm_unpackhi_epi8(vb, sb);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, b_lo));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, b_hi));
  }
  alignas(16) std::int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  std::int32_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

/// Sign-extends both 8-byte halves of an int8 vector to int16.
inline void widen_i8_sse2(__m128i v, __m128i zero, __m128i* lo, __m128i* hi) {
  __m128i sign = _mm_cmpgt_epi8(zero, v);
  *lo = _mm_unpacklo_epi8(v, sign);
  *hi = _mm_unpackhi_epi8(v, sign);
}

void dot_i8_block_sse2(const std::int8_t* q, const std::int8_t* base,
                       std::size_t stride, std::size_t nrows,
                       std::int32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t r = 0;
  // Four independent row accumulators: the widened query registers are
  // loaded once per 16-byte chunk and reused across all four rows, and the
  // independent madd chains keep the integer pipes busy. Integer adds are
  // associative, so any leftover rows through dot_i8_sse2 (and the scalar
  // column tail) give the same exact int32 as the scalar tier.
  for (; r + 4 <= nrows; r += 4) {
    const std::int8_t* r0 = base + (r + 0) * stride;
    const std::int8_t* r1 = base + (r + 1) * stride;
    const std::int8_t* r2 = base + (r + 2) * stride;
    const std::int8_t* r3 = base + (r + 3) * stride;
    __m128i a0 = _mm_setzero_si128(), a1 = _mm_setzero_si128();
    __m128i a2 = _mm_setzero_si128(), a3 = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= stride; i += 16) {
      __m128i vq =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
      __m128i q_lo, q_hi;
      widen_i8_sse2(vq, zero, &q_lo, &q_hi);
      auto row_madd = [&](const std::int8_t* row, __m128i acc) {
        __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
        __m128i b_lo, b_hi;
        widen_i8_sse2(vb, zero, &b_lo, &b_hi);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(q_lo, b_lo));
        return _mm_add_epi32(acc, _mm_madd_epi16(q_hi, b_hi));
      };
      a0 = row_madd(r0, a0);
      a1 = row_madd(r1, a1);
      a2 = row_madd(r2, a2);
      a3 = row_madd(r3, a3);
    }
    alignas(16) std::int32_t lanes[4];
    const std::int8_t* rows[4] = {r0, r1, r2, r3};
    const __m128i accs[4] = {a0, a1, a2, a3};
    for (std::size_t k = 0; k < 4; ++k) {
      _mm_store_si128(reinterpret_cast<__m128i*>(lanes), accs[k]);
      std::int32_t sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
      for (std::size_t j = i; j < stride; ++j) {
        sum += static_cast<std::int32_t>(q[j]) *
               static_cast<std::int32_t>(rows[k][j]);
      }
      out[r + k] = sum;
    }
  }
  for (; r < nrows; ++r) {
    out[r] = dot_i8_sse2(q, base + r * stride, stride);
  }
}

std::uint64_t mask_ge_sse2(const float* x, std::size_t n, float threshold) {
  std::uint64_t m = 0;
  __m128 vt = _mm_set1_ps(threshold);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    unsigned bits = static_cast<unsigned>(
        _mm_movemask_ps(_mm_cmpge_ps(_mm_loadu_ps(x + i), vt)));
    m |= static_cast<std::uint64_t>(bits) << i;
  }
  for (; i < n; ++i) {
    m |= static_cast<std::uint64_t>(x[i] >= threshold) << i;
  }
  return m;
}

// ---------------------------------------------------------------------------
// AVX2+FMA tier. One 8-lane accumulator per row keeps the per-row lane
// assignment identical to the scalar tier; dot_block gets its instruction-
// level parallelism from four independent row chains, not from unrolling a
// single row (which would change the accumulation order).
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);            // [l0+l4, l1+l5, l2+l6, l3+l7]
  __m128 sh = _mm_movehl_ps(s, s);
  s = _mm_add_ps(s, sh);
  sh = _mm_shuffle_ps(s, s, 0x55);
  s = _mm_add_ss(s, sh);
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2,fma"))) float dot_avx2(const float* a,
                                                   const float* b,
                                                   std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  if (i < n) {
    // Tail through a zero-padded block so the elements land in the same
    // lanes a padded row sweep would use.
    alignas(32) float ta[kLanes] = {};
    alignas(32) float tb[kLanes] = {};
    for (std::size_t l = 0; i + l < n; ++l) {
      ta[l] = a[i + l];
      tb[l] = b[i + l];
    }
    acc = _mm256_fmadd_ps(_mm256_load_ps(ta), _mm256_load_ps(tb), acc);
  }
  return hsum256(acc);
}

__attribute__((target("avx2,fma"))) void axpy_avx2(float alpha, const float* x,
                                                   float* y, std::size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256 vy = _mm256_loadu_ps(y + i);
    vy = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy);
    _mm256_storeu_ps(y + i, vy);
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

__attribute__((target("avx2,fma"))) void scale_avx2(float* x, float alpha,
                                                    std::size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

__attribute__((target("avx2,fma"))) void fused_avx2(float g, const float* in,
                                                    float* out, float* grad,
                                                    std::size_t n) {
  __m256 vg = _mm256_set1_ps(g);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    __m256 vo = _mm256_loadu_ps(out + i);
    __m256 vgr = _mm256_loadu_ps(grad + i);
    vgr = _mm256_fmadd_ps(vg, vo, vgr);
    vo = _mm256_fmadd_ps(vg, _mm256_loadu_ps(in + i), vo);
    _mm256_storeu_ps(grad + i, vgr);
    _mm256_storeu_ps(out + i, vo);
  }
  for (; i < n; ++i) {
    grad[i] = std::fma(g, out[i], grad[i]);
    out[i] = std::fma(g, in[i], out[i]);
  }
}

__attribute__((target("avx2,fma"))) void dot_block_avx2(
    const float* q, const float* base, std::size_t stride, std::size_t nrows,
    float* out) {
  std::size_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const float* r0 = base + (r + 0) * stride;
    const float* r1 = base + (r + 1) * stride;
    const float* r2 = base + (r + 2) * stride;
    const float* r3 = base + (r + 3) * stride;
    __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
    __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
    for (std::size_t i = 0; i < stride; i += kLanes) {
      __m256 vq = _mm256_load_ps(q + i);
      a0 = _mm256_fmadd_ps(vq, _mm256_load_ps(r0 + i), a0);
      a1 = _mm256_fmadd_ps(vq, _mm256_load_ps(r1 + i), a1);
      a2 = _mm256_fmadd_ps(vq, _mm256_load_ps(r2 + i), a2);
      a3 = _mm256_fmadd_ps(vq, _mm256_load_ps(r3 + i), a3);
    }
    out[r + 0] = hsum256(a0);
    out[r + 1] = hsum256(a1);
    out[r + 2] = hsum256(a2);
    out[r + 3] = hsum256(a3);
  }
  for (; r < nrows; ++r) {
    __m256 a0 = _mm256_setzero_ps();
    const float* row = base + r * stride;
    for (std::size_t i = 0; i < stride; i += kLanes) {
      a0 = _mm256_fmadd_ps(_mm256_load_ps(q + i), _mm256_load_ps(row + i), a0);
    }
    out[r] = hsum256(a0);
  }
}

__attribute__((target("avx2,fma"))) std::uint64_t mask_ge_avx2(
    const float* x, std::size_t n, float threshold) {
  std::uint64_t m = 0;
  __m256 vt = _mm256_set1_ps(threshold);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    unsigned bits = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_cmp_ps(_mm256_loadu_ps(x + i), vt, _CMP_GE_OQ)));
    m |= static_cast<std::uint64_t>(bits) << i;
  }
  for (; i < n; ++i) {
    m |= static_cast<std::uint64_t>(x[i] >= threshold) << i;
  }
  return m;
}

__attribute__((target("avx2"))) std::int32_t dot_i8_avx2(const std::int8_t* a,
                                                         const std::int8_t* b,
                                                         std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // Widen each 16-byte half to int16 and multiply-add into int32 lanes;
    // exact integer arithmetic, so lane/summation order is irrelevant.
    __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  alignas(32) std::int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int32_t sum = 0;
  for (std::int32_t lane : lanes) sum += lane;
  for (; i < n; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

/// One 32-byte chunk of one row folded into its int32 accumulator against
/// the pre-widened query halves. (File-scope with its own target attribute:
/// lambdas do not inherit the enclosing function's target in GCC.)
__attribute__((target("avx2"))) inline __m256i row_madd_avx2(
    const std::int8_t* row, std::size_t i, __m256i q_lo, __m256i q_hi,
    __m256i acc) {
  __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
  __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
  __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(q_lo, b_lo));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(q_hi, b_hi));
}

__attribute__((target("avx2"))) void dot_i8_block_avx2(
    const std::int8_t* q, const std::int8_t* base, std::size_t stride,
    std::size_t nrows, std::int32_t* out) {
  std::size_t r = 0;
  // Same shape as the SSE2 block kernel: widen the query chunk once, feed
  // four independent per-row madd chains. Exact int32 arithmetic, so the
  // result matches the scalar tier bit for bit regardless of order.
  for (; r + 4 <= nrows; r += 4) {
    const std::int8_t* r0 = base + (r + 0) * stride;
    const std::int8_t* r1 = base + (r + 1) * stride;
    const std::int8_t* r2 = base + (r + 2) * stride;
    const std::int8_t* r3 = base + (r + 3) * stride;
    __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
    __m256i a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= stride; i += 32) {
      __m256i vq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
      __m256i q_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vq));
      __m256i q_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vq, 1));
      a0 = row_madd_avx2(r0, i, q_lo, q_hi, a0);
      a1 = row_madd_avx2(r1, i, q_lo, q_hi, a1);
      a2 = row_madd_avx2(r2, i, q_lo, q_hi, a2);
      a3 = row_madd_avx2(r3, i, q_lo, q_hi, a3);
    }
    alignas(32) std::int32_t lanes[8];
    const std::int8_t* rows[4] = {r0, r1, r2, r3};
    const __m256i accs[4] = {a0, a1, a2, a3};
    for (std::size_t k = 0; k < 4; ++k) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), accs[k]);
      std::int32_t sum = 0;
      for (std::int32_t lane : lanes) sum += lane;
      for (std::size_t j = i; j < stride; ++j) {
        sum += static_cast<std::int32_t>(q[j]) *
               static_cast<std::int32_t>(rows[k][j]);
      }
      out[r + k] = sum;
    }
  }
  for (; r < nrows; ++r) {
    out[r] = dot_i8_avx2(q, base + r * stride, stride);
  }
}

#endif  // NETOBS_X86

struct Kernels {
  float (*dot)(const float*, const float*, std::size_t);
  void (*axpy)(float, const float*, float*, std::size_t);
  void (*scale)(float*, float, std::size_t);
  void (*fused)(float, const float*, float*, float*, std::size_t);
  void (*dot_block)(const float*, const float*, std::size_t, std::size_t,
                    float*);
  std::uint64_t (*mask_ge)(const float*, std::size_t, float);
  std::int32_t (*dot_i8)(const std::int8_t*, const std::int8_t*, std::size_t);
  void (*dot_i8_block)(const std::int8_t*, const std::int8_t*, std::size_t,
                       std::size_t, std::int32_t*);
};

Kernels kernels_for(Tier tier) {
#if NETOBS_X86
  switch (tier) {
    case Tier::kAvx2:
      return {dot_avx2,     axpy_avx2,    scale_avx2,
              fused_avx2,   dot_block_avx2, mask_ge_avx2,
              dot_i8_avx2,  dot_i8_block_avx2};
    case Tier::kSse2:
      return {dot_sse2,     axpy_sse2,    scale_sse2,
              fused_sse2,   dot_block_sse2, mask_ge_sse2,
              dot_i8_sse2,  dot_i8_block_sse2};
    case Tier::kScalar:
      break;
  }
#else
  (void)tier;
#endif
  return {dot_scalar,     axpy_scalar,    scale_scalar,
          fused_scalar,   dot_block_scalar, mask_ge_scalar,
          dot_i8_scalar,  dot_i8_block_scalar};
}

struct Dispatch {
  Tier tier;
  Kernels k;
};

Dispatch& dispatch() {
  static Dispatch d{best_supported_tier(), kernels_for(best_supported_tier())};
  return d;
}

}  // namespace

Tier best_supported_tier() {
#if NETOBS_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
  return Tier::kSse2;  // baseline on x86-64
#else
  return Tier::kScalar;
#endif
}

Tier active_tier() { return dispatch().tier; }

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kSse2:
      return "sse2";
    case Tier::kScalar:
      return "scalar";
  }
  return "unknown";
}

Tier force_tier(Tier tier) {
  Tier best = best_supported_tier();
  if (static_cast<int>(tier) > static_cast<int>(best)) tier = best;
  dispatch().tier = tier;
  dispatch().k = kernels_for(tier);
  return tier;
}

float dot(const float* a, const float* b, std::size_t n) {
  return dispatch().k.dot(a, b, n);
}

void axpy(float alpha, const float* x, float* y, std::size_t n) {
  dispatch().k.axpy(alpha, x, y, n);
}

void scale(float* x, float alpha, std::size_t n) {
  dispatch().k.scale(x, alpha, n);
}

void fused_grad_update(float g, const float* in, float* out, float* grad,
                       std::size_t n) {
  dispatch().k.fused(g, in, out, grad, n);
}

void dot_block(const float* q, const float* base, std::size_t stride,
               std::size_t nrows, float* out) {
  dispatch().k.dot_block(q, base, stride, nrows, out);
}

std::uint64_t mask_ge(const float* x, std::size_t n, float threshold) {
  return dispatch().k.mask_ge(x, n, threshold);
}

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::size_t n) {
  return dispatch().k.dot_i8(a, b, n);
}

void dot_i8_block(const std::int8_t* q, const std::int8_t* base,
                  std::size_t stride, std::size_t nrows, std::int32_t* out) {
  dispatch().k.dot_i8_block(q, base, stride, nrows, out);
}

}  // namespace netobs::util::simd
