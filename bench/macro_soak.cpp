// Macro soak: a simulated operational day against the interned, budgeted,
// shard-affine session store at million-user scale (the ISSUE-10 tentpole
// acceptance run). Writes a flat BENCH_macro.json that
// check_bench_regression --macro-baseline validates.
//
// Shape of the run:
//   1. Day 0: a small synthetic population browses (synth::BrowsingSimulator)
//      and the service trains its SKIPGRAM model on that day — so the soak's
//      profile queries exercise the real kNN path.
//   2. Day 1: `--users` synthetic users (default 1M) stream deterministic
//      hash-derived interned events through the lock-free shard-affine lane
//      (one writer thread per store shard, ProfilingService::
//      ingest_interned_shard), in 10-sim-minute slices. At each slice
//      boundary the writers quiesce and the epoch work runs:
//      store.enforce_budget(now) (the hard memory budget), a batched +
//      per-user profile pass over a sample of active users (p50/p99
//      latency), and periodically an eviction-correctness audit — a user
//      active within the eviction lookback must never have been evicted.
//
// Recorded: bytes/user (gated <= 8000 — the deque-of-strings seed measured
// ~23.6 KB/user), RSS, ingest pps, profile p50/p99, event loss (must be 0),
// eviction counters and audit violations (must be 0), under-budget at end.
//
// The default scale needs ~1 GB RAM and a few minutes; `--users=50000` is
// the ctest smoke scale (-DNETOBS_MACRO_BENCH=ON).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "bench/ingest_baseline.hpp"
#include "filter/blocklist.hpp"
#include "net/ingest.hpp"
#include "profile/service.hpp"
#include "synth/browsing.hpp"

namespace {

using namespace netobs;

struct SoakConfig {
  std::size_t users = 1000000;
  std::size_t shards = 4;
  std::size_t slices = 144;          ///< 10-sim-minute epochs over day 1
  std::size_t budget_per_user = 320; ///< store budget = users * this
  std::size_t train_users = 1500;    ///< day-0 synthetic population
  std::uint64_t seed = 2021;
  std::string out = "BENCH_macro.json";
};

/// splitmix64-style mix for the deterministic per-(user, slice) activity
/// and host draws — no global RNG state, so shard threads never contend.
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ULL + b * 0xBF58476D1CE4E5B9ULL +
                    c * 0x94D049BB133111EBULL;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double rss_mb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  SoakConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const char* key) -> const char* {
      return arg.rfind(key, 0) == 0 ? arg.c_str() + std::string(key).size()
                                    : nullptr;
    };
    if (const char* v = value_of("--users=")) {
      cfg.users = std::strtoull(v, nullptr, 10);
    } else if (const char* v2 = value_of("--shards=")) {
      cfg.shards = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = value_of("--slices=")) {
      cfg.slices = std::strtoull(v3, nullptr, 10);
    } else if (const char* v4 = value_of("--budget-per-user=")) {
      cfg.budget_per_user = std::strtoull(v4, nullptr, 10);
    } else if (const char* v5 = value_of("--train-users=")) {
      cfg.train_users = std::strtoull(v5, nullptr, 10);
    } else if (const char* v6 = value_of("--seed=")) {
      cfg.seed = std::strtoull(v6, nullptr, 10);
    } else if (const char* v7 = value_of("--out=")) {
      cfg.out = v7;
    } else if (arg == "--help") {
      std::cout << "usage: " << argv[0]
                << " [--users=N] [--shards=N] [--slices=N]"
                   " [--budget-per-user=BYTES] [--train-users=N] [--seed=N]"
                   " [--out=PATH]\n";
      return 0;
    }
  }

  auto t_total = std::chrono::steady_clock::now();

  // --- world + day-0 training ---------------------------------------------
  bench::BenchConfig world_cfg{cfg.train_users, 1, cfg.seed, ""};
  bench::BenchWorld world = bench::make_world(world_cfg);
  ontology::HostLabeler labeler = world.universe->make_labeler();
  filter::Blocklist blocklist;
  blocklist.add_hosts_file("trackers", world.universe->tracker_hosts_file());

  util::InternPool pool;
  profile::ServiceParams sp;
  sp.profiler.knn = 50;
  sp.vocab.min_count = 2;
  sp.sgns.epochs = 5;
  sp.store.shards = cfg.shards;
  sp.store.external_pool = &pool;
  sp.store.memory_budget_bytes = cfg.users * cfg.budget_per_user;
  // Shorter than the 2-day training horizon on purpose: the soak covers one
  // day, so a training-lookback guard would never fire and the budget could
  // never be enforced. The audit below still proves the invariant the
  // lookback exists for: no user active inside it is ever evicted.
  sp.store.eviction_lookback = 2 * util::kHour;
  profile::ProfilingService service(labeler, &blocklist, sp);

  std::cout << "[soak] users=" << cfg.users << " shards=" << cfg.shards
            << " slices=" << cfg.slices
            << " budget=" << sp.store.memory_budget_bytes / (1024 * 1024)
            << " MB (" << cfg.budget_per_user << " B/user)\n";

  {
    bench::StageTimer timer("soak_train");
    synth::BrowsingSimulator sim(*world.universe, *world.population);
    auto trace = sim.simulate(0, 1);
    service.ingest(trace.events);
    if (!service.retrain(0)) {
      std::cerr << "[soak] day-0 retrain failed\n";
      return 1;
    }
    timer.stop_and_report();
  }

  // Pre-intern every universe hostname once; the soak then hands the store
  // nothing but 16-byte InternedEvents, exactly like the ingest pipeline's
  // shard_sink lane.
  std::vector<util::InternPool::Id> host_ids;
  std::vector<std::uint8_t> blocked;  // blocklisted => not audit ground truth
  host_ids.reserve(world.universe->size());
  blocked.reserve(world.universe->size());
  for (std::size_t h = 0; h < world.universe->size(); ++h) {
    const std::string& name = world.universe->host(h).name;
    host_ids.push_back(pool.intern(name));
    blocked.push_back(blocklist.is_blocked(name) ? 1 : 0);
  }
  const std::uint64_t hosts = host_ids.size();

  // --- day-1 soak -----------------------------------------------------------
  profile::SessionStore& store = service.store();
  const util::Timestamp slice_len =
      util::kDay / static_cast<util::Timestamp>(cfg.slices);
  // A user is active in ~4 slices/day; each activity is a 6-event burst
  // (~24 events/user/day, the shape of interactive browsing).
  const std::uint64_t activity_period = std::max<std::uint64_t>(
      1, cfg.slices / 4);
  constexpr int kBurst = 6;
  constexpr std::size_t kBatch = 4096;

  // Ground truth for the eviction audit, written only by each user's shard
  // thread (shard-affine, so no races).
  std::vector<util::Timestamp> last_event(cfg.users, 0);

  std::uint64_t generated = 0;
  std::atomic<std::uint64_t> delivered{0};
  std::uint64_t eviction_violations = 0;
  std::uint64_t audits = 0;
  std::size_t peak_resident = 0;
  double ingest_wall_s = 0.0;
  std::vector<double> profile_ms;
  profile_ms.reserve(cfg.slices * 64);

  std::vector<std::uint8_t> resident;  // audit scratch
  for (std::size_t slice = 0; slice < cfg.slices; ++slice) {
    const util::Timestamp t0 = util::kDay + static_cast<util::Timestamp>(
                                                slice) * slice_len;
    const util::Timestamp now = t0 + slice_len - 1;

    // Ingest phase: one writer thread per shard over the lock-free lane.
    auto t_ingest = std::chrono::steady_clock::now();
    std::vector<std::thread> writers;
    writers.reserve(cfg.shards);
    for (std::size_t shard = 0; shard < cfg.shards; ++shard) {
      writers.emplace_back([&, shard] {
        std::vector<net::InternedEvent> batch;
        batch.reserve(kBatch);
        std::uint64_t local = 0;
        auto flush = [&] {
          service.ingest_interned_shard(shard, batch, pool);
          local += batch.size();
          batch.clear();
        };
        for (std::uint64_t user = shard; user < cfg.users;
             user += cfg.shards) {
          if (mix(user, slice, cfg.seed) % activity_period != 0) continue;
          for (int e = 0; e < kBurst; ++e) {
            std::uint64_t h = mix(user, slice * 31 + e, cfg.seed ^ 0xb0b);
            // 70% of visits hit one of the user's 8 favourite hosts.
            std::uint64_t host = (h % 10) < 7
                                     ? mix(user, (h >> 4) % 8, 0x5eed) % hosts
                                     : h % hosts;
            util::Timestamp ts =
                t0 + static_cast<util::Timestamp>(
                         (h >> 8) % static_cast<std::uint64_t>(slice_len));
            batch.push_back(
                {static_cast<std::uint32_t>(user), host_ids[host], ts});
            // Audit ground truth tracks only events the blocklist lets
            // through — a user whose burst was all trackers never reaches
            // the store, which is filtering, not eviction.
            if (blocked[host] == 0) {
              last_event[user] = std::max(last_event[user], ts);
            }
            if (batch.size() == kBatch) flush();
          }
        }
        flush();
        delivered.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (auto& t : writers) t.join();
    ingest_wall_s += seconds_since(t_ingest);

    // Epoch work (quiesced): budget enforcement, then telemetry.
    store.enforce_budget(now);
    peak_resident = std::max(peak_resident, store.user_count());

    // Profile a deterministic sample of this slice's active users: one
    // batched sweep (the reporting-burst path) plus per-user calls for the
    // latency distribution.
    std::vector<std::uint32_t> sample;
    for (std::uint64_t user = slice % 17; user < cfg.users && sample.size() < 64;
         user += 17) {
      if (mix(user, slice, cfg.seed) % activity_period == 0) {
        sample.push_back(static_cast<std::uint32_t>(user));
      }
    }
    if (!sample.empty()) {
      (void)service.profile_users(sample, now);
      for (std::uint32_t user : sample) {
        auto t_p = std::chrono::steady_clock::now();
        (void)service.profile_user(user, now);
        profile_ms.push_back(seconds_since(t_p) * 1e3);
      }
    }

    // Eviction audit every simulated 2 hours: any user with an event inside
    // the lookback window must still be resident.
    if ((slice + 1) % 12 == 0 || slice + 1 == cfg.slices) {
      ++audits;
      resident.assign(cfg.users, 0);
      store.for_each_user([&](std::uint32_t user, util::Timestamp) {
        if (user < cfg.users) resident[user] = 1;
      });
      util::Timestamp cutoff = now - store.eviction_lookback();
      for (std::uint64_t user = 0; user < cfg.users; ++user) {
        if (last_event[user] >= cutoff && last_event[user] > 0 &&
            resident[user] == 0) {
          ++eviction_violations;
        }
      }
    }
  }

  // Tally generated events exactly (same hash walk as the writers).
  for (std::size_t slice = 0; slice < cfg.slices; ++slice) {
    for (std::uint64_t user = 0; user < cfg.users; ++user) {
      if (mix(user, slice, cfg.seed) % activity_period == 0) {
        generated += kBurst;
      }
    }
  }

  double total_s = seconds_since(t_total);
  auto stats = store.eviction_stats();
  const std::uint64_t loss = generated - delivered.load();
  const std::size_t resident_users = store.user_count();
  const double bytes_per_user =
      resident_users > 0 ? static_cast<double>(store.memory_bytes()) /
                               static_cast<double>(resident_users)
                         : 0.0;
  const bool under_budget =
      store.payload_bytes() <= store.budget_bytes() && !stats.over_budget;

  std::sort(profile_ms.begin(), profile_ms.end());
  auto quantile = [&](double q) {
    if (profile_ms.empty()) return 0.0;
    std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(profile_ms.size() - 1));
    return profile_ms[i];
  };
  const double p50 = quantile(0.50);
  const double p99 = quantile(0.99);
  const double ingest_pps =
      ingest_wall_s > 0.0 ? static_cast<double>(delivered.load()) /
                                ingest_wall_s
                          : 0.0;

  std::cout << "[soak] events: generated=" << generated
            << " delivered=" << delivered.load() << " loss=" << loss
            << " filtered=" << service.filtered_events() << "\n"
            << "[soak] store: resident=" << resident_users
            << " (peak " << peak_resident << ") payload="
            << store.payload_bytes() / (1024 * 1024) << " MB bytes/user="
            << bytes_per_user << " under_budget=" << under_budget << "\n"
            << "[soak] eviction: evicted_users=" << stats.evicted_users
            << " runs=" << stats.runs << " audit_violations="
            << eviction_violations << " (" << audits << " audits)\n"
            << "[soak] ingest " << ingest_pps / 1e6 << " M events/s | profile"
            << " p50=" << p50 << " ms p99=" << p99 << " ms | rss="
            << rss_mb() << " MB | wall=" << total_s << " s\n";

  std::ofstream out(cfg.out);
  if (!out) {
    std::cerr << "[soak] cannot write " << cfg.out << "\n";
    return 1;
  }
  out << "{\n"
      << "  \"schema\": \"netobs-bench-macro-v1\",\n"
      << "  \"macro_users\": " << cfg.users << ",\n"
      << "  \"macro_shards\": " << cfg.shards << ",\n"
      << "  \"macro_slices\": " << cfg.slices << ",\n"
      << "  \"macro_seed\": " << cfg.seed << ",\n"
      << "  \"macro_hardware_threads\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"macro_hostnames\": " << hosts << ",\n"
      << "  \"macro_generated_events\": " << generated << ",\n"
      << "  \"macro_delivered_events\": " << delivered.load() << ",\n"
      << "  \"macro_event_loss\": " << loss << ",\n"
      << "  \"macro_filtered_events\": " << service.filtered_events() << ",\n"
      << "  \"macro_budget_bytes\": " << store.budget_bytes() << ",\n"
      << "  \"macro_payload_bytes\": " << store.payload_bytes() << ",\n"
      << "  \"macro_memory_bytes\": " << store.memory_bytes() << ",\n"
      << "  \"macro_pool_bytes\": " << pool.bytes() << ",\n"
      << "  \"macro_resident_users\": " << resident_users << ",\n"
      << "  \"macro_peak_resident_users\": " << peak_resident << ",\n"
      << "  \"macro_bytes_per_user\": " << bytes_per_user << ",\n"
      << "  \"macro_bytes_per_user_ceiling\": "
      << bench::IngestBaselineResult::session_bytes_per_user_ceiling()
      << ",\n"
      << "  \"macro_evicted_users\": " << stats.evicted_users << ",\n"
      << "  \"macro_evicted_events\": " << stats.evicted_events << ",\n"
      << "  \"macro_eviction_runs\": " << stats.runs << ",\n"
      << "  \"macro_eviction_audits\": " << audits << ",\n"
      << "  \"macro_eviction_violations\": " << eviction_violations << ",\n"
      << "  \"macro_under_budget\": " << (under_budget ? 1 : 0) << ",\n"
      << "  \"macro_ingest_wall_s\": " << ingest_wall_s << ",\n"
      << "  \"macro_ingest_pps\": " << ingest_pps << ",\n"
      << "  \"macro_profile_count\": " << profile_ms.size() << ",\n"
      << "  \"macro_profile_p50_ms\": " << p50 << ",\n"
      << "  \"macro_profile_p99_ms\": " << p99 << ",\n"
      << "  \"macro_rss_mb\": " << rss_mb() << ",\n"
      << "  \"macro_wall_s\": " << total_s << "\n"
      << "}\n";
  std::cout << "[soak] wrote " << cfg.out << "\n";
  return 0;
}
