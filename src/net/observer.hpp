// Passive observers: turn raw packets into HostnameEvents.
//
// SniObserver reassembles the head of each TCP flow until the first TLS
// record is complete, extracts the SNI, and emits one event per flow —
// matching what an on-path eavesdropper learns from HTTPS (Section 7.2).
// DnsObserver does the same for resolver-bound UDP queries.
//
// Both demultiplex packets to observer-side user ids through a UserDemux
// whose fidelity depends on the configured vantage point.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace netobs::net {

/// Where the eavesdropper sits (Section 7.2).
enum class Vantage {
  kWifiProvider,    ///< sees MAC addresses: perfect per-device separation
  kMobileOperator,  ///< sees IMSI: perfect per-subscriber separation
  kLandlineIsp,     ///< sees only source IPs: users behind one NAT collapse
};

/// Maps packets to stable observer-side user ids according to the vantage.
/// Ids are dense (0, 1, 2, ...) in order of first appearance.
class UserDemux {
 public:
  explicit UserDemux(Vantage vantage) : vantage_(vantage) {}

  std::uint32_t user_of(const Packet& packet);

  std::size_t distinct_users() const { return ids_.size(); }
  Vantage vantage() const { return vantage_; }

 private:
  Vantage vantage_;
  std::unordered_map<std::uint64_t, std::uint32_t> ids_;
};

/// Counters exposed by the observers, for the coverage tables.
struct ObserverStats {
  std::size_t packets = 0;
  std::size_t flows = 0;
  std::size_t events = 0;         ///< hostnames extracted
  std::size_t no_sni = 0;         ///< complete ClientHello without SNI
  std::size_t not_tls = 0;        ///< flow did not start with TLS
  std::size_t incomplete = 0;     ///< flows still waiting for bytes
  std::size_t evicted = 0;        ///< abandoned flows dropped by the cap
};

struct SniObserverOptions {
  std::size_t max_pending_flows = 1 << 16;  ///< cap on unresolved flows
  std::size_t max_buffered_bytes = 16384;   ///< per-flow reassembly cap
  /// When a well-formed ClientHello carries no SNI (encrypted SNI / ECH),
  /// emit a pseudo-hostname derived from the destination IP instead.
  /// Section 7.2: "encrypted SNI ... do not hide the IP address that may be
  /// used by the profiling algorithm" — the representation learner treats
  /// the IP token like any other hostname.
  bool ip_fallback = false;
};

/// The pseudo-hostname the IP fallback emits for a destination address.
std::string ip_pseudo_hostname(std::uint32_t dst_ip);

/// Extracts SNI hostnames from TCP flows.
class SniObserver {
 public:
  explicit SniObserver(Vantage vantage,
                       SniObserverOptions options = SniObserverOptions());

  /// Feeds one packet; returns an event when this packet completes a
  /// ClientHello carrying an SNI.
  std::optional<HostnameEvent> observe(const Packet& packet);

  /// Convenience: feeds a packet vector and collects all events.
  std::vector<HostnameEvent> observe_all(const std::vector<Packet>& packets);

  const ObserverStats& stats() const { return stats_; }
  std::size_t pending_flows() const { return flows_.size(); }
  UserDemux& demux() { return demux_; }

 private:
  struct FlowState {
    std::vector<std::uint8_t> buffer;
  };

  SniObserverOptions options_;
  UserDemux demux_;
  ObserverStats stats_;
  std::unordered_map<FiveTuple, FlowState, FiveTupleHash> flows_;
  // Flows already resolved (SNI emitted / classified non-TLS): remembered so
  // later segments of the same connection don't recreate state.
  std::unordered_map<FiveTuple, bool, FiveTupleHash> done_;
};

/// Extracts QNAMEs from UDP datagrams addressed to port 53.
class DnsObserver {
 public:
  explicit DnsObserver(Vantage vantage);

  /// Returns one event per question in a well-formed query datagram.
  std::vector<HostnameEvent> observe(const Packet& packet);

  const ObserverStats& stats() const { return stats_; }
  UserDemux& demux() { return demux_; }

 private:
  UserDemux demux_;
  ObserverStats stats_;
};

}  // namespace netobs::net
