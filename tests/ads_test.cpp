#include <gtest/gtest.h>

#include "ads/ad_database.hpp"
#include "ads/adnetwork.hpp"
#include "ads/click_model.hpp"
#include "ads/experiment.hpp"

namespace netobs::ads {
namespace {

ontology::CategoryTree test_tree() {
  util::Pcg32 rng(11);
  ontology::AdwordsTreeParams params;
  params.top_level = 8;
  params.second_level_target = 40;
  params.total_categories = 120;
  return make_adwords_like_tree(rng, params);
}

synth::WorldParams small_world() {
  synth::WorldParams p;
  p.universal_hosts = 8;
  p.first_party_hosts = 150;
  p.shared_cdn_hosts = 6;
  p.tracker_hosts = 15;
  return p;
}

class AdsTest : public ::testing::Test {
 protected:
  AdsTest()
      : tree_(test_tree()),
        space_(tree_),
        universe_(space_, small_world()),
        labeler_(universe_.make_labeler()),
        db_(AdDatabase::collect(universe_, labeler_, 500, 1)) {}

  ontology::CategoryTree tree_;
  ontology::CategorySpace space_;
  synth::HostnameUniverse universe_;
  ontology::HostLabeler labeler_;
  AdDatabase db_;
};

TEST_F(AdsTest, CollectedAdsLandOnLabeledHosts) {
  EXPECT_EQ(db_.size(), 500U);
  for (const auto& ad : db_.ads()) {
    EXPECT_TRUE(labeler_.is_labeled(ad.landing_host));
    EXPECT_FALSE(ad.topic_mix.empty());
    EXPECT_TRUE(ontology::is_valid_category_vector(ad.categories));
    EXPECT_GT(ad.size.width, 0);
  }
}

TEST_F(AdsTest, AdsOfHostIndexIsConsistent) {
  for (const auto& ad : db_.ads()) {
    const auto& pool = db_.ads_of_host(ad.landing_host);
    EXPECT_NE(std::find(pool.begin(), pool.end(), ad.id), pool.end());
  }
  EXPECT_TRUE(db_.ads_of_host("no-such-host.com").empty());
}

TEST_F(AdsTest, AdsWithSizeFilters) {
  auto sizes = synth::standard_ad_sizes();
  std::size_t total = 0;
  for (const auto& size : sizes) {
    for (AdId id : db_.ads_with_size(size)) {
      EXPECT_TRUE(db_.ad(id).size == size);
      ++total;
    }
  }
  EXPECT_EQ(total, db_.size());
}

TEST_F(AdsTest, CollectRequiresLabeledSites) {
  ontology::HostLabeler empty(space_.size());
  EXPECT_THROW(AdDatabase::collect(universe_, empty, 10, 1),
               std::invalid_argument);
}

TEST_F(AdsTest, SelectorReturnsTopicallyRelevantAds) {
  EavesdropperSelector selector(db_, labeler_);
  // Profile = exact label of a host that has ads: its own ads must rank in.
  const Ad& probe = db_.ad(0);
  auto list = selector.select(probe.categories);
  ASSERT_FALSE(list.empty());
  EXPECT_LE(list.size(), 20U);
  bool found_same_host = false;
  for (AdId id : list) {
    if (db_.ad(id).landing_host == probe.landing_host) found_same_host = true;
  }
  EXPECT_TRUE(found_same_host);
}

TEST_F(AdsTest, SelectorHandlesEmptyProfile) {
  EavesdropperSelector selector(db_, labeler_);
  EXPECT_TRUE(selector.select({}).empty());
}

TEST_F(AdsTest, SelectorDeterministic) {
  EavesdropperSelector s1(db_, labeler_);
  EavesdropperSelector s2(db_, labeler_);
  const auto& profile = db_.ad(3).categories;
  EXPECT_EQ(s1.select(profile), s2.select(profile));
}

TEST_F(AdsTest, SelectorRejectsZeroParams) {
  EXPECT_THROW(EavesdropperSelector(db_, labeler_,
                                    EavesdropperSelector::Params{0, 20}),
               std::invalid_argument);
}

TEST_F(AdsTest, AdNetworkServesSizeMatchedAds) {
  AdNetwork net(db_, universe_);
  auto size = synth::standard_ad_sizes()[1];
  bool size_pool_exists = !db_.ads_with_size(size).empty();
  for (int i = 0; i < 50; ++i) {
    AdId id = net.serve(1, i % universe_.topic_count(), size);
    if (size_pool_exists) {
      EXPECT_TRUE(db_.ad(id).size == size);
    }
  }
}

TEST_F(AdsTest, AdNetworkLearnsFromTrackers) {
  AdNetwork net(db_, universe_);
  EXPECT_TRUE(net.profile_of(7).empty());
  for (int i = 0; i < 30; ++i) net.observe_page(7, 3);
  for (int i = 0; i < 10; ++i) net.observe_page(7, 5);
  auto profile = net.profile_of(7);
  ASSERT_EQ(profile.size(), universe_.topic_count());
  EXPECT_NEAR(profile[3], 0.75, 1e-9);
  EXPECT_NEAR(profile[5], 0.25, 1e-9);
}

TEST_F(AdsTest, TargetedServingFollowsTrackedProfile) {
  AdNetworkParams params;
  params.premium_share = 0.0;
  params.contextual_share = 0.0;
  params.targeted_share = 1.0;
  params.retargeted_share = 0.0;
  AdNetwork net(db_, universe_, params);
  for (int i = 0; i < 50; ++i) net.observe_page(1, 2);

  // Serve many ads on pages of an unrelated topic; targeted serving should
  // still favour topic 2.
  std::size_t topic2 = 0;
  std::size_t served = 0;
  for (int i = 0; i < 300; ++i) {
    auto size = synth::standard_ad_sizes()[i % 6];
    AdId id = net.serve(1, /*page_topic=*/5, size);
    const Ad& ad = db_.ad(id);
    std::size_t dom = static_cast<std::size_t>(
        std::max_element(ad.topic_mix.begin(), ad.topic_mix.end()) -
        ad.topic_mix.begin());
    ++served;
    if (dom == 2) ++topic2;
  }
  EXPECT_GT(static_cast<double>(topic2) / static_cast<double>(served), 0.5);
}

TEST_F(AdsTest, ClickModelPrefersAffineAds) {
  synth::UserPopulation pop(universe_.topic_count(), [] {
    synth::PopulationParams p;
    p.num_users = 5;
    return p;
  }());
  ClickModel model;
  const auto& user = pop.user(0);
  // Build one perfectly matched and one orthogonal ad.
  std::size_t fav = static_cast<std::size_t>(
      std::max_element(user.interests.begin(), user.interests.end()) -
      user.interests.begin());
  Ad matched;
  matched.topic_mix.assign(universe_.topic_count(), 0.0F);
  matched.topic_mix[fav] = 1.0F;
  Ad mismatched;
  mismatched.topic_mix.assign(universe_.topic_count(), 0.0F);
  mismatched.topic_mix[(fav + 1) % universe_.topic_count()] = 1.0F;

  EXPECT_GT(model.click_probability(user, matched),
            model.click_probability(user, mismatched));
  EXPECT_LE(model.click_probability(user, matched), model.params().max_ctr);
  EXPECT_GT(model.click_probability(user, mismatched), 0.0);
}

TEST_F(AdsTest, ClickModelAffinityBounds) {
  synth::UserPopulation pop(universe_.topic_count(), [] {
    synth::PopulationParams p;
    p.num_users = 3;
    return p;
  }());
  for (const auto& ad : db_.ads()) {
    double a = ClickModel::affinity(pop.user(1), ad);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_THROW(ClickModel(ClickParams{0.0, 0.2, 8.0, 0.05}),
               std::invalid_argument);
}

TEST(Experiment, SmallEndToEndRun) {
  util::Pcg32 tree_rng(11);
  ontology::AdwordsTreeParams tparams;
  tparams.top_level = 8;
  tparams.second_level_target = 40;
  tparams.total_categories = 120;
  auto tree = make_adwords_like_tree(tree_rng, tparams);
  ontology::CategorySpace space(tree);

  synth::WorldParams wp;
  wp.universal_hosts = 8;
  wp.first_party_hosts = 150;
  wp.shared_cdn_hosts = 6;
  wp.tracker_hosts = 15;
  synth::HostnameUniverse universe(space, wp);

  synth::PopulationParams pp;
  pp.num_users = 40;
  synth::UserPopulation population(universe.topic_count(), pp);

  ExperimentParams ep;
  ep.collection_days = 1;
  ep.profiling_days = 2;
  ep.ad_db_size = 600;
  ep.service.sgns.dim = 24;
  ep.service.sgns.epochs = 2;
  ep.service.vocab.min_count = 2;
  ep.service.profiler.knn = 100;

  ExperimentRunner runner(universe, population,
                          synth::BrowsingParams(), ep);
  auto result = runner.run();

  // Structural checks: all phases ran and produced data.
  EXPECT_GE(result.retrainings, 2U);
  EXPECT_GT(result.reports, 20U);
  EXPECT_GT(result.connections, 1000U);
  EXPECT_GT(result.unique_hostnames, 50U);
  EXPECT_GT(result.filtered_connections, 0U);
  EXPECT_GT(result.original.impressions, 100U);
  EXPECT_GT(result.eavesdropper.impressions, 50U);
  EXPECT_GT(result.replacements, 0U);
  EXPECT_EQ(result.replacements, result.eavesdropper.impressions);
  EXPECT_GT(result.random_control.impressions,
            result.original.impressions);

  // Topic tallies exist for each profiling day.
  EXPECT_EQ(result.topics.visited.size(), 2U);
  double visited_total = 0.0;
  for (const auto& day : result.topics.visited) {
    for (double c : day) visited_total += c;
  }
  EXPECT_GT(visited_total, 100.0);

  // Paired users were found and the t-test ran.
  EXPECT_GE(result.paired_users, 10U);
  EXPECT_GE(result.paired_ttest.p_value, 0.0);
  EXPECT_LE(result.paired_ttest.p_value, 1.0);
}

}  // namespace
}  // namespace netobs::ads
