#include "profile/service.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/memory.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace {
constexpr const char* kLogSite = "profile.service";
}

namespace netobs::profile {

namespace {

/// Label value of the per-backend kNN latency series: "exact", "ivf", or
/// "ivf_pq" when the IVF lists are product-quantized.
const char* knn_latency_backend(const ServiceParams& params) {
  if (params.knn_backend != embedding::KnnBackend::kIvf) return "exact";
  return params.ivf.pq.m > 0 ? "ivf_pq" : "ivf";
}

}  // namespace

ProfilingService::ProfilingService(const ontology::HostLabeler& labeler,
                                   const filter::Blocklist* blocklist,
                                   ServiceParams params)
    : labeler_(&labeler),
      blocklist_(blocklist),
      params_(params),
      store_(params.store),
      ingest_rate_(obs::MetricsRegistry::global(),
                   "netobs_profile_ingested_per_second",
                   "Hostname events accepted per second (sliding window)"),
      profile_latency_q_(obs::MetricsRegistry::global(),
                         "netobs_profile_knn_latency_seconds",
                         "Streaming percentiles of session-profile latency",
                         {0.5, 0.9, 0.99},
                         {{"backend", knn_latency_backend(params)}}) {
  auto& reg = obs::MetricsRegistry::global();
  ingested_ = &reg.counter("netobs_profile_events_ingested_total",
                           "Hostname events accepted into the session store");
  dropped_ = &reg.counter("netobs_filter_dropped_total",
                          "Observer events dropped by the blocklist");
  dropped_base_ = dropped_->value();
  retrains_ = &reg.counter("netobs_profile_retrains_total",
                           "Successful daily retrainings");
  retrain_failures_ =
      &reg.counter("netobs_profile_retrain_failures_total",
                   "Retrainings skipped for lack of usable data");
  retrain_seconds_ = &reg.histogram("netobs_profile_retrain_seconds",
                                    "Wall time of one daily retraining",
                                    obs::default_latency_buckets());
  profiles_ = &reg.counter("netobs_profile_sessions_profiled_total",
                           "Session profiles computed");
  profile_seconds_ = &reg.histogram("netobs_profile_latency_seconds",
                                    "Latency of one session profile",
                                    obs::default_latency_buckets());
  store_events_ = &reg.gauge("netobs_profile_store_events",
                             "Hostname events held by the session store");
  store_users_ = &reg.gauge("netobs_profile_store_users",
                            "Users with at least one stored event");
  store_payload_bytes_ =
      &reg.gauge("netobs_profile_store_payload_bytes",
                 "Budgeted session-store payload bytes (shard-invariant)");
  store_budget_bytes_ =
      &reg.gauge("netobs_profile_store_budget_bytes",
                 "Configured session-store payload budget (0 = unbounded)");
  store_evicted_users_ =
      &reg.gauge("netobs_profile_store_evicted_users",
                 "Users evicted by the session-store budget (monotone)");
  store_evicted_events_ =
      &reg.gauge("netobs_profile_store_evicted_events",
                 "Events dropped with evicted users (monotone)");
  store_budget_bytes_->set(static_cast<double>(store_.budget_bytes()));
  register_memory_probes();
}

void ProfilingService::register_memory_probes() {
  auto& acct = obs::MemoryAccountant::global();
  memory_probe_handles_.push_back(acct.add_probe(
      "session_windows", /*per_user=*/true,
      [this] { return store_bytes_.load(std::memory_order_relaxed); }));
  memory_probe_handles_.push_back(acct.add_probe(
      "embedding_matrix", /*per_user=*/false,
      [this] { return model_bytes_.load(std::memory_order_relaxed); }));
  memory_probe_handles_.push_back(acct.add_probe(
      "knn_index", /*per_user=*/false,
      [this] { return index_bytes_.load(std::memory_order_relaxed); }));
  memory_probe_handles_.push_back(acct.add_probe(
      "knn_pq_codes", /*per_user=*/false,
      [this] { return pq_bytes_.load(std::memory_order_relaxed); }));
  user_probe_handle_ = acct.add_user_probe(
      [this] { return store_users_count_.load(std::memory_order_relaxed); });
}

ProfilingService::~ProfilingService() {
  auto& acct = obs::MemoryAccountant::global();
  for (std::uint64_t handle : memory_probe_handles_) {
    acct.remove_probe(handle);
  }
  acct.remove_user_probe(user_probe_handle_);
}

bool ProfilingService::ingest_one(std::uint32_t user,
                                  util::Timestamp timestamp,
                                  std::string_view hostname) {
  if (blocklist_ != nullptr && blocklist_->is_blocked(hostname)) {
    dropped_->inc();
    return false;
  }
  ingested_->inc();
  ingest_rate_.record();
  store_.ingest(user, timestamp, hostname);
  return true;
}

bool ProfilingService::ingest_one_id(std::uint32_t user,
                                     util::Timestamp timestamp,
                                     util::InternPool::Id host_id,
                                     const util::InternPool& pool,
                                     bool shard_affine) {
  // The pool's names are stable, so the blocklist check costs no copy.
  const std::string& hostname = pool.name(host_id);
  if (blocklist_ != nullptr && blocklist_->is_blocked(hostname)) {
    dropped_->inc();
    return false;
  }
  ingested_->inc();
  ingest_rate_.record();
  bool shared_pool = &pool == &store_.pool();
  if (shard_affine) {
    std::size_t shard = store_.shard_of(user);
    if (shared_pool) {
      store_.ingest_shard_id(shard, user, timestamp, host_id);
    } else {
      store_.ingest_shard(shard, user, timestamp, hostname);
    }
  } else if (shared_pool) {
    store_.ingest_id(user, timestamp, host_id);
  } else {
    store_.ingest(user, timestamp, hostname);
  }
  return true;
}

void ProfilingService::sync_store_gauges() {
  store_events_->set(static_cast<double>(store_.event_count()));
  store_users_->set(static_cast<double>(store_.user_count()));
  store_payload_bytes_->set(static_cast<double>(store_.payload_bytes()));
  SessionEvictionStats ev = store_.eviction_stats();
  store_evicted_users_->set(static_cast<double>(ev.evicted_users));
  store_evicted_events_->set(static_cast<double>(ev.evicted_events));
  store_bytes_.store(store_.memory_bytes(), std::memory_order_relaxed);
  store_users_count_.store(store_.user_count(), std::memory_order_relaxed);
}

void ProfilingService::ingest(const net::HostnameEvent& event) {
  ingest_one(event.user_id, event.timestamp, event.hostname);
  sync_store_gauges();
}

void ProfilingService::ingest(std::uint32_t user, util::Timestamp timestamp,
                              std::string_view hostname) {
  ingest_one(user, timestamp, hostname);
  sync_store_gauges();
}

void ProfilingService::ingest(const std::vector<net::HostnameEvent>& events) {
  for (const auto& e : events) ingest_one(e.user_id, e.timestamp, e.hostname);
  sync_store_gauges();
}

void ProfilingService::ingest(std::span<const net::HostnameEvent> events) {
  for (const auto& e : events) ingest_one(e.user_id, e.timestamp, e.hostname);
  sync_store_gauges();
}

void ProfilingService::ingest_interned(
    std::span<const net::InternedEvent> events,
    const util::InternPool& pool) {
  for (const auto& e : events) {
    if (e.host_id == util::InternPool::kInvalidId) continue;
    bool accepted = ingest_one_id(e.user_id, e.timestamp, e.host_id, pool,
                                  /*shard_affine=*/false);
    if (accepted && flight_ != nullptr) {
      flight_->complete_session(e.user_id, e.host_id, e.timestamp);
    }
  }
  sync_store_gauges();
}

void ProfilingService::ingest_interned_shard(
    std::size_t shard, std::span<const net::InternedEvent> events,
    const util::InternPool& pool) {
  (void)shard;  // ownership is recomputed per user; see header contract
  for (const auto& e : events) {
    if (e.host_id == util::InternPool::kInvalidId) continue;
    bool accepted = ingest_one_id(e.user_id, e.timestamp, e.host_id, pool,
                                  /*shard_affine=*/true);
    if (accepted && flight_ != nullptr) {
      flight_->complete_session(e.user_id, e.host_id, e.timestamp);
    }
  }
  sync_store_gauges();
}

bool ProfilingService::retrain(std::int64_t train_day) {
  obs::Span span("profile.retrain", retrain_seconds_);
  // Iterate the day's visits as interned ids (no per-user key copy, no
  // string churn in the scan) and resolve once into the trainer's string
  // sequences; sorting keeps the result identical to day_sequences().
  std::vector<embedding::Sequence> sequences;
  store_.for_each_day_id_sequence(
      train_day,
      [&](std::uint32_t, std::span<const SessionStore::Id> ids) {
        sequences.push_back(store_.resolve(ids));
      });
  std::sort(sequences.begin(), sequences.end());
  if (sequences.empty()) {
    retrain_failures_->inc();
    obs::log_warn(kLogSite, "retrain skipped: no data for day",
                  {{"day", std::to_string(train_day)}});
    return false;
  }
  embedding::SgnsTrainer trainer(params_.sgns, params_.vocab);
  // One pool feeds every parallel retrain stage: the Hogwild SGNS workers
  // and the IVF build (k-means + int8 encode) below.
  util::ThreadPool* pool = retrain_pool();
  std::unique_ptr<embedding::HostEmbedding> fresh;
  try {
    fresh = std::make_unique<embedding::HostEmbedding>(
        params_.warm_start && model_
            ? trainer.fit_warm(sequences, *model_, pool)
            : trainer.fit(sequences, pool));
  } catch (const std::invalid_argument& e) {
    // Not enough data for the vocabulary thresholds: keep the old model,
    // exactly what a production back-end would do on a thin day.
    retrain_failures_->inc();
    obs::log_warn(kLogSite, "retrain failed: keeping previous model",
                  {{"day", std::to_string(train_day)}, {"error", e.what()}});
    return false;
  }
  // Daily warm rebuilds reuse the previous day's coarse quantizer: the
  // embedding drifts little between consecutive days, so skipping Lloyd
  // training keeps rebuild cost at one assignment pass.
  const embedding::IvfKnnIndex* prev_ivf =
      dynamic_cast<const embedding::IvfKnnIndex*>(index_.get());
  model_ = std::move(fresh);
  if (params_.knn_backend == embedding::KnnBackend::kIvf) {
    if (params_.warm_start && prev_ivf != nullptr &&
        prev_ivf->centroids().dim() == model_->central().dim()) {
      index_ = std::make_unique<embedding::IvfKnnIndex>(
          model_->central(), prev_ivf->centroids(), params_.ivf, pool);
    } else {
      index_ = std::make_unique<embedding::IvfKnnIndex>(model_->central(),
                                                        params_.ivf, pool);
    }
  } else {
    index_ = std::make_unique<embedding::CosineKnnIndex>(*model_);
  }
  // Batched profile queries shard across the same pool (nullptr = serial;
  // results are bit-identical either way on both backends).
  index_->set_thread_pool(pool);
  profiler_ = std::make_unique<SessionProfiler>(*model_, *index_, *labeler_,
                                                params_.profiler);
  model_bytes_.store(
      model_->central().memory_bytes() + model_->context().memory_bytes(),
      std::memory_order_relaxed);
  index_bytes_.store(index_->memory_bytes(), std::memory_order_relaxed);
  if (const auto* ivf =
          dynamic_cast<const embedding::IvfKnnIndex*>(index_.get())) {
    pq_bytes_.store(ivf->pq_bytes(), std::memory_order_relaxed);
  } else {
    pq_bytes_.store(0, std::memory_order_relaxed);
  }
  last_train_threads_ = std::max<std::size_t>(1, params_.sgns.threads);
  last_train_pairs_per_s_ = trainer.pairs_per_second();
  retrains_->inc();
  obs::log_info(kLogSite, "retrained model",
                {{"day", std::to_string(train_day)},
                 {"sequences", std::to_string(sequences.size())},
                 {"vocab", std::to_string(model_->size())},
                 {"knn_backend",
                  embedding::knn_backend_name(params_.knn_backend)},
                 {"train_threads", std::to_string(last_train_threads_)},
                 {"train_pairs_per_s",
                  std::to_string(last_train_pairs_per_s_)},
                 {"seconds", std::to_string(span.elapsed_seconds())}});
  return true;
}

util::ThreadPool* ProfilingService::retrain_pool() {
  const std::size_t threads = std::max<std::size_t>(1, params_.sgns.threads);
  if (threads <= 1) return nullptr;
  if (!retrain_pool_ || retrain_pool_->thread_count() != threads) {
    retrain_pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  return retrain_pool_.get();
}

std::vector<std::pair<std::string, std::string>> ProfilingService::knn_status()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("knn_backend",
                   embedding::knn_backend_name(params_.knn_backend));
  out.emplace_back("knn_index_rows",
                   std::to_string(index_ ? index_->size() : 0));
  if (const auto* ivf =
          dynamic_cast<const embedding::IvfKnnIndex*>(index_.get())) {
    out.emplace_back("knn_nlists", std::to_string(ivf->nlists()));
    out.emplace_back("knn_nprobe",
                     std::to_string(std::min(ivf->params().nprobe,
                                             ivf->nlists())));
    out.emplace_back("knn_rerank", std::to_string(ivf->params().rerank));
    out.emplace_back("knn_pq_enabled", ivf->pq_enabled() ? "1" : "0");
    if (ivf->pq_enabled()) {
      out.emplace_back("knn_pq_m", std::to_string(ivf->params().pq.m));
      out.emplace_back("knn_pq_bits", std::to_string(ivf->params().pq.bits));
      out.emplace_back("knn_pq_bytes", std::to_string(ivf->pq_bytes()));
    }
    const auto& bs = ivf->build_stats();
    out.emplace_back("ivf_build_ms", std::to_string(bs.total_s * 1e3));
    out.emplace_back("ivf_build_kmeans_ms", std::to_string(bs.kmeans_s * 1e3));
    out.emplace_back("ivf_build_assign_ms", std::to_string(bs.assign_s * 1e3));
    out.emplace_back("ivf_build_encode_ms", std::to_string(bs.encode_s * 1e3));
    out.emplace_back("ivf_build_pq_ms", std::to_string(bs.pq_train_s * 1e3));
  }
  if (last_train_threads_ > 0) {
    out.emplace_back("retrain_threads", std::to_string(last_train_threads_));
    out.emplace_back("retrain_pairs_per_s",
                     std::to_string(last_train_pairs_per_s_));
  }
  out.emplace_back(
      "simd_int8_tier",
      util::simd::tier_name(util::simd::active_tier()));
  return out;
}

std::vector<std::pair<std::string, std::string>>
ProfilingService::store_status() const {
  std::vector<std::pair<std::string, std::string>> out;
  SessionEvictionStats ev = store_.eviction_stats();
  std::size_t users = store_.user_count();
  std::size_t mem = store_.memory_bytes();
  out.emplace_back("store_shards", std::to_string(store_.shard_count()));
  out.emplace_back("store_users", std::to_string(users));
  out.emplace_back("store_events", std::to_string(store_.event_count()));
  out.emplace_back("store_budget_bytes", std::to_string(store_.budget_bytes()));
  out.emplace_back("store_payload_bytes",
                   std::to_string(store_.payload_bytes()));
  out.emplace_back("store_memory_bytes", std::to_string(mem));
  out.emplace_back(
      "store_bytes_per_user",
      std::to_string(users > 0 ? mem / users : 0));
  out.emplace_back("store_evicted_users", std::to_string(ev.evicted_users));
  out.emplace_back("store_evicted_events", std::to_string(ev.evicted_events));
  out.emplace_back("store_eviction_runs", std::to_string(ev.runs));
  out.emplace_back("store_over_budget", ev.over_budget ? "1" : "0");
  // Age of the coldest resident as of the last enforce_budget() run (the
  // pass that scans last_seen); 0 before any run.
  util::Timestamp oldest_age = 0;
  if (ev.runs > 0 && ev.coldest_last_seen > 0) {
    oldest_age = std::max<util::Timestamp>(
        0, store_.max_timestamp() - ev.coldest_last_seen);
  }
  out.emplace_back("store_oldest_resident_age_s", std::to_string(oldest_age));
  return out;
}

const embedding::HostEmbedding& ProfilingService::model() const {
  if (!model_) throw std::logic_error("ProfilingService: no model trained");
  return *model_;
}

Session ProfilingService::session_of(std::uint32_t user,
                                     util::Timestamp now) const {
  return store_.session_of(user, now, params_.profile_window);
}

SessionProfile ProfilingService::profile_user(std::uint32_t user,
                                              util::Timestamp now) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc();
  // Interned query path: the session's host ids resolve against the store
  // pool inside the profiler — no per-profile string vector. Bit-identical
  // to profiling session_of(user, now).
  std::vector<SessionStore::Id> ids;
  store_.session_ids_of(user, now, params_.profile_window, ids);
  SessionProfile result = profiler_->profile_interned(ids, store_.pool());
  profile_latency_q_.observe(timer.stop());
  if (flight_ != nullptr) flight_->record_profile(user);
  return result;
}

SessionProfile ProfilingService::profile_hostnames(
    const std::vector<std::string>& hostnames) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc();
  SessionProfile result = profiler_->profile(hostnames);
  profile_latency_q_.observe(timer.stop());
  return result;
}

std::vector<SessionProfile> ProfilingService::profile_batch(
    const std::vector<std::vector<std::string>>& sessions) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc(sessions.size());
  std::vector<SessionProfile> results = profiler_->profile_batch(sessions);
  // One quantile sample per profile: the batch sweep amortises the matrix
  // scan, so per-profile latency is batch time divided by batch size.
  if (!sessions.empty()) {
    profile_latency_q_.observe(timer.stop() /
                               static_cast<double>(sessions.size()));
  }
  return results;
}

std::vector<SessionProfile> ProfilingService::profile_users(
    const std::vector<std::uint32_t>& users, util::Timestamp now) const {
  if (!profiler_) {
    throw std::logic_error("ProfilingService: profile before retrain()");
  }
  std::vector<std::vector<SessionStore::Id>> sessions;
  sessions.reserve(users.size());
  std::vector<SessionStore::Id> ids;
  for (std::uint32_t user : users) {
    store_.session_ids_of(user, now, params_.profile_window, ids);
    sessions.emplace_back(ids.begin(), ids.end());
  }
  obs::ScopedTimer timer(profile_seconds_);
  profiles_->inc(sessions.size());
  std::vector<SessionProfile> results =
      profiler_->profile_interned_batch(sessions, store_.pool());
  // One quantile sample per profile: the batch sweep amortises the matrix
  // scan, so per-profile latency is batch time divided by batch size.
  if (!sessions.empty()) {
    profile_latency_q_.observe(timer.stop() /
                               static_cast<double>(sessions.size()));
  }
  if (flight_ != nullptr) {
    for (std::uint32_t user : users) flight_->record_profile(user);
  }
  return results;
}

}  // namespace netobs::profile
