// Ad database and eavesdropper ad selection (Sections 5.3-5.4).
//
// During the data-collection phase the study harvested ~12K creatives from
// the ads its participants received; each ad links to a landing page whose
// hostname can be labeled through the ontology. The eavesdropper serves ads
// by computing the 20 nearest labeled hosts (Euclidean distance in the
// 328-dimensional category space) to the session profile and returning ads
// whose landing pages are those hosts.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ontology/host_labeler.hpp"
#include "synth/browsing.hpp"
#include "synth/world.hpp"
#include "util/rng.hpp"

namespace netobs::ads {

using AdId = std::uint32_t;

struct Ad {
  AdId id = 0;
  synth::AdSlot size;
  std::size_t landing_site = 0;       ///< universe index of the landing host
  std::string landing_host;
  ontology::CategoryVector categories;  ///< label of the landing host
  std::vector<float> topic_mix;         ///< ground truth (click model only)
};

class AdDatabase {
 public:
  /// Harvests `num_ads` creatives whose landing pages are labeled hosts of
  /// the universe (popularity-biased, as ads come from real campaigns).
  static AdDatabase collect(const synth::HostnameUniverse& universe,
                            const ontology::HostLabeler& labeler,
                            std::size_t num_ads, std::uint64_t seed);

  std::size_t size() const { return ads_.size(); }
  const Ad& ad(AdId id) const { return ads_.at(id); }
  const std::vector<Ad>& ads() const { return ads_; }

  /// Ads whose landing page is `host` (possibly empty).
  const std::vector<AdId>& ads_of_host(const std::string& host) const;

  /// All ads with the given creative size.
  std::vector<AdId> ads_with_size(synth::AdSlot size) const;

 private:
  std::vector<Ad> ads_;
  std::unordered_map<std::string, std::vector<AdId>> by_host_;
};

/// Eavesdropper ad selection of Section 5.4: 20-NN over labeled hosts in
/// category space, then ads of those hosts.
class EavesdropperSelector {
 public:
  struct Params {
    std::size_t host_neighbors = 20;  ///< labeled hosts considered
    std::size_t list_size = 20;       ///< ads returned per report
  };

  /// db and labeler must outlive the selector.
  EavesdropperSelector(const AdDatabase& db,
                       const ontology::HostLabeler& labeler, Params params);
  EavesdropperSelector(const AdDatabase& db,
                       const ontology::HostLabeler& labeler)
      : EavesdropperSelector(db, labeler, Params{20, 20}) {}

  /// Returns up to list_size ad ids for a session profile, best hosts
  /// first. Empty when the profile is empty or no labeled host has ads.
  std::vector<AdId> select(const ontology::CategoryVector& profile) const;

 private:
  const AdDatabase* db_;
  Params params_;
  std::vector<std::string> hosts_;                    // labeled hosts w/ ads
  std::vector<ontology::CategoryVector> host_labels_; // parallel to hosts_
};

}  // namespace netobs::ads
