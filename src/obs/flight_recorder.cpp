#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>

#include "util/rng.hpp"

namespace netobs::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(options),
      epoch_(std::chrono::steady_clock::now()),
      slot_mask_(
          round_up_pow2(options.max_in_flight == 0 ? 1
                                                   : options.max_in_flight) -
          1),
      slots_(new Slot[slot_mask_ + 1]),
      hop_parse_enqueue_(MetricsRegistry::global(),
                         "netobs_flight_hop_seconds",
                         "Per-hop latency of sampled pipeline events",
                         {0.5, 0.9, 0.99}, {{"hop", "parse_to_enqueue"}}),
      hop_enqueue_dequeue_(MetricsRegistry::global(),
                           "netobs_flight_hop_seconds",
                           "Per-hop latency of sampled pipeline events",
                           {0.5, 0.9, 0.99}, {{"hop", "enqueue_to_dequeue"}}),
      hop_dequeue_session_(MetricsRegistry::global(),
                           "netobs_flight_hop_seconds",
                           "Per-hop latency of sampled pipeline events",
                           {0.5, 0.9, 0.99}, {{"hop", "dequeue_to_session"}}),
      staleness_session_(MetricsRegistry::global(),
                         "netobs_flight_staleness_seconds",
                         "End-to-end packet age when a stage saw it",
                         {0.5, 0.9, 0.99}, {{"stage", "session"}}),
      staleness_profile_(MetricsRegistry::global(),
                         "netobs_flight_staleness_seconds",
                         "End-to-end packet age when a stage saw it",
                         {0.5, 0.9, 0.99}, {{"stage", "profile"}}) {}

std::uint64_t FlightRecorder::event_key(std::uint32_t user_id,
                                        std::uint32_t host_id,
                                        std::int64_t timestamp) {
  std::uint64_t k = util::mix64(
      ((static_cast<std::uint64_t>(user_id) << 32) | host_id) ^
      (static_cast<std::uint64_t>(timestamp) * kGolden));
  // Clear the top bit and set the bottom one: never 0, never kReserved.
  return (k >> 1) | 1;
}

void FlightRecorder::record_parse(std::uint32_t user_id, std::uint32_t host_id,
                                  std::int64_t timestamp, std::uint32_t shard,
                                  std::string_view hostname) {
  std::uint64_t key = event_key(user_id, host_id, timestamp);
  sampled_.fetch_add(1, std::memory_order_relaxed);
  if (options_.keep_sample_log) {
    std::lock_guard<std::mutex> lock(log_mutex_);
    log_.emplace_back(timestamp, std::string(hostname));
  }
  double now = now_seconds();
  std::size_t idx = key & slot_mask_;
  for (int probe = 0; probe < kMaxProbes; ++probe, idx = (idx + 1) & slot_mask_) {
    Slot& s = slots_[idx];
    if (s.key.load(std::memory_order_relaxed) != 0) continue;
    std::uint64_t expected = 0;
    if (!s.key.compare_exchange_strong(expected, kReserved,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      continue;
    }
    s.user_id.store(user_id, std::memory_order_relaxed);
    s.shard.store(shard, std::memory_order_relaxed);
    s.timestamp.store(timestamp, std::memory_order_relaxed);
    s.stamps[0].store(now, std::memory_order_relaxed);
    s.stamps[1].store(0, std::memory_order_relaxed);
    s.stamps[2].store(0, std::memory_order_relaxed);
    s.stamps[3].store(0, std::memory_order_relaxed);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    s.key.store(key, std::memory_order_release);
    return;
  }
  // Probe window full: steal the home slot so a record that will never be
  // completed (e.g. its event was dropped) cannot pin the table forever.
  // The displaced record counts as overflowed; in-flight total is unchanged.
  Slot& home = slots_[key & slot_mask_];
  std::uint64_t current = home.key.load(std::memory_order_relaxed);
  if (current != 0 && current != kReserved &&
      home.key.compare_exchange_strong(current, kReserved,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    home.user_id.store(user_id, std::memory_order_relaxed);
    home.shard.store(shard, std::memory_order_relaxed);
    home.timestamp.store(timestamp, std::memory_order_relaxed);
    home.stamps[0].store(now, std::memory_order_relaxed);
    home.stamps[1].store(0, std::memory_order_relaxed);
    home.stamps[2].store(0, std::memory_order_relaxed);
    home.stamps[3].store(0, std::memory_order_relaxed);
    home.key.store(key, std::memory_order_release);
  }
  overflow_.fetch_add(1, std::memory_order_relaxed);
}

FlightRecorder::Slot* FlightRecorder::find_slot(std::uint64_t key) {
  // Scan the whole probe window: completions clear slots back to empty, so
  // an empty slot does NOT terminate the probe chain (a record inserted
  // past it would become unreachable — the open-addressing deletion trap).
  // kMaxProbes is small and lookups only run for sampled events.
  std::size_t idx = key & slot_mask_;
  for (int probe = 0; probe < kMaxProbes; ++probe, idx = (idx + 1) & slot_mask_) {
    if (slots_[idx].key.load(std::memory_order_acquire) == key) {
      return &slots_[idx];
    }
  }
  return nullptr;
}

void FlightRecorder::stamp_key(FlightHop hop, std::uint64_t key, double now) {
  Slot* s = find_slot(key);
  if (s == nullptr) return;
  s->stamps[static_cast<std::size_t>(hop)].store(now,
                                                 std::memory_order_relaxed);
}

void FlightRecorder::stamp_keys(FlightHop hop,
                                std::span<const std::uint64_t> keys) {
  if (keys.empty()) return;
  double now = now_seconds();
  for (std::uint64_t key : keys) stamp_key(hop, key, now);
}

void FlightRecorder::stamp(FlightHop hop, std::uint32_t user_id,
                           std::uint32_t host_id, std::int64_t timestamp) {
  // The unsampled fast path: one relaxed load, one integer hash, one or two
  // atomic probes — no clock read unless the event is actually in flight.
  if (in_flight_.load(std::memory_order_relaxed) == 0) return;
  Slot* s = find_slot(event_key(user_id, host_id, timestamp));
  if (s == nullptr) return;
  s->stamps[static_cast<std::size_t>(hop)].store(now_seconds(),
                                                 std::memory_order_relaxed);
}

void FlightRecorder::complete_session(std::uint32_t user_id,
                                      std::uint32_t host_id,
                                      std::int64_t timestamp) {
  if (in_flight_.load(std::memory_order_relaxed) == 0) return;
  Slot* s = find_slot(event_key(user_id, host_id, timestamp));
  if (s == nullptr) return;
  double now = now_seconds();
  double parse = s->stamps[0].load(std::memory_order_relaxed);
  double enqueue = s->stamps[1].load(std::memory_order_relaxed);
  double dequeue = s->stamps[2].load(std::memory_order_relaxed);
  std::uint32_t user = s->user_id.load(std::memory_order_relaxed);
  s->key.store(0, std::memory_order_release);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  completed_.fetch_add(1, std::memory_order_relaxed);

  if (enqueue >= parse && enqueue > 0) {
    hop_parse_enqueue_.observe(enqueue - parse);
  }
  if (dequeue > 0 && enqueue > 0 && dequeue >= enqueue) {
    hop_enqueue_dequeue_.observe(dequeue - enqueue);
  }
  if (dequeue > 0 && now >= dequeue) {
    hop_dequeue_session_.observe(now - dequeue);
  }
  if (now >= parse) staleness_session_.observe(now - parse);

  std::lock_guard<std::mutex> lock(awaiting_mutex_);
  if (awaiting_profile_.size() < options_.max_awaiting_profile ||
      awaiting_profile_.count(user) != 0) {
    awaiting_profile_[user] = parse;
    awaiting_.store(awaiting_profile_.size(), std::memory_order_relaxed);
  }
}

void FlightRecorder::record_profile(std::uint32_t user_id) {
  if (awaiting_.load(std::memory_order_relaxed) == 0) return;
  double parse = 0.0;
  {
    std::lock_guard<std::mutex> lock(awaiting_mutex_);
    auto it = awaiting_profile_.find(user_id);
    if (it == awaiting_profile_.end()) return;
    parse = it->second;
    awaiting_profile_.erase(it);
    awaiting_.store(awaiting_profile_.size(), std::memory_order_relaxed);
  }
  profiled_.fetch_add(1, std::memory_order_relaxed);
  double age = now_seconds() - parse;
  if (age >= 0) staleness_profile_.observe(age);
}

std::vector<std::pair<std::int64_t, std::string>> FlightRecorder::sample_log()
    const {
  std::lock_guard<std::mutex> lock(log_mutex_);
  return log_;
}

std::vector<std::pair<std::string, std::string>> FlightRecorder::status()
    const {
  return {
      {"flight_sample_every", std::to_string(options_.sample_every)},
      {"flight_sampled", std::to_string(sampled_count())},
      {"flight_completed", std::to_string(completed_count())},
      {"flight_profile_closed", std::to_string(profiled_count())},
      {"flight_in_flight", std::to_string(in_flight())},
      {"flight_overflow", std::to_string(overflow_count())},
  };
}

}  // namespace netobs::obs
