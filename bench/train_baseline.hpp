// The train_throughput baseline: SGNS retrain throughput at 1/2/4 worker
// threads over a fixed synthetic corpus, shared between bench/micro_pipeline
// (which writes the train_throughput section of BENCH_micro.json) and
// bench/check_bench_regression (which re-runs it and enforces the parallel
// retrain gate). The corpus generator and the digest of the threads=1 model
// double as the bit-identity oracle used by tests/train_parallel_test.cpp.
//
// FROZEN: make_train_corpus and canonical_train_params define the bytes the
// recorded threads=1 model digest was computed from (against the pre-pool
// seed trainer). Any change to either silently invalidates the recorded
// digest in BENCH_micro.json and the golden constant in the tests — extend
// with new functions instead of editing these.
#pragma once

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sha256.hpp"
#include "embedding/sgns.hpp"
#include "util/rng.hpp"

namespace netobs::bench {

struct TrainBaselineOptions {
  std::size_t sequences = 6000;
  std::size_t seq_len = 30;
  std::size_t vocab = 2000;   ///< hostnames, split evenly across topics
  std::size_t topics = 20;
  int epochs = 3;
  std::uint64_t corpus_seed = 2021;
};

/// Topic-clustered Zipf corpus: the vocabulary is split into `topics` equal
/// groups, every sequence draws all its tokens from one group with Zipf(1)
/// rank popularity — browsing sessions dwell on one interest, hostname
/// popularity is heavy-tailed (Section 4.1 trains on exactly such
/// sequences). Hostnames are "h<id>.t<topic>" so the ground-truth topic is
/// recoverable from the name for the purity-parity tests.
inline std::vector<embedding::Sequence> make_train_corpus(
    const TrainBaselineOptions& opts) {
  util::Pcg32 rng(opts.corpus_seed, 0x7a11);
  const std::size_t per_topic = opts.vocab / opts.topics;
  util::ZipfSampler zipf(per_topic, 1.0);
  std::vector<embedding::Sequence> corpus(opts.sequences);
  for (auto& seq : corpus) {
    std::size_t topic =
        rng.next_below(static_cast<std::uint32_t>(opts.topics));
    seq.reserve(opts.seq_len);
    for (std::size_t t = 0; t < opts.seq_len; ++t) {
      std::size_t id = topic * per_topic + zipf.sample(rng);
      seq.push_back("h" + std::to_string(id) + ".t" + std::to_string(topic));
    }
  }
  return corpus;
}

/// Ground-truth topic of a make_train_corpus hostname ("h123.t7" -> 7).
inline std::size_t train_corpus_topic(const std::string& host) {
  auto dot = host.rfind(".t");
  return static_cast<std::size_t>(
      std::strtoull(host.c_str() + dot + 2, nullptr, 10));
}

/// The SgnsParams the recorded digest was trained under (threads varies per
/// measurement; everything else is pinned).
inline embedding::SgnsParams canonical_train_params(std::size_t threads,
                                                    int epochs) {
  embedding::SgnsParams p;
  p.epochs = epochs;
  p.threads = threads;
  return p;  // dim 100, radius 2, K 5, lr word2vec schedule, seed 1
}

/// SHA-256 (hex) of HostEmbedding::save() bytes — the bit-identity oracle.
/// save() writes the token table plus both dense matrices, so two models
/// agree on the digest iff they agree on every trained float.
inline std::string model_digest(const embedding::HostEmbedding& model) {
  std::ostringstream os(std::ios::binary);
  model.save(os);
  crypto::Digest d = crypto::Sha256::hash(os.str());
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  hex.reserve(d.size() * 2);
  for (std::uint8_t byte : d) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xF]);
  }
  return hex;
}

/// SHA-256 of the threads=1 model the seed (pre-pool) trainer produces on
/// the frozen corpus/params above. The pool-based trainer must keep
/// reproducing it bit for bit — this is the acceptance oracle for "the
/// refactor changed the schedule, not the numerics".
inline constexpr const char* kTrainDigestT1 =
    "0939cab592e8ae1b9a120f30e6bbfde3b309e4085644b8a2e75778f04fe88ead";

struct TrainBaselineResult {
  std::size_t sequences = 0;
  std::size_t vocab = 0;  ///< trained vocabulary (after min_count)
  int epochs = 0;
  unsigned hardware_threads = 0;
  std::uint64_t pairs = 0;  ///< (center, context) pairs per full fit
  // Wall seconds (summed epoch durations) per thread count.
  double t1_wall_s = 0.0;
  double t2_wall_s = 0.0;
  double t4_wall_s = 0.0;
  // CPU seconds inside the workers: total at threads=1, and the busiest
  // worker at 2/4 — ideal speedup is t1_cpu_s / tN_cpu_max_s, which holds
  // even on a box with fewer hardware threads than workers (there wall
  // time cannot show the split, exactly like the sharded-ingest bench).
  double t1_cpu_s = 0.0;
  double t2_cpu_max_s = 0.0;
  double t4_cpu_max_s = 0.0;
  double t1_pairs_per_s = 0.0;
  double t4_pairs_per_s = 0.0;
  std::string digest_t1;  ///< model_digest of the threads=1 model

  double ideal_speedup_t2() const {
    return t2_cpu_max_s > 0.0 ? t1_cpu_s / t2_cpu_max_s : 0.0;
  }
  double ideal_speedup_t4() const {
    return t4_cpu_max_s > 0.0 ? t1_cpu_s / t4_cpu_max_s : 0.0;
  }
  double measured_speedup_t4() const {
    return t4_wall_s > 0.0 ? t1_wall_s / t4_wall_s : 0.0;
  }
  /// ISSUE acceptance: >= 3x retrain throughput at >= 4 threads. The ideal
  /// speedup is enforced always; the measured wall-clock one only where the
  /// box actually has >= 4 hardware threads.
  static double speedup_target() { return 3.0; }
  bool measured_speedup_enforced() const { return hardware_threads >= 4; }
  bool digest_matches() const { return digest_t1 == kTrainDigestT1; }
};

/// Trains the frozen corpus at 1, 2 and 4 Hogwild workers and records wall
/// time, per-worker CPU time and the threads=1 digest. ~3 x 2.5 s.
inline TrainBaselineResult run_train_baseline(
    const TrainBaselineOptions& opts = {}) {
  auto corpus = make_train_corpus(opts);
  TrainBaselineResult r;
  r.sequences = opts.sequences;
  r.epochs = opts.epochs;
  r.hardware_threads = std::max(1u, std::thread::hardware_concurrency());

  auto run_at = [&](std::size_t threads, double* wall_s, double* cpu_max_s,
                    bool digest) {
    embedding::SgnsTrainer trainer(
        canonical_train_params(threads, opts.epochs));
    auto model = trainer.fit(corpus);
    double wall = 0.0;
    for (double s : trainer.epoch_durations()) wall += s;
    *wall_s = wall;
    double cpu_sum = 0.0, cpu_max = 0.0;
    for (double c : trainer.worker_cpu_seconds()) {
      cpu_sum += c;
      cpu_max = std::max(cpu_max, c);
    }
    *cpu_max_s = cpu_max;
    if (digest) {
      r.vocab = model.size();
      r.pairs = trainer.total_pairs();
      r.t1_pairs_per_s = trainer.pairs_per_second();
      r.digest_t1 = model_digest(model);
    }
    return cpu_sum;
  };

  r.t1_cpu_s = run_at(1, &r.t1_wall_s, &r.t1_cpu_s, true);
  run_at(2, &r.t2_wall_s, &r.t2_cpu_max_s, false);
  run_at(4, &r.t4_wall_s, &r.t4_cpu_max_s, false);
  r.t4_pairs_per_s =
      r.t4_wall_s > 0.0 ? static_cast<double>(r.pairs) / r.t4_wall_s : 0.0;
  return r;
}

}  // namespace netobs::bench
