// Section 5.4 — tracker/advertiser hostname filtering.
//
// Paper: ~50 of the top-100 hostnames belong to ad/tracking companies;
// three blocklists (adaway, hosts-file.net, yoyo) match ~3K distinct
// hostnames; 6.1M of 75M connections (~8%) during the profiling month hit
// those hostnames and are excluded from profiling.
#include <algorithm>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "bench/common.hpp"
#include "filter/blocklist.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {300, 10, 2021, ""});
  auto world = bench::make_world(cfg);
  util::print_banner(std::cout, "Section 5.4: tracker filtering");
  bench::print_scale_note(cfg, world);

  // Blocklist ingested through the hosts-file format, as in a deployment.
  filter::Blocklist blocklist;
  std::size_t parsed = blocklist.add_hosts_file(
      "synthetic-trackers", world.universe->tracker_hosts_file());

  synth::BrowsingSimulator sim(*world.universe, *world.population);
  auto trace = sim.simulate(0, cfg.days);

  std::size_t blocked = 0;
  std::unordered_map<std::string, std::size_t> host_count;
  std::unordered_set<std::string> blocked_hosts;
  for (const auto& e : trace.events) {
    ++host_count[e.hostname];
    if (blocklist.is_blocked(e.hostname)) {
      ++blocked;
      blocked_hosts.insert(e.hostname);
    }
  }

  // Top-100 hostname composition.
  std::vector<std::pair<std::size_t, std::string>> ranked;
  ranked.reserve(host_count.size());
  for (const auto& [host, count] : host_count) ranked.push_back({count, host});
  std::sort(ranked.rbegin(), ranked.rend());
  std::size_t top100_trackers = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(100, ranked.size());
       ++i) {
    if (blocklist.is_blocked(ranked[i].second)) ++top100_trackers;
  }

  util::Table table({"metric", "measured", "paper"});
  table.add_row({"blocklist domains parsed", std::to_string(parsed),
                 "~3K matched hostnames"});
  table.add_row({"distinct tracker hostnames seen in traffic",
                 std::to_string(blocked_hosts.size()), "~3K"});
  table.add_row({"connections", std::to_string(trace.events.size()), "75M"});
  table.add_row(
      {"connections to trackers",
       util::format("%zu (%.1f%%)", blocked,
                    100.0 * static_cast<double>(blocked) /
                        static_cast<double>(trace.events.size())),
       "6.1M (8.1%)"});
  table.add_row({"tracker hosts among top-100 hostnames",
                 std::to_string(top100_trackers), "~50"});
  table.print(std::cout);

  std::cout << "\nshape checks: a single-digit percentage of connections is\n"
               "tracker traffic concentrated in few very popular hostnames\n"
               "(note: the paper's 50-of-top-100 also counts ad *exchanges*\n"
               "embedded on every page; our tracker fan-out is lighter).\n";
  bench::dump_telemetry(cfg);
  return 0;
}
