// Fixed-width console table printer. The benchmark binaries print the
// paper's tables/figure data with it so output is directly comparable to the
// paper's numbers.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace netobs::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; short rows are padded with empty cells, long rows truncated
  /// to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 3);

  /// Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "=== title ===" section banner.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace netobs::util
