#include "eval/report.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace netobs::eval {

std::vector<std::vector<double>> to_percentage_shares(
    const std::vector<std::vector<double>>& counts) {
  std::vector<std::vector<double>> shares = counts;
  for (auto& day : shares) {
    double total = 0.0;
    for (double c : day) total += c;
    if (total > 0.0) {
      for (double& c : day) c = 100.0 * c / total;
    }
  }
  return shares;
}

std::vector<std::pair<std::size_t, double>> mean_shares_descending(
    const std::vector<std::vector<double>>& shares) {
  std::vector<std::pair<std::size_t, double>> out;
  if (shares.empty()) return out;
  std::size_t topics = shares.front().size();
  out.resize(topics);
  for (std::size_t t = 0; t < topics; ++t) {
    double sum = 0.0;
    for (const auto& day : shares) sum += day[t];
    out[t] = {t, sum / static_cast<double>(shares.size())};
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string format_ctr(double ctr) {
  return util::format("%.3f%%", ctr * 100.0);
}

}  // namespace netobs::eval
