// Traffic synthesizer: turns abstract hostname events into the byte-level
// packets a passive observer captures, closing the loop between the
// synthetic world and the net:: substrate. Every browsing event becomes a
// TCP flow whose first segment(s) carry a genuine TLS ClientHello with the
// hostname in the SNI extension (optionally split across segments, as on a
// real wire), and optionally a preceding DNS query for the same name.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "synth/users.hpp"

namespace netobs::synth {

struct TrafficParams {
  double split_probability = 0.2;  ///< ClientHello split over 2 segments
  bool emit_dns = false;           ///< also emit the DNS lookup
  /// Fraction of connections carried over QUIC (a single encrypted Initial
  /// datagram) instead of TCP+TLS.
  double quic_fraction = 0.0;
  /// Fraction of clients deploying encrypted SNI / ECH: their ClientHellos
  /// omit the server_name extension (Section 7.4's countermeasure).
  double ech_fraction = 0.0;
  std::uint64_t seed = 99;
};

/// The (stable) server IP the synthesizer assigns to a hostname — public
/// so observers/benches can model an eavesdropper resolving hostnames to
/// IPs on its own (e.g. to label IP tokens under encrypted SNI).
std::uint32_t server_ip_for(const std::string& hostname);

class TrafficSynthesizer {
 public:
  /// population must outlive the synthesizer.
  TrafficSynthesizer(const UserPopulation& population,
                     TrafficParams params = TrafficParams());

  /// One TLS flow (1-2 packets) per event, plus optional DNS datagrams;
  /// returned in input order. Throws std::out_of_range for unknown users.
  std::vector<net::Packet> synthesize(
      const std::vector<net::HostnameEvent>& events) const;

 private:
  const UserPopulation* population_;
  TrafficParams params_;
};

}  // namespace netobs::synth
