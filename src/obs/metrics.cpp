#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace netobs::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Canonical instance key: labels sorted by key, tab-separated (tabs cannot
/// appear in valid label keys, and values are compared verbatim).
std::string label_key(Labels& labels) {
  std::sort(labels.begin(), labels.end());
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\t';
    key += v;
    key += '\t';
  }
  return key;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  if (bounds_.empty()) {
    throw std::invalid_argument(
        "Histogram: need at least one bucket bound (all observations would "
        "land in +Inf)");
  }
  for (double b : bounds_) {
    if (std::isnan(b)) {
      throw std::invalid_argument("Histogram: NaN bucket bound");
    }
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: need start>0, factor>1");
  }
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  if (width <= 0.0) throw std::invalid_argument("linear_buckets: width<=0");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(start + width * static_cast<double>(i));
  }
  return out;
}

std::vector<double> default_latency_buckets() {
  // 1us, 4us, ..., ~17s: wide enough for per-packet parses and full daily
  // retrains in the same ladder.
  return exponential_buckets(1e-6, 4.0, 13);
}

struct MetricsRegistry::Family {
  MetricType type;
  std::string help;
  std::vector<double> hist_bounds;  ///< bounds of the first registration
  std::map<std::string, Labels> instance_labels;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family_of(const std::string& name,
                                                    const std::string& help,
                                                    MetricType type) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                name + "'");
  }
  auto it = families_.find(name);
  if (it == families_.end()) {
    auto fam = std::make_unique<Family>();
    fam->type = type;
    fam->help = help;
    it = families_.emplace(name, std::move(fam)).first;
  } else if (it->second->type != type) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as a different type");
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_of(name, help, MetricType::kCounter);
  Labels canon = labels;
  std::string key = label_key(canon);
  auto it = fam.counters.find(key);
  if (it == fam.counters.end()) {
    it = fam.counters
             .emplace(key, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
    fam.instance_labels.emplace(key, std::move(canon));
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_of(name, help, MetricType::kGauge);
  Labels canon = labels;
  std::string key = label_key(canon);
  auto it = fam.gauges.find(key);
  if (it == fam.gauges.end()) {
    it = fam.gauges.emplace(key, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
    fam.instance_labels.emplace(key, std::move(canon));
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_of(name, help, MetricType::kHistogram);
  // One bucket layout per family: Prometheus clients cannot aggregate a
  // histogram whose series disagree on `le` bounds.
  if (fam.histograms.empty()) {
    fam.hist_bounds = bounds;
  } else if (bounds != fam.hist_bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' already registered with different bounds");
  }
  Labels canon = labels;
  std::string key = label_key(canon);
  auto it = fam.histograms.find(key);
  if (it == fam.histograms.end()) {
    it = fam.histograms
             .emplace(key, std::unique_ptr<Histogram>(
                               new Histogram(std::move(bounds), &enabled_)))
             .first;
    fam.instance_labels.emplace(key, std::move(canon));
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, fam] : families_) {
    for (auto& [key, c] : fam->counters) c->reset();
    for (auto& [key, g] : fam->gauges) g->reset();
    for (auto& [key, h] : fam->histograms) h->reset();
  }
  if (trace_) trace_->clear();
}

void MetricsRegistry::enable_tracing(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_ = std::make_unique<TraceBuffer>(capacity);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, c] : fam->counters) {
      snap.counters.push_back(
          {name, fam->help, fam->instance_labels.at(key), c->value()});
    }
    for (const auto& [key, g] : fam->gauges) {
      snap.gauges.push_back(
          {name, fam->help, fam->instance_labels.at(key), g->value()});
    }
    for (const auto& [key, h] : fam->histograms) {
      HistogramSample s;
      s.name = name;
      s.help = fam->help;
      s.labels = fam->instance_labels.at(key);
      s.bounds = h->bounds();
      s.cumulative.resize(s.bounds.size() + 1);
      std::uint64_t running = 0;
      for (std::size_t i = 0; i <= s.bounds.size(); ++i) {
        running += h->bucket_count(i);
        s.cumulative[i] = running;
      }
      s.count = h->count();
      s.sum = h->sum();
      snap.histograms.push_back(std::move(s));
    }
  }
  return snap;
}

}  // namespace netobs::obs
