#include "ads/ad_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/alias_sampler.hpp"
#include "util/vec_math.hpp"

namespace netobs::ads {

namespace {

struct SelectorMetrics {
  obs::Counter& selections;
  obs::Counter& ads_returned;
  obs::Histogram& selection_seconds;

  static SelectorMetrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static SelectorMetrics m{
        reg.counter("netobs_ads_selections_total",
                    "Eavesdropper ad-list selections"),
        reg.counter("netobs_ads_list_entries_total",
                    "Ads returned across all selections"),
        reg.histogram("netobs_ads_selection_seconds",
                      "Latency of one 20-NN ad selection",
                      obs::default_latency_buckets()),
    };
    return m;
  }
};

}  // namespace

AdDatabase AdDatabase::collect(const synth::HostnameUniverse& universe,
                               const ontology::HostLabeler& labeler,
                               std::size_t num_ads, std::uint64_t seed) {
  // Candidate landing pages: labeled hosts that are real sites (ads land on
  // content pages, not on CDN endpoints).
  std::vector<std::size_t> candidates;
  std::vector<double> weights;
  for (std::size_t i = 0; i < universe.size(); ++i) {
    const auto& h = universe.host(i);
    if (h.topic_mix.empty()) continue;
    if (!labeler.is_labeled(h.name)) continue;
    candidates.push_back(i);
    weights.push_back(h.popularity);
  }
  if (candidates.empty()) {
    throw std::invalid_argument(
        "AdDatabase::collect: universe has no labeled sites");
  }

  AdDatabase db;
  util::Pcg32 rng(seed, 0xad5);
  util::AliasSampler sampler(weights);
  const auto& sizes = synth::standard_ad_sizes();
  db.ads_.reserve(num_ads);
  for (std::size_t i = 0; i < num_ads; ++i) {
    std::size_t site = candidates[sampler.sample(rng)];
    const auto& host = universe.host(site);
    Ad ad;
    ad.id = static_cast<AdId>(i);
    ad.size = sizes[rng.next_below(static_cast<std::uint32_t>(sizes.size()))];
    ad.landing_site = site;
    ad.landing_host = host.name;
    ad.categories = *labeler.label_of(host.name);
    ad.topic_mix = host.topic_mix;
    db.by_host_[ad.landing_host].push_back(ad.id);
    db.ads_.push_back(std::move(ad));
  }
  return db;
}

const std::vector<AdId>& AdDatabase::ads_of_host(
    const std::string& host) const {
  static const std::vector<AdId> kEmpty;
  auto it = by_host_.find(host);
  return it == by_host_.end() ? kEmpty : it->second;
}

std::vector<AdId> AdDatabase::ads_with_size(synth::AdSlot size) const {
  std::vector<AdId> out;
  for (const auto& ad : ads_) {
    if (ad.size == size) out.push_back(ad.id);
  }
  return out;
}

EavesdropperSelector::EavesdropperSelector(
    const AdDatabase& db, const ontology::HostLabeler& labeler, Params params)
    : db_(&db), params_(params) {
  if (params_.host_neighbors == 0 || params_.list_size == 0) {
    throw std::invalid_argument("EavesdropperSelector: zero-sized params");
  }
  // Only labeled hosts that actually have ads can serve.
  for (const auto& [host, label] : labeler.labels()) {
    if (!db.ads_of_host(host).empty()) {
      hosts_.push_back(host);
      host_labels_.push_back(label);
    }
  }
  // Deterministic order (labels() iterates a hash map).
  std::vector<std::size_t> order(hosts_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return hosts_[a] < hosts_[b];
  });
  std::vector<std::string> sorted_hosts;
  std::vector<ontology::CategoryVector> sorted_labels;
  sorted_hosts.reserve(hosts_.size());
  sorted_labels.reserve(hosts_.size());
  for (std::size_t i : order) {
    sorted_hosts.push_back(std::move(hosts_[i]));
    sorted_labels.push_back(std::move(host_labels_[i]));
  }
  hosts_ = std::move(sorted_hosts);
  host_labels_ = std::move(sorted_labels);
}

std::vector<AdId> EavesdropperSelector::select(
    const ontology::CategoryVector& profile) const {
  auto& metrics = SelectorMetrics::get();
  metrics.selections.inc();
  obs::ScopedTimer timer(&metrics.selection_seconds);
  std::vector<AdId> out;
  if (hosts_.empty() || profile.empty()) return out;

  // 20-NN by Euclidean distance in category space (Section 5.4).
  struct Scored {
    float distance;
    std::size_t idx;
  };
  std::vector<Scored> scored;
  scored.reserve(hosts_.size());
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    scored.push_back({util::euclidean_distance(profile, host_labels_[i]), i});
  }
  std::size_t n = std::min(params_.host_neighbors, scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(n),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.idx < b.idx;
                    });

  // Round-robin over the closest hosts' ads until the list is full, so the
  // list mixes several nearby interests instead of exhausting one host.
  std::vector<const std::vector<AdId>*> pools;
  pools.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pools.push_back(&db_->ads_of_host(hosts_[scored[i].idx]));
  }
  for (std::size_t round = 0; out.size() < params_.list_size; ++round) {
    bool any = false;
    for (const auto* pool : pools) {
      if (round < pool->size()) {
        out.push_back((*pool)[round]);
        any = true;
        if (out.size() >= params_.list_size) break;
      }
    }
    if (!any) break;
  }
  metrics.ads_returned.inc(out.size());
  return out;
}

}  // namespace netobs::ads
