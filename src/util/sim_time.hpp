// Simulation clock: plain seconds since the (synthetic) experiment epoch.
// Profiling windows (T = 20 min), reporting intervals (10 min) and the daily
// retraining cadence of Section 5.4 are all expressed in these units.
#pragma once

#include <cstdint>

namespace netobs::util {

/// Seconds since the simulated experiment start.
using Timestamp = std::int64_t;

constexpr Timestamp kSecond = 1;
constexpr Timestamp kMinute = 60 * kSecond;
constexpr Timestamp kHour = 60 * kMinute;
constexpr Timestamp kDay = 24 * kHour;

/// 0-based day index of a timestamp.
constexpr std::int64_t day_index(Timestamp t) { return t / kDay; }

/// Seconds into the current day.
constexpr Timestamp time_of_day(Timestamp t) { return t % kDay; }

}  // namespace netobs::util
