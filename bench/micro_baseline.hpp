// The --bench-baseline micro suite, shared between bench/micro_pipeline
// (which writes BENCH_micro.json) and bench/check_bench_regression (which
// re-runs the same measurements and compares against that file).
//
// Measures, on a synthetic `rows` x 100 vocabulary (the paper's d=100;
// --bench-rows=470000 reproduces the paper's 470K-hostname deployment
// scale), the kNN N=1000 sweep four ways:
//   1. the pre-SIMD algorithm — plain scalar dot per row, materialise every
//      similarity, partial_sort the whole vocabulary;
//   2. the blocked SIMD sweep + bounded top-k heap (CosineKnnIndex::query);
//   3. the batched sweep at batch 32 (CosineKnnIndex::query_batch);
//   4. the approximate IVF index (IvfKnnIndex at default nprobe), with
//      recall@1000 measured against the exact sweep on the same queries.
// Plus the d=100 dot kernel, scalar tier vs best tier.
//
// The corpus is topic-clustered, not uniform: hostname embeddings cluster
// by topic (the paper's Fig. 4 t-SNE shows exactly this structure), and a
// uniform-random corpus is the degenerate worst case for any partitioned
// index — it would measure a regime the deployment never sees. Rows are
// unit-normalised draws center_t + noise with ~330 topics (the paper's 328
// flat categories).
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/ingest_baseline.hpp"
#include "bench/train_baseline.hpp"
#include "embedding/ivf_index.hpp"
#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::bench {

struct MicroBaselineOptions {
  /// Vocabulary size; 470000 is the paper's deployment scale.
  std::size_t rows = 50000;
};

struct MicroBaselineResult {
  std::size_t rows = 0;
  std::size_t dim = 0;
  std::size_t top_n = 0;
  std::size_t batch = 0;
  /// std::thread::hardware_concurrency() of the measuring box, stamped into
  /// every section so the regression gate can skip wall-clock ceilings that
  /// assume more cores than the box has.
  std::size_t hardware_threads = 0;
  double fullsort_s = 0.0;
  double blocked_s = 0.0;
  double batch_per_query_s = 0.0;
  double dot_scalar_ns = 0.0;
  double dot_best_ns = 0.0;
  // IVF (ivf_query section): approximate index at default parameters.
  std::size_t ivf_nlists = 0;
  std::size_t ivf_nprobe = 0;
  double ivf_build_s = 0.0;
  double ivf_s = 0.0;
  double ivf_recall = 0.0;  ///< recall@top_n vs the exact sweep
  // IVF build breakdown (ivf_build section): stage timings of the serial
  // (no-pool) build, the same build on 2- and 4-thread pools, and whether
  // every variant produced the bit-identical index (SHA-256 of centroids +
  // lists) — the pool-invariance contract of embedding/kmeans.hpp.
  double ivf_build_kmeans_s = 0.0;
  double ivf_build_assign_s = 0.0;
  double ivf_build_encode_s = 0.0;
  double ivf_build_pool2_s = 0.0;
  double ivf_build_pool4_s = 0.0;
  bool ivf_pool_invariant = false;
  std::string ivf_contents_hash;
  // List-centric batched IVF (ivf_batch_query section): the same 32-query
  // batch answered by IvfKnnIndex::query_batch, and whether the batched
  // answers matched the per-query path bit for bit.
  double ivf_batch_per_query_s = 0.0;
  bool ivf_batch_identical = false;
  // Residual product quantization (pq section): a second IVF index warm-
  // built on the same centroids with pq.m-byte codes instead of int8 rows.
  std::size_t pq_m = 0;
  std::size_t pq_bits = 0;
  double pq_build_s = 0.0;
  double pq_s = 0.0;
  double pq_recall = 0.0;  ///< recall@top_n vs the exact sweep
  std::size_t pq_list_bytes = 0;
  std::size_t int8_list_bytes = 0;

  double knn_speedup() const { return fullsort_s / blocked_s; }
  double batch_speedup() const { return blocked_s / batch_per_query_s; }
  double dot_speedup() const { return dot_scalar_ns / dot_best_ns; }
  double ivf_speedup() const { return blocked_s / ivf_s; }
  double ivf_batch_speedup() const { return ivf_s / ivf_batch_per_query_s; }
  double pq_bytes_ratio() const {
    return int8_list_bytes == 0
               ? 1.0
               : static_cast<double>(pq_list_bytes) /
                     static_cast<double>(int8_list_bytes);
  }

  /// The IVF latency floor is a deployment-scale claim; below this row
  /// count the probed fraction is too large for the speedup to be gated.
  bool ivf_speedup_enforced() const { return rows >= 400000; }

  /// Cold-build ceiling at deployment scale: the pre-parallel seed built
  /// 470K rows in 6967 ms; the pruned-assignment + parallel-encode build
  /// must stay >= 2x better. Informational below 400K rows, where the
  /// grouped assignment may not even activate.
  static double ivf_build_ceiling_ms() { return 3483.0; }
  bool ivf_build_enforced() const { return rows >= 400000; }

  /// Exact-path floor vs the scalar full sort. The 3.0 claim was recorded
  /// at 50K rows where the blocked sweep is compute-bound; at deployment
  /// scale (188 MB of rows at 470K x 100) both paths stream from DRAM and
  /// the ratio compresses, so the floor relaxes to 2.0 there.
  double knn_speedup_target() const { return rows >= 400000 ? 2.0 : 3.0; }

  /// Batched-IVF floor: one list sweep for the whole batch must beat 32
  /// independent sweeps at deployment scale (below 400K rows the probed
  /// lists fit in cache even query-at-a-time and the ratio is noise). The
  /// full 3x claim rides on the pool-sharded sweep and per-query re-rank,
  /// so — like the ingest and retrain wall-clock gates — it is enforced
  /// where the box has >= 4 hardware threads. A single thread still gets
  /// a real floor of 2.0: that is what shared list reads, the bound-skip
  /// re-rank, and packed-key selection deliver when both paths contend
  /// for one DRAM channel (measured 2.3-2.9x on a 1-thread box).
  double ivf_batch_speedup_target() const {
    return hardware_threads >= 4 ? 3.0 : 2.0;
  }
  bool ivf_batch_enforced() const { return rows >= 400000; }

  /// PQ floors: recall@1000 after the exact re-rank, and the memory claim
  /// (codes + codebooks at most a third of the int8 codes + scales).
  static double pq_recall_floor() { return 0.95; }
  static double pq_bytes_ratio_ceiling() { return 1.0 / 3.0; }
};

namespace baseline_detail {

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// The seed implementation's inner product: one scalar accumulator chain.
/// (No -ffast-math in the build, so the compiler cannot vectorise the
/// reduction — this is genuinely the scalar baseline.)
inline float plain_dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0F;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// The seed algorithm: score all rows, partial_sort the full score vector.
inline std::vector<embedding::Neighbor> fullsort_scalar_query(
    const std::vector<float>& unit_rows, std::size_t rows, std::size_t dim,
    const std::vector<float>& unit_query, std::size_t n) {
  using Neighbor = embedding::Neighbor;
  std::vector<Neighbor> scored(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    scored[r].id = static_cast<embedding::TokenId>(r);
    scored[r].similarity =
        plain_dot(unit_rows.data() + r * dim, unit_query.data(), dim);
  }
  if (n > rows) n = rows;
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(n),
                    scored.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.similarity != b.similarity)
                        return a.similarity > b.similarity;
                      return a.id < b.id;
                    });
  scored.resize(n);
  return scored;
}

/// Topic-clustered synthetic vocabulary: ~unit-norm topic centers, rows
/// drawn as center + noise * gaussian. noise = 0.10 puts the typical
/// row-to-center cosine near 0.7 at d=100 — tight enough to mirror the
/// paper's per-topic embedding clusters, loose enough that clusters
/// overlap and the kNN sets cross topic boundaries.
inline embedding::EmbeddingMatrix make_clustered_matrix(std::size_t rows,
                                                        std::size_t dim,
                                                        std::uint64_t seed) {
  constexpr std::size_t kTopics = 330;
  constexpr double kNoise = 0.10;
  util::Pcg32 rng(seed, 0xc1u);
  embedding::EmbeddingMatrix centers(std::min(kTopics, rows), dim);
  for (std::size_t t = 0; t < centers.rows(); ++t) {
    auto row = centers.row(t);
    for (auto& v : row) v = static_cast<float>(rng.normal());
    util::normalize(row);
  }
  embedding::EmbeddingMatrix m(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    auto center =
        centers.row(rng.next_below(static_cast<std::uint32_t>(centers.rows())));
    auto row = m.row(r);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] =
          center[j] + static_cast<float>(kNoise * rng.normal());
    }
  }
  return m;
}

}  // namespace baseline_detail

/// Runs the full measurement (tens of seconds; minutes at --bench-rows
/// 470000). The kNN paths are timed round-robin and summarised by the
/// median round, so CPU-frequency / noisy-neighbour drift hits all of them
/// equally instead of whichever phase ran during the slow window.
inline MicroBaselineResult run_micro_baseline(
    const MicroBaselineOptions& opts = {}) {
  using baseline_detail::fullsort_scalar_query;
  using baseline_detail::seconds_since;

  MicroBaselineResult result;
  result.rows = std::max<std::size_t>(opts.rows, 2000);
  result.dim = 100;
  result.top_n = 1000;
  result.batch = 32;
  result.hardware_threads = std::thread::hardware_concurrency();
  const std::size_t kRows = result.rows;
  const std::size_t kDim = result.dim;
  const std::size_t kTopN = result.top_n;
  const std::size_t kBatch = result.batch;

  std::cerr << "[baseline] building " << kRows << " x " << kDim
            << " topic-clustered matrix...\n";
  embedding::EmbeddingMatrix matrix =
      baseline_detail::make_clustered_matrix(kRows, kDim, 2021);

  // Dense unnormalised copies for queries, pre-normalised dense rows for the
  // full-sort baseline (normalisation is build-time cost in both designs).
  std::vector<std::vector<float>> queries;
  for (std::size_t i = 0; i < kBatch; ++i) {
    auto row = matrix.row((i * 1543) % kRows);
    queries.emplace_back(row.begin(), row.end());
  }
  std::vector<float> unit_rows(kRows * kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    auto row = matrix.row(r);
    float norm = util::l2_norm(row);
    float inv = norm > 0.0F ? 1.0F / norm : 0.0F;
    for (std::size_t j = 0; j < kDim; ++j) {
      unit_rows[r * kDim + j] = row[j] * inv;
    }
  }

  embedding::CosineKnnIndex index(matrix);

  // Pre-normalised queries for the full-sort baseline (the index paths
  // normalise internally; doing it outside the timed region for the
  // baseline only biases the comparison *against* the new code).
  std::vector<std::vector<float>> unit_queries = queries;
  for (auto& q : unit_queries) {
    float norm = util::l2_norm(q);
    for (auto& v : q) v /= norm;
  }

  // The approximate index at stock parameters — what ServiceParams
  // knn_backend = kIvf deploys.
  std::cerr << "[baseline] building IVF index...\n";
  auto t_build = std::chrono::steady_clock::now();
  embedding::IvfKnnIndex ivf(matrix);
  result.ivf_build_s = seconds_since(t_build);
  result.ivf_nlists = ivf.nlists();
  result.ivf_nprobe = std::min(ivf.params().nprobe, ivf.nlists());
  result.ivf_build_kmeans_s = ivf.build_stats().kmeans_s;
  result.ivf_build_assign_s = ivf.build_stats().assign_s;
  result.ivf_build_encode_s = ivf.build_stats().encode_s;
  result.ivf_contents_hash = ivf.contents_hash();

  // The PQ sibling: same coarse quantizer (warm build skips Lloyd), m-byte
  // residual codes instead of the qstride + 4 int8 payload. m = 20 at
  // d = 100 gives dsub = 5 subspaces and a 20 / 132 bytes-per-row ratio.
  std::cerr << "[baseline] building PQ index on the same centroids...\n";
  embedding::IvfParams pq_params;
  pq_params.nlists = ivf.nlists();
  pq_params.rerank = 8;  // the LUT scan is lossier than int8: widen the pool
  pq_params.pq.m = 20;
  pq_params.pq.bits = 8;
  t_build = std::chrono::steady_clock::now();
  embedding::IvfKnnIndex pq(matrix, ivf.centroids(), pq_params);
  result.pq_build_s = seconds_since(t_build);
  result.pq_m = pq.pq_code_bytes_per_row();
  result.pq_bits = pq_params.pq.bits;
  result.pq_list_bytes = pq.list_bytes();
  result.int8_list_bytes = ivf.list_bytes();

  // Same build on 2- and 4-thread pools: faster where the box has the
  // cores, and — the contract — bit-identical either way.
  std::cerr << "[baseline] rebuilding IVF index on 2/4-thread pools...\n";
  result.ivf_pool_invariant = true;
  for (std::size_t pool_threads : {std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(pool_threads);
    t_build = std::chrono::steady_clock::now();
    embedding::IvfKnnIndex pooled(matrix, embedding::IvfParams(), &pool);
    double elapsed = seconds_since(t_build);
    (pool_threads == 2 ? result.ivf_build_pool2_s
                       : result.ivf_build_pool4_s) = elapsed;
    result.ivf_pool_invariant = result.ivf_pool_invariant &&
        pooled.contents_hash() == result.ivf_contents_hash;
  }

  std::cerr << "[baseline] interleaved rounds ("
            << util::simd::tier_name(util::simd::active_tier()) << ")...\n";
  constexpr int kRounds = 9;
  constexpr int kBlockedPerRound = 4;
  constexpr int kIvfPerRound = 16;
  std::vector<double> fullsort_times, blocked_times, batch_times, ivf_times;
  std::vector<double> ivf_batch_times, pq_times;
  auto round_queries = [&](int round) {
    return static_cast<std::size_t>(round) % kBatch;
  };
  // Warm-up: touch every buffer once outside the timed rounds.
  benchmark::DoNotOptimize(
      fullsort_scalar_query(unit_rows, kRows, kDim, unit_queries[0], kTopN));
  benchmark::DoNotOptimize(index.query(queries[0], kTopN));
  benchmark::DoNotOptimize(index.query_batch(queries, kTopN));
  benchmark::DoNotOptimize(ivf.query(queries[0], kTopN));
  benchmark::DoNotOptimize(ivf.query_batch(queries, kTopN));
  benchmark::DoNotOptimize(pq.query(queries[0], kTopN));
  for (int round = 0; round < kRounds; ++round) {
    auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fullsort_scalar_query(
        unit_rows, kRows, kDim, unit_queries[round_queries(round)], kTopN));
    fullsort_times.push_back(seconds_since(t0));

    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kBlockedPerRound; ++rep) {
      benchmark::DoNotOptimize(
          index.query(queries[round_queries(round + rep)], kTopN));
    }
    blocked_times.push_back(seconds_since(t0) / kBlockedPerRound);

    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(index.query_batch(queries, kTopN));
    batch_times.push_back(seconds_since(t0) / static_cast<double>(kBatch));

    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kIvfPerRound; ++rep) {
      benchmark::DoNotOptimize(
          ivf.query(queries[round_queries(round + rep)], kTopN));
    }
    ivf_times.push_back(seconds_since(t0) / kIvfPerRound);

    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(ivf.query_batch(queries, kTopN));
    ivf_batch_times.push_back(seconds_since(t0) /
                              static_cast<double>(kBatch));

    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kIvfPerRound; ++rep) {
      benchmark::DoNotOptimize(
          pq.query(queries[round_queries(round + rep)], kTopN));
    }
    pq_times.push_back(seconds_since(t0) / kIvfPerRound);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  result.fullsort_s = median(fullsort_times);
  result.blocked_s = median(blocked_times);
  result.batch_per_query_s = median(batch_times);
  result.ivf_s = median(ivf_times);
  result.ivf_batch_per_query_s = median(ivf_batch_times);
  result.pq_s = median(pq_times);

  // The bit-identity contract of the batched scan at the *default* nprobe:
  // same ids, same float similarities as the per-query path.
  result.ivf_batch_identical = true;
  {
    auto batched = ivf.query_batch(queries, kTopN);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      auto single = ivf.query(queries[qi], kTopN);
      bool same = batched[qi].size() == single.size();
      for (std::size_t j = 0; same && j < single.size(); ++j) {
        same = batched[qi][j].id == single[j].id &&
               batched[qi][j].similarity == single[j].similarity;
      }
      result.ivf_batch_identical = result.ivf_batch_identical && same;
    }
  }

  // recall@top_n of the approximate indexes over the full query batch, with
  // the exact sweep as oracle.
  std::size_t hit = 0, pq_hit = 0, want = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    auto exact = index.query(queries[qi], kTopN);
    auto count_hits = [&exact](const std::vector<embedding::Neighbor>& approx) {
      std::vector<embedding::TokenId> got;
      got.reserve(approx.size());
      for (const auto& nb : approx) got.push_back(nb.id);
      std::sort(got.begin(), got.end());
      std::size_t h = 0;
      for (const auto& nb : exact) {
        h += std::binary_search(got.begin(), got.end(), nb.id) ? 1 : 0;
      }
      return h;
    };
    hit += count_hits(ivf.query(queries[qi], kTopN));
    pq_hit += count_hits(pq.query(queries[qi], kTopN));
    want += exact.size();
  }
  result.ivf_recall =
      want == 0 ? 0.0 : static_cast<double>(hit) / static_cast<double>(want);
  result.pq_recall =
      want == 0 ? 0.0
                : static_cast<double>(pq_hit) / static_cast<double>(want);

  // d=100 dot kernel, scalar tier vs best tier.
  constexpr int kDotReps = 2000000;
  auto time_dot = [&](util::simd::Tier tier) {
    auto previous = util::simd::active_tier();
    util::simd::force_tier(tier);
    const float* a = unit_rows.data();
    const float* b = unit_rows.data() + kDim;
    auto start = std::chrono::steady_clock::now();
    float sink = 0.0F;
    for (int rep = 0; rep < kDotReps; ++rep) {
      sink += util::simd::dot(a, b, kDim);
    }
    benchmark::DoNotOptimize(sink);
    double ns = seconds_since(start) / kDotReps * 1e9;
    util::simd::force_tier(previous);
    return ns;
  };
  result.dot_scalar_ns = time_dot(util::simd::Tier::kScalar);
  result.dot_best_ns = time_dot(util::simd::best_supported_tier());
  return result;
}

/// Writes the BENCH_micro.json document (kNN + ivf build + train + ingest
/// sections). Returns false (with a message on stderr) when the file
/// cannot be written. Keys are unique across the whole document — the
/// regression gate reads it with a flat key scan.
inline bool write_micro_baseline_json(const std::string& path,
                                      const MicroBaselineResult& r,
                                      const IngestBaselineResult& ing,
                                      const TrainBaselineResult& tr) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[baseline] cannot write " << path << "\n";
    return false;
  }
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "{\n"
      << "  \"bench\": \"micro_pipeline --bench-baseline\",\n"
      << "  \"config\": {\"rows\": " << r.rows << ", \"dim\": " << r.dim
      << ", \"top_n\": " << r.top_n << ", \"batch\": " << r.batch << "},\n"
      << "  \"simd_tier\": \""
      << util::simd::tier_name(util::simd::active_tier()) << "\",\n"
      << "  \"knn_query\": {\n"
      << "    \"knn_hardware_threads\": " << r.hardware_threads << ",\n"
      << "    \"scalar_fullsort_ms\": " << r.fullsort_s * 1e3 << ",\n"
      << "    \"blocked_heap_ms\": " << r.blocked_s * 1e3 << ",\n"
      << "    \"batch32_per_query_ms\": " << r.batch_per_query_s * 1e3
      << ",\n"
      << "    \"scalar_fullsort_qps\": " << 1.0 / r.fullsort_s << ",\n"
      << "    \"blocked_heap_qps\": " << 1.0 / r.blocked_s << ",\n"
      << "    \"batch32_per_query_qps\": " << 1.0 / r.batch_per_query_s
      << ",\n"
      << "    \"speedup_vs_scalar_fullsort\": " << r.knn_speedup() << ",\n"
      << "    \"batch_speedup_vs_single_query\": " << r.batch_speedup()
      << "\n"
      << "  },\n"
      << "  \"ivf_query\": {\n"
      << "    \"ivf_query_hardware_threads\": " << r.hardware_threads
      << ",\n"
      << "    \"nlists\": " << r.ivf_nlists << ",\n"
      << "    \"nprobe\": " << r.ivf_nprobe << ",\n"
      << "    \"build_ms\": " << r.ivf_build_s * 1e3 << ",\n"
      << "    \"ivf_query_ms\": " << r.ivf_s * 1e3 << ",\n"
      << "    \"ivf_query_qps\": " << 1.0 / r.ivf_s << ",\n";
  out.precision(4);
  out << "    \"recall_at_1000\": " << r.ivf_recall << ",\n";
  out.precision(2);
  out << "    \"speedup_vs_blocked_heap\": " << r.ivf_speedup() << "\n"
      << "  },\n"
      << "  \"ivf_batch_query\": {\n"
      << "    \"ivf_batch_hardware_threads\": " << r.hardware_threads
      << ",\n"
      << "    \"ivf_batch32_per_query_ms\": " << r.ivf_batch_per_query_s * 1e3
      << ",\n"
      << "    \"ivf_batch32_per_query_qps\": " << 1.0 / r.ivf_batch_per_query_s
      << ",\n"
      << "    \"ivf_batch_speedup_vs_single\": " << r.ivf_batch_speedup()
      << ",\n"
      << "    \"ivf_batch_identical\": "
      << (r.ivf_batch_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"pq\": {\n"
      << "    \"pq_hardware_threads\": " << r.hardware_threads << ",\n"
      << "    \"pq_m\": " << r.pq_m << ",\n"
      << "    \"pq_bits\": " << r.pq_bits << ",\n"
      << "    \"pq_build_ms\": " << r.pq_build_s * 1e3 << ",\n"
      << "    \"pq_query_ms\": " << r.pq_s * 1e3 << ",\n"
      << "    \"pq_query_qps\": " << 1.0 / r.pq_s << ",\n"
      << "    \"pq_list_bytes\": " << r.pq_list_bytes << ",\n"
      << "    \"int8_list_bytes\": " << r.int8_list_bytes << ",\n";
  out.precision(4);
  out << "    \"pq_bytes_ratio\": " << r.pq_bytes_ratio() << ",\n"
      << "    \"pq_recall_at_1000\": " << r.pq_recall << "\n";
  out.precision(2);
  out << "  },\n"
      << "  \"ivf_build\": {\n"
      << "    \"ivf_build_hardware_threads\": " << r.hardware_threads
      << ",\n"
      << "    \"ivf_build_serial_ms\": " << r.ivf_build_s * 1e3 << ",\n"
      << "    \"ivf_build_kmeans_ms\": " << r.ivf_build_kmeans_s * 1e3
      << ",\n"
      << "    \"ivf_build_assign_ms\": " << r.ivf_build_assign_s * 1e3
      << ",\n"
      << "    \"ivf_build_encode_ms\": " << r.ivf_build_encode_s * 1e3
      << ",\n"
      << "    \"ivf_build_pool2_ms\": " << r.ivf_build_pool2_s * 1e3 << ",\n"
      << "    \"ivf_build_pool4_ms\": " << r.ivf_build_pool4_s * 1e3 << ",\n"
      << "    \"ivf_pool_invariant\": "
      << (r.ivf_pool_invariant ? "true" : "false") << ",\n"
      << "    \"ivf_contents_hash\": \"" << r.ivf_contents_hash << "\"\n"
      << "  },\n"
      << "  \"train_throughput\": {\n"
      << "    \"train_sequences\": " << tr.sequences << ",\n"
      << "    \"train_vocab\": " << tr.vocab << ",\n"
      << "    \"train_epochs\": " << tr.epochs << ",\n"
      << "    \"train_pairs\": " << tr.pairs << ",\n"
      << "    \"train_hardware_threads\": " << tr.hardware_threads << ",\n"
      << "    \"train_t1_wall_ms\": " << tr.t1_wall_s * 1e3 << ",\n"
      << "    \"train_t2_wall_ms\": " << tr.t2_wall_s * 1e3 << ",\n"
      << "    \"train_t4_wall_ms\": " << tr.t4_wall_s * 1e3 << ",\n"
      << "    \"train_t1_cpu_ms\": " << tr.t1_cpu_s * 1e3 << ",\n"
      << "    \"train_t2_cpu_max_ms\": " << tr.t2_cpu_max_s * 1e3 << ",\n"
      << "    \"train_t4_cpu_max_ms\": " << tr.t4_cpu_max_s * 1e3 << ",\n"
      << "    \"train_t1_pairs_per_s\": " << tr.t1_pairs_per_s << ",\n"
      << "    \"train_t4_pairs_per_s\": " << tr.t4_pairs_per_s << ",\n"
      << "    \"train_ideal_speedup_t2\": " << tr.ideal_speedup_t2() << ",\n"
      << "    \"train_ideal_speedup_t4\": " << tr.ideal_speedup_t4() << ",\n"
      << "    \"train_measured_speedup_t4\": " << tr.measured_speedup_t4()
      << ",\n"
      << "    \"train_digest_t1\": \"" << tr.digest_t1 << "\"\n"
      << "  },\n"
      << "  \"dot_d100\": {\n"
      << "    \"dot_hardware_threads\": " << r.hardware_threads << ",\n"
      << "    \"scalar_ns\": " << r.dot_scalar_ns << ",\n"
      << "    \"" << util::simd::tier_name(util::simd::best_supported_tier())
      << "_ns\": " << r.dot_best_ns << ",\n"
      << "    \"speedup\": " << r.dot_speedup() << "\n"
      << "  },\n"
      << "  \"ingest_throughput\": {\n"
      << "    \"packets\": " << ing.packets << ",\n"
      << "    \"flows\": " << ing.flows << ",\n"
      << "    \"events\": " << ing.events << ",\n"
      << "    \"shards\": " << ing.shards << ",\n"
      << "    \"hardware_threads\": " << ing.hardware_threads << ",\n"
      << "    \"singlethread_ms\": " << ing.st_s * 1e3 << ",\n"
      << "    \"ingest_singlethread_pps\": " << ing.st_pps() << ",\n"
      << "    \"sharded_wall_ms\": " << ing.mt_wall_s * 1e3 << ",\n"
      << "    \"ingest_sharded_pps\": " << ing.mt_pps() << ",\n"
      << "    \"max_shard_serial_ms\": " << ing.shard_serial_max_s * 1e3
      << ",\n"
      << "    \"sum_shard_serial_ms\": " << ing.shard_serial_sum_s * 1e3
      << ",\n"
      << "    \"ingest_speedup_measured\": " << ing.speedup_measured()
      << ",\n"
      << "    \"ingest_speedup_ideal\": " << ing.speedup_ideal() << ",\n"
      << "    \"alloc_per_event_singlethread\": " << ing.alloc_per_event_st
      << ",\n"
      << "    \"alloc_per_event_sharded\": " << ing.alloc_per_event_sharded
      << ",\n"
      << "    \"ingest_dropped\": " << ing.dropped << ",\n"
      << "    \"oneshard_identical\": "
      << (ing.oneshard_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"flight_recorder\": {\n"
      << "    \"flight_hardware_threads\": " << ing.hardware_threads << ",\n"
      << "    \"flight_sample_every\": " << ing.flight_sample_every << ",\n"
      << "    \"flight_serial_off_ms\": " << ing.flight_off_s * 1e3 << ",\n"
      << "    \"flight_serial_on_ms\": " << ing.flight_on_s * 1e3 << ",\n"
      << "    \"flight_overhead_pct\": " << ing.flight_overhead_pct() << ",\n"
      << "    \"flight_sampled_events\": " << ing.flight_sampled << "\n"
      << "  },\n"
      << "  \"memory_accounting\": {\n"
      << "    \"memory_total_bytes\": " << ing.memory.total_bytes << ",\n"
      << "    \"memory_per_user_bytes\": " << ing.memory.per_user_bytes
      << ",\n"
      << "    \"memory_tracked_users\": " << ing.memory.users << ",\n"
      << "    \"memory_bytes_per_user\": " << ing.memory.bytes_per_user
      << ",\n"
      << "    \"session_store_bytes\": " << ing.session_store_bytes << ",\n"
      << "    \"session_store_users\": " << ing.session_store_users << ",\n"
      << "    \"session_bytes_per_user\": " << ing.session_bytes_per_user()
      << ",\n"
      << "    \"subsystems\": {";
  for (std::size_t i = 0; i < ing.memory.subsystems.size(); ++i) {
    const auto& sub = ing.memory.subsystems[i];
    out << (i == 0 ? "\n" : ",\n") << "      \"" << sub.subsystem
        << "\": " << sub.bytes;
  }
  out << "\n    }\n"
      << "  },\n"
      << "  \"acceptance\": {\n"
      << "    \"knn_speedup_target\": " << r.knn_speedup_target() << ",\n"
      << "    \"knn_speedup_met\": "
      << (r.knn_speedup() >= r.knn_speedup_target() ? "true" : "false")
      << ",\n"
      << "    \"batch_speedup_target\": 1.5,\n"
      << "    \"batch_speedup_met\": "
      << (r.batch_speedup() >= 1.5 ? "true" : "false") << ",\n"
      << "    \"ivf_recall_target\": 0.98,\n"
      << "    \"ivf_recall_met\": "
      << (r.ivf_recall >= 0.98 ? "true" : "false") << ",\n"
      << "    \"ivf_speedup_target\": 5.0,\n"
      << "    \"ivf_speedup_enforced_at_rows\": 400000,\n"
      << "    \"ivf_speedup_met\": "
      << (!r.ivf_speedup_enforced() || r.ivf_speedup() >= 5.0 ? "true"
                                                              : "false")
      << ",\n"
      << "    \"ivf_build_ceiling_ms\": "
      << MicroBaselineResult::ivf_build_ceiling_ms() << ",\n"
      << "    \"ivf_build_enforced_at_rows\": 400000,\n"
      << "    \"ivf_build_ceiling_met\": "
      << (!r.ivf_build_enforced() ||
                  r.ivf_build_s * 1e3 <=
                      MicroBaselineResult::ivf_build_ceiling_ms()
              ? "true"
              : "false")
      << ",\n"
      << "    \"ivf_pool_invariant_met\": "
      << (r.ivf_pool_invariant ? "true" : "false") << ",\n"
      << "    \"ivf_batch_speedup_target\": " << r.ivf_batch_speedup_target()
      << ",\n"
      << "    \"ivf_batch_speedup_enforced_at_rows\": 400000,\n"
      << "    \"ivf_batch_speedup_met\": "
      << (!r.ivf_batch_enforced() ||
                  r.ivf_batch_speedup() >= r.ivf_batch_speedup_target()
              ? "true"
              : "false")
      << ",\n"
      << "    \"ivf_batch_identical_met\": "
      << (r.ivf_batch_identical ? "true" : "false") << ",\n"
      << "    \"pq_recall_floor\": " << MicroBaselineResult::pq_recall_floor()
      << ",\n"
      << "    \"pq_recall_met\": "
      << (r.pq_recall >= MicroBaselineResult::pq_recall_floor() ? "true"
                                                                : "false")
      << ",\n"
      << "    \"pq_bytes_ratio_ceiling\": "
      << MicroBaselineResult::pq_bytes_ratio_ceiling() << ",\n"
      << "    \"pq_bytes_ratio_met\": "
      << (r.pq_bytes_ratio() <= MicroBaselineResult::pq_bytes_ratio_ceiling()
              ? "true"
              : "false")
      << ",\n"
      << "    \"train_speedup_target\": "
      << TrainBaselineResult::speedup_target() << ",\n"
      << "    \"train_ideal_speedup_met\": "
      << (tr.ideal_speedup_t4() >= TrainBaselineResult::speedup_target()
              ? "true"
              : "false")
      << ",\n"
      << "    \"train_measured_speedup_enforced\": "
      << (tr.measured_speedup_enforced() ? "true" : "false") << ",\n"
      << "    \"train_measured_speedup_met\": "
      << (!tr.measured_speedup_enforced() ||
                  tr.measured_speedup_t4() >=
                      TrainBaselineResult::speedup_target()
              ? "true"
              : "false")
      << ",\n"
      << "    \"train_digest_met\": "
      << (tr.digest_matches() ? "true" : "false") << ",\n"
      << "    \"ingest_speedup_target\": "
      << IngestBaselineResult::speedup_target() << ",\n"
      << "    \"ingest_ideal_speedup_enforced_at_shards\": 4,\n"
      << "    \"ingest_ideal_speedup_met\": "
      << (!ing.ideal_speedup_enforced() ||
                  ing.speedup_ideal() >= IngestBaselineResult::speedup_target()
              ? "true"
              : "false")
      << ",\n"
      << "    \"ingest_measured_speedup_enforced\": "
      << (ing.measured_speedup_enforced() ? "true" : "false") << ",\n"
      << "    \"ingest_measured_speedup_met\": "
      << (!ing.measured_speedup_enforced() ||
                  ing.speedup_measured() >=
                      IngestBaselineResult::speedup_target()
              ? "true"
              : "false")
      << ",\n"
      << "    \"ingest_zero_loss_met\": "
      << (ing.dropped == 0 ? "true" : "false") << ",\n"
      << "    \"ingest_oneshard_identical_met\": "
      << (ing.oneshard_identical ? "true" : "false") << ",\n"
      << "    \"flight_overhead_target_pct\": "
      << IngestBaselineResult::flight_overhead_target_pct() << ",\n"
      << "    \"flight_overhead_met\": "
      << (!ing.flight_overhead_enforced() ||
                  ing.flight_overhead_pct() <=
                      IngestBaselineResult::flight_overhead_target_pct()
              ? "true"
              : "false")
      << ",\n"
      << "    \"session_bytes_per_user_ceiling\": "
      << IngestBaselineResult::session_bytes_per_user_ceiling() << ",\n"
      << "    \"session_bytes_per_user_met\": "
      << (ing.session_bytes_per_user() <=
                  IngestBaselineResult::session_bytes_per_user_ceiling()
              ? "true"
              : "false")
      << "\n"
      << "  }\n"
      << "}\n";
  return static_cast<bool>(out);
}

}  // namespace netobs::bench
