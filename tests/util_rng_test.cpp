#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/alias_sampler.hpp"
#include "util/rng.hpp"

namespace netobs::util {
namespace {

TEST(Pcg32, IsDeterministicForSameSeed) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, StreamsAreDecorrelated) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Pcg32, NextBelowCoversRangeUniformly) {
  Pcg32 rng(3);
  constexpr std::uint32_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (std::uint32_t v = 0; v < kBound; ++v) {
    EXPECT_NEAR(counts[v], kDraws / kBound, kDraws / kBound * 0.1)
        << "bucket " << v;
  }
}

TEST(Pcg32, NextBelowZeroThrows) {
  Pcg32 rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Pcg32, NormalHasExpectedMoments) {
  Pcg32 rng(11);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32, ExponentialMeanMatchesRate) {
  Pcg32 rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Pcg32, ExponentialRejectsNonPositiveRate) {
  Pcg32 rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Pcg32, GammaMeanEqualsShape) {
  Pcg32 rng(17);
  for (double shape : {0.5, 1.0, 3.0, 9.0}) {
    double sum = 0.0;
    constexpr int kN = 50000;
    for (int i = 0; i < kN; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / kN, shape, shape * 0.07) << "shape=" << shape;
  }
}

TEST(Pcg32, DirichletSumsToOne) {
  Pcg32 rng(19);
  for (int rep = 0; rep < 50; ++rep) {
    auto v = rng.dirichlet(10, 0.3);
    double total = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Pcg32, DirichletConcentrationControlsSpread) {
  Pcg32 rng(23);
  // Low alpha -> sparse vectors (high max); high alpha -> uniform-ish.
  double max_low = 0.0;
  double max_high = 0.0;
  for (int rep = 0; rep < 200; ++rep) {
    auto lo = rng.dirichlet(20, 0.05);
    auto hi = rng.dirichlet(20, 50.0);
    max_low += *std::max_element(lo.begin(), lo.end());
    max_high += *std::max_element(hi.begin(), hi.end());
  }
  EXPECT_GT(max_low / 200, 0.5);
  EXPECT_LT(max_high / 200, 0.15);
}

TEST(Pcg32, CategoricalFollowsWeights) {
  Pcg32 rng(29);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0], kN * 0.1, kN * 0.01);
  EXPECT_NEAR(counts[1], kN * 0.3, kN * 0.015);
  EXPECT_NEAR(counts[2], kN * 0.6, kN * 0.015);
}

TEST(Pcg32, PoissonMeanMatches) {
  Pcg32 rng(31);
  for (double mean : {0.5, 4.0, 50.0}) {
    double sum = 0.0;
    constexpr int kN = 30000;
    for (int i = 0; i < kN; ++i) sum += rng.poisson(mean);
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(Pcg32, ShufflePreservesElements) {
  Pcg32 rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Pcg32, ForkProducesIndependentStream) {
  Pcg32 parent(41);
  Pcg32 child = parent.fork(1);
  Pcg32 child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child.next_u32() == child2.next_u32()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(1000, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < z.size(); ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, HeadIsHeavierThanTail) {
  ZipfSampler z(10000, 1.1);
  EXPECT_GT(z.pmf(0), z.pmf(1));
  EXPECT_GT(z.pmf(1), z.pmf(100));
  EXPECT_GT(z.pmf(100), z.pmf(9999));
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler z(50, 1.0);
  Pcg32 rng(43);
  std::vector<int> counts(50, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t r : {0UL, 1UL, 5UL, 20UL}) {
    double expected = z.pmf(r) * kN;
    EXPECT_NEAR(counts[r], expected, expected * 0.08 + 30) << "rank " << r;
  }
}

TEST(ZipfSampler, RejectsEmptyUniverse) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(AliasSampler, MatchesTargetDistribution) {
  std::vector<double> w = {5.0, 1.0, 3.0, 1.0};
  AliasSampler s(w);
  Pcg32 rng(47);
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[s.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    double expected = w[i] / 10.0 * kN;
    EXPECT_NEAR(counts[i], expected, expected * 0.06 + 30) << "idx " << i;
  }
}

TEST(AliasSampler, ProbabilityIsNormalizedWeight) {
  AliasSampler s(std::vector<double>{2.0, 6.0});
  EXPECT_NEAR(s.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(s.probability(1), 0.75, 1e-12);
  EXPECT_EQ(s.probability(5), 0.0);
}

TEST(AliasSampler, SingleBucketAlwaysSampled) {
  AliasSampler s(std::vector<double>{3.0});
  Pcg32 rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0U);
}

TEST(AliasSampler, RejectsInvalidWeights) {
  EXPECT_THROW(AliasSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(AliasSampler(std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(AliasSampler, HandlesZeroWeightEntries) {
  AliasSampler s(std::vector<double>{0.0, 1.0, 0.0, 1.0});
  Pcg32 rng(59);
  for (int i = 0; i < 1000; ++i) {
    auto idx = s.sample(rng);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

// Property sweep: alias sampling stays faithful across universe sizes.
class AliasSamplerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AliasSamplerSweep, UniformWeightsSampleUniformly) {
  std::size_t n = GetParam();
  AliasSampler s(std::vector<double>(n, 1.0));
  Pcg32 rng(61);
  std::vector<int> counts(n, 0);
  const int draws_per_bucket = 2000;
  const int total = static_cast<int>(n) * draws_per_bucket;
  for (int i = 0; i < total; ++i) ++counts[s.sample(rng)];
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], draws_per_bucket, draws_per_bucket * 0.2)
        << "n=" << n << " idx=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasSamplerSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 101));

}  // namespace
}  // namespace netobs::util
