#include <gtest/gtest.h>

#include <cmath>

#include "tsne/bhtsne.hpp"
#include "util/rng.hpp"

namespace netobs::tsne {
namespace {

std::vector<float> blob_data(std::size_t per_blob, std::size_t dim,
                             std::vector<int>* labels, double spread = 0.4) {
  util::Pcg32 rng(5);
  std::vector<float> rows;
  for (int blob = 0; blob < 3; ++blob) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      for (std::size_t d = 0; d < dim; ++d) {
        double center = d == static_cast<std::size_t>(blob) ? 8.0 : 0.0;
        rows.push_back(static_cast<float>(rng.normal(center, spread)));
      }
      labels->push_back(blob);
    }
  }
  return rows;
}

double separation_ratio(const TsneResult& result,
                        const std::vector<int>& labels) {
  double intra = 0.0;
  double inter = 0.0;
  std::size_t ni = 0;
  std::size_t nj = 0;
  for (std::size_t i = 0; i < result.points; i += 2) {
    for (std::size_t j = i + 1; j < result.points; j += 2) {
      double dx = result.x(i, 0) - result.x(j, 0);
      double dy = result.x(i, 1) - result.x(j, 1);
      double d = std::sqrt(dx * dx + dy * dy);
      if (labels[i] == labels[j]) {
        intra += d;
        ++ni;
      } else {
        inter += d;
        ++nj;
      }
    }
  }
  return (inter / static_cast<double>(nj)) /
         std::max(1e-12, intra / static_cast<double>(ni));
}

TEST(BhTsne, SeparatesGaussianBlobs) {
  std::vector<int> labels;
  auto rows = blob_data(60, 10, &labels);
  BhTsneParams params;
  params.perplexity = 15.0;
  params.iterations = 300;
  auto result = run_bhtsne(rows, 180, 10, params);
  ASSERT_EQ(result.points, 180U);
  EXPECT_GT(separation_ratio(result, labels), 2.0);
}

TEST(BhTsne, ThetaZeroMatchesSeparationOfExactRepulsion) {
  std::vector<int> labels;
  auto rows = blob_data(30, 6, &labels);
  BhTsneParams exact;
  exact.perplexity = 10.0;
  exact.iterations = 200;
  exact.theta = 0.0;  // Barnes-Hut degenerates to exact repulsion
  BhTsneParams approx = exact;
  approx.theta = 0.7;
  auto r_exact = run_bhtsne(rows, 90, 6, exact);
  auto r_approx = run_bhtsne(rows, 90, 6, approx);
  double s_exact = separation_ratio(r_exact, labels);
  double s_approx = separation_ratio(r_approx, labels);
  EXPECT_GT(s_exact, 2.0);
  EXPECT_GT(s_approx, 2.0);
  // Approximation should not change the qualitative result by much.
  EXPECT_NEAR(s_approx / s_exact, 1.0, 0.5);
}

TEST(BhTsne, KlDecreasesAfterExaggeration) {
  std::vector<int> labels;
  auto rows = blob_data(30, 6, &labels);
  BhTsneParams params;
  params.perplexity = 10.0;
  params.iterations = 250;
  auto result = run_bhtsne(rows, 90, 6, params);
  ASSERT_EQ(result.kl_history.size(), 250U);
  EXPECT_LT(result.kl_history.back(),
            result.kl_history[static_cast<std::size_t>(
                params.exaggeration_iters + 5)]);
}

TEST(BhTsne, DeterministicForSeed) {
  std::vector<int> labels;
  auto rows = blob_data(25, 6, &labels);
  BhTsneParams params;
  params.perplexity = 8.0;
  params.iterations = 60;
  auto r1 = run_bhtsne(rows, 75, 6, params);
  auto r2 = run_bhtsne(rows, 75, 6, params);
  EXPECT_EQ(r1.embedding, r2.embedding);
}

TEST(BhTsne, HandlesCoincidentPoints) {
  // Duplicated points must not crash the quadtree (infinite split guard).
  std::vector<float> rows;
  std::vector<int> labels;
  util::Pcg32 rng(9);
  for (int i = 0; i < 80; ++i) {
    float x = static_cast<float>(i % 4);  // only 4 distinct input points
    rows.push_back(x);
    rows.push_back(-x);
    labels.push_back(i % 4);
  }
  BhTsneParams params;
  params.perplexity = 5.0;
  params.iterations = 50;
  auto result = run_bhtsne(rows, 80, 2, params);
  EXPECT_EQ(result.points, 80U);
  for (double v : result.embedding) EXPECT_TRUE(std::isfinite(v));
}

TEST(BhTsne, RejectsBadInput) {
  std::vector<float> rows(10 * 3, 0.0F);
  EXPECT_THROW(run_bhtsne(rows, 10, 4, {}), std::invalid_argument);
  BhTsneParams params;
  params.perplexity = 30.0;
  EXPECT_THROW(run_bhtsne(rows, 10, 3, params), std::invalid_argument);
  params.perplexity = 2.0;
  params.theta = -1.0;
  EXPECT_THROW(run_bhtsne(rows, 10, 3, params), std::invalid_argument);
}

}  // namespace
}  // namespace netobs::tsne
