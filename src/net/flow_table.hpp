// Open-addressed flow table for the observer hot path.
//
// Replaces the two std::unordered_maps the SNI observer used to keep per
// flow (`flows_` for pending reassembly state, `done_` as a forever-growing
// resolved set): one linear-probed, power-of-two table whose entries carry
// a pending/done state, a last-seen timestamp, and the reassembly buffer.
// Erasure uses backward-shift deletion (no tombstones), so lookup cost
// stays proportional to genuine cluster length even under heavy churn.
//
// Memory is bounded two ways:
//   - a cap on *pending* flows (kept from the old observer: an arbitrary
//     pending victim is evicted when the cap is hit),
//   - idle eviction: entries (pending or done) whose last_seen is older
//     than the configured idle timeout are swept out, so a month-long
//     capture cannot grow the resolved set without bound.
//
// Single-threaded by design — in the sharded ingest pipeline every worker
// owns a private table, which is the whole point of sharding by flow key.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace netobs::net {

/// Lifecycle of a tracked flow.
enum class FlowPhase : std::uint8_t {
  kPending,      ///< reassembling the head of the stream
  kDoneEmitted,  ///< resolved, an event was emitted
  kDoneDead,     ///< resolved as non-TLS / SNI-less / over budget
};

struct FlowEntry {
  FiveTuple key;
  util::Timestamp last_seen = 0;
  FlowPhase phase = FlowPhase::kPending;
  std::vector<std::uint8_t> buffer;  ///< only meaningful while kPending
};

class FlowTable {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  explicit FlowTable(std::size_t initial_capacity = 1024);

  /// Slot index of `key`, or kNone. Valid until the next insert/erase.
  std::size_t find(const FiveTuple& key) const;

  /// Inserts `key` (must be absent) and returns its slot index. May rehash.
  std::size_t insert(const FiveTuple& key, util::Timestamp now);

  FlowEntry& entry(std::size_t slot) { return slots_[slot]; }
  const FlowEntry& entry(std::size_t slot) const { return slots_[slot]; }

  /// Removes the entry at `slot` (backward-shift; other slot indices are
  /// invalidated).
  void erase(std::size_t slot);

  /// Evicts one arbitrary pending flow (rotating scan, O(1) amortised).
  /// Returns true when a victim was found.
  bool evict_one_pending();

  /// Removes every entry with last_seen < cutoff. Returns {pending, done}
  /// eviction counts.
  struct SweepResult {
    std::size_t pending = 0;
    std::size_t done = 0;
  };
  SweepResult evict_idle(util::Timestamp cutoff);

  std::size_t size() const { return size_; }
  std::size_t pending() const { return pending_; }
  std::size_t done() const { return size_ - pending_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Changes an entry's phase, keeping the pending count coherent.
  void set_phase(std::size_t slot, FlowPhase phase);

  /// Appends reassembly payload to `slot`'s buffer. All buffer growth goes
  /// through here so the table's buffer-byte ledger (capacity, which is
  /// what the allocator actually holds) stays coherent.
  void append_buffer(std::size_t slot, std::span<const std::uint8_t> data);

  /// Heap footprint: slot storage plus the live reassembly buffers
  /// (tracked incrementally — O(1), fit for per-batch gauges).
  std::size_t memory_bytes() const {
    return slots_.capacity() * sizeof(FlowEntry) + used_.capacity() / 8 +
           buffer_bytes_;
  }

 private:
  std::size_t probe_distance(std::size_t slot) const;
  void rehash(std::size_t new_capacity);
  std::size_t mask() const { return slots_.size() - 1; }

  std::vector<FlowEntry> slots_;
  std::vector<bool> used_;
  std::size_t size_ = 0;
  std::size_t pending_ = 0;
  std::size_t evict_cursor_ = 0;
  std::size_t buffer_bytes_ = 0;  ///< sum of entry buffer capacities
};

}  // namespace netobs::net
