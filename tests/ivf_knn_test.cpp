// IVF approximate-kNN oracle: with nprobe == nlists and a full re-rank
// pool the inverted-file index must reproduce the exact CosineKnnIndex
// *bit-identically* (same ids, same float similarities, same tie-break);
// at the default nprobe it must clear the recall floor on a seeded
// clustered corpus. Plus determinism of the k-means coarse quantizer,
// int8 round-trip bounds, incremental add_rows and warm rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "embedding/ivf_index.hpp"
#include "embedding/kmeans.hpp"
#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

/// Topic-clustered corpus, the regime IVF is built for (hostname vectors
/// cluster by topic — Section 5.4's t-SNE): `topics` gaussian centers,
/// rows = center + noise * gaussian. Unnormalised; the indexes normalise.
EmbeddingMatrix clustered_matrix(std::size_t rows, std::size_t dim,
                                 std::size_t topics, double noise,
                                 std::uint64_t seed) {
  EmbeddingMatrix centers(topics, dim);
  util::Pcg32 rng(seed, 0xc1);
  for (std::size_t t = 0; t < topics; ++t) {
    for (float& v : centers.row(t)) {
      v = static_cast<float>(rng.normal());
    }
    util::normalize(centers.row(t));
  }
  EmbeddingMatrix m(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    auto center = centers.row(r % topics);
    auto row = m.row(r);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = center[j] + static_cast<float>(noise * rng.normal());
    }
  }
  return m;
}

std::vector<float> random_query(util::Pcg32& rng, std::size_t dim) {
  std::vector<float> q(dim);
  for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return q;
}

void expect_identical(const std::vector<KnnIndex::Neighbor>& got,
                      const std::vector<KnnIndex::Neighbor>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    // The re-rank stage recomputes exact float scores with the same simd
    // kernel the exact index uses, so equality is bitwise, not approximate.
    EXPECT_EQ(got[i].similarity, want[i].similarity) << what << " rank " << i;
  }
}

double overlap_recall(const std::vector<KnnIndex::Neighbor>& approx,
                      const std::vector<KnnIndex::Neighbor>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<TokenId> ids;
  for (const auto& nb : approx) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  std::size_t hit = 0;
  for (const auto& nb : exact) {
    hit += std::binary_search(ids.begin(), ids.end(), nb.id) ? 1 : 0;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

TEST(IvfKnn, FullProbeIsBitIdenticalToExactIndex) {
  // nprobe >= nlists + a re-rank pool as big as the corpus: every row is
  // scanned and re-scored exactly, so the approximation must vanish.
  auto m = clustered_matrix(1200, 33, 24, 0.25, 101);  // odd dim: padded tail
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nlists = 16;
  p.nprobe = 1000;   // clamped to nlists
  p.rerank = 2000;   // pool covers the whole corpus
  IvfKnnIndex ivf(m, p);
  EXPECT_EQ(ivf.nlists(), 16U);
  EXPECT_EQ(ivf.backend(), KnnBackend::kIvf);
  EXPECT_EQ(ivf.size(), 1200U);
  EXPECT_EQ(ivf.dim(), 33U);

  util::Pcg32 rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    auto q = random_query(rng, 33);
    for (std::size_t n : {1UL, 10UL, 100UL, 600UL}) {
      expect_identical(ivf.query(q, n), exact.query(q, n), "full-probe");
    }
  }
  // Batch path agrees with the per-query path (and hence with exact).
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 5; ++i) queries.push_back(random_query(rng, 33));
  queries.push_back(std::vector<float>(33, 0.0F));  // zero-norm slot
  auto batched = ivf.query_batch(queries, 25);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i + 1 < queries.size(); ++i) {
    expect_identical(batched[i], exact.query(queries[i], 25), "batch");
  }
  EXPECT_TRUE(batched.back().empty()) << "zero query must stay empty";
}

TEST(IvfKnn, DefaultProbeClearsRecallFloorOnClusteredCorpus) {
  auto m = clustered_matrix(6000, 32, 48, 0.10, 2021);
  CosineKnnIndex exact(m);
  IvfKnnIndex ivf(m);  // auto nlists (~77), default nprobe 16
  EXPECT_GE(ivf.nlists(), 2U);
  EXPECT_LT(ivf.nlists(), 6000U);

  util::Pcg32 rng(9);
  double recall_sum = 0.0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Query near a corpus row so there is a meaningful neighbourhood.
    auto row = m.row(rng.next_below(6000));
    std::vector<float> q(row.begin(), row.end());
    recall_sum += overlap_recall(ivf.query(q, 100), exact.query(q, 100));
  }
  // The bench gate holds the paper-scale corpus to 0.98; this small corpus
  // with proportionally fewer lists probed must still stay high.
  EXPECT_GE(recall_sum / kTrials, 0.90);
}

TEST(IvfKnn, KmeansIsDeterministicAndPoolInvariant) {
  auto m = clustered_matrix(4000, 16, 12, 0.15, 77);
  EmbeddingMatrix unit = m;
  for (std::size_t r = 0; r < unit.rows(); ++r) util::normalize(unit.row(r));

  KmeansParams kp;
  kp.clusters = 12;
  auto a = spherical_kmeans(unit, kp);
  auto b = spherical_kmeans(unit, kp);
  util::ThreadPool pool(4);
  auto c = spherical_kmeans(unit, kp, &pool);

  ASSERT_EQ(a.centroids.rows(), 12U);
  ASSERT_EQ(a.assignment.size(), 4000U);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.assignment, c.assignment) << "pool changed the clustering";
  for (std::size_t r = 0; r < 12; ++r) {
    auto ra = a.centroids.row(r);
    auto rc = c.centroids.row(r);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(ra[j], rc[j]) << "centroid " << r << " dim " << j;
    }
    // Spherical: every centroid comes back unit norm.
    EXPECT_NEAR(util::l2_norm(ra), 1.0F, 1e-4F);
  }
  // assignment[r] really is the nearest centroid.
  for (std::size_t r = 0; r < 64; ++r) {
    EXPECT_EQ(a.assignment[r],
              nearest_centroid(a.centroids,
                               unit.padded_data() + r * unit.stride()));
  }
  EXPECT_THROW(spherical_kmeans(unit, KmeansParams{}),  // clusters = 0
               std::invalid_argument);
}

TEST(IvfKnn, Int8RoundTripStaysWithinHalfScale) {
  // The quantizer contract: code = round(x * 127 / max|x|), so the
  // reconstruction code * scale is within scale/2 of the input per
  // component. Checked through the scoring behaviour: an IVF index over a
  // *single* list with re-rank disabled-by-saturation still ranks a probe
  // of near-duplicates correctly, and the approximate pre-score error
  // bound follows the per-component bound.
  constexpr std::size_t kDim = 24;
  util::Pcg32 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> x(kDim);
    float max_abs = 0.0F;
    for (auto& v : x) {
      v = static_cast<float>(rng.uniform(-3.0, 3.0));
      max_abs = std::max(max_abs, std::abs(v));
    }
    if (max_abs == 0.0F) continue;
    float scale = max_abs / 127.0F;
    for (float v : x) {
      float q = std::nearbyint(v / scale);
      q = std::min(127.0F, std::max(-127.0F, q));
      // Reconstruction error <= scale/2 except at the clamp, where the
      // clamped value is max_abs itself (|v| <= max_abs by construction).
      EXPECT_LE(std::abs(q * scale - v), scale * 0.5F + 1e-6F)
          << "trial " << trial;
      EXPECT_LE(std::abs(q), 127.0F);
    }
  }

  // Behavioural consequence: with the re-rank pool cut to the bare minimum
  // (rerank = 1) and every list probed, the int8 pre-ranking alone must
  // already recover nearly all true neighbours — the quantisation error is
  // far below the similarity gaps of a clustered corpus.
  auto m = clustered_matrix(1500, 32, 15, 0.15, 99);
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nlists = 15;
  p.nprobe = 15;
  p.rerank = 1;
  IvfKnnIndex ivf(m, p);
  util::Pcg32 qrng(5);
  double recall_sum = 0.0;
  for (int t = 0; t < 5; ++t) {
    auto q = random_query(qrng, 32);
    recall_sum += overlap_recall(ivf.query(q, 50), exact.query(q, 50));
  }
  EXPECT_GE(recall_sum / 5, 0.95);
}

TEST(IvfKnn, BuildIsDeterministicAndPoolInvariant) {
  auto m = clustered_matrix(3000, 20, 30, 0.12, 55);
  IvfParams p;
  p.nlists = 30;
  IvfKnnIndex serial(m, p);
  util::ThreadPool pool(4);
  IvfKnnIndex pooled(m, p, &pool);
  ASSERT_EQ(serial.nlists(), pooled.nlists());

  util::Pcg32 rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 20);
    expect_identical(pooled.query(q, 64), serial.query(q, 64),
                     "pool-built index");
  }
}

TEST(IvfKnn, AddRowsExtendsTheIndexWithoutRetraining) {
  auto m = clustered_matrix(2000, 16, 10, 0.15, 11);
  IvfParams p;
  p.nlists = 10;
  p.nprobe = 10;     // full probe: appended rows must be findable exactly
  p.rerank = 4000;
  IvfKnnIndex ivf(m, p);
  auto centroids_before = ivf.centroids();

  auto extra = clustered_matrix(500, 16, 10, 0.15, 12);
  ivf.add_rows(extra);
  EXPECT_EQ(ivf.size(), 2500U);
  // Quantizer untouched: add_rows only assigns, never retrains.
  ASSERT_EQ(ivf.centroids().rows(), centroids_before.rows());
  for (std::size_t r = 0; r < centroids_before.rows(); ++r) {
    auto a = ivf.centroids().row(r);
    auto b = centroids_before.row(r);
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(a[j], b[j]);
  }

  // The grown index must equal an exact index over the concatenation.
  EmbeddingMatrix all(2500, 16);
  for (std::size_t r = 0; r < 2000; ++r) {
    std::copy(m.row(r).begin(), m.row(r).end(), all.row(r).begin());
  }
  for (std::size_t r = 0; r < 500; ++r) {
    std::copy(extra.row(r).begin(), extra.row(r).end(),
              all.row(2000 + r).begin());
  }
  CosineKnnIndex exact(all);
  util::Pcg32 rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 16);
    expect_identical(ivf.query(q, 40), exact.query(q, 40), "post-add");
  }

  EmbeddingMatrix wrong_dim(3, 8);
  EXPECT_THROW(ivf.add_rows(wrong_dim), std::invalid_argument);
}

TEST(IvfKnn, WarmRebuildReusesCentroidsBitForBit) {
  auto day1 = clustered_matrix(2500, 16, 20, 0.12, 40);
  IvfParams p;
  p.nlists = 20;
  IvfKnnIndex cold(day1, p);

  // Day 2 drifts slightly; the warm build must adopt day 1's quantizer
  // unchanged and still answer full-probe queries exactly.
  auto day2 = clustered_matrix(2500, 16, 20, 0.13, 41);
  IvfKnnIndex warm(day2, cold.centroids(), p);
  ASSERT_EQ(warm.nlists(), cold.nlists());
  for (std::size_t r = 0; r < warm.nlists(); ++r) {
    auto a = warm.centroids().row(r);
    auto b = cold.centroids().row(r);
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(a[j], b[j]);
  }

  IvfParams full = p;
  full.nprobe = 20;
  full.rerank = 4000;
  IvfKnnIndex warm_full(day2, cold.centroids(), full);
  CosineKnnIndex exact(day2);
  util::Pcg32 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 16);
    expect_identical(warm_full.query(q, 50), exact.query(q, 50), "warm");
  }
}

TEST(IvfKnn, EdgeCasesStayWellDefined) {
  // Empty index: every query answers empty.
  EmbeddingMatrix empty(0, 8);
  IvfKnnIndex none(empty);
  EXPECT_EQ(none.size(), 0U);
  EXPECT_TRUE(none.query(std::vector<float>(8, 1.0F), 5).empty());
  EXPECT_THROW(none.add_rows(EmbeddingMatrix(2, 8)), std::logic_error);

  // Single row, zero query, n = 0, n > rows.
  EmbeddingMatrix one(1, 8);
  one.row(0)[3] = 2.0F;
  IvfKnnIndex single(one);
  EXPECT_EQ(single.nlists(), 1U);
  auto got = single.query(std::vector<float>(one.row(0).begin(),
                                             one.row(0).end()),
                          10);
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0].id, 0U);
  EXPECT_FLOAT_EQ(got[0].similarity, 1.0F);
  EXPECT_TRUE(single.query(std::vector<float>(8, 0.0F), 5).empty());
  EXPECT_TRUE(single.query(std::vector<float>(one.row(0).begin(),
                                              one.row(0).end()),
                           0)
                  .empty());

  // A zero row in the corpus must not poison scores (normalises to zero).
  EmbeddingMatrix with_zero(3, 8);
  with_zero.row(0)[0] = 1.0F;
  with_zero.row(2)[1] = 1.0F;
  IvfParams p;
  p.nlists = 1;
  IvfKnnIndex zz(with_zero, p);
  std::vector<float> q(8, 0.0F);
  q[0] = 1.0F;
  auto top = zz.query(q, 3);
  ASSERT_GE(top.size(), 1U);
  EXPECT_EQ(top[0].id, 0U);
}

}  // namespace
}  // namespace netobs::embedding
