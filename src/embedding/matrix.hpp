// Row-major dense embedding matrix with binary (de)serialisation.
//
// Two of these make up a trained SKIPGRAM model: the "central" matrix W and
// the "context" matrix W' of Section 4.1 (a hostname h's embedding is
// h = one_hot(h) W). Rows are contiguous, 32-byte aligned and zero-padded
// to a multiple of util::simd::kLanes floats, so training updates and
// blocked kNN sweeps run full-width SIMD loads with no tail handling. The
// padding is storage-only: row() spans, serialisation, equality and the
// packed copy all speak the logical rows() x dim() shape.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace netobs::embedding {

class EmbeddingMatrix {
 public:
  EmbeddingMatrix() = default;
  EmbeddingMatrix(std::size_t rows, std::size_t dim);

  /// word2vec initialisation: uniform in [-0.5/dim, 0.5/dim).
  void init_uniform(util::Pcg32& rng);

  void fill(float value);

  std::span<float> row(std::size_t i);
  std::span<const float> row(std::size_t i) const;

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }

  /// Floats between consecutive row starts (dim rounded up to the SIMD
  /// padding quantum); the trailing stride() - dim() floats of every row
  /// are zero.
  std::size_t stride() const { return stride_; }

  /// Raw padded storage (rows * stride floats, 32-byte aligned). The pad
  /// lanes are guaranteed zero — blocked kernels may sweep the full stride.
  const float* padded_data() const { return data_.data(); }
  float* padded_data() { return data_.data(); }

  /// Dense rows * dim copy with the padding stripped (row-major).
  std::vector<float> packed_copy() const;

  /// Heap footprint of the padded storage.
  std::size_t memory_bytes() const { return data_.capacity() * sizeof(float); }

  /// Binary serialisation: magic, rows, dim, dense payload (padding never
  /// hits the wire, so files are layout-independent). Throws
  /// std::runtime_error on I/O failure or bad magic.
  void save(std::ostream& os) const;
  static EmbeddingMatrix load(std::istream& is);

  bool operator==(const EmbeddingMatrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  std::vector<float, util::simd::AlignedAllocator<float>> data_;
};

}  // namespace netobs::embedding
