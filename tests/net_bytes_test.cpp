#include <gtest/gtest.h>

#include "net/bytes.hpp"

namespace netobs::net {
namespace {

TEST(ByteWriter, BigEndianEncoding) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0x0102);
  w.put_u24(0x030405);
  w.put_u32(0x06070809);
  EXPECT_EQ(to_hex(w.data()), "ab0102030405" "06070809");
}

TEST(ByteWriter, PutU24RejectsOverflow) {
  ByteWriter w;
  EXPECT_THROW(w.put_u24(1 << 24), std::invalid_argument);
  w.put_u24((1 << 24) - 1);  // max value fits
  EXPECT_EQ(w.size(), 3U);
}

TEST(ByteWriter, LengthPatching) {
  ByteWriter w;
  auto outer = w.begin_length(2);
  w.put_u8(0xAA);
  auto inner = w.begin_length(1);
  w.put_u16(0xBBCC);
  w.patch_length(inner);
  w.patch_length(outer);
  // outer covers AA + inner length byte + BBCC = 4 bytes; inner covers
  // BBCC = 2 bytes.
  EXPECT_EQ(to_hex(w.data()), "0004aa02bbcc");
}

TEST(ByteWriter, NestedThreeByteLength) {
  ByteWriter w;
  auto tok = w.begin_length(3);
  w.put_bytes(std::string_view("abcd"));
  w.patch_length(tok);
  EXPECT_EQ(to_hex(w.data()), "000004" "61626364");
}

TEST(ByteWriter, PatchBadTokenThrows) {
  ByteWriter w;
  EXPECT_THROW(w.patch_length(0), std::invalid_argument);
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.put_u8(0x01);
  w.put_u16(0x0203);
  w.put_u24(0x040506);
  w.put_u32(0x0708090A);
  w.put_bytes(std::string_view("hi"));
  ByteReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0x01);
  EXPECT_EQ(r.get_u16(), 0x0203);
  EXPECT_EQ(r.get_u24(), 0x040506U);
  EXPECT_EQ(r.get_u32(), 0x0708090AU);
  EXPECT_EQ(r.get_string(2), "hi");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ThrowsOnTruncatedInput) {
  std::vector<std::uint8_t> buf = {0x01, 0x02};
  ByteReader r(buf);
  EXPECT_EQ(r.get_u16(), 0x0102);
  EXPECT_THROW(r.get_u8(), ParseError);

  ByteReader r2(buf);
  EXPECT_THROW(r2.get_u32(), ParseError);
  EXPECT_THROW(r2.get_bytes(3), ParseError);
  EXPECT_THROW(r2.skip(3), ParseError);
}

TEST(ByteReader, SubReaderIsolatesRegion) {
  std::vector<std::uint8_t> buf = {0x01, 0x02, 0x03, 0x04};
  ByteReader r(buf);
  ByteReader sub = r.sub_reader(2);
  EXPECT_EQ(sub.get_u16(), 0x0102);
  EXPECT_TRUE(sub.empty());
  EXPECT_THROW(sub.get_u8(), ParseError);
  EXPECT_EQ(r.get_u16(), 0x0304);
}

TEST(HexCodec, RoundTrip) {
  auto bytes = from_hex("16 03 01 DE ad");
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0x16, 0x03, 0x01, 0xDE, 0xAD}));
  EXPECT_EQ(to_hex(bytes), "160301dead");
}

TEST(HexCodec, RejectsMalformedInput) {
  EXPECT_THROW(from_hex("1"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace netobs::net
