// MemoryAccountant: a per-subsystem live-byte ledger for the serve path.
//
// ROADMAP item 3 ("million-user memory-budgeted user store") needs to know
// where the bytes are *before* anything can budget them. Every stateful
// subsystem — intern pool chunks, per-shard flow tables, session windows,
// long-term user profiles, embedding matrices, IVF lists — reports its live
// footprint here, and the accountant aggregates the ledger into:
//
//   - a /memz JSON document (subsystem totals, tracked users, bytes/user),
//   - Prometheus gauges netobs_memory_bytes{subsystem=...} plus the
//     total / per-user rollups, refreshed through StatsHub on every scrape,
//   - MemorySnapshot for tests and the bench baseline writer.
//
// Two reporting styles, both safe against concurrent mutators:
//   - Ledger cells: the subsystem owns an atomic byte counter and calls
//     set()/add() from its own thread(s); the hot path is one relaxed
//     atomic op, no locks (this is the "lock-free ledger" shape);
//   - pull Probes: a callback evaluated at snapshot time. Probes run on the
//     scraping thread, so they must only read state that is safe to read
//     cross-thread (atomics, immutable-after-build members).
//
// Subsystems registered with per_user=true count toward the bytes-per-user
// breakdown; the user denominator comes from user probes (the largest
// reported population wins, so co-registered demux/session views do not
// double-count people).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace netobs::obs {

/// One subsystem's contribution to a MemorySnapshot.
struct MemoryBytes {
  std::string subsystem;
  std::uint64_t bytes = 0;
  bool per_user = false;
};

struct MemorySnapshot {
  std::vector<MemoryBytes> subsystems;  ///< aggregated by name, name-sorted
  std::uint64_t total_bytes = 0;
  std::uint64_t per_user_bytes = 0;  ///< sum over per_user subsystems
  std::uint64_t users = 0;           ///< max over registered user probes
  double bytes_per_user = 0.0;       ///< per_user_bytes / max(users, 1)
};

class MemoryAccountant {
 public:
  /// Push-style byte cell. set()/add() are single relaxed atomic ops —
  /// callable from any hot path. Stable address for the accountant's
  /// lifetime; release() retires it from snapshots.
  class Ledger {
   public:
    void set(std::uint64_t bytes) {
      bytes_.store(bytes, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) {
      bytes_.fetch_add(static_cast<std::uint64_t>(delta),
                       std::memory_order_relaxed);
    }
    std::uint64_t bytes() const {
      return bytes_.load(std::memory_order_relaxed);
    }

   private:
    friend class MemoryAccountant;
    std::atomic<std::uint64_t> bytes_{0};
    std::string subsystem_;
    bool per_user_ = false;
    std::atomic<bool> active_{true};
  };

  using Probe = std::function<std::uint64_t()>;

  MemoryAccountant() = default;
  ~MemoryAccountant();

  MemoryAccountant(const MemoryAccountant&) = delete;
  MemoryAccountant& operator=(const MemoryAccountant&) = delete;

  /// The process-wide accountant behind /memz. Its gauges are published
  /// into MetricsRegistry::global() through a StatsHub publisher, so every
  /// export path sees fresh values.
  static MemoryAccountant& global();

  /// Registers a push-style cell; several cells may share one subsystem
  /// name (per-shard tables), snapshots sum them.
  Ledger* ledger(const std::string& subsystem, bool per_user = false);
  void release(Ledger* cell);

  /// Registers a pull probe (evaluated on the snapshotting thread; a probe
  /// that throws contributes 0). Returns a handle for remove_probe().
  std::uint64_t add_probe(const std::string& subsystem, bool per_user,
                          Probe probe);
  void remove_probe(std::uint64_t handle);

  /// Registers a tracked-user-count source for the bytes-per-user
  /// denominator; snapshots take the max across sources.
  std::uint64_t add_user_probe(std::function<std::uint64_t()> probe);
  void remove_user_probe(std::uint64_t handle);

  MemorySnapshot snapshot() const;

  /// The /memz document (pretty JSON).
  std::string to_json() const;

  /// Writes netobs_memory_bytes{subsystem=...} + rollup gauges into
  /// `registry` from a fresh snapshot.
  void publish(MetricsRegistry& registry) const;

 private:
  mutable std::mutex mutex_;
  std::deque<Ledger> ledgers_;  ///< deque: stable addresses across growth
  std::uint64_t next_handle_ = 1;
  struct ProbeEntry {
    std::uint64_t handle;
    std::string subsystem;
    bool per_user;
    Probe probe;
  };
  std::vector<ProbeEntry> probes_;
  std::vector<std::pair<std::uint64_t, std::function<std::uint64_t()>>>
      user_probes_;
  std::uint64_t hub_handle_ = 0;  ///< set by global() only
};

}  // namespace netobs::obs
