#include "obs/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>

#include "obs/metrics.hpp"

namespace netobs::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("NETOBS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string v = env;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn" || v == "warning") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off" || v == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

bool json_from_env() {
  const char* env = std::getenv("NETOBS_LOG_FORMAT");
  return env != nullptr && std::strcmp(env, "json") == 0;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// "2026-08-05T10:21:07.114Z" — UTC wall clock with millisecond precision.
std::string utc_timestamp() {
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                now.time_since_epoch())
                .count() %
            1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

/// JSON string escaping incl. control characters (the logger may be handed
/// arbitrary hostnames / error strings).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// key=value with the value quoted only when it contains spaces/quotes.
void append_text_field(std::string& line, const std::string& key,
                       const std::string& value) {
  line += ' ';
  line += key;
  line += '=';
  bool needs_quotes =
      value.empty() || value.find_first_of(" \"=\n\t") != std::string::npos;
  if (!needs_quotes) {
    line += value;
    return;
  }
  line += '"';
  for (char c : value) {
    if (c == '"' || c == '\\') line += '\\';
    if (c == '\n') {
      line += "\\n";
      continue;
    }
    line += c;
  }
  line += '"';
}

Counter& level_counter(LogLevel level) {
  auto& reg = MetricsRegistry::global();
  return reg.counter("netobs_log_messages_total",
                     "Log lines emitted, by level (WARN and above)",
                     {{"level", log_level_name(level)}});
}

Counter& suppressed_counter() {
  return MetricsRegistry::global().counter(
      "netobs_log_suppressed_total",
      "Log lines suppressed by the per-site rate limiter");
}

}  // namespace

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

Logger::Logger() : level_(static_cast<int>(level_from_env())) {
  json_.store(json_from_env(), std::memory_order_relaxed);
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = sink;
}

void Logger::set_site_limit_per_second(std::uint64_t limit) {
  site_limit_.store(limit, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view site,
                 std::string_view message, const LogFields& fields) {
  if (!should_log(level)) return;

  std::string line;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Per-site token window: at most `site_limit_` lines per wall second.
    std::uint64_t limit = site_limit_.load(std::memory_order_relaxed);
    if (limit > 0) {
      SiteState& state = sites_[std::string(site)];
      double now = steady_seconds();
      if (now - state.window_start >= 1.0) {
        state.window_start = now;
        state.in_window = 0;
      }
      if (state.in_window >= limit) {
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        suppressed_counter().inc();
        return;
      }
      ++state.in_window;
    }

    if (json_.load(std::memory_order_relaxed)) {
      line = "{\"ts\":\"" + utc_timestamp() + "\",\"level\":\"" +
             log_level_name(level) + "\",\"site\":\"" +
             json_escape(site) + "\",\"msg\":\"" + json_escape(message) + "\"";
      for (const auto& [k, v] : fields) {
        line += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
      }
      line += '}';
    } else {
      const char* name = log_level_name(level);
      line = utc_timestamp();
      line += ' ';
      std::size_t width = 0;
      for (const char* p = name; *p != '\0'; ++p, ++width) {
        line += static_cast<char>(std::toupper(static_cast<unsigned char>(*p)));
      }
      for (; width < 6; ++width) line += ' ';  // "ERROR" + 1 column
      line += site;
      line += ' ';
      line += message;
      for (const auto& [k, v] : fields) append_text_field(line, k, v);
    }

    std::ostream& os = sink_ != nullptr ? *sink_ : std::cerr;
    os << line << '\n';
    if (level >= LogLevel::kWarn) os.flush();
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (level >= LogLevel::kWarn) level_counter(level).inc();
}

void log_debug(std::string_view site, std::string_view message,
               const LogFields& fields) {
  Logger::global().log(LogLevel::kDebug, site, message, fields);
}
void log_info(std::string_view site, std::string_view message,
              const LogFields& fields) {
  Logger::global().log(LogLevel::kInfo, site, message, fields);
}
void log_warn(std::string_view site, std::string_view message,
              const LogFields& fields) {
  Logger::global().log(LogLevel::kWarn, site, message, fields);
}
void log_error(std::string_view site, std::string_view message,
               const LogFields& fields) {
  Logger::global().log(LogLevel::kError, site, message, fields);
}

}  // namespace netobs::obs
