// Brute-force cosine k-nearest-neighbour index over hostname embeddings.
//
// Section 4.1 computes, for a session representation s, the N=1000 hostname
// embeddings most similar to s under cosine similarity (the set H_s). Row
// vectors are L2-normalised once at build time into an aligned, row-padded
// matrix; a query is then a blocked SIMD dot-product sweep feeding a
// bounded top-k heap — no full-vocabulary materialise/sort. The sweep can
// be amortised across many sessions (query_batch) and sharded across a
// util::ThreadPool for large vocabularies. All four paths (single, batched,
// sharded, and any SIMD tier whose kernels are bit-compatible) return
// bit-identical neighbours with the deterministic (similarity desc, id asc)
// order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "embedding/matrix.hpp"
#include "embedding/sgns.hpp"

namespace netobs::util {
class ThreadPool;
}

namespace netobs::embedding {

class CosineKnnIndex {
 public:
  struct Neighbor {
    TokenId id = 0;
    float similarity = 0.0F;  ///< cosine in [-1, 1]
  };

  /// Builds the index from a model's central vectors.
  explicit CosineKnnIndex(const HostEmbedding& embedding);

  /// Builds from a raw matrix (rows indexed by TokenId).
  explicit CosineKnnIndex(const EmbeddingMatrix& matrix);

  /// Top-n rows most similar to `query`, descending similarity (ties by
  /// ascending id). `query` need not be normalised. Zero-norm queries
  /// return an empty vector.
  std::vector<Neighbor> query(std::span<const float> query_vec,
                              std::size_t n) const;

  /// Answers many queries in one sweep of the matrix: each scored row
  /// block is reused across all queries while it is cache-hot, which is
  /// substantially faster than calling query() per session. Result i
  /// corresponds to queries[i] and is bit-identical to query(queries[i], n)
  /// (zero-norm queries yield empty results).
  std::vector<std::vector<Neighbor>> query_batch(
      const std::vector<std::vector<float>>& queries, std::size_t n) const;

  /// Top-n neighbours of a stored row, excluding the row itself.
  std::vector<Neighbor> nearest_to(TokenId id, std::size_t n) const;

  /// Opts single-query scans into shard-parallel sweeps on `pool` (pass
  /// nullptr to go back to serial). Shards only kick in once the index has
  /// at least 2 * min_rows_per_shard rows; results stay bit-identical to
  /// the serial scan. The pool must outlive the index.
  void set_thread_pool(util::ThreadPool* pool,
                       std::size_t min_rows_per_shard = 16384);

  std::size_t size() const { return normalized_.rows(); }
  std::size_t dim() const { return normalized_.dim(); }

 private:
  class TopK;

  /// `unit_query` must point at stride() floats (zero-padded, 32-byte
  /// aligned, unit norm).
  std::vector<Neighbor> scan(const float* unit_query, std::size_t n,
                             std::ptrdiff_t exclude) const;

  /// Blocked sweep of rows [begin, end) into `heap`.
  void scan_range(const float* unit_query, std::size_t begin, std::size_t end,
                  std::ptrdiff_t exclude, TopK& heap) const;

  EmbeddingMatrix normalized_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t min_rows_per_shard_ = 16384;
};

}  // namespace netobs::embedding
