// ECH / IP-fallback behaviour of the observer (Section 7.4 countermeasures)
// and the synthesizer knobs that model countermeasure deployment.
#include <gtest/gtest.h>

#include "net/observer.hpp"
#include "net/quic.hpp"
#include "net/tls.hpp"
#include "synth/traffic.hpp"
#include "util/string_util.hpp"
#include "synth/users.hpp"

namespace netobs::net {
namespace {

Packet ech_tls_packet(std::uint16_t port) {
  Packet p;
  p.tuple = {0x0A000001, 0x31234567, port, 443, Transport::kTcp};
  p.src_mac = 5;
  ClientHelloSpec spec;  // no SNI, as with ECH
  p.payload = build_client_hello_record(spec);
  return p;
}

TEST(IpFallback, PseudoHostnameIsStableAndValid) {
  EXPECT_EQ(ip_pseudo_hostname(0x31234567), "ip-31234567.addr");
  EXPECT_EQ(ip_pseudo_hostname(0x31234567), ip_pseudo_hostname(0x31234567));
  EXPECT_TRUE(util::is_valid_hostname(ip_pseudo_hostname(0)));
}

TEST(IpFallback, DisabledByDefault) {
  SniObserver observer(Vantage::kWifiProvider);
  EXPECT_FALSE(observer.observe(ech_tls_packet(40000)).has_value());
  EXPECT_EQ(observer.stats().no_sni, 1U);
}

TEST(IpFallback, EmitsIpTokenForEchTls) {
  SniObserverOptions oo;
  oo.ip_fallback = true;
  SniObserver observer(Vantage::kWifiProvider, oo);
  auto e = observer.observe(ech_tls_packet(40001));
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->hostname, "ip-31234567.addr");
  EXPECT_EQ(observer.stats().events, 1U);
  EXPECT_EQ(observer.stats().no_sni, 1U);
}

TEST(IpFallback, EmitsIpTokenForEchQuic) {
  SniObserverOptions oo;
  oo.ip_fallback = true;
  SniObserver observer(Vantage::kWifiProvider, oo);
  QuicInitialSpec spec;
  spec.dcid = {1, 2, 3, 4, 5, 6, 7, 8};
  // No SNI in the ClientHello.
  Packet p;
  p.tuple = {0x0A000001, 0x0A0B0C0D, 40002, 443, Transport::kUdp};
  p.src_mac = 5;
  p.payload = build_quic_initial(spec);
  auto e = observer.observe(p);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->hostname, "ip-0a0b0c0d.addr");
}

TEST(IpFallback, CleartextSniStillPreferred) {
  SniObserverOptions oo;
  oo.ip_fallback = true;
  SniObserver observer(Vantage::kWifiProvider, oo);
  Packet p = ech_tls_packet(40003);
  ClientHelloSpec spec;
  spec.sni = "cleartext.example.com";
  p.payload = build_client_hello_record(spec);
  auto e = observer.observe(p);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->hostname, "cleartext.example.com");
}

TEST(EchTraffic, FractionControlsSniPresence) {
  synth::PopulationParams pp;
  pp.num_users = 5;
  synth::UserPopulation population(4, pp);
  std::vector<HostnameEvent> events;
  for (std::uint32_t i = 0; i < 200; ++i) {
    events.push_back({i % 5, static_cast<util::Timestamp>(i),
                      "site" + std::to_string(i % 9) + ".com"});
  }

  for (double frac : {0.0, 0.5, 1.0}) {
    synth::TrafficParams tp;
    tp.ech_fraction = frac;
    tp.split_probability = 0.0;
    synth::TrafficSynthesizer synth(population, tp);
    auto packets = synth.synthesize(events);
    std::size_t with_sni = 0;
    for (const auto& p : packets) {
      auto result = extract_sni(p.payload);
      if (result.status == SniStatus::kFound) ++with_sni;
    }
    double share = static_cast<double>(with_sni) /
                   static_cast<double>(packets.size());
    EXPECT_NEAR(share, 1.0 - frac, 0.1) << "ech_fraction=" << frac;
  }
}

TEST(EchTraffic, ServerIpIsStablePerHost) {
  EXPECT_EQ(synth::server_ip_for("booking.com"),
            synth::server_ip_for("booking.com"));
  EXPECT_NE(synth::server_ip_for("booking.com"),
            synth::server_ip_for("espn.com"));
}

}  // namespace
}  // namespace netobs::net
