// Streaming rate and quantile estimators for the live telemetry plane.
//
// The registry (obs/metrics.hpp) stores what happened; these classes answer
// "how fast is it happening *now*" and "what does the latency distribution
// look like" without buffering raw samples:
//
//   RateEstimator — events/sec over a sliding window of coarse time buckets.
//     record() is one clock read plus two relaxed atomics, cheap enough for
//     the per-packet observer path.
//   P2Quantile — the P² algorithm (Jain & Chlamtac, CACM 1985): a five-marker
//     streaming quantile estimate in O(1) memory, no sample buffer.
//
// RateGauge / QuantileGauges bind estimators to registry gauges so scrapes
// see `netobs_net_packets_per_second{window="10s"}` and
// `netobs_profile_knn_latency_seconds{quantile="0.99"}` instead of having to
// derive rates and percentiles from raw counters/histograms themselves.
// Both auto-register a publisher with the process-wide StatsHub, which every
// export path (HTTP scrape, --metrics-out dump) flushes first, so the gauge
// values are fresh at read time.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace netobs::obs {

/// Sliding-window event rate over a ring of per-tick buckets. Writers race
/// benignly on bucket rotation (a concurrent add into a bucket that is being
/// recycled can be lost); this is monitoring-grade arithmetic, not
/// accounting — the registry counters stay exact.
class RateEstimator {
 public:
  /// `window_seconds` of history split into `buckets` ring slots; finer
  /// buckets give smoother decay at slightly more memory.
  explicit RateEstimator(double window_seconds = 10.0,
                         std::size_t buckets = 20);

  RateEstimator(const RateEstimator&) = delete;
  RateEstimator& operator=(const RateEstimator&) = delete;

  void record(double n = 1.0);
  /// Deterministic variant for tests: the caller supplies the clock.
  void record_at(double now_seconds, double n = 1.0);

  /// Events per second over the window ending now.
  double rate() const;
  double rate_at(double now_seconds) const;

  double window_seconds() const { return bucket_seconds_ * double(nbuckets_); }

 private:
  struct Slot {
    std::atomic<std::int64_t> tick{-1};  ///< which window tick owns the slot
    std::atomic<double> count{0.0};
  };

  double bucket_seconds_;
  std::size_t nbuckets_;
  std::unique_ptr<Slot[]> slots_;
};

/// Streaming quantile estimate via the P² algorithm: five markers track the
/// min, the target quantile, its half-way neighbours and the max, adjusted
/// with a piecewise-parabolic fit on every observation. Exact for the first
/// five samples, approximate (typically within a bucket width of the true
/// percentile) afterwards. Mutex-protected: observe() is called on
/// per-session paths, not per-packet ones.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  P2Quantile(const P2Quantile&) = delete;
  P2Quantile& operator=(const P2Quantile&) = delete;

  void observe(double x);
  /// Current estimate; NaN until the first observation, exact while fewer
  /// than five samples have been seen.
  double value() const;
  std::uint64_t count() const;
  double quantile() const { return q_; }

 private:
  mutable std::mutex mutex_;
  double q_;
  std::uint64_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};  ///< marker heights q_i
  double pos_[5] = {1, 2, 3, 4, 5};      ///< actual marker positions n_i
  double desired_[5] = {0, 0, 0, 0, 0};  ///< desired positions n'_i
  double incr_[5] = {0, 0, 0, 0, 0};     ///< desired-position increments
};

/// Process-wide list of gauge publishers, flushed by every export path
/// (HTTP server scrape, dump_metrics_file callers) right before the registry
/// snapshot so derived gauges are fresh at read time.
class StatsHub {
 public:
  static StatsHub& global();

  std::uint64_t add(std::function<void()> publish);
  void remove(std::uint64_t handle);
  /// Runs every registered publisher (under the hub lock: publishers only
  /// touch their own estimators and gauges, never the hub).
  void publish();

 private:
  std::mutex mutex_;
  std::uint64_t next_handle_ = 1;
  std::map<std::uint64_t, std::function<void()>> publishers_;
};

/// One rate estimator per window, each exported as
/// `<name>{window="10s",...}`. record() respects the registry enabled flag
/// (single relaxed load when disabled).
class RateGauge {
 public:
  RateGauge(MetricsRegistry& registry, const std::string& name,
            const std::string& help,
            std::vector<double> windows_seconds = {10.0, 60.0},
            const Labels& labels = {});
  ~RateGauge();

  RateGauge(const RateGauge&) = delete;
  RateGauge& operator=(const RateGauge&) = delete;

  void record(double n = 1.0);
  /// Copies the current rates into the bound gauges (also run by StatsHub).
  void publish();

 private:
  struct Cell {
    std::unique_ptr<RateEstimator> estimator;
    Gauge* gauge;
  };
  std::vector<Cell> cells_;
  std::uint64_t hub_handle_ = 0;
};

/// One P² estimator per requested quantile, each exported as
/// `<name>{quantile="0.99",...}` — the summary shape Prometheus clients
/// expect for pre-aggregated percentiles.
class QuantileGauges {
 public:
  QuantileGauges(MetricsRegistry& registry, const std::string& name,
                 const std::string& help,
                 std::vector<double> quantiles = {0.5, 0.9, 0.99},
                 const Labels& labels = {});
  ~QuantileGauges();

  QuantileGauges(const QuantileGauges&) = delete;
  QuantileGauges& operator=(const QuantileGauges&) = delete;

  void observe(double v);
  void publish();

 private:
  struct Cell {
    std::unique_ptr<P2Quantile> estimator;
    Gauge* gauge;
  };
  std::vector<Cell> cells_;
  std::uint64_t hub_handle_ = 0;
};

}  // namespace netobs::obs
