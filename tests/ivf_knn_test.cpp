// IVF approximate-kNN oracle: with nprobe == nlists and a full re-rank
// pool the inverted-file index must reproduce the exact CosineKnnIndex
// *bit-identically* (same ids, same float similarities, same tie-break);
// at the default nprobe it must clear the recall floor on a seeded
// clustered corpus. Plus determinism of the k-means coarse quantizer,
// int8 round-trip bounds, incremental add_rows and warm rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "embedding/ivf_index.hpp"
#include "embedding/kmeans.hpp"
#include "embedding/knn.hpp"
#include "embedding/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/vec_math.hpp"

namespace netobs::embedding {
namespace {

/// Topic-clustered corpus, the regime IVF is built for (hostname vectors
/// cluster by topic — Section 5.4's t-SNE): `topics` gaussian centers,
/// rows = center + noise * gaussian. Unnormalised; the indexes normalise.
EmbeddingMatrix clustered_matrix(std::size_t rows, std::size_t dim,
                                 std::size_t topics, double noise,
                                 std::uint64_t seed) {
  EmbeddingMatrix centers(topics, dim);
  util::Pcg32 rng(seed, 0xc1);
  for (std::size_t t = 0; t < topics; ++t) {
    for (float& v : centers.row(t)) {
      v = static_cast<float>(rng.normal());
    }
    util::normalize(centers.row(t));
  }
  EmbeddingMatrix m(rows, dim);
  for (std::size_t r = 0; r < rows; ++r) {
    auto center = centers.row(r % topics);
    auto row = m.row(r);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = center[j] + static_cast<float>(noise * rng.normal());
    }
  }
  return m;
}

std::vector<float> random_query(util::Pcg32& rng, std::size_t dim) {
  std::vector<float> q(dim);
  for (auto& v : q) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return q;
}

void expect_identical(const std::vector<KnnIndex::Neighbor>& got,
                      const std::vector<KnnIndex::Neighbor>& want,
                      const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << what << " rank " << i;
    // The re-rank stage recomputes exact float scores with the same simd
    // kernel the exact index uses, so equality is bitwise, not approximate.
    EXPECT_EQ(got[i].similarity, want[i].similarity) << what << " rank " << i;
  }
}

double overlap_recall(const std::vector<KnnIndex::Neighbor>& approx,
                      const std::vector<KnnIndex::Neighbor>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<TokenId> ids;
  for (const auto& nb : approx) ids.push_back(nb.id);
  std::sort(ids.begin(), ids.end());
  std::size_t hit = 0;
  for (const auto& nb : exact) {
    hit += std::binary_search(ids.begin(), ids.end(), nb.id) ? 1 : 0;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

TEST(IvfKnn, FullProbeIsBitIdenticalToExactIndex) {
  // nprobe >= nlists + a re-rank pool as big as the corpus: every row is
  // scanned and re-scored exactly, so the approximation must vanish.
  auto m = clustered_matrix(1200, 33, 24, 0.25, 101);  // odd dim: padded tail
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nlists = 16;
  p.nprobe = 1000;   // clamped to nlists
  p.rerank = 2000;   // pool covers the whole corpus
  IvfKnnIndex ivf(m, p);
  EXPECT_EQ(ivf.nlists(), 16U);
  EXPECT_EQ(ivf.backend(), KnnBackend::kIvf);
  EXPECT_EQ(ivf.size(), 1200U);
  EXPECT_EQ(ivf.dim(), 33U);

  util::Pcg32 rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    auto q = random_query(rng, 33);
    for (std::size_t n : {1UL, 10UL, 100UL, 600UL}) {
      expect_identical(ivf.query(q, n), exact.query(q, n), "full-probe");
    }
  }
  // Batch path agrees with the per-query path (and hence with exact).
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 5; ++i) queries.push_back(random_query(rng, 33));
  queries.push_back(std::vector<float>(33, 0.0F));  // zero-norm slot
  auto batched = ivf.query_batch(queries, 25);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i + 1 < queries.size(); ++i) {
    expect_identical(batched[i], exact.query(queries[i], 25), "batch");
  }
  EXPECT_TRUE(batched.back().empty()) << "zero query must stay empty";
}

TEST(IvfKnn, DefaultProbeClearsRecallFloorOnClusteredCorpus) {
  auto m = clustered_matrix(6000, 32, 48, 0.10, 2021);
  CosineKnnIndex exact(m);
  IvfKnnIndex ivf(m);  // auto nlists (~77), default nprobe 16
  EXPECT_GE(ivf.nlists(), 2U);
  EXPECT_LT(ivf.nlists(), 6000U);

  util::Pcg32 rng(9);
  double recall_sum = 0.0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    // Query near a corpus row so there is a meaningful neighbourhood.
    auto row = m.row(rng.next_below(6000));
    std::vector<float> q(row.begin(), row.end());
    recall_sum += overlap_recall(ivf.query(q, 100), exact.query(q, 100));
  }
  // The bench gate holds the paper-scale corpus to 0.98; this small corpus
  // with proportionally fewer lists probed must still stay high.
  EXPECT_GE(recall_sum / kTrials, 0.90);
}

TEST(IvfKnn, KmeansIsDeterministicAndPoolInvariant) {
  auto m = clustered_matrix(4000, 16, 12, 0.15, 77);
  EmbeddingMatrix unit = m;
  for (std::size_t r = 0; r < unit.rows(); ++r) util::normalize(unit.row(r));

  KmeansParams kp;
  kp.clusters = 12;
  auto a = spherical_kmeans(unit, kp);
  auto b = spherical_kmeans(unit, kp);
  util::ThreadPool pool(4);
  auto c = spherical_kmeans(unit, kp, &pool);

  ASSERT_EQ(a.centroids.rows(), 12U);
  ASSERT_EQ(a.assignment.size(), 4000U);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.assignment, c.assignment) << "pool changed the clustering";
  for (std::size_t r = 0; r < 12; ++r) {
    auto ra = a.centroids.row(r);
    auto rc = c.centroids.row(r);
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_EQ(ra[j], rc[j]) << "centroid " << r << " dim " << j;
    }
    // Spherical: every centroid comes back unit norm.
    EXPECT_NEAR(util::l2_norm(ra), 1.0F, 1e-4F);
  }
  // assignment[r] really is the nearest centroid.
  for (std::size_t r = 0; r < 64; ++r) {
    EXPECT_EQ(a.assignment[r],
              nearest_centroid(a.centroids,
                               unit.padded_data() + r * unit.stride()));
  }
  EXPECT_THROW(spherical_kmeans(unit, KmeansParams{}),  // clusters = 0
               std::invalid_argument);
}

TEST(IvfKnn, Int8RoundTripStaysWithinHalfScale) {
  // The quantizer contract: code = round(x * 127 / max|x|), so the
  // reconstruction code * scale is within scale/2 of the input per
  // component. Checked through the scoring behaviour: an IVF index over a
  // *single* list with re-rank disabled-by-saturation still ranks a probe
  // of near-duplicates correctly, and the approximate pre-score error
  // bound follows the per-component bound.
  constexpr std::size_t kDim = 24;
  util::Pcg32 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> x(kDim);
    float max_abs = 0.0F;
    for (auto& v : x) {
      v = static_cast<float>(rng.uniform(-3.0, 3.0));
      max_abs = std::max(max_abs, std::abs(v));
    }
    if (max_abs == 0.0F) continue;
    float scale = max_abs / 127.0F;
    for (float v : x) {
      float q = std::nearbyint(v / scale);
      q = std::min(127.0F, std::max(-127.0F, q));
      // Reconstruction error <= scale/2 except at the clamp, where the
      // clamped value is max_abs itself (|v| <= max_abs by construction).
      EXPECT_LE(std::abs(q * scale - v), scale * 0.5F + 1e-6F)
          << "trial " << trial;
      EXPECT_LE(std::abs(q), 127.0F);
    }
  }

  // Behavioural consequence: with the re-rank pool cut to the bare minimum
  // (rerank = 1) and every list probed, the int8 pre-ranking alone must
  // already recover nearly all true neighbours — the quantisation error is
  // far below the similarity gaps of a clustered corpus.
  auto m = clustered_matrix(1500, 32, 15, 0.15, 99);
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nlists = 15;
  p.nprobe = 15;
  p.rerank = 1;
  IvfKnnIndex ivf(m, p);
  util::Pcg32 qrng(5);
  double recall_sum = 0.0;
  for (int t = 0; t < 5; ++t) {
    auto q = random_query(qrng, 32);
    recall_sum += overlap_recall(ivf.query(q, 50), exact.query(q, 50));
  }
  EXPECT_GE(recall_sum / 5, 0.95);
}

TEST(IvfKnn, BuildIsDeterministicAndPoolInvariant) {
  auto m = clustered_matrix(3000, 20, 30, 0.12, 55);
  IvfParams p;
  p.nlists = 30;
  IvfKnnIndex serial(m, p);
  util::ThreadPool pool(4);
  IvfKnnIndex pooled(m, p, &pool);
  ASSERT_EQ(serial.nlists(), pooled.nlists());

  util::Pcg32 rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 20);
    expect_identical(pooled.query(q, 64), serial.query(q, 64),
                     "pool-built index");
  }
}

TEST(IvfKnn, AddRowsExtendsTheIndexWithoutRetraining) {
  auto m = clustered_matrix(2000, 16, 10, 0.15, 11);
  IvfParams p;
  p.nlists = 10;
  p.nprobe = 10;     // full probe: appended rows must be findable exactly
  p.rerank = 4000;
  IvfKnnIndex ivf(m, p);
  auto centroids_before = ivf.centroids();

  auto extra = clustered_matrix(500, 16, 10, 0.15, 12);
  ivf.add_rows(extra);
  EXPECT_EQ(ivf.size(), 2500U);
  // Quantizer untouched: add_rows only assigns, never retrains.
  ASSERT_EQ(ivf.centroids().rows(), centroids_before.rows());
  for (std::size_t r = 0; r < centroids_before.rows(); ++r) {
    auto a = ivf.centroids().row(r);
    auto b = centroids_before.row(r);
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(a[j], b[j]);
  }

  // The grown index must equal an exact index over the concatenation.
  EmbeddingMatrix all(2500, 16);
  for (std::size_t r = 0; r < 2000; ++r) {
    std::copy(m.row(r).begin(), m.row(r).end(), all.row(r).begin());
  }
  for (std::size_t r = 0; r < 500; ++r) {
    std::copy(extra.row(r).begin(), extra.row(r).end(),
              all.row(2000 + r).begin());
  }
  CosineKnnIndex exact(all);
  util::Pcg32 rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 16);
    expect_identical(ivf.query(q, 40), exact.query(q, 40), "post-add");
  }

  EmbeddingMatrix wrong_dim(3, 8);
  EXPECT_THROW(ivf.add_rows(wrong_dim), std::invalid_argument);
}

TEST(IvfKnn, WarmRebuildReusesCentroidsBitForBit) {
  auto day1 = clustered_matrix(2500, 16, 20, 0.12, 40);
  IvfParams p;
  p.nlists = 20;
  IvfKnnIndex cold(day1, p);

  // Day 2 drifts slightly; the warm build must adopt day 1's quantizer
  // unchanged and still answer full-probe queries exactly.
  auto day2 = clustered_matrix(2500, 16, 20, 0.13, 41);
  IvfKnnIndex warm(day2, cold.centroids(), p);
  ASSERT_EQ(warm.nlists(), cold.nlists());
  for (std::size_t r = 0; r < warm.nlists(); ++r) {
    auto a = warm.centroids().row(r);
    auto b = cold.centroids().row(r);
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(a[j], b[j]);
  }

  IvfParams full = p;
  full.nprobe = 20;
  full.rerank = 4000;
  IvfKnnIndex warm_full(day2, cold.centroids(), full);
  CosineKnnIndex exact(day2);
  util::Pcg32 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 16);
    expect_identical(warm_full.query(q, 50), exact.query(q, 50), "warm");
  }
}

TEST(IvfKnn, EdgeCasesStayWellDefined) {
  // Empty index: every query answers empty.
  EmbeddingMatrix empty(0, 8);
  IvfKnnIndex none(empty);
  EXPECT_EQ(none.size(), 0U);
  EXPECT_TRUE(none.query(std::vector<float>(8, 1.0F), 5).empty());
  EXPECT_THROW(none.add_rows(EmbeddingMatrix(2, 8)), std::logic_error);

  // Single row, zero query, n = 0, n > rows.
  EmbeddingMatrix one(1, 8);
  one.row(0)[3] = 2.0F;
  IvfKnnIndex single(one);
  EXPECT_EQ(single.nlists(), 1U);
  auto got = single.query(std::vector<float>(one.row(0).begin(),
                                             one.row(0).end()),
                          10);
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got[0].id, 0U);
  EXPECT_FLOAT_EQ(got[0].similarity, 1.0F);
  EXPECT_TRUE(single.query(std::vector<float>(8, 0.0F), 5).empty());
  EXPECT_TRUE(single.query(std::vector<float>(one.row(0).begin(),
                                              one.row(0).end()),
                           0)
                  .empty());

  // A zero row in the corpus must not poison scores (normalises to zero).
  EmbeddingMatrix with_zero(3, 8);
  with_zero.row(0)[0] = 1.0F;
  with_zero.row(2)[1] = 1.0F;
  IvfParams p;
  p.nlists = 1;
  IvfKnnIndex zz(with_zero, p);
  std::vector<float> q(8, 0.0F);
  q[0] = 1.0F;
  auto top = zz.query(q, 3);
  ASSERT_GE(top.size(), 1U);
  EXPECT_EQ(top[0].id, 0U);
}

TEST(IvfKnn, PackedKeysPreserveThePublishedOrderAndTopKSemantics) {
  // The batched sweep selects on u64 keys (flipped-float sim, id) instead
  // of the two-field comparator. The codec must round-trip and the key
  // order must agree with neighbor_better on every pair, including the
  // signed-zero and exact-tie cases.
  EXPECT_EQ(key_sim(neighbor_key(7, 0.25F)), 0.25F);
  EXPECT_EQ(key_id(neighbor_key(7, 0.25F)), 7U);
  // -0.0 canonicalizes to +0.0 inside the key; the two compare equal under
  // every float comparison, so ordering decisions cannot change.
  EXPECT_EQ(neighbor_key(3, -0.0F), neighbor_key(3, 0.0F));

  util::Pcg32 rng(99, 0x7a);
  std::vector<std::pair<TokenId, float>> stream;
  for (int i = 0; i < 4000; ++i) {
    // Coarse grid forces many exact similarity ties across distinct ids.
    const float sim =
        static_cast<float>(rng.uniform(-1.0, 1.0) * 8.0) / 8.0F;
    stream.emplace_back(static_cast<TokenId>(rng.next_below(1000)), sim);
  }
  stream.emplace_back(0, 0.0F);
  stream.emplace_back(1, -0.0F);
  for (const auto& [ia, sa] : {stream[0], stream[17], stream[4001]}) {
    for (const auto& [ib, sb] : {stream[1], stream[4000], stream[123]}) {
      EXPECT_EQ(neighbor_key(ia, sa) < neighbor_key(ib, sb),
                neighbor_better(sa, ia, sb, ib));
    }
  }

  // Same stream through both reservoirs: the kept sets must be identical
  // (ids and float sims), for several k including k > distinct entries.
  for (const std::size_t k : {1UL, 7UL, 50UL, 5000UL}) {
    TopK ref(k);
    PackedTopK packed(k);
    for (const auto& [id, sim] : stream) {
      ref.offer(id, sim);
      packed.offer(id, sim);
    }
    auto want = ref.take_sorted();
    auto keys = packed.take_keys();
    std::sort(keys.begin(), keys.end());
    ASSERT_EQ(keys.size(), want.size()) << "k=" << k;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(key_id(keys[i]), want[i].id) << "k=" << k << " rank " << i;
      EXPECT_EQ(key_sim(keys[i]), want[i].similarity + 0.0F)
          << "k=" << k << " rank " << i;
    }
  }
}

TEST(IvfKnn, BatchedQueriesAreBitIdenticalToSingleQueries) {
  // The list-centric batched scan buckets queries by probe list and sweeps
  // each touched list once for the whole batch. Offer order into the TopK
  // reservoirs changes completely — the kept set must not: identity is
  // required at the *default* (partial) nprobe, not just full probe.
  auto m = clustered_matrix(5000, 48, 40, 0.12, 314);
  IvfParams p;
  p.nlists = 40;
  p.nprobe = 6;
  IvfKnnIndex ivf(m, p);

  util::Pcg32 rng(271);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 33; ++i) queries.push_back(random_query(rng, 48));
  queries.push_back(queries.front());               // duplicate query
  queries.push_back(std::vector<float>(48, 0.0F));  // zero-norm slot

  auto batched = ivf.query_batch(queries, 50);
  ASSERT_EQ(batched.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(batched[i], ivf.query(queries[i], 50), "serial batch");
  }

  // Sharding the touched lists across a pool must not change a bit either:
  // each shard keeps its own top-pool partials and the merge re-offers
  // them, which preserves the unique (sim desc, id asc) top set.
  util::ThreadPool pool(4);
  ivf.set_thread_pool(&pool);
  auto pooled = ivf.query_batch(queries, 50);
  ASSERT_EQ(pooled.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(pooled[i], batched[i], "pooled batch");
  }
  ivf.set_thread_pool(nullptr);

  // Degenerate batches stay well-defined.
  EXPECT_TRUE(ivf.query_batch({}, 10).empty());
  auto zeros = ivf.query_batch({std::vector<float>(48, 0.0F)}, 10);
  ASSERT_EQ(zeros.size(), 1U);
  EXPECT_TRUE(zeros[0].empty());
}

TEST(IvfKnn, PqBuildIsDeterministicAndPoolInvariant) {
  auto m = clustered_matrix(3000, 32, 24, 0.15, 88);
  IvfParams p;
  p.nlists = 24;
  p.pq.m = 8;
  p.pq.bits = 6;
  IvfKnnIndex a(m, p);
  IvfKnnIndex b(m, p);
  util::ThreadPool pool(4);
  IvfKnnIndex c(m, p, &pool);

  EXPECT_TRUE(a.pq_enabled());
  EXPECT_EQ(a.pq_code_bytes_per_row(), 8U);
  // Seeded codebooks + deterministic encode: bit-for-bit across rebuilds
  // and for any build pool size.
  EXPECT_EQ(a.contents_hash(), b.contents_hash());
  EXPECT_EQ(a.contents_hash(), c.contents_hash()) << "pool changed PQ build";

  // PQ exists to shrink the list payload: m bytes/row must beat the int8
  // layout (qstride + 4 bytes/row) even after paying for the codebooks.
  IvfParams scalar = p;
  scalar.pq.m = 0;
  IvfKnnIndex int8(m, scalar);
  EXPECT_FALSE(int8.pq_enabled());
  EXPECT_EQ(int8.pq_bytes(), 0U);
  EXPECT_GT(a.pq_bytes(), 0U);
  // Per-row the win is 8 vs 36 bytes; at this tiny corpus the shared
  // codebooks eat part of it, so assert half here — the bench gate holds
  // the full 1/3 at paper scale where the codebooks amortise away.
  EXPECT_LT(a.list_bytes(), int8.list_bytes() / 2)
      << "PQ payload not under half of the int8 payload";
  // Different PQ geometry => different index contents.
  IvfParams other = p;
  other.pq.m = 4;
  IvfKnnIndex d(m, other);
  EXPECT_NE(a.contents_hash(), d.contents_hash());
}

TEST(IvfKnn, ReconstructHonoursTheQuantizerErrorBounds) {
  auto m = clustered_matrix(2000, 32, 16, 0.15, 61);
  IvfParams p;
  p.nlists = 16;
  p.assign_fanout = 0;  // exact assignment: nearest_centroid is the oracle

  // Scalar quantization: reconstruct = code * scale, per-component error
  // <= scale / 2 with scale = max|row| / 127.
  IvfKnnIndex int8(m, p);
  const auto& unit = int8.normalized_rows();
  for (TokenId id : {TokenId{0}, TokenId{977}, TokenId{1999}}) {
    auto rec = int8.reconstruct(id);
    ASSERT_EQ(rec.size(), 32U);
    auto row = unit.row(id);
    float max_abs = 0.0F;
    for (float v : row) max_abs = std::max(max_abs, std::abs(v));
    float scale = max_abs / 127.0F;
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_LE(std::abs(rec[j] - row[j]), scale * 0.5F + 1e-6F)
          << "row " << id << " dim " << j;
    }
  }
  EXPECT_THROW(int8.reconstruct(2000), std::out_of_range);

  // PQ: reconstruct = centroid + decoded residual. The decoded residual is
  // each subspace's nearest codebook entry, so it must beat the trivial
  // all-zeros residual decode on average — i.e. PQ reconstruction error
  // strictly below the raw coarse-only error ||row - centroid||.
  IvfParams pqp = p;
  pqp.pq.m = 8;
  IvfKnnIndex pq(m, pqp);
  double pq_err = 0.0, coarse_err = 0.0;
  for (TokenId id = 0; id < 2000; id += 7) {
    auto rec = pq.reconstruct(id);
    const float* row = unit.padded_data() + id * unit.stride();
    std::uint32_t list = nearest_centroid(pq.centroids(), row);
    auto cen = pq.centroids().row(list);
    double e_pq = 0.0, e_coarse = 0.0;
    for (std::size_t j = 0; j < 32; ++j) {
      e_pq += (rec[j] - row[j]) * (rec[j] - row[j]);
      e_coarse += (cen[j] - row[j]) * (cen[j] - row[j]);
    }
    pq_err += std::sqrt(e_pq);
    coarse_err += std::sqrt(e_coarse);
  }
  EXPECT_LT(pq_err, coarse_err * 0.75)
      << "PQ residual codebooks barely improve on the coarse centroid";
  EXPECT_THROW(pq.reconstruct(2000), std::out_of_range);
}

TEST(IvfKnn, PqFullProbeWithFullPoolIsBitIdenticalToExact) {
  // The strongest PQ oracle: PQ only reorders the *candidate* stage, and
  // with nprobe == nlists plus a re-rank pool covering the corpus every row
  // reaches the exact re-rank — so even the lossiest codebooks must
  // reproduce CosineKnnIndex bit-for-bit, batched or not.
  auto m = clustered_matrix(1500, 33, 12, 0.2, 909);  // odd dim: padded tail
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nlists = 12;
  p.nprobe = 12;
  p.rerank = 3000;
  p.pq.m = 5;  // dsub = ceil(33/5) = 7, last subspace zero-padded
  IvfKnnIndex pq(m, p);
  ASSERT_TRUE(pq.pq_enabled());

  util::Pcg32 rng(23);
  std::vector<std::vector<float>> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(random_query(rng, 33));
  for (const auto& q : queries) {
    expect_identical(pq.query(q, 80), exact.query(q, 80), "pq full-probe");
  }
  auto batched = pq.query_batch(queries, 80);
  util::ThreadPool pool(3);
  pq.set_thread_pool(&pool);
  auto pooled = pq.query_batch(queries, 80);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expect_identical(batched[i], exact.query(queries[i], 80), "pq batch");
    expect_identical(pooled[i], batched[i], "pq pooled batch");
  }
}

TEST(IvfKnn, PqDefaultProbeKeepsRecallUsable) {
  // Partial probe + bounded pool: the regime PQ actually runs in. The
  // asymmetric LUT scan is lossier than int8, so the floor is softer than
  // the int8 one but must stay high on a clustered corpus.
  auto m = clustered_matrix(6000, 32, 48, 0.10, 2022);
  CosineKnnIndex exact(m);
  IvfParams p;
  p.nprobe = 16;
  p.rerank = 8;
  p.pq.m = 8;
  IvfKnnIndex pq(m, p);

  util::Pcg32 rng(19);
  double recall_sum = 0.0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto row = m.row(rng.next_below(6000));
    std::vector<float> q(row.begin(), row.end());
    recall_sum += overlap_recall(pq.query(q, 100), exact.query(q, 100));
  }
  EXPECT_GE(recall_sum / kTrials, 0.85);
}

TEST(IvfKnn, AddRowsEncodesAgainstTheKeptPqCodebooks) {
  auto m = clustered_matrix(2000, 32, 10, 0.15, 71);
  IvfParams p;
  p.nlists = 10;
  p.nprobe = 10;
  p.rerank = 4000;
  p.pq.m = 8;
  IvfKnnIndex pq(m, p);
  auto hash_before = pq.contents_hash();

  auto extra = clustered_matrix(400, 32, 10, 0.15, 72);
  pq.add_rows(extra);
  EXPECT_EQ(pq.size(), 2400U);
  EXPECT_NE(pq.contents_hash(), hash_before);
  // Appended rows carry PQ codes too: payload grew by exactly m bytes/row.
  EXPECT_EQ(pq.pq_code_bytes_per_row(), 8U);

  // Full probe + full pool: the grown index must equal the exact index over
  // the concatenation, PQ codes and all.
  EmbeddingMatrix all(2400, 32);
  for (std::size_t r = 0; r < 2000; ++r) {
    std::copy(m.row(r).begin(), m.row(r).end(), all.row(r).begin());
  }
  for (std::size_t r = 0; r < 400; ++r) {
    std::copy(extra.row(r).begin(), extra.row(r).end(),
              all.row(2000 + r).begin());
  }
  CosineKnnIndex exact(all);
  util::Pcg32 rng(37);
  for (int trial = 0; trial < 5; ++trial) {
    auto q = random_query(rng, 32);
    expect_identical(pq.query(q, 40), exact.query(q, 40), "pq post-add");
  }
}

}  // namespace
}  // namespace netobs::embedding
