#include "profile/session.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace netobs::profile {

namespace {

std::uint32_t floor_log2(std::uint32_t v) {
  return 31u - static_cast<std::uint32_t>(std::countl_zero(v));
}

SessionStoreParams legacy_params(util::Timestamp horizon) {
  SessionStoreParams p;
  p.horizon = horizon;
  return p;
}

}  // namespace

// --- SlotArena --------------------------------------------------------------

SessionStore::Slot* SessionStore::SlotArena::alloc(std::uint32_t capacity) {
  std::uint32_t cls = floor_log2(capacity);
  if (!free_[cls].empty()) {
    Slot* span = free_[cls].back();
    free_[cls].pop_back();
    return span;
  }
  if (capacity > kChunkSlots) {
    // Oversized ring: dedicated exact-size chunk.
    chunks_.emplace_back(new Slot[capacity]);
    chunk_bytes_ += std::size_t{capacity} * sizeof(Slot);
    return chunks_.back().get();
  }
  if (bump_free_ < capacity) {
    // Salvage the tail of the current chunk into power-of-two spans before
    // opening a new chunk, so nothing is stranded.
    while (bump_free_ >= kMinCapacity) {
      std::uint32_t blk = std::uint32_t{1} << floor_log2(bump_free_);
      free_[floor_log2(blk)].push_back(bump_);
      bump_ += blk;
      bump_free_ -= blk;
    }
    chunks_.emplace_back(new Slot[kChunkSlots]);
    chunk_bytes_ += std::size_t{kChunkSlots} * sizeof(Slot);
    bump_ = chunks_.back().get();
    bump_free_ = kChunkSlots;
  }
  Slot* span = bump_;
  bump_ += capacity;
  bump_free_ -= capacity;
  return span;
}

void SessionStore::SlotArena::release(Slot* span, std::uint32_t capacity) {
  free_[floor_log2(capacity)].push_back(span);
}

// --- construction -----------------------------------------------------------

SessionStore::SessionStore(util::Timestamp horizon)
    : SessionStore(legacy_params(horizon)) {}

SessionStore::SessionStore(const SessionStoreParams& params)
    : horizon_(params.horizon),
      lookback_(params.eviction_lookback > 0 ? params.eviction_lookback
                                             : params.horizon),
      budget_(params.memory_budget_bytes),
      pool_(params.external_pool) {
  if (horizon_ <= 0) {
    throw std::invalid_argument("SessionStore: horizon must be > 0");
  }
  if (params.shards == 0) {
    throw std::invalid_argument("SessionStore: shards must be > 0");
  }
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<util::InternPool>();
    pool_ = owned_pool_.get();
  }
  shards_.reserve(params.shards);
  for (std::size_t i = 0; i < params.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

// --- ingest -----------------------------------------------------------------

void SessionStore::ingest(const net::HostnameEvent& event) {
  ingest(event.user_id, event.timestamp, event.hostname);
}

void SessionStore::ingest(const std::vector<net::HostnameEvent>& events) {
  for (const auto& e : events) ingest(e);
}

void SessionStore::ingest(std::uint32_t user, util::Timestamp timestamp,
                          std::string_view hostname) {
  ingest_id(user, timestamp, pool_->intern(hostname));
}

void SessionStore::ingest_id(std::uint32_t user, util::Timestamp timestamp,
                             Id host_id) {
  shard_ingest(*shards_[shard_of(user)], user, timestamp, host_id);
  maybe_auto_evict();
}

void SessionStore::ingest_shard(std::size_t shard, std::uint32_t user,
                                util::Timestamp timestamp,
                                std::string_view hostname) {
  ingest_shard_id(shard, user, timestamp, pool_->intern(hostname));
}

void SessionStore::ingest_shard_id(std::size_t shard, std::uint32_t user,
                                   util::Timestamp timestamp, Id host_id) {
  assert(shard == shard_of(user));
  shard_ingest(*shards_[shard], user, timestamp, host_id);
}

void SessionStore::shard_ingest(Shard& shard, std::uint32_t user,
                                util::Timestamp ts, Id host_id) {
  auto [it, inserted] = shard.users.try_emplace(user);
  UserState& u = it->second;
  if (inserted) {
    u.base_ts = ts;
    u.last_seen = ts;
    shard.user_count.fetch_add(1, std::memory_order_relaxed);
    shard.payload.fetch_add(kUserFixedCost, std::memory_order_relaxed);
  }
  // Prune first: equivalent to the seed's push-then-prune, because the new
  // event always survives its own cutoff (horizon > 0).
  prune(shard, u, ts - horizon_);
  if (u.count == 0) {
    u.base_ts = ts;
    u.head = 0;
  } else if (ts < u.base_ts) {
    // Out-of-order event below the delta origin: shift the origin down.
    rebase(u, ts);
  }
  std::uint64_t dt = static_cast<std::uint64_t>(ts - u.base_ts);
  if (dt > 0xFFFFFFFFull) {
    // Window spans >136 years of seconds; move the origin up to the oldest
    // stored visit (pruning bounds the true span by the horizon).
    rebase(u, u.base_ts + static_cast<util::Timestamp>(u.ring[u.head].dt));
    dt = static_cast<std::uint64_t>(ts - u.base_ts);
  }
  if (u.count == u.capacity) grow(shard, u);
  u.ring[(u.head + u.count) & (u.capacity - 1)] =
      Slot{host_id, static_cast<std::uint32_t>(dt)};
  ++u.count;
  if (ts > u.last_seen) u.last_seen = ts;
  shard.events.fetch_add(1, std::memory_order_relaxed);
  if (ts > shard.max_ts.load(std::memory_order_relaxed)) {
    shard.max_ts.store(ts, std::memory_order_relaxed);
  }
  refresh_mem(shard);
}

void SessionStore::prune(Shard& shard, UserState& u, util::Timestamp cutoff) {
  std::uint32_t removed = 0;
  while (u.count > 0 &&
         u.base_ts + static_cast<util::Timestamp>(u.ring[u.head].dt) <
             cutoff) {
    u.head = (u.head + 1) & (u.capacity - 1);
    --u.count;
    ++removed;
  }
  if (removed > 0) {
    shard.events.fetch_sub(removed, std::memory_order_relaxed);
  }
}

void SessionStore::grow(Shard& shard, UserState& u) {
  // 2x up to 32 slots, 4x beyond. Freed spans go to same-class freelists,
  // and once every user exists nobody wants the small classes back — with
  // plain doubling that strands ~one ring's worth of garbage per heavy user
  // (8+16+...+cap/2 ≈ cap); the 4x schedule caps the strand at ~cap/3
  // while sparse users (the million-user common case) still grow gently.
  std::uint32_t new_cap = kMinCapacity;
  if (u.capacity > 0) {
    new_cap = u.capacity < 32 ? u.capacity * 2 : u.capacity * 4;
  }
  Slot* span = shard.arena.alloc(new_cap);
  for (std::uint32_t i = 0; i < u.count; ++i) {
    span[i] = u.ring[(u.head + i) & (u.capacity - 1)];
  }
  if (u.ring != nullptr) shard.arena.release(u.ring, u.capacity);
  shard.payload.fetch_add(
      std::size_t{new_cap - u.capacity} * sizeof(Slot),
      std::memory_order_relaxed);
  u.ring = span;
  u.capacity = new_cap;
  u.head = 0;
}

void SessionStore::rebase(UserState& u, util::Timestamp new_base) {
  std::int64_t delta = u.base_ts - new_base;
  for (std::uint32_t i = 0; i < u.count; ++i) {
    Slot& s = u.ring[(u.head + i) & (u.capacity - 1)];
    std::int64_t dt = static_cast<std::int64_t>(s.dt) + delta;
    assert(dt >= 0 && dt <= 0xFFFFFFFFll);
    s.dt = static_cast<std::uint32_t>(dt);
  }
  u.base_ts = new_base;
}

void SessionStore::refresh_mem(Shard& shard) {
  shard.mem.store(
      util::unordered_map_bytes(shard.users) + shard.arena.chunk_bytes(),
      std::memory_order_relaxed);
}

// --- queries ----------------------------------------------------------------

namespace {

/// Shared backward window scan. Visitor receives slots oldest-first after
/// the reversal, exactly like the seed store's in_window pass.
template <class SlotT, class Push>
void collect_window(const SlotT* ring, std::uint32_t capacity,
                    std::uint32_t head, std::uint32_t count,
                    util::Timestamp base_ts, util::Timestamp now,
                    const Window& window, std::vector<SlotT>& in_window,
                    Push&& push) {
  in_window.clear();
  for (std::uint32_t i = count; i-- > 0;) {
    const SlotT& s = ring[(head + i) & (capacity - 1)];
    util::Timestamp ts = base_ts + static_cast<util::Timestamp>(s.dt);
    if (ts > now) continue;  // future events (out of order feed)
    if (window.mode == Window::Mode::kTime) {
      if (ts <= now - window.duration) break;
    } else if (in_window.size() >= window.count) {
      break;
    }
    in_window.push_back(s);
  }
  std::reverse(in_window.begin(), in_window.end());
  for (const SlotT& s : in_window) push(s);
}

}  // namespace

Session SessionStore::session_of(std::uint32_t user, util::Timestamp now,
                                 const Window& window) const {
  Session session;
  session.user_id = user;
  session.end = now;
  const Shard& shard = *shards_[shard_of(user)];
  auto it = shard.users.find(user);
  if (it == shard.users.end()) return session;
  const UserState& u = it->second;

  std::vector<Slot> in_window;
  std::unordered_set<Id> seen;  // first-visit-only, first-occurrence order
  collect_window(u.ring, u.capacity, u.head, u.count, u.base_ts, now, window,
                 in_window, [&](const Slot& s) {
                   if (seen.insert(s.host_id).second) {
                     session.hostnames.push_back(pool_->name(s.host_id));
                   }
                 });
  return session;
}

void SessionStore::session_ids_of(std::uint32_t user, util::Timestamp now,
                                  const Window& window,
                                  std::vector<Id>& out) const {
  out.clear();
  const Shard& shard = *shards_[shard_of(user)];
  auto it = shard.users.find(user);
  if (it == shard.users.end()) return;
  const UserState& u = it->second;

  std::vector<Slot> in_window;
  collect_window(u.ring, u.capacity, u.head, u.count, u.base_ts, now, window,
                 in_window, [&](const Slot& s) {
                   if (std::find(out.begin(), out.end(), s.host_id) ==
                       out.end()) {
                     out.push_back(s.host_id);
                   }
                 });
}

std::vector<std::vector<std::string>> SessionStore::day_sequences(
    std::int64_t day_index) const {
  std::vector<std::vector<std::string>> out;
  for_each_day_id_sequence(day_index,
                           [&](std::uint32_t, std::span<const Id> ids) {
                             out.push_back(resolve(ids));
                           });
  // Deterministic order regardless of hash-map iteration.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<SessionStore::Id>> SessionStore::day_id_sequences(
    std::int64_t day_index) const {
  std::vector<std::vector<Id>> out;
  for_each_day_id_sequence(day_index,
                           [&](std::uint32_t, std::span<const Id> ids) {
                             out.emplace_back(ids.begin(), ids.end());
                           });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> SessionStore::users() const {
  std::vector<std::uint32_t> out;
  out.reserve(user_count());
  for_each_user([&](std::uint32_t user, util::Timestamp) {
    out.push_back(user);
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> SessionStore::resolve(std::span<const Id> ids) const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (Id id : ids) out.push_back(pool_->name(id));
  return out;
}

// --- accounting -------------------------------------------------------------

std::size_t SessionStore::event_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s->events.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t SessionStore::user_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s->user_count.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t SessionStore::memory_bytes() const {
  std::size_t total = owned_pool_ ? owned_pool_->bytes() : 0;
  for (const auto& s : shards_) {
    total += s->mem.load(std::memory_order_relaxed);
  }
  return total;
}

std::size_t SessionStore::payload_bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s->payload.load(std::memory_order_relaxed);
  }
  return total;
}

util::Timestamp SessionStore::max_timestamp() const {
  util::Timestamp max_ts = 0;
  for (const auto& s : shards_) {
    max_ts = std::max(max_ts, s->max_ts.load(std::memory_order_relaxed));
  }
  return max_ts;
}

// --- budget / eviction ------------------------------------------------------

util::Timestamp SessionStore::coldest_resident() const {
  util::Timestamp coldest = 0;
  bool any = false;
  for (const auto& s : shards_) {
    for (const auto& [user, u] : s->users) {
      if (!any || u.last_seen < coldest) {
        coldest = u.last_seen;
        any = true;
      }
    }
  }
  return any ? coldest : 0;
}

void SessionStore::maybe_auto_evict() {
  if (budget_ == 0) return;
  if (payload_bytes() > budget_) enforce_budget(max_timestamp());
}

bool SessionStore::enforce_budget() { return enforce_budget(max_timestamp()); }

bool SessionStore::enforce_budget(util::Timestamp now) {
  eviction_runs_.fetch_add(1, std::memory_order_relaxed);
  last_run_now_.store(now, std::memory_order_relaxed);

  bool evicted_any = false;
  if (budget_ != 0 && payload_bytes() > budget_) {
    // Candidates: idle users only — never anyone active within the training
    // lookback. Deterministic coldest-first order with user-id tie-break,
    // independent of shard count.
    struct Candidate {
      util::Timestamp last_seen;
      std::uint32_t user;
      std::uint32_t shard;
    };
    util::Timestamp cutoff = now - lookback_;
    std::vector<Candidate> candidates;
    for (std::uint32_t si = 0; si < shards_.size(); ++si) {
      for (const auto& [user, u] : shards_[si]->users) {
        if (u.last_seen < cutoff) {
          candidates.push_back(Candidate{u.last_seen, user, si});
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.last_seen != b.last_seen) {
                  return a.last_seen < b.last_seen;
                }
                return a.user < b.user;
              });

    std::size_t low_water = budget_ - budget_ / 8;
    std::uint64_t users_gone = 0;
    std::uint64_t events_gone = 0;
    for (const Candidate& c : candidates) {
      if (payload_bytes() <= low_water) break;
      Shard& shard = *shards_[c.shard];
      auto it = shard.users.find(c.user);
      UserState& u = it->second;
      if (u.ring != nullptr) shard.arena.release(u.ring, u.capacity);
      shard.payload.fetch_sub(
          kUserFixedCost + std::size_t{u.capacity} * sizeof(Slot),
          std::memory_order_relaxed);
      shard.events.fetch_sub(u.count, std::memory_order_relaxed);
      shard.user_count.fetch_sub(1, std::memory_order_relaxed);
      events_gone += u.count;
      ++users_gone;
      shard.users.erase(it);
      refresh_mem(shard);
      evicted_any = true;
    }
    evicted_users_.fetch_add(users_gone, std::memory_order_relaxed);
    evicted_events_.fetch_add(events_gone, std::memory_order_relaxed);
  }

  coldest_last_seen_.store(coldest_resident(), std::memory_order_relaxed);
  over_budget_.store(budget_ != 0 && payload_bytes() > budget_,
                     std::memory_order_relaxed);
  return evicted_any;
}

SessionEvictionStats SessionStore::eviction_stats() const {
  SessionEvictionStats stats;
  stats.evicted_users = evicted_users_.load(std::memory_order_relaxed);
  stats.evicted_events = evicted_events_.load(std::memory_order_relaxed);
  stats.runs = eviction_runs_.load(std::memory_order_relaxed);
  stats.last_run_now = last_run_now_.load(std::memory_order_relaxed);
  stats.coldest_last_seen =
      coldest_last_seen_.load(std::memory_order_relaxed);
  stats.over_budget = over_budget_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace netobs::profile
