// Ablation — profiler design choices (Section 4.1 / 5.4).
//
// Sweeps the knobs DESIGN.md calls out:
//   - N, the kNN neighbourhood size (the paper fixes N=1000 on a 470K-host
//     universe; the interesting quantity is N as a fraction of the
//     vocabulary),
//   - the aggregation function g (the paper leaves g open; mean vs
//     L2-normalised mean),
//   - tracker filtering on/off (Section 5.4 argues trackers add noise).
#include <iostream>

#include "bench/quality_probe.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace netobs;
  auto cfg = bench::parse_config(argc, argv, {1000, 3, 2021, ""});
  bench::QualityFixture fx(cfg);
  util::print_banner(std::cout, "Ablation: profiler parameters");
  bench::print_scale_note(cfg, fx.world);

  util::Table knn_table({"N (kNN)", "top-3 match", "ad affinity",
                         "vs random"});
  for (std::size_t n : {5UL, 20UL, 50UL, 150UL, 400UL, 1000UL}) {
    auto sp = bench::scaled_service_params();
    sp.profiler.knn = n;
    auto q = bench::measure_quality(fx, sp);
    knn_table.add_row(
        {std::to_string(n) + (n == 1000 ? " (paper)" : ""),
         util::format("%.3f", q.top3_match),
         util::format("%.3f", q.selected_affinity),
         util::format("%.2fx",
                      q.selected_affinity /
                          std::max(1e-9, q.random_affinity))});
  }
  knn_table.print(std::cout);

  util::Table agg_table({"aggregation g", "top-3 match", "ad affinity"});
  for (auto agg : {profile::Aggregation::kMean,
                   profile::Aggregation::kNormalizedMean}) {
    auto sp = bench::scaled_service_params();
    sp.profiler.aggregation = agg;
    auto q = bench::measure_quality(fx, sp);
    agg_table.add_row(
        {agg == profile::Aggregation::kMean ? "mean" : "normalized mean",
         util::format("%.3f", q.top3_match),
         util::format("%.3f", q.selected_affinity)});
  }
  agg_table.print(std::cout);

  util::Table filter_table({"tracker filtering", "top-3 match",
                            "ad affinity"});
  for (bool filtering : {true, false}) {
    auto sp = bench::scaled_service_params();
    auto q = bench::measure_quality(fx, sp, filtering);
    filter_table.add_row({filtering ? "on (paper)" : "off",
                          util::format("%.3f", q.top3_match),
                          util::format("%.3f", q.selected_affinity)});
  }
  filter_table.print(std::cout);

  util::Table emb_table({"profiler", "top-3 match", "ad affinity",
                         "empty %"});
  for (bool neighbors : {true, false}) {
    auto sp = bench::scaled_service_params();
    sp.profiler.use_embedding_neighbors = neighbors;
    auto q = bench::measure_quality(fx, sp);
    emb_table.add_row({neighbors ? "embedding+kNN (paper)" : "ontology-only",
                       util::format("%.3f", q.top3_match),
                       util::format("%.3f", q.selected_affinity),
                       util::format("%.1f", q.empty_rate * 100)});
  }
  emb_table.print(std::cout);

  std::cout << "\nshape checks: quality degrades when N approaches the\n"
               "vocabulary size (dilution) or is tiny (no propagation);\n"
               "tracker filtering helps; the embedding beats or matches the\n"
               "ontology-only baseline while profiling more sessions.\n";
  bench::dump_telemetry(cfg);
  return 0;
}
