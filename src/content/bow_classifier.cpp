#include "content/bow_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netobs::content {

NaiveBayesClassifier::NaiveBayesClassifier(std::size_t vocab,
                                           std::size_t classes, double alpha)
    : vocab_(vocab),
      alpha_(alpha),
      word_count_(classes, std::vector<double>(vocab, 0.0)),
      class_token_total_(classes, 0.0),
      class_doc_count_(classes, 0.0) {
  if (vocab == 0 || classes == 0) {
    throw std::invalid_argument("NaiveBayesClassifier: empty vocab/classes");
  }
  if (alpha <= 0.0) {
    throw std::invalid_argument("NaiveBayesClassifier: alpha must be > 0");
  }
}

void NaiveBayesClassifier::add_document(const Document& doc,
                                        std::size_t label) {
  if (label >= word_count_.size()) {
    throw std::out_of_range("NaiveBayesClassifier: bad label");
  }
  for (TokenId token : doc) {
    if (token >= vocab_) {
      throw std::out_of_range("NaiveBayesClassifier: token out of vocab");
    }
    word_count_[label][token] += 1.0;
    class_token_total_[label] += 1.0;
  }
  class_doc_count_[label] += 1.0;
  ++documents_;
}

std::vector<double> NaiveBayesClassifier::predict(const Document& doc) const {
  std::size_t classes = word_count_.size();
  std::vector<double> log_post(classes);
  double v_alpha = alpha_ * static_cast<double>(vocab_);
  double total_docs =
      std::max(1.0, static_cast<double>(documents_));
  for (std::size_t c = 0; c < classes; ++c) {
    // Smoothed class prior (so never-seen classes stay representable).
    double prior = (class_doc_count_[c] + alpha_) /
                   (total_docs + alpha_ * static_cast<double>(classes));
    double lp = std::log(prior);
    double denom = std::log(class_token_total_[c] + v_alpha);
    for (TokenId token : doc) {
      if (token >= vocab_) continue;
      lp += std::log(word_count_[c][token] + alpha_) - denom;
    }
    log_post[c] = lp;
  }
  // Softmax in log space.
  double max_lp = *std::max_element(log_post.begin(), log_post.end());
  double total = 0.0;
  for (double& lp : log_post) {
    lp = std::exp(lp - max_lp);
    total += lp;
  }
  for (double& lp : log_post) lp /= total;
  return log_post;
}

std::size_t NaiveBayesClassifier::predict_class(const Document& doc) const {
  auto posterior = predict(doc);
  return static_cast<std::size_t>(
      std::max_element(posterior.begin(), posterior.end()) -
      posterior.begin());
}

}  // namespace netobs::content
