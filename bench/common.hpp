// Shared scaffolding for the benchmark binaries: a paper-scale synthetic
// world (34 topics / 1397-category ontology / 328 flat categories, as in
// Section 5.4) and simple --key=value CLI overrides so each figure can be
// re-run at larger or smaller scale.
//
// Scale note: the study had 1329 users over one month; the default bench
// scale (300 users, ~10 days) reproduces every distributional *shape* in
// minutes on one core. Pass --users/--days/--seed to change.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "ontology/category_tree.hpp"
#include "synth/browsing.hpp"
#include "synth/users.hpp"
#include "synth/world.hpp"

namespace netobs::bench {

struct BenchConfig {
  std::size_t users = 300;
  std::int64_t days = 10;
  std::uint64_t seed = 2021;
};

inline BenchConfig parse_config(int argc, char** argv, BenchConfig defaults) {
  BenchConfig cfg = defaults;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&](const std::string& key) -> const char* {
      if (arg.rfind(key, 0) == 0) return arg.c_str() + key.size();
      return nullptr;
    };
    if (const char* v = value_of("--users=")) {
      cfg.users = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v2 = value_of("--days=")) {
      cfg.days = std::strtoll(v2, nullptr, 10);
    } else if (const char* v3 = value_of("--seed=")) {
      cfg.seed = std::strtoull(v3, nullptr, 10);
    } else if (arg == "--help") {
      std::cout << "usage: " << argv[0]
                << " [--users=N] [--days=N] [--seed=N]\n";
      std::exit(0);
    }
  }
  return cfg;
}

/// Owns the ontology + universe + population (the space holds a pointer to
/// the tree, so everything lives behind stable unique_ptrs).
struct BenchWorld {
  std::unique_ptr<ontology::CategoryTree> tree;
  std::unique_ptr<ontology::CategorySpace> space;
  std::unique_ptr<synth::HostnameUniverse> universe;
  std::unique_ptr<synth::UserPopulation> population;
};

inline BenchWorld make_world(const BenchConfig& cfg,
                             synth::WorldParams wp = synth::WorldParams()) {
  BenchWorld w;
  util::Pcg32 tree_rng(cfg.seed, 0x7ee);
  w.tree = std::make_unique<ontology::CategoryTree>(
      ontology::make_adwords_like_tree(tree_rng));
  w.space = std::make_unique<ontology::CategorySpace>(*w.tree);

  wp.seed = cfg.seed;
  w.universe = std::make_unique<synth::HostnameUniverse>(*w.space, wp);

  synth::PopulationParams pp;
  pp.num_users = cfg.users;
  pp.seed = cfg.seed + 1;
  w.population = std::make_unique<synth::UserPopulation>(
      w.universe->topic_count(), pp);
  return w;
}

inline void print_scale_note(const BenchConfig& cfg,
                             const BenchWorld& world) {
  std::cout << "[scale] users=" << cfg.users << " days=" << cfg.days
            << " seed=" << cfg.seed
            << " | universe=" << world.universe->size() << " hostnames, "
            << world.universe->topic_count() << " topics, "
            << world.space->size() << " categories (paper: 1329 users, "
            << "470K hostnames, 34 topics, 328 categories)\n";
}

}  // namespace netobs::bench
