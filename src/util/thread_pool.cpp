#include "util/thread_pool.hpp"

#include <algorithm>

namespace netobs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  auto fut = task.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // get() rethrows the first failure after all jobs were enqueued.
  for (auto& f : futures) f.get();
}

void ThreadPool::parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  grain = std::max<std::size_t>(1, grain);
  std::vector<std::future<void>> futures;
  futures.reserve((n + grain - 1) / grain);
  for (std::size_t begin = 0; begin < n; begin += grain) {
    std::size_t end = std::min(n, begin + grain);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace netobs::util
