// Failure-injection and adversarial-input sweeps: every wire parser must
// reject arbitrary corruption gracefully (ParseError or nullopt, never a
// crash, hang, or bogus success), and the trace format must round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "net/dns.hpp"
#include "net/observer.hpp"
#include "net/quic.hpp"
#include "net/tls.hpp"
#include "net/trace_io.hpp"
#include "util/rng.hpp"

namespace netobs::net {
namespace {

std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes,
                                 util::Pcg32& rng) {
  if (bytes.empty()) return bytes;
  int mutations = 1 + static_cast<int>(rng.next_below(4));
  for (int m = 0; m < mutations; ++m) {
    switch (rng.next_below(4)) {
      case 0:  // flip random byte
        bytes[rng.next_below(static_cast<std::uint32_t>(bytes.size()))] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
        break;
      case 1:  // truncate
        bytes.resize(rng.next_below(
            static_cast<std::uint32_t>(bytes.size() + 1)));
        break;
      case 2:  // extend with noise
        for (int i = 0; i < 8; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng.next_u32()));
        }
        break;
      default:  // splice: duplicate a random chunk
        if (bytes.size() >= 4) {
          std::size_t at =
              rng.next_below(static_cast<std::uint32_t>(bytes.size() - 2));
          bytes.insert(bytes.begin() + static_cast<long>(at),
                       bytes.begin(),
                       bytes.begin() + 2);
        }
        break;
    }
    if (bytes.empty()) break;
  }
  return bytes;
}

class ParserFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzSweep, TlsParserNeverCrashes) {
  util::Pcg32 rng(GetParam(), 0xF1);
  ClientHelloSpec spec;
  spec.sni = "fuzz-target.example.com";
  auto valid = build_client_hello_record(spec);
  for (int i = 0; i < 300; ++i) {
    auto bytes = mutate(valid, rng);
    // Must terminate with a clean outcome.
    auto result = extract_sni(bytes);
    (void)result;
    try {
      parse_client_hello_record(bytes);
    } catch (const ParseError&) {
      // expected for corrupted input
    }
  }
}

TEST_P(ParserFuzzSweep, DnsParserNeverCrashes) {
  util::Pcg32 rng(GetParam(), 0xF2);
  DnsMessage msg;
  msg.questions.push_back({"fuzz.example.com", DnsType::kA, 1});
  auto valid = build_dns_query(msg);
  for (int i = 0; i < 300; ++i) {
    auto bytes = mutate(valid, rng);
    try {
      parse_dns_message(bytes);
    } catch (const ParseError&) {
    }
  }
}

TEST_P(ParserFuzzSweep, QuicParserNeverCrashesAndNeverForges) {
  util::Pcg32 rng(GetParam(), 0xF3);
  QuicInitialSpec spec;
  spec.dcid = {1, 2, 3, 4, 5, 6, 7, 8};
  spec.client_hello.sni = "fuzz.example.com";
  auto valid = build_quic_initial(spec);
  for (int i = 0; i < 60; ++i) {
    auto bytes = mutate(valid, rng);
    auto view = decrypt_quic_initial(bytes);
    if (view && view->client_hello.sni) {
      // AEAD authentication: a successful decrypt implies the protected
      // region (header + ciphertext, i.e. the whole original packet) is
      // byte-identical. Trailing bytes beyond the length field are outside
      // the packet (RFC 9000 datagram coalescing) and legitimately ignored.
      EXPECT_EQ(*view->client_hello.sni, "fuzz.example.com");
      ASSERT_GE(bytes.size(), valid.size());
      EXPECT_TRUE(std::equal(valid.begin(), valid.end(), bytes.begin()));
    }
  }
}

TEST_P(ParserFuzzSweep, PureNoiseIsRejected) {
  util::Pcg32 rng(GetParam(), 0xF4);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> noise(rng.next_below(2000));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u32());
    EXPECT_FALSE(decrypt_quic_initial(noise).has_value());
    auto sni = extract_sni(noise);
    EXPECT_NE(sni.status, SniStatus::kFound);
    try {
      parse_dns_message(noise);
    } catch (const ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(SniObserver, SurvivesGarbageMixedIntoFlows) {
  util::Pcg32 rng(77);
  SniObserver observer(Vantage::kWifiProvider);
  ClientHelloSpec spec;
  spec.sni = "victim.example.com";
  auto record = build_client_hello_record(spec);
  // Plain TLS has no integrity protection at the observer: a corrupted
  // record can still parse (possibly with a garbled SNI). The guarantees
  // are (a) no crash, (b) every *clean* flow resolves with the right name.
  std::size_t clean_found = 0;
  std::size_t clean_total = 0;
  for (std::uint16_t i = 0; i < 200; ++i) {
    Packet p;
    p.tuple = {0x0A000001, 0x01010101,
               static_cast<std::uint16_t>(30000 + i), 443, Transport::kTcp};
    p.src_mac = 7;
    bool clean = i % 3 == 0;
    if (clean) {
      ++clean_total;
      p.payload = record;
    } else {
      p.payload = mutate(record, rng);
    }
    auto e = observer.observe(p);
    if (clean) {
      ASSERT_TRUE(e.has_value()) << "clean flow " << i << " not resolved";
      EXPECT_EQ(e->hostname, "victim.example.com");
      ++clean_found;
    }
  }
  EXPECT_EQ(clean_found, clean_total);
}

TEST(TraceIo, PacketRoundTrip) {
  std::vector<Packet> packets;
  util::Pcg32 rng(5);
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.timestamp = i * 100;
    p.tuple = {rng.next_u32(), rng.next_u32(),
               static_cast<std::uint16_t>(rng.next_u32()),
               static_cast<std::uint16_t>(rng.next_u32()),
               i % 2 == 0 ? Transport::kTcp : Transport::kUdp};
    p.src_mac = rng.next_u64();
    p.subscriber_id = rng.next_u64();
    p.payload.resize(rng.next_below(200));
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u32());
    packets.push_back(std::move(p));
  }
  std::stringstream ss;
  save_packet_trace(ss, packets);
  auto loaded = load_packet_trace(ss);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, packets[i].timestamp);
    EXPECT_EQ(loaded[i].tuple, packets[i].tuple);
    EXPECT_EQ(loaded[i].src_mac, packets[i].src_mac);
    EXPECT_EQ(loaded[i].subscriber_id, packets[i].subscriber_id);
    EXPECT_EQ(loaded[i].payload, packets[i].payload);
  }
}

TEST(TraceIo, EventRoundTrip) {
  std::vector<HostnameEvent> events = {
      {1, 100, "a.example.com"},
      {2, 200, "b.example.org"},
      {1, 300, "c.example.net"},
  };
  std::stringstream ss;
  save_event_trace(ss, events);
  auto loaded = load_event_trace(ss);
  EXPECT_EQ(loaded, events);
}

TEST(TraceIo, RejectsCorruption) {
  std::stringstream empty;
  EXPECT_THROW(load_packet_trace(empty), ParseError);

  std::stringstream wrong_magic("XXXXYYYYZZZZ");
  EXPECT_THROW(load_event_trace(wrong_magic), ParseError);

  // Truncated payload.
  std::vector<Packet> packets(1);
  packets[0].payload = {1, 2, 3, 4};
  std::stringstream ss;
  save_packet_trace(ss, packets);
  std::string data = ss.str();
  std::stringstream cut(data.substr(0, data.size() - 2));
  EXPECT_THROW(load_packet_trace(cut), ParseError);
}

TEST(TraceIo, EmptyTracesAreValid) {
  std::stringstream ss;
  save_packet_trace(ss, {});
  EXPECT_TRUE(load_packet_trace(ss).empty());
  std::stringstream ss2;
  save_event_trace(ss2, {});
  EXPECT_TRUE(load_event_trace(ss2).empty());
}

}  // namespace
}  // namespace netobs::net
