// User sessions (Section 4.1):
//
//   s_u^T = [h_1, ..., h_n] — the sequence of hosts visited by user u in the
//   last window of length T, where T is either a time interval (the paper's
//   deployment uses T = 20 minutes) or a host count.
//
// If a host was visited more than once inside the window only the first
// visit counts, so interactive services (video/audio streaming) that
// reconnect repeatedly do not dominate the profile.
//
// SessionStore ingests observer HostnameEvents and answers window queries;
// it is also the source of the per-user-per-day training sequences for the
// daily SKIPGRAM retraining of Section 5.4.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "util/mem_estimate.hpp"
#include "util/sim_time.hpp"

namespace netobs::profile {

/// Window specification: exactly one of the two modes.
struct Window {
  enum class Mode { kTime, kCount };
  Mode mode = Mode::kTime;
  util::Timestamp duration = 20 * util::kMinute;  ///< for kTime
  std::size_t count = 0;                          ///< for kCount

  static Window minutes(std::int64_t m) {
    return Window{Mode::kTime, m * util::kMinute, 0};
  }
  static Window last_hosts(std::size_t n) {
    return Window{Mode::kCount, 0, n};
  }
};

/// A materialised session: unique hostnames in first-visit order.
struct Session {
  std::uint32_t user_id = 0;
  util::Timestamp end = 0;  ///< query time
  std::vector<std::string> hostnames;

  bool empty() const { return hostnames.empty(); }
  std::size_t size() const { return hostnames.size(); }
};

class SessionStore {
 public:
  /// History horizon: events older than this (relative to the newest event
  /// per user) are pruned. Must cover at least the training lookback.
  explicit SessionStore(util::Timestamp horizon = 2 * util::kDay);

  void ingest(const net::HostnameEvent& event);
  void ingest(const std::vector<net::HostnameEvent>& events);

  /// Field-wise variant for the interned ingest path: the hostname view is
  /// copied into the store exactly once, with no intermediate
  /// HostnameEvent materialisation.
  void ingest(std::uint32_t user, util::Timestamp timestamp,
              std::string_view hostname);

  /// The session of `user` at time `now` for the given window, applying the
  /// first-visit-only rule.
  Session session_of(std::uint32_t user, util::Timestamp now,
                     const Window& window) const;

  /// Per-user hostname sequences for one whole day (for model training;
  /// Section 5.4 trains on "the sequence of hosts visited by all the users
  /// during the whole previous day"). No dedup here — the raw request
  /// stream is what SKIPGRAM learns from.
  std::vector<std::vector<std::string>> day_sequences(
      std::int64_t day_index) const;

  /// Users with at least one stored event.
  std::vector<std::uint32_t> users() const;

  std::size_t event_count() const { return event_count_; }
  /// Users with at least one stored event (cheap: map size, no scan).
  std::size_t user_count() const { return per_user_.size(); }

  /// Estimated heap footprint: the per-user map plus every stored visit
  /// (deque slot + spilled hostname heap), tracked incrementally on
  /// ingest/prune so the call is O(1).
  std::size_t memory_bytes() const {
    return util::unordered_map_bytes(per_user_) + visit_bytes_;
  }

 private:
  struct Visit {
    util::Timestamp timestamp;
    std::string hostname;
  };

  static std::size_t visit_cost(const Visit& v) {
    return sizeof(Visit) + util::string_heap_bytes(v.hostname);
  }

  util::Timestamp horizon_;
  std::unordered_map<std::uint32_t, std::deque<Visit>> per_user_;
  std::size_t event_count_ = 0;
  std::size_t visit_bytes_ = 0;  ///< sum of visit_cost over stored visits
};

}  // namespace netobs::profile
